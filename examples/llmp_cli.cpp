// Command-line driver: run any algorithm on any workload from a shell,
// with human-readable or JSON output for scripting sweeps.
//
//   llmp_cli match --alg match4 --n 1048576 --p 4096 --shape random --i 3
//   llmp_cli match --alg match2 --n 65536 --erew --json
//   llmp_cli rank  --n 100000 --p 1024
//   llmp_cli color --n 4096 --shape strided
//   llmp_cli tree  --n 65536 --seed 7
//   llmp_cli list                    # registry: names, models, time bounds
//
// The match command goes through the public surface (llmp.h): names
// resolve through the single registry, so `--alg match4-table` or
// `--alg match1-erew` picks up that entry's canonical options; bare flags
// (--i, --table, --erew) override on top, and bad input comes back as a
// Status instead of aborting. The app commands (rank/color/tree) use the
// apps/ headers directly — they are demos of the repo's internals, not of
// the stable surface. (Built as example_llmp_cli.)
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "apps/euler_tour.h"
#include "apps/independent_set.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/sequential.h"
#include "engine/blocked_match.h"
#include "llmp.h"
#include "support/failpoint.h"
#include "support/format.h"

namespace {

using namespace llmp;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count("--" + name); }
  std::string str(const std::string& name, const std::string& dflt) const {
    auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& name, std::uint64_t dflt) const {
    auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(),
                                                 nullptr, 10);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[token] = argv[i + 1];
      ++i;
    } else {
      a.kv[token] = "1";
    }
  }
  return a;
}

list::LinkedList make_list(const Args& a) {
  const std::size_t n = a.num("n", 1 << 16);
  const std::uint64_t seed = a.num("seed", 42);
  const std::string shape = a.str("shape", "random");
  if (shape == "identity") return list::generators::identity_list(n);
  if (shape == "reverse") return list::generators::reverse_list(n);
  if (shape == "strided")
    return list::generators::strided_list(n, a.num("stride", 1048573));
  if (shape == "blocked")
    return list::generators::blocked_list(n, a.num("block", 64), seed);
  return list::generators::random_list(n, seed);
}

void emit(const Args& a, const std::string& what,
          const std::vector<std::pair<std::string, std::string>>& fields) {
  if (a.flag("json")) {
    std::cout << "{\"kind\":\"" << what << "\"";
    for (const auto& [k, v] : fields) {
      const bool numeric =
          !v.empty() && v.find_first_not_of("0123456789.") == std::string::npos;
      std::cout << ",\"" << k << "\":" << (numeric ? v : "\"" + v + "\"");
    }
    std::cout << "}\n";
    return;
  }
  fmt::Table t({"field", "value"});
  for (const auto& [k, v] : fields) t.add_row({k, v});
  t.print();
}

/// `match --budget-bytes B`: run through the out-of-core block engine
/// under a B-byte cache budget instead of the flat path. The result is
/// still diffed against core::sequential_matching, and the engine's
/// cache counters ride along in the emitted fields.
int cmd_match_blocked(const Args& a, const list::LinkedList& lst) {
  llmp::Context ctx(static_cast<std::size_t>(a.num("p", 1024)));
  const std::size_t budget =
      static_cast<std::size_t>(a.num("budget-bytes", 0));
  ctx.pram_context().set_block_cache_budget(budget);

  engine::BlockConfig cfg = engine::BlockConfig::from_budget(
      budget, sizeof(engine::NodeRec),
      static_cast<std::size_t>(a.num("block-nodes", 4096)));
  if (a.kv.count("--cache-blocks"))
    cfg.cache_blocks = static_cast<std::size_t>(a.num("cache-blocks", 8));

  engine::BlockedMatcher matcher;
  core::MatchResult r;
  Status s = matcher.init(lst, cfg);
  if (s.ok()) s = matcher.matching_into(r);
  if (!s.ok()) {
    std::cerr << s.to_string() << "\n";
    return 2;
  }
  ctx.pram_context().note_phase("engine",
                               engine::to_pram_stats(matcher.stats()));

  const core::MatchResult flat = core::sequential_matching(lst);
  const bool ok = r.in_matching == flat.in_matching && r.edges == flat.edges;
  const engine::EngineStats& e = matcher.stats();
  const std::size_t blocks = matcher.blocked_list().blocks();
  emit(a, "match_blocked",
       {{"n", std::to_string(lst.size())},
        {"edges", std::to_string(r.edges)},
        {"block_nodes", std::to_string(cfg.block_nodes)},
        {"cache_blocks", std::to_string(cfg.cache_blocks)},
        {"blocks", std::to_string(blocks)},
        {"budget_bytes", std::to_string(budget)},
        {"hit_rate", fmt::num(e.hit_rate(), 3)},
        {"loads", std::to_string(e.loads)},
        {"spills", std::to_string(e.spills)},
        {"load_bytes", std::to_string(e.load_bytes)},
        {"spill_bytes", std::to_string(e.spill_bytes)},
        {"swaps", std::to_string(e.swaps)},
        {"rounds", std::to_string(e.rounds)},
        {"mailbox_posts", std::to_string(e.mailbox_posts)},
        {"verified", ok ? "matches-flat" : "MISMATCH"}});
  return ok ? 0 : 1;
}

/// `match --audit off|audit|repair`: submit through a one-shot
/// serve::Service with the per-request audit override
/// (RequestBuilder::audit → serve::Request::audit). `--corrupt P` arms
/// the stabilize.corrupt.match failpoint first, so the healing path is
/// observable from a shell:
///   llmp_cli match --audit repair --corrupt 1 --n 65536
int cmd_match_served(const Args& a, const list::LinkedList& lst) {
  serve::AuditPolicy policy = serve::AuditPolicy::kOff;
  const std::string mode = a.str("audit", "off");
  if (!serve::audit_policy_from_string(mode, &policy)) {
    std::cerr << "--audit: expected off|audit|repair, got '" << mode << "'\n";
    return 2;
  }
  const std::string corrupt = a.str("corrupt", "");
  if (!corrupt.empty()) {
    const Status s = support::failpoint::arm_from_string(
        "stabilize.corrupt.match=status(data_loss):p=" + corrupt);
    if (!s.ok()) {
      std::cerr << "--corrupt: " << s.message() << "\n";
      return 2;
    }
  }
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  serve::Service svc(sopt);
  const std::string alg = a.str("alg", "match4");
  auto fut = svc.submit(
      RequestBuilder().algorithm(alg).list(lst).audit(policy).build());
  const Result<core::MatchResult> r = fut.get();
  const serve::ServiceStats st = svc.stats();
  svc.shutdown();
  support::failpoint::disarm_all();
  emit(a, "match_served",
       {{"algorithm", alg},
        {"n", std::to_string(lst.size())},
        {"audit", serve::to_string(policy)},
        {"status", r.ok() ? "OK" : r.status().to_string()},
        {"edges", std::to_string(r.ok() ? r->edges : 0)},
        {"audits_failed", std::to_string(st.audits_failed)},
        {"repairs", std::to_string(st.repairs)}});
  return r.ok() ? 0 : 1;
}

int cmd_match(const Args& a) {
  const auto lst = make_list(a);
  if (a.kv.count("--audit")) return cmd_match_served(a, lst);
  if (a.num("budget-bytes", 0) > 0 || a.kv.count("--cache-blocks") ||
      a.kv.count("--block-nodes"))
    return cmd_match_blocked(a, lst);
  llmp::Context ctx(static_cast<std::size_t>(a.num("p", 1024)));
  const std::string alg = a.str("alg", "match4");
  llmp::Options opt;
  opt.i_parameter = static_cast<int>(a.num("i", 0));  // 0 = canonical
  opt.table = a.flag("table");
  opt.erew = a.flag("erew");
  opt.seed = a.num("seed", 42);
  const auto r = llmp::run(ctx, alg, lst, opt);
  if (!r.ok()) {
    std::cerr << r.status().to_string() << " (see `llmp_cli list`)\n";
    return 2;
  }
  emit(a, "match",
       {{"algorithm", alg},
        {"n", std::to_string(lst.size())},
        {"p", std::to_string(ctx.processors())},
        {"edges", std::to_string(r->edges)},
        {"depth", std::to_string(r->cost.depth)},
        {"time_p", std::to_string(r->cost.time_p)},
        {"work", std::to_string(r->cost.work)},
        {"partition_sets", std::to_string(r->partition_sets)},
        {"verified", "maximal"}});
  return 0;
}

int cmd_rank(const Args& a) {
  const auto lst = make_list(a);
  pram::SeqExec exec(static_cast<std::size_t>(a.num("p", 1024)));
  const auto r = a.str("alg", "contraction") == "wyllie"
                     ? apps::wyllie_ranking(exec, lst)
                     : apps::contraction_ranking(exec, lst);
  const bool ok = r.rank == apps::sequential_ranking(lst);
  emit(a, "rank",
       {{"n", std::to_string(lst.size())},
        {"rounds", std::to_string(r.rounds)},
        {"time_p", std::to_string(r.cost.time_p)},
        {"work", std::to_string(r.cost.work)},
        {"verified", ok ? "ok" : "MISMATCH"}});
  return ok ? 0 : 1;
}

int cmd_color(const Args& a) {
  const auto lst = make_list(a);
  pram::SeqExec exec(static_cast<std::size_t>(a.num("p", 1024)));
  const auto col = apps::three_coloring(exec, lst);
  apps::check_coloring(lst, col.colors, 3);
  pram::SeqExec exec2(static_cast<std::size_t>(a.num("p", 1024)));
  const auto mis = apps::independent_set(exec2, lst);
  apps::check_independent_set(lst, mis.in_set);
  emit(a, "color",
       {{"n", std::to_string(lst.size())},
        {"coloring_rounds", std::to_string(col.reduce_rounds)},
        {"coloring_time_p", std::to_string(col.cost.time_p)},
        {"mis_size", std::to_string(mis.size)},
        {"verified", "proper+maximal"}});
  return 0;
}

int cmd_tree(const Args& a) {
  const std::size_t n = a.num("n", 1 << 14);
  const auto tree = apps::random_tree(n, a.num("seed", 42));
  pram::SeqExec exec(static_cast<std::size_t>(a.num("p", 1024)));
  const auto stats = apps::tree_statistics(exec, tree);
  std::uint64_t max_depth = 0;
  for (auto d : stats.depth) max_depth = std::max(max_depth, d);
  emit(a, "tree",
       {{"n", std::to_string(n)},
        {"max_depth", std::to_string(max_depth)},
        {"root_size", std::to_string(stats.subtree_size[tree.root])},
        {"prefix_rounds", std::to_string(stats.prefix_rounds)},
        {"time_p", std::to_string(stats.cost.time_p)}});
  return 0;
}

int cmd_list() {
  apps::register_algorithms();
  fmt::Table t({"name", "model", "time bound"});
  for (const core::AlgorithmEntry* e :
       core::AlgorithmRegistry::instance().entries())
    t.add_row({e->name, pram::to_string(e->declared), e->formula});
  t.print();
  return 0;
}

void usage() {
  std::cout <<
      "usage: llmp_cli <match|rank|color|tree|list> [options]\n"
      "  common: --n N --p P --seed S --shape "
      "random|identity|reverse|strided|blocked --json\n"
      "  match:  --alg seq|match1|match2|match3|match4|random|<registry "
      "name> --i I --table --erew\n"
      "          --budget-bytes B [--block-nodes N --cache-blocks C]  run "
      "out of core through the block engine\n"
      "          --audit off|audit|repair [--corrupt P]  submit through a "
      "serve::Service with integrity auditing\n"
      "  rank:   --alg contraction|wyllie\n"
      "  list:   print the algorithm registry (names, models, bounds)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.command == "match") return cmd_match(a);
  if (a.command == "rank") return cmd_rank(a);
  if (a.command == "color") return cmd_color(a);
  if (a.command == "tree") return cmd_tree(a);
  if (a.command == "list") return cmd_list();
  usage();
  return a.command.empty() ? 0 : 2;
}
