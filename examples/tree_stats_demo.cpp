// Scenario: tree analytics without touching the tree sequentially. A
// rooted tree (e.g. a filesystem or an org chart) arrives as a parent
// array; we need every node's depth, subtree size, and preorder number.
// The Euler-tour reduction turns all three into weighted prefix sums over
// a linked list — solved by the paper's matching machinery.
//
//   ./example_tree_stats_demo [n]
#include <cstdlib>
#include <iostream>

#include "apps/euler_tour.h"
#include "pram/executor.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace llmp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (std::size_t{1} << 14);
  pram::SeqExec exec(1024);

  fmt::Table t({"tree shape", "nodes", "tour arcs", "prefix rounds",
                "depth(root)", "max depth", "size(root)", "PRAM time_p"});
  auto row = [&](const char* name, const apps::Tree& tree) {
    pram::SeqExec e(1024);
    const auto stats = apps::tree_statistics(e, tree);
    std::uint64_t max_depth = 0;
    for (auto d : stats.depth) max_depth = std::max(max_depth, d);
    t.add_row({name, fmt::num(tree.size()),
               fmt::num(2 * (tree.size() - 1)),
               fmt::num(stats.prefix_rounds),
               fmt::num(stats.depth[tree.root]), fmt::num(max_depth),
               fmt::num(stats.subtree_size[tree.root]),
               fmt::num(stats.cost.time_p)});
  };
  row("random", apps::random_tree(n, 7));
  row("path (worst depth)", apps::path_tree(n));
  row("star (worst fanout)", apps::star_tree(n));
  t.print();

  // Small worked example so the reduction is visible.
  std::cout << "\nworked example (9-node random tree):\n";
  const apps::Tree small = apps::random_tree(9, 4);
  const auto stats = apps::tree_statistics(exec, small);
  fmt::Table w({"node", "parent", "depth", "subtree size", "preorder"});
  for (index_t v = 0; v < small.size(); ++v)
    w.add_row({fmt::num(v),
               small.parent[v] == knil ? std::string("(root)")
                                       : fmt::num(small.parent[v]),
               fmt::num(stats.depth[v]), fmt::num(stats.subtree_size[v]),
               fmt::num(stats.preorder[v])});
  w.print();
  std::cout << "\nAll three columns are ONE maximal-matching-driven list "
               "prefix over the Euler tour\n(apps/euler_tour.h).\n";
  return 0;
}
