// Scenario: deterministic list ranking — the workload that motivated the
// maximal-matching machinery (the paper's references [1,7]). A linked
// list scattered through an array must learn each node's position without
// any global order information; matching-contraction does it with O(n)
// work, against Wyllie's O(n log n) pointer jumping.
//
//   ./example_list_ranking_demo [n]
#include <cstdlib>
#include <iostream>

#include "apps/list_ranking.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace llmp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (std::size_t{1} << 18);
  const std::size_t p = 4096;
  const auto lst = list::generators::random_list(n, 7);
  const auto oracle = apps::sequential_ranking(lst);

  std::cout << "ranking a random " << n << "-node list, p = " << p << "\n\n";
  fmt::Table t({"algorithm", "rounds", "depth", "time_p", "work",
                "correct"});

  pram::SeqExec ew(p);
  const auto wy = apps::wyllie_ranking(ew, lst);
  t.add_row({"Wyllie pointer jumping", fmt::num(wy.rounds),
             fmt::num(wy.cost.depth), fmt::num(wy.cost.time_p),
             fmt::num(wy.cost.work), wy.rank == oracle ? "yes" : "NO"});

  for (auto alg : {core::Algorithm::kMatch1, core::Algorithm::kMatch4}) {
    pram::SeqExec ec(p);
    apps::ContractionOptions opt;
    opt.matcher = alg;
    const auto ct = apps::contraction_ranking(ec, lst, opt);
    t.add_row({"contraction via " + core::to_string(alg),
               fmt::num(ct.rounds), fmt::num(ct.cost.depth),
               fmt::num(ct.cost.time_p), fmt::num(ct.cost.work),
               ct.rank == oracle ? "yes" : "NO"});
  }
  t.print();

  std::cout << "\nWyllie's per-node work grows as ~2*log2(n) = "
            << fmt::num(2 * itlog::ceil_log2(n))
            << "; contraction's is a flat (if chunky)\nconstant — O(n) "
               "total work. Each contraction round shrinks the list by "
               ">= 1/3\n(one-of-three maximality), so rounds ~ "
               "log_{1.5} n.\n";
  return 0;
}
