// Quickstart: compute a maximal matching of a linked list's pointers with
// each algorithm through one warm pram::Context, verify it, and read the
// PRAM cost model. The Context owns the scratch arena, so every run after
// the first recycles the previous run's buffers (takes vs hits below).
//
//   ./example_quickstart [n] [processors]
#include <cstdlib>
#include <iostream>

#include "core/maximal_matching.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace llmp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (std::size_t{1} << 16);
  const std::size_t p = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;

  // A linked list of n nodes stored in an array (paper Fig. 1), with the
  // list order a random permutation of the array order.
  const list::LinkedList lst = list::generators::random_list(n, /*seed=*/42);
  std::cout << "list: n = " << n << " nodes, " << lst.pointers()
            << " pointers, head = " << lst.head() << ", tail = " << lst.tail()
            << "\np (cost-model processors) = " << p << "\n\n";

  // One backend + one Context for the whole program: the arena inside the
  // Context is what lets run k+1 reuse run k's scratch slabs.
  pram::SeqExec exec(p);  // p is a model parameter, not host threads
  pram::Context ctx(exec);

  fmt::Table t({"algorithm", "edges", "PRAM steps (depth)", "time_p",
                "work", "partition sets"});
  for (auto alg : {core::Algorithm::kSequential, core::Algorithm::kMatch1,
                   core::Algorithm::kMatch2, core::Algorithm::kMatch3,
                   core::Algorithm::kMatch4, core::Algorithm::kRandomized}) {
    core::MatchOptions opt;
    opt.algorithm = alg;
    opt.i_parameter = 3;  // Match4's adjustable i: rows = Θ(log^(3) n)
    const core::MatchResult r = core::maximal_matching(ctx, lst, opt);

    // Every algorithm must produce a *valid*, *maximal* matching; these
    // throw with a diagnostic if not.
    core::verify::check_matching(lst, r.in_matching);
    core::verify::check_maximal(lst, r.in_matching);

    t.add_row({core::to_string(alg), fmt::num(r.edges),
               fmt::num(r.cost.depth), fmt::num(r.cost.time_p),
               fmt::num(r.cost.work), fmt::num(r.partition_sets)});
  }
  t.print();

  std::cout << "\nPer-phase breakdown of Match4 (the paper's algorithm):\n";
  const auto r4 = core::match4(ctx, lst);
  fmt::Table ph({"phase", "depth", "time_p", "work"});
  for (const auto& phse : r4.phases)
    ph.add_row({phse.name, fmt::num(phse.cost.depth),
                fmt::num(phse.cost.time_p), fmt::num(phse.cost.work)});
  ph.print();

  std::cout << "\nscratch arena: " << ctx.arena().takes() << " leases, "
            << ctx.arena().hits()
            << " served from the pool (warm runs allocate nothing)\n";
  return 0;
}
