// Quickstart: compute a maximal matching of a linked list's pointers with
// each algorithm through one warm llmp::Context, and read the PRAM cost
// model. Uses only the public umbrella header: llmp::Context owns the
// backend and the scratch arena, llmp::run resolves registry names,
// verifies results, and reports problems as a Status instead of aborting.
//
//   ./example_quickstart [n] [processors]
#include <cstdlib>
#include <iostream>

#include "llmp.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace llmp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (std::size_t{1} << 16);
  const std::size_t p = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;

  // A linked list of n nodes stored in an array (paper Fig. 1), with the
  // list order a random permutation of the array order.
  const list::LinkedList lst = list::generators::random_list(n, /*seed=*/42);
  std::cout << "list: n = " << n << " nodes, " << lst.pointers()
            << " pointers, head = " << lst.head() << ", tail = " << lst.tail()
            << "\np (cost-model processors) = " << p << "\n\n";

  // One Context for the whole program: the arena inside it is what lets
  // run k+1 reuse run k's scratch slabs. p is a model parameter of the
  // simulated PRAM, not host threads.
  llmp::Context ctx(p);

  fmt::Table t({"algorithm", "edges", "PRAM steps (depth)", "time_p",
                "work", "partition sets"});
  for (const char* name : {"sequential", "match1", "match2", "match3",
                           "match4", "randomized"}) {
    // llmp::run resolves the registry name, runs the algorithm with
    // i_parameter = 3 (Match4's adjustable i: rows = Θ(log^(3) n)), and
    // verifies the matching is valid and maximal (Options::verify).
    const auto r = llmp::run(ctx, name, lst, {.i_parameter = 3});
    if (!r.ok()) {
      std::cerr << name << ": " << r.status().to_string() << "\n";
      return 1;
    }
    t.add_row({name, fmt::num(r->edges), fmt::num(r->cost.depth),
               fmt::num(r->cost.time_p), fmt::num(r->cost.work),
               fmt::num(r->partition_sets)});
  }
  t.print();

  std::cout << "\nPer-phase breakdown of Match4 (the paper's algorithm):\n";
  const auto r4 = core::match4(ctx.pram_context(), lst);
  fmt::Table ph({"phase", "depth", "time_p", "work"});
  for (const auto& phse : r4.phases)
    ph.add_row({phse.name, fmt::num(phse.cost.depth),
                fmt::num(phse.cost.time_p), fmt::num(phse.cost.work)});
  ph.print();

  std::cout << "\nscratch arena: " << ctx.arena().takes() << " leases, "
            << ctx.arena().hits()
            << " served from the pool (warm runs allocate nothing)\n";
  return 0;
}
