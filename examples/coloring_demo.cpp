// Scenario: symmetry breaking for a scheduler. n jobs form a dependency
// chain scattered across a task array; we need conflict-free batches:
// (a) a 3-coloring — three rounds where no two adjacent jobs run
//     together, and
// (b) a maximal independent set — the largest-practical first batch.
// Both come out of the paper's deterministic coin tossing in O(G(n))
// rounds — no randomness, no log n penalty.
//
//   ./example_coloring_demo [n]
#include <cstdlib>
#include <iostream>

#include "apps/independent_set.h"
#include "apps/three_coloring.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "support/format.h"
#include "support/itlog.h"

int main(int argc, char** argv) {
  using namespace llmp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (std::size_t{1} << 14);
  const auto chain = list::generators::random_list(n, 11);
  pram::SeqExec exec(1024);

  const auto coloring = apps::three_coloring(exec, chain);
  apps::check_coloring(chain, coloring.colors, 3);

  std::size_t per_color[3] = {0, 0, 0};
  for (auto c : coloring.colors) ++per_color[c];

  std::cout << "dependency chain of " << n << " jobs\n\n"
            << "3-coloring found in " << coloring.reduce_rounds
            << " deterministic coin-tossing rounds (G(n) = "
            << itlog::G(n) << "):\n";
  fmt::Table t({"batch (color)", "jobs", "share"});
  for (int c = 0; c < 3; ++c)
    t.add_row({fmt::num(c), fmt::num(per_color[c]),
               fmt::num(100.0 * per_color[c] / n, 1) + "%"});
  t.print();

  pram::SeqExec exec2(1024);
  const auto mis = apps::independent_set(exec2, chain);
  apps::check_independent_set(chain, mis.in_set);
  std::cout << "\nmaximal independent set (first batch): " << mis.size
            << " of " << n << " jobs ("
            << fmt::num(100.0 * mis.size / n, 1)
            << "%; any maximal set covers 33.3%-50%)\n";

  if (n <= 64) {
    std::cout << "\ncolors along the chain: ";
    for (index_t v = chain.head(); v != knil; v = chain.next(v))
      std::cout << int(coloring.colors[v]);
    std::cout << "\nMIS membership:         ";
    for (index_t v = chain.head(); v != knil; v = chain.next(v))
      std::cout << (mis.in_set[v] ? '*' : '.');
    std::cout << "\n";
  }
  return 0;
}
