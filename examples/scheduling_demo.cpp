// Scenario: watch the §3 processor schedule run. Builds a small list,
// partitions its pointers into matching sets, lays them out as x rows ×
// y columns, and prints the actual WalkDown2 timetable — which cell each
// column's processor handles at each step — so Lemma 7 (cell in row r
// handled at step r + A[r]) is visible by eye.
//
//   ./example_scheduling_demo [n]
#include <cstdlib>
#include <iostream>

#include "core/gather.h"
#include "core/verify.h"
#include "core/walkdown.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace llmp;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 48;
  const auto lst = list::generators::random_list(n, 3);
  pram::SeqExec exec(64);

  // Step 1: matching partition (two rounds of deterministic coin tossing).
  std::vector<label_t> labels;
  core::init_address_labels(exec, n, labels);
  core::relabel_rounds(exec, lst, labels, 2, core::BitRule::kMostSignificant);
  const label_t x = core::bound_after_rounds(n, 2);
  std::vector<index_t> keys(n);
  for (index_t v = 0; v < n; ++v) keys[v] = static_cast<index_t>(labels[v]);

  // Step 2: the 2D layout with per-column sequential sorts.
  core::Layout2D lay = core::build_layout(exec, n, keys, x);
  std::cout << "n = " << n << " nodes as x = " << lay.rows << " rows x y = "
            << lay.cols << " columns (one processor per column)\n\n";

  std::cout << "sorted layout (node:set per cell):\n";
  for (std::size_t r = 0; r < lay.rows; ++r) {
    std::cout << "  row " << r << ": ";
    for (std::size_t j = 0; j < lay.cols; ++j) {
      const index_t v = lay.cell_node[j * lay.rows + r];
      if (v == knil)
        std::cout << "[  --  ] ";
      else
        std::cout << "[" << (v < 10 ? " " : "") << v << ":" << keys[v]
                  << (keys[v] < 10 ? " " : "") << "] ";
    }
    std::cout << "\n";
  }

  // Steps 3–4: the two WalkDown phases.
  auto pred = lst.predecessors();
  std::vector<std::uint8_t> color(n, core::kNoColor);
  core::walkdown1(exec, lst, lay, pred, color);
  const auto trace = core::walkdown2(exec, lst, lay, pred, color);

  std::cout << "\nWalkDown2 timetable (" << trace.steps
            << " steps = 2x-1; entries are node ids handled per step):\n";
  for (std::size_t k = 0; k < trace.steps; ++k) {
    std::cout << "  step " << (k < 10 ? " " : "") << k << ": ";
    for (index_t v = 0; v < n; ++v)
      if (trace.handled_at[v] == k)
        std::cout << v << "(r" << lay.node_row[v] << "+s" << keys[v]
                  << ") ";
    std::cout << "\n";
  }
  std::cout << "\nEvery entry satisfies step = row + set (Lemma 7), and "
               "entries sharing a (step,\nrow) pair share a set number "
               "(Corollary 2) — so simultaneous work never touches\na "
               "common node.\n";

  // Step 5: the 3-color pointer partition → maximal matching via cut+walk.
  std::vector<label_t> plabel(n, 0);
  for (index_t v = 0; v < n; ++v)
    if (lst.has_pointer(v)) plabel[v] = color[v];
  core::verify::check_pointer_partition(lst, plabel);
  std::cout << "\ncombined WalkDown palette uses 3 colors; pointer colors "
               "along the list:\n  ";
  for (index_t v = lst.head(); lst.next(v) != knil; v = lst.next(v))
    std::cout << int(color[v]);
  std::cout << "\n(adjacent colors always differ)\n";
  return 0;
}
