#include "support/itlog.h"

#include <bit>
#include <cmath>
#include <memory>

#include "support/bits.h"
#include "support/check.h"

namespace llmp::itlog {

int floor_log2(std::uint64_t n) {
  LLMP_CHECK(n >= 1);
  return 63 - std::countl_zero(n);
}

int ceil_log2(std::uint64_t n) {
  LLMP_CHECK(n >= 1);
  int f = floor_log2(n);
  return (n & (n - 1)) == 0 ? f : f + 1;
}

double ilog_real(int i, double n) {
  LLMP_CHECK(i >= 1);
  double x = n;
  for (int k = 0; k < i; ++k) {
    if (x <= 0) return -1.0;
    x = std::log2(x);
  }
  return x;
}

std::uint64_t ilog_ceil(int i, std::uint64_t n) {
  LLMP_CHECK(i >= 0);
  std::uint64_t x = n;
  for (int k = 0; k < i; ++k) {
    if (x <= 1) return 1;
    x = static_cast<std::uint64_t>(ceil_log2(x));
  }
  return x == 0 ? 1 : x;
}

int G(std::uint64_t n) {
  LLMP_CHECK(n >= 1);
  double x = static_cast<double>(n);
  int k = 0;
  do {
    x = std::log2(x);
    ++k;
  } while (x >= 1.0);
  return k;
}

int log_G(std::uint64_t n) {
  int g = G(n);
  return g <= 1 ? 0 : ceil_log2(static_cast<std::uint64_t>(g));
}

int floor_log2_appendix(std::uint64_t n, int width) {
  LLMP_CHECK(n >= 1 && width >= 1 && width <= 24);
  LLMP_CHECK(n < (std::uint64_t{1} << width));
  // The appendix evaluates log n by bit-reversing n so the most significant
  // 1-bit becomes the least significant, isolating it with XOR, and
  // converting the unary result to binary with a table.
  static thread_local int cached_width = -1;
  static thread_local std::unique_ptr<bits::TableBitOps> ops;
  if (cached_width != width) {
    ops = std::make_unique<bits::TableBitOps>(width);
    cached_width = width;
  }
  std::uint64_t rev = bits::reverse_bits(n, width);
  int k_from_low = ops->lsb_index(rev);
  return width - 1 - k_from_low;
}

int G_appendix(std::uint64_t n) {
  LLMP_CHECK(n >= 1);
  // Iterate x := floor(log2 x), counting iterations, until the iterate
  // drops below 1. Because floor(log2(floor(x))) == floor(log2 x) for all
  // real x >= 1 (both equal k where 2^k <= x < 2^(k+1)), the integer
  // iterate is the floor of the paper's real-valued iterate at every
  // level, so the stopping index equals G(n) exactly.
  std::uint64_t x = n;
  int k = 0;
  do {
    x = static_cast<std::uint64_t>(floor_log2(x));
    ++k;
  } while (x >= 1);
  return k;
}

}  // namespace llmp::itlog
