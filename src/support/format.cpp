#include "support/format.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <iomanip>
#include <sstream>
#include <thread>
#include <vector>

#include "support/check.h"

namespace llmp::fmt {

namespace {
TableStyle g_table_style = TableStyle::kAligned;

struct CapturedTable {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

bool g_json_capture = false;
std::vector<CapturedTable>& captured() {
  static std::vector<CapturedTable> tables;
  return tables;
}

/// CSV cell: quoted (with doubled inner quotes) when it contains a comma,
/// quote, or newline — fmt::num's thousands separators make commas common.
std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

void set_table_style(TableStyle style) { g_table_style = style; }
TableStyle table_style() { return g_table_style; }

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LLMP_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LLMP_CHECK_MSG(cells.size() == headers_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  if (g_json_capture) captured().push_back({headers_, rows_});
  if (g_table_style == TableStyle::kCsv) {
    print_csv(os);
    return;
  }
  print_aligned(os);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << csv_cell(cells[c]);
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

/// Leading numeric value of a table cell: thousands separators stripped,
/// trailing annotations ("4128 (1.01x)") ignored. False when the cell
/// does not start with a number.
bool cell_number(const std::string& cell, double* out) {
  std::string digits;
  digits.reserve(cell.size());
  for (char ch : cell) {
    if (ch == ',') continue;  // fmt::num thousands separator
    digits.push_back(ch);
  }
  const char* begin = digits.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = v;
  return true;
}

/// Headers that would collide with google-benchmark's fixed entry keys.
bool reserved_json_key(const std::string& key) {
  return key == "name" || key == "run_name" || key == "run_type" ||
         key == "repetitions" || key == "repetition_index" ||
         key == "threads" || key == "iterations" || key == "real_time" ||
         key == "cpu_time" || key == "time_unit";
}

bool header_is_time_ms(const std::string& header) {
  std::string lower;
  for (char ch : header)
    lower.push_back(static_cast<char>(std::tolower(ch)));
  return lower.find("ms") != std::string::npos;
}

}  // namespace

void enable_json_capture(bool on) {
  // Touch the collector now: callers register an atexit flush right
  // after enabling, and the callback must run before the function-local
  // static's destructor — which requires construction to happen first.
  captured();
  g_json_capture = on;
}
bool json_capture_enabled() { return g_json_capture; }
void reset_json_capture() { captured().clear(); }

std::string render_captured_json(const std::string& executable) {
  std::ostringstream os;
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  char date[64] = "unknown";
  if (std::tm tm{}; localtime_r(&now, &tm) != nullptr)
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S%z", &tm);
  os << "{\n"
     << "  \"context\": {\n"
     << "    \"date\": \"" << date << "\",\n"
     << "    \"executable\": \"" << json_escape(executable) << "\",\n"
     << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
     << "    \"mhz_per_cpu\": 0,\n"
     << "    \"cpu_scaling_enabled\": false,\n"
     << "    \"caches\": [],\n"
     << "    \"library_version\": \"llmp-fmt\",\n"
     << "    \"build_type\": \"unknown\"\n"
     << "  },\n"
     << "  \"benchmarks\": [\n";
  bool first_entry = true;
  for (const CapturedTable& t : captured()) {
    for (const auto& row : t.rows) {
      if (row.empty()) continue;
      if (!first_entry) os << ",\n";
      first_entry = false;
      const std::string name =
          json_escape(t.headers[0] + "/" + row[0]);
      double real_time = 0.0;
      std::ostringstream counters;
      for (std::size_t c = 1; c < row.size(); ++c) {
        double v = 0.0;
        if (!cell_number(row[c], &v)) continue;
        if (real_time == 0.0 && header_is_time_ms(t.headers[c]))
          real_time = v;
        std::string key = json_escape(t.headers[c]);
        if (reserved_json_key(key)) key = "col_" + key;
        counters << ",\n      \"" << key << "\": " << v;
      }
      os << "    {\n"
         << "      \"name\": \"" << name << "\",\n"
         << "      \"run_name\": \"" << name << "\",\n"
         << "      \"run_type\": \"iteration\",\n"
         << "      \"repetitions\": 1,\n"
         << "      \"repetition_index\": 0,\n"
         << "      \"threads\": 1,\n"
         << "      \"iterations\": 1,\n"
         << "      \"real_time\": " << real_time << ",\n"
         << "      \"cpu_time\": " << real_time << ",\n"
         << "      \"time_unit\": \"ms\"" << counters.str() << "\n"
         << "    }";
    }
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
std::string with_separators(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}
}  // namespace

std::string num(std::uint64_t v) { return with_separators(v); }

std::string num(std::int64_t v) {
  if (v >= 0) return with_separators(static_cast<std::uint64_t>(v));
  std::string s = with_separators(static_cast<std::uint64_t>(-(v + 1)) + 1);
  s.insert(s.begin(), '-');
  return s;
}

std::string num(int v) { return num(static_cast<std::int64_t>(v)); }

std::string num(unsigned v) { return num(static_cast<std::uint64_t>(v)); }

}  // namespace llmp::fmt
