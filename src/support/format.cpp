#include "support/format.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "support/check.h"

namespace llmp::fmt {

namespace {
TableStyle g_table_style = TableStyle::kAligned;

/// CSV cell: quoted (with doubled inner quotes) when it contains a comma,
/// quote, or newline — fmt::num's thousands separators make commas common.
std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

void set_table_style(TableStyle style) { g_table_style = style; }
TableStyle table_style() { return g_table_style; }

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LLMP_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LLMP_CHECK_MSG(cells.size() == headers_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  if (g_table_style == TableStyle::kCsv) {
    print_csv(os);
    return;
  }
  print_aligned(os);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << csv_cell(cells[c]);
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
std::string with_separators(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}
}  // namespace

std::string num(std::uint64_t v) { return with_separators(v); }

std::string num(std::int64_t v) {
  if (v >= 0) return with_separators(static_cast<std::uint64_t>(v));
  std::string s = with_separators(static_cast<std::uint64_t>(-(v + 1)) + 1);
  s.insert(s.begin(), '-');
  return s;
}

std::string num(int v) { return num(static_cast<std::int64_t>(v)); }

std::string num(unsigned v) { return num(static_cast<std::uint64_t>(v)); }

}  // namespace llmp::fmt
