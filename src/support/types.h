// Common scalar types used throughout llmp.
//
// Node identifiers are array indices (the paper stores the list in an array
// X[0..n-1] and identifies a node with its address); 32-bit indices cover
// every list size this library targets while halving memory traffic relative
// to size_t. Labels produced by matching partition functions start as node
// addresses and only shrink under iteration, but Match3 temporarily
// *concatenates* labels, so labels get a full 64 bits.
#pragma once

#include <cstddef>
#include <cstdint>

namespace llmp {

using index_t = std::uint32_t;  ///< node id / array position
using label_t = std::uint64_t;  ///< matching-partition label

/// Sentinel for "no node" (list tail's successor, head's predecessor).
inline constexpr index_t knil = static_cast<index_t>(-1);

/// Sentinel for "no label assigned yet".
inline constexpr label_t kno_label = static_cast<label_t>(-1);

}  // namespace llmp
