// Aligned plain-text table printer for the benchmark harness. Every bench
// binary prints the rows the corresponding experiment in EXPERIMENTS.md
// reports (measured quantity next to the paper's formula), and this keeps
// the output columns aligned and machine-greppable.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace llmp::fmt {

/// Process-wide table rendering style. kAligned is the human-readable
/// default; kCsv emits RFC-4180-ish comma-separated rows for scripting
/// sweeps (the bench binaries switch to it under --csv).
enum class TableStyle { kAligned, kCsv };
void set_table_style(TableStyle style);
TableStyle table_style();

/// Columnar table: set headers once, add rows of stringified cells, print.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Render to `os` (default stdout) in the process-wide table style.
  void print(std::ostream& os = std::cout) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  void print_aligned(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double → string (benches align on width).
std::string num(double v, int precision = 2);

/// Integral → string with thousands separators for readability.
/// (size_t and uint64_t are the same type on this platform; one overload.)
std::string num(std::uint64_t v);
std::string num(std::int64_t v);
std::string num(int v);
std::string num(unsigned v);

}  // namespace llmp::fmt
