// Aligned plain-text table printer for the benchmark harness. Every bench
// binary prints the rows the corresponding experiment in EXPERIMENTS.md
// reports (measured quantity next to the paper's formula), and this keeps
// the output columns aligned and machine-greppable.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace llmp::fmt {

/// Process-wide table rendering style. kAligned is the human-readable
/// default; kCsv emits RFC-4180-ish comma-separated rows for scripting
/// sweeps (the bench binaries switch to it under --csv).
enum class TableStyle { kAligned, kCsv };
void set_table_style(TableStyle style);
TableStyle table_style();

/// Columnar table: set headers once, add rows of stringified cells, print.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Render to `os` (default stdout) in the process-wide table style.
  void print(std::ostream& os = std::cout) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  void print_aligned(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// google-benchmark-compatible JSON mirroring. While capture is enabled,
/// every Table::print additionally appends its rows to a process-wide
/// collector; render_captured_json() emits the collected rows in
/// google-benchmark's JSON schema (a "context" block plus a "benchmarks"
/// array), so sweep tooling that already ingests
/// `--benchmark_format=json` output can ingest llmp tables unchanged.
/// Each row becomes one entry named "<first-header>/<first-cell>"; every
/// numeric column rides along as a counter keyed by its header, and a
/// column whose header mentions "ms" feeds real_time/cpu_time. The bench
/// binaries switch this on under --json (see bench/bench_common.h).
void enable_json_capture(bool on);
bool json_capture_enabled();
void reset_json_capture();
std::string render_captured_json(const std::string& executable);

/// Fixed-precision double → string (benches align on width).
std::string num(double v, int precision = 2);

/// Integral → string with thousands separators for readability.
/// (size_t and uint64_t are the same type on this platform; one overload.)
std::string num(std::uint64_t v);
std::string num(std::int64_t v);
std::string num(int v);
std::string num(unsigned v);

}  // namespace llmp::fmt
