// Iterated-logarithm quantities from the paper.
//
//   log^(1) n = log2 n,   log^(k) n = log2(log^(k-1) n)
//   G(n)      = min{ k : log^(k) n < 1 }          (a log* variant)
//
// The paper uses these both in complexity statements (Lemmas 2–5,
// Theorems 1–2) and as quantities the algorithms must *compute* (the
// appendix shows sequential procedures and an O(log G(n))-step parallel
// procedure for G(n) and log G(n) built from a linked list over the powers
// of two). We provide:
//
//   * exact real-valued versions (for formula columns in benches),
//   * integer ceil-based versions (for sizing rows/tables: these are the
//     "evaluation of function H means finding m = Θ(H)" variants), and
//   * the appendix's sequential evaluation procedure built only from the
//     XOR/convert primitives of bits.h (tested against the direct ones).
//
// The parallel pointer-jumping evaluator lives in core/ (it needs the PRAM
// executor); see core/appendix_eval.h.
#pragma once

#include <cstdint>

namespace llmp::itlog {

/// floor(log2 n). Precondition: n >= 1.
int floor_log2(std::uint64_t n);

/// ceil(log2 n). Precondition: n >= 1. ceil_log2(1) == 0.
int ceil_log2(std::uint64_t n);

/// Real-valued iterated logarithm log^(i) n (i >= 1). Returns a negative
/// value once the iterate drops below 1 and further logs are undefined.
double ilog_real(int i, double n);

/// Integer iterated logarithm: apply x -> ceil(log2 x) i times, flooring
/// at 1. This is the Θ(log^(i) n) quantity used to size Match4's rows.
/// ilog_ceil(0, n) == n.
std::uint64_t ilog_ceil(int i, std::uint64_t n);

/// G(n) = min{ k : log^(k) n < 1 } on the real-valued iteration.
/// G(1) == 1 by convention (log 1 = 0 < 1). Precondition: n >= 1.
int G(std::uint64_t n);

/// ceil(log2 G(n)) — the Match3 concatenation round count.
int log_G(std::uint64_t n);

/// Appendix-faithful sequential evaluation of floor(log2 n) using only
/// bit-reversal + the unary→binary conversion idiom:
///   n' := reverse(n); n' := n' XOR (n' - 1); logn := k - convert(n')
/// Exposed so tests can confirm it agrees with floor_log2 on all widths.
int floor_log2_appendix(std::uint64_t n, int width);

/// Appendix-faithful sequential G(n): iterate the log procedure until the
/// value drops below 2, counting iterations. Agrees with G() (tested).
int G_appendix(std::uint64_t n);

}  // namespace llmp::itlog
