// Failpoints — named fault-injection sites for chaos and resilience tests.
//
// A failpoint is a named hook compiled into a production code path:
//
//   LLMP_FAILPOINT("serve.queue.pop");            // may throw or sleep
//   Status s = LLMP_FAILPOINT_STATUS("serve.worker.run");  // may also
//                                                 // return an error Status
//
// Disabled (the default), a failpoint costs one relaxed atomic load and a
// predictable branch — no lock, no lookup, no allocation — so shipping
// them in hot paths (BoundedQueue, ScratchArena::take, the Match2/Match3
// plan and table builds) changes nothing observable. Armed — by code
// (failpoint::arm) or the LLMP_FAILPOINTS environment variable — a
// failpoint evaluates its rules in order and may
//
//   * throw   failpoint::InjectedFault (a crash/escape at that site),
//   * status  return / throw an error Status with a chosen code,
//   * sleep   stall the calling thread (a straggler / wedged worker).
//
// Each rule carries a firing probability and an optional fire cap, so
// `throw:p=0.01|sleep(50):p=0.005` injects a probabilistic mix. The
// per-point random stream is seeded from the point's name, making a fixed
// schedule reproducible run to run (modulo thread interleaving, which
// moves *which* evaluation fires, not how many per evaluation count).
//
// Naming convention (enforced by llmp_lint's failpoint-name rule): every
// name is `file.scope.event` — exactly three lowercase [a-z0-9_] segments
// — and unique across the tree. Registry of shipped points: see
// docs/RESILIENCE.md.
//
// Evaluation counters (counts()) let chaos tests reconcile injected
// faults against the serve layer's retry/failure statistics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace llmp::support::failpoint {

/// Thrown by throw/status rules at non-Status sites; carries the Status
/// code a catching boundary (the serve worker) should surface.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(StatusCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

enum class Action {
  kThrow,   ///< throw InjectedFault
  kStatus,  ///< error Status (thrown as InjectedFault at non-Status sites)
  kSleep,   ///< sleep for `sleep` milliseconds, then continue
};

struct Rule {
  Action action = Action::kThrow;
  /// Chance this rule fires per evaluation, in [0, 1].
  double probability = 1.0;
  /// Stop firing after this many fires; -1 = unlimited.
  std::int64_t max_fires = -1;
  std::chrono::milliseconds sleep{0};
  /// Status code injected by kThrow/kStatus rules.
  StatusCode code = StatusCode::kUnavailable;
};

/// Per-point evaluation counters (monotonic since arm()).
struct Counts {
  std::uint64_t evaluations = 0;  ///< armed evaluations of this point
  std::uint64_t throws = 0;       ///< kThrow fires
  std::uint64_t statuses = 0;     ///< kStatus fires
  std::uint64_t sleeps = 0;       ///< kSleep fires
  /// Fires that fail the caller (sleep fires only delay it).
  std::uint64_t faults() const { return throws + statuses; }
};

/// Arm `name` with one rule / a rule list evaluated in order (first rule
/// that fires wins). Re-arming replaces the rules and resets the counters
/// and the point's deterministic random stream.
void arm(std::string_view name, Rule rule);
void arm(std::string_view name, std::vector<Rule> rules);
void disarm(std::string_view name);
void disarm_all();
bool armed(std::string_view name);
Counts counts(std::string_view name);

/// Parse and arm a schedule:
///   spec   := point (';' point)*
///   point  := name '=' rule ('|' rule)*
///   rule   := ('throw' | 'sleep(' ms ')' | 'status(' code ')' | 'off')
///             (':p=' float)? (':n=' fires)?
///   code   := unavailable | internal | resource_exhausted |
///             deadline_exceeded | cancelled | invalid_argument |
///             not_found | failed_verification | data_loss
/// e.g. "serve.worker.run=throw:p=0.01|sleep(50):p=0.005;pram.arena.take=off".
Status arm_from_string(std::string_view spec);

/// Arm from $LLMP_FAILPOINTS when set; OK (and a no-op) when unset.
Status arm_from_env();

namespace detail {
extern std::atomic<int> g_armed;
/// Slow paths, called only when any point is armed. hit() throws
/// InjectedFault for throw/status fires; hit_status() returns the Status
/// for status fires and throws only for throw fires.
void hit(const char* name);
Status hit_status(const char* name);
}  // namespace detail

/// True iff at least one failpoint is armed (the fast-path gate).
/// Relaxed by design: the gate is a hint, not a synchronization point —
/// a stale read only routes the site into (or past) hit(), which takes
/// the registry lock and re-checks under it. Arm/disarm visibility is
/// carried by that lock, never by g_armed.
inline bool any_armed() {
  return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

}  // namespace llmp::support::failpoint

/// Evaluate failpoint `name` (a string literal). Disabled: one relaxed
/// load. Armed: may sleep, or throw failpoint::InjectedFault.
#define LLMP_FAILPOINT(name)                        \
  do {                                              \
    if (::llmp::support::failpoint::any_armed())    \
      ::llmp::support::failpoint::detail::hit(name); \
  } while (0)

/// Status-site form: a status rule returns its error Status instead of
/// throwing (throw rules still throw, sleep rules still sleep).
#define LLMP_FAILPOINT_STATUS(name)                         \
  (::llmp::support::failpoint::any_armed()                  \
       ? ::llmp::support::failpoint::detail::hit_status(name) \
       : ::llmp::Status())
