// Deterministic, seedable PRNG for workload generation and the randomized
// coin-tossing baseline. SplitMix64 (for seeding / cheap streams) and
// xoshiro256** (bulk generation). Header-only; no global state — every
// generator is an explicit value so experiments are reproducible and
// parallel workers can own independent streams.
#pragma once

#include <cstdint>

namespace llmp::rng {

/// SplitMix64: tiny, full-period, excellent for turning a seed + counter
/// into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // 128-bit multiply rejection sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Fair coin.
  bool coin() { return (next() >> 63) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace llmp::rng
