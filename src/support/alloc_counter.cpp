#include "support/alloc_counter.h"

#include <atomic>

namespace llmp::support {

namespace {
std::atomic<std::uint64_t> g_scoped_allocs{0};
thread_local bool g_scope_active = false;
}  // namespace

void note_alloc() noexcept {
  if (g_scope_active)
    g_scoped_allocs.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t scoped_allocs() noexcept {
  return g_scoped_allocs.load(std::memory_order_relaxed);
}

bool alloc_scope_active() noexcept { return g_scope_active; }

AllocScope::AllocScope() noexcept : prev_(g_scope_active) {
  g_scope_active = true;
}

AllocScope::~AllocScope() { g_scope_active = prev_; }

}  // namespace llmp::support
