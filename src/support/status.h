// Status / Result — the error vocabulary of the public API surface.
//
// Internal invariants keep throwing llmp::check_error (support/check.h):
// a broken invariant is a bug and tests want the stack. *User input*
// errors — an unknown algorithm name, an invalid option combination, a
// malformed successor array, a request that missed its deadline — are
// expected at a service boundary and must not abort a server, so the
// public entry points (core/run.h, serve/service.h, llmp.h) report them
// as a Status, and value-returning entry points as a Result<T> holding
// either the value or the Status that explains its absence.
//
//   llmp::Status s = core::validate_options(opt);
//   if (!s.ok()) return s;                     // Status propagates
//   llmp::Result<MatchResult> r = llmp::run(ctx, "match4", list);
//   if (r.ok()) use(r.value()); else log(r.status().to_string());
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "support/check.h"

namespace llmp {

/// The status vocabulary, one row per code: enumerator, stable wire code,
/// display name. This table is the single source of truth — the enum, the
/// display names, and the binary protocol's error-code field (net/wire.h)
/// are all generated from it, so a code added here automatically round-
/// trips over the wire (tests/net_wire_test.cpp pins that). Wire codes are
/// a compatibility surface: never renumber a shipped row, only append.
#define LLMP_STATUS_CODE_TABLE(X)                                            \
  X(kOk, 0, "OK")                 /* success */                              \
  X(kInvalidArgument, 1, "INVALID_ARGUMENT")   /* malformed options/input */ \
  X(kNotFound, 2, "NOT_FOUND")                 /* unknown algorithm name */  \
  X(kDeadlineExceeded, 3, "DEADLINE_EXCEEDED") /* deadline passed */         \
  X(kCancelled, 4, "CANCELLED")                /* cancel token fired */      \
  X(kResourceExhausted, 5, "RESOURCE_EXHAUSTED") /* queue full / quota */    \
  X(kUnavailable, 6, "UNAVAILABLE")            /* shut down / faulted */     \
  X(kFailedVerification, 7, "FAILED_VERIFICATION") /* audit rejected */      \
  X(kInternal, 8, "INTERNAL")                  /* invariant surfaced */       \
  X(kDataLoss, 9, "DATA_LOSS")                 /* corruption detected */

enum class StatusCode : std::uint16_t {
#define LLMP_STATUS_ROW(name, wire, str) name = (wire),
  LLMP_STATUS_CODE_TABLE(LLMP_STATUS_ROW)
#undef LLMP_STATUS_ROW
};

/// Every code, in wire order — for tests that must cover the vocabulary
/// exhaustively (the wire round-trip suite iterates this).
inline constexpr StatusCode kAllStatusCodes[] = {
#define LLMP_STATUS_ROW(name, wire, str) StatusCode::name,
    LLMP_STATUS_CODE_TABLE(LLMP_STATUS_ROW)
#undef LLMP_STATUS_ROW
};

inline const char* to_string(StatusCode code) {
  switch (code) {
#define LLMP_STATUS_ROW(name, wire, str) \
  case StatusCode::name:                 \
    return str;
    LLMP_STATUS_CODE_TABLE(LLMP_STATUS_ROW)
#undef LLMP_STATUS_ROW
  }
  return "?";
}

/// The code's on-the-wire representation (net/wire.h error frames).
inline std::uint16_t wire_code(StatusCode code) {
  return static_cast<std::uint16_t>(code);
}

/// Inverse of wire_code(): false for values no enumerator carries (a
/// decoder must treat those as a protocol error, not trust the cast).
inline bool status_code_from_wire(std::uint16_t wire, StatusCode* out) {
  switch (wire) {
#define LLMP_STATUS_ROW(name, w, str) \
  case (w):                           \
    *out = StatusCode::name;          \
    return true;
    LLMP_STATUS_CODE_TABLE(LLMP_STATUS_ROW)
#undef LLMP_STATUS_ROW
  }
  return false;
}

class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Whether the failed operation might succeed if simply retried —
  /// transient conditions (an overloaded queue, a restarting worker, a
  /// missed deadline, a crashed attempt) are retryable; deterministic
  /// rejections of the request itself (bad input, unknown name, an
  /// explicit cancel, a wrong result, corrupted data that retrying
  /// cannot restore) are not. serve::Service's RetryPolicy and callers
  /// branch on this instead of string-matching messages.
  bool retryable() const {
    switch (code_) {
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kResourceExhausted:
      case StatusCode::kUnavailable:
      case StatusCode::kInternal:
        return true;
      default:
        return false;
    }
  }

  /// "OK", or "DEADLINE_EXCEEDED: queued past deadline".
  std::string to_string() const {
    if (ok()) return "OK";
    std::string s = llmp::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  // Named constructors, one per non-OK code.
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status cancelled(std::string m) {
    return {StatusCode::kCancelled, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status failed_verification(std::string m) {
    return {StatusCode::kFailedVerification, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status data_loss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. Constructible implicitly from either side so entry
/// points can `return out;` and `return Status::not_found(...)` alike.
template <class T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    LLMP_CHECK_MSG(!std::get<Status>(v_).ok(),
                   "Result built from an OK Status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The error, or the OK Status when a value is held.
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() {
    LLMP_CHECK_MSG(ok(), "Result::value() on error: " + status().to_string());
    return std::get<T>(v_);
  }
  const T& value() const {
    LLMP_CHECK_MSG(ok(), "Result::value() on error: " + status().to_string());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> v_;
};

}  // namespace llmp
