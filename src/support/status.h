// Status / Result — the error vocabulary of the public API surface.
//
// Internal invariants keep throwing llmp::check_error (support/check.h):
// a broken invariant is a bug and tests want the stack. *User input*
// errors — an unknown algorithm name, an invalid option combination, a
// malformed successor array, a request that missed its deadline — are
// expected at a service boundary and must not abort a server, so the
// public entry points (core/run.h, serve/service.h, llmp.h) report them
// as a Status, and value-returning entry points as a Result<T> holding
// either the value or the Status that explains its absence.
//
//   llmp::Status s = core::validate_options(opt);
//   if (!s.ok()) return s;                     // Status propagates
//   llmp::Result<MatchResult> r = llmp::run(ctx, "match4", list);
//   if (r.ok()) use(r.value()); else log(r.status().to_string());
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/check.h"

namespace llmp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed options or input structure
  kNotFound,            ///< unknown algorithm / registry name
  kDeadlineExceeded,    ///< the request's deadline passed before it ran
  kCancelled,           ///< the request's cancel token fired
  kResourceExhausted,   ///< bounded queue full under the reject policy
  kUnavailable,         ///< service shut down / no longer accepting work
  kFailedVerification,  ///< result audit (core::verify) rejected the output
  kInternal,            ///< broken internal invariant surfaced at the API
};

inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kFailedVerification: return "FAILED_VERIFICATION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Whether the failed operation might succeed if simply retried —
  /// transient conditions (an overloaded queue, a restarting worker, a
  /// missed deadline, a crashed attempt) are retryable; deterministic
  /// rejections of the request itself (bad input, unknown name, an
  /// explicit cancel, a wrong result) are not. serve::Service's
  /// RetryPolicy and callers branch on this instead of string-matching
  /// messages.
  bool retryable() const {
    switch (code_) {
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kResourceExhausted:
      case StatusCode::kUnavailable:
      case StatusCode::kInternal:
        return true;
      default:
        return false;
    }
  }

  /// "OK", or "DEADLINE_EXCEEDED: queued past deadline".
  std::string to_string() const {
    if (ok()) return "OK";
    std::string s = llmp::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  // Named constructors, one per non-OK code.
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status cancelled(std::string m) {
    return {StatusCode::kCancelled, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status failed_verification(std::string m) {
    return {StatusCode::kFailedVerification, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status. Constructible implicitly from either side so entry
/// points can `return out;` and `return Status::not_found(...)` alike.
template <class T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    LLMP_CHECK_MSG(!std::get<Status>(v_).ok(),
                   "Result built from an OK Status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The error, or the OK Status when a value is held.
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() {
    LLMP_CHECK_MSG(ok(), "Result::value() on error: " + status().to_string());
    return std::get<T>(v_);
  }
  const T& value() const {
    LLMP_CHECK_MSG(ok(), "Result::value() on error: " + status().to_string());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> v_;
};

}  // namespace llmp
