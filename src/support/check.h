// Invariant checking. LLMP_CHECK is always on (it guards API misuse and
// verification oracles); LLMP_DCHECK compiles out in release builds and is
// used on hot paths. Failures throw llmp::check_error so tests can assert on
// them and long-running benches fail loudly instead of corrupting results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace llmp {

class check_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}
}  // namespace detail

}  // namespace llmp

#define LLMP_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::llmp::detail::check_fail(#cond, __FILE__, __LINE__, "");      \
  } while (0)

#define LLMP_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream llmp_os_;                                    \
      llmp_os_ << msg;                                                \
      ::llmp::detail::check_fail(#cond, __FILE__, __LINE__,           \
                                 llmp_os_.str());                     \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define LLMP_DCHECK(cond) ((void)0)
#else
#define LLMP_DCHECK(cond) LLMP_CHECK(cond)
#endif
