#include "support/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace llmp::support::failpoint {
namespace {

/// splitmix64 — the deterministic per-point random stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the name: a stable cross-platform seed (std::hash is not).
std::uint64_t name_seed(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct Point {
  std::vector<Rule> rules;
  std::vector<std::int64_t> fired;  // per-rule fire counts (for max_fires)
  Counts counts;
  std::uint64_t rng = 0;  // counter for the splitmix stream
  std::uint64_t seed = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

/// The rule (if any) that fires for this evaluation, chosen under the
/// registry lock; sleeping and throwing happen outside it.
struct Decision {
  bool fire = false;
  Rule rule;
};

Decision evaluate(const char* name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(std::string_view(name));
  if (it == reg.points.end()) return {};
  Point& p = it->second;
  ++p.counts.evaluations;
  for (std::size_t i = 0; i < p.rules.size(); ++i) {
    const Rule& r = p.rules[i];
    if (r.max_fires >= 0 && p.fired[i] >= r.max_fires) continue;
    if (r.probability < 1.0) {
      const double u =
          static_cast<double>(mix64(p.seed + p.rng++) >> 11) * 0x1.0p-53;
      if (u >= r.probability) continue;
    }
    ++p.fired[i];
    switch (r.action) {
      case Action::kThrow: ++p.counts.throws; break;
      case Action::kStatus: ++p.counts.statuses; break;
      case Action::kSleep: ++p.counts.sleeps; break;
    }
    return {true, r};
  }
  return {};
}

std::string fault_message(const char* name, const Rule& r) {
  std::string m = "injected fault at failpoint '";
  m += name;
  m += "'";
  if (r.action == Action::kStatus) {
    m += " (status ";
    m += llmp::to_string(r.code);
    m += ")";
  }
  return m;
}

Status parse_rule(std::string_view text, Rule& out) {
  // action[(arg)] then ':'-separated modifiers.
  std::vector<std::string_view> parts;
  while (!text.empty()) {
    const std::size_t colon = text.find(':');
    parts.push_back(text.substr(0, colon));
    if (colon == std::string_view::npos) break;
    text.remove_prefix(colon + 1);
  }
  if (parts.empty() || parts[0].empty())
    return Status::invalid_argument("failpoint rule is empty");

  const std::string_view head = parts[0];
  const std::size_t paren = head.find('(');
  const std::string_view action = head.substr(0, paren);
  std::string_view arg;
  if (paren != std::string_view::npos) {
    if (head.back() != ')')
      return Status::invalid_argument("failpoint rule '" + std::string(head) +
                                      "' has an unclosed argument");
    arg = head.substr(paren + 1, head.size() - paren - 2);
  }

  if (action == "throw") {
    out.action = Action::kThrow;
  } else if (action == "sleep") {
    out.action = Action::kSleep;
    if (arg.empty())
      return Status::invalid_argument("sleep needs a duration: sleep(<ms>)");
    out.sleep = std::chrono::milliseconds(
        std::strtoll(std::string(arg).c_str(), nullptr, 10));
  } else if (action == "status") {
    out.action = Action::kStatus;
    static const std::pair<std::string_view, StatusCode> kCodes[] = {
        {"invalid_argument", StatusCode::kInvalidArgument},
        {"not_found", StatusCode::kNotFound},
        {"deadline_exceeded", StatusCode::kDeadlineExceeded},
        {"cancelled", StatusCode::kCancelled},
        {"resource_exhausted", StatusCode::kResourceExhausted},
        {"unavailable", StatusCode::kUnavailable},
        {"failed_verification", StatusCode::kFailedVerification},
        {"internal", StatusCode::kInternal},
        {"data_loss", StatusCode::kDataLoss},
    };
    bool found = false;
    for (const auto& [n, c] : kCodes) {
      if (arg == n) {
        out.code = c;
        found = true;
      }
    }
    if (!found)
      return Status::invalid_argument("unknown status code '" +
                                      std::string(arg) + "' in failpoint rule");
  } else {
    return Status::invalid_argument("unknown failpoint action '" +
                                    std::string(action) + "'");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string_view mod = parts[i];
    if (mod.rfind("p=", 0) == 0) {
      out.probability = std::strtod(std::string(mod.substr(2)).c_str(), nullptr);
      if (out.probability < 0.0 || out.probability > 1.0)
        return Status::invalid_argument("failpoint probability out of [0,1]");
    } else if (mod.rfind("n=", 0) == 0) {
      out.max_fires =
          std::strtoll(std::string(mod.substr(2)).c_str(), nullptr, 10);
    } else {
      return Status::invalid_argument("unknown failpoint modifier '" +
                                      std::string(mod) + "'");
    }
  }
  return {};
}

}  // namespace

void arm(std::string_view name, Rule rule) {
  arm(name, std::vector<Rule>{rule});
}

void arm(std::string_view name, std::vector<Rule> rules) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.points.try_emplace(std::string(name));
  Point& p = it->second;
  // Relaxed: g_armed is only the fast-path hint; reg.mu (held here and
  // in hit()) is what orders the registry contents themselves.
  if (inserted) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
  p.rules = std::move(rules);
  p.fired.assign(p.rules.size(), 0);
  p.counts = {};
  p.rng = 0;
  p.seed = name_seed(name);
}

void disarm(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return;
  reg.points.erase(it);
  // Relaxed: hint only; see any_armed() in the header.
  detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Relaxed: hint only; see any_armed() in the header.
  detail::g_armed.fetch_sub(static_cast<int>(reg.points.size()),
                            std::memory_order_relaxed);
  reg.points.clear();
}

bool armed(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.points.find(name) != reg.points.end();
}

Counts counts(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? Counts{} : it->second.counts;
}

Status arm_from_string(std::string_view spec) {
  while (!spec.empty()) {
    const std::size_t semi = spec.find(';');
    std::string_view point = spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view()
                                          : spec.substr(semi + 1);
    if (point.empty()) continue;
    const std::size_t eq = point.find('=');
    if (eq == std::string_view::npos || eq == 0)
      return Status::invalid_argument("failpoint spec '" + std::string(point) +
                                      "' is not <name>=<rules>");
    const std::string_view name = point.substr(0, eq);
    std::string_view rules_text = point.substr(eq + 1);
    if (rules_text == "off") {
      disarm(name);
      continue;
    }
    std::vector<Rule> rules;
    while (!rules_text.empty()) {
      const std::size_t bar = rules_text.find('|');
      Rule r;
      if (Status s = parse_rule(rules_text.substr(0, bar), r); !s.ok())
        return s;
      rules.push_back(r);
      if (bar == std::string_view::npos) break;
      rules_text.remove_prefix(bar + 1);
    }
    if (rules.empty())
      return Status::invalid_argument("failpoint '" + std::string(name) +
                                      "' has no rules");
    arm(name, std::move(rules));
  }
  return {};
}

Status arm_from_env() {
  const char* env = std::getenv("LLMP_FAILPOINTS");
  if (env == nullptr || *env == '\0') return {};
  return arm_from_string(env);
}

namespace detail {

std::atomic<int> g_armed{0};

void hit(const char* name) {
  const Decision d = evaluate(name);
  if (!d.fire) return;
  if (d.rule.action == Action::kSleep) {
    std::this_thread::sleep_for(d.rule.sleep);
    return;
  }
  throw InjectedFault(d.rule.code, fault_message(name, d.rule));
}

Status hit_status(const char* name) {
  const Decision d = evaluate(name);
  if (!d.fire) return {};
  switch (d.rule.action) {
    case Action::kSleep:
      std::this_thread::sleep_for(d.rule.sleep);
      return {};
    case Action::kStatus:
      return Status(d.rule.code, fault_message(name, d.rule));
    case Action::kThrow:
      break;
  }
  throw InjectedFault(d.rule.code, fault_message(name, d.rule));
}

}  // namespace detail

}  // namespace llmp::support::failpoint
