// Scoped steady-state allocation accounting for the serve layer.
//
// The PR-2 guarantee — warm algorithm runs through a pooled pram::Context
// allocate nothing — is asserted in-process by tests/context_test.cpp with
// a counting global allocator. The serve layer wants the same number as a
// *production metric*: ServiceStats reports how many heap allocations the
// worker-side algorithm bodies performed since the last stats reset, which
// must read zero once every worker's arena is warm.
//
// The hook is split so ordinary binaries pay nothing: instrumented
// binaries (tests/serve_test.cpp, bench/bench_serve_throughput.cpp,
// tools/llmp_serve.cpp) override global operator new to call note_alloc(),
// and note_alloc() counts only while an AllocScope is alive on the calling
// thread — the Service wraps exactly the algorithm execution region in one,
// so per-request envelope traffic (futures, response copies) stays out of
// the steady-state number. In uninstrumented binaries note_alloc() is never
// called and the counter trivially reads zero.
#pragma once

#include <cstdint>

namespace llmp::support {

/// Count one allocation iff an AllocScope is alive on this thread.
/// Safe to call from operator new: allocates nothing, never throws.
void note_alloc() noexcept;

/// Global tally of in-scope allocations since process start.
std::uint64_t scoped_allocs() noexcept;

/// Whether the calling thread is inside an AllocScope.
bool alloc_scope_active() noexcept;

/// RAII region marker; nests (inner scopes keep counting).
class AllocScope {
 public:
  AllocScope() noexcept;
  ~AllocScope();
  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  bool prev_;
};

}  // namespace llmp::support
