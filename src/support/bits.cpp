#include "support/bits.h"

namespace llmp::bits {

std::uint64_t reverse_bits(std::uint64_t x, int width) {
  LLMP_CHECK(width >= 1 && width <= 64);
  LLMP_CHECK(width == 64 || x < (std::uint64_t{1} << width));
  std::uint64_t r = 0;
  for (int i = 0; i < width; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

namespace {

// Smallest De Bruijn sequence multipliers for power-of-two table sizes.
// For a width-w table we round w up to a power of two W and use a De Bruijn
// sequence B(2, log2 W): (unary * db) >> (W - log2 W) is a perfect hash of
// the W possible one-hot inputs.
struct DeBruijnParams {
  std::uint64_t multiplier;
  int shift;
  int table_size;
};

DeBruijnParams debruijn_for(int width) {
  // Find W = next power of two >= width, then construct a De Bruijn
  // sequence of order log2 W greedily (prefer-one construction).
  int W = 1;
  while (W < width) W <<= 1;
  int order = 0;
  while ((1 << order) < W) ++order;
  if (order == 0) return {0, 0, 1};
  // Greedy prefer-one De Bruijn sequence construction.
  std::uint64_t seq = 0;
  std::vector<bool> seen(static_cast<std::size_t>(1) << order, false);
  std::uint64_t window = 0;
  seen[0] = true;
  int produced = order;  // leading zeros of the window
  std::uint64_t mask = (std::uint64_t{1} << order) - 1;
  while (produced < W) {
    std::uint64_t try1 = ((window << 1) | 1) & mask;
    std::uint64_t next;
    if (!seen[try1]) {
      next = try1;
      seq = (seq << 1) | 1;
    } else {
      next = (window << 1) & mask;
      seq = (seq << 1);
    }
    seen[next] = true;
    window = next;
    ++produced;
  }
  // Left-align within W bits so (1<<k)*seq >> (W-order) enumerates windows.
  return {seq, W - order, W};
}

}  // namespace

UnaryToBinaryTable::UnaryToBinaryTable(int width, Layout layout)
    : width_(width), layout_(layout) {
  LLMP_CHECK(width >= 1 && width <= 64);
  if (layout == Layout::kDirect) {
    LLMP_CHECK_MSG(width <= 28, "direct layout limited to 2^28 cells");
    table_.assign(std::size_t{1} << width, 0);
    for (int k = 0; k < width; ++k)
      table_[std::size_t{1} << k] = static_cast<std::uint8_t>(k);
  } else {
    DeBruijnParams p = debruijn_for(width);
    debruijn_ = p.multiplier;
    shift_ = p.shift;
    mask_ = p.table_size == 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << p.table_size) - 1;
    table_.assign(static_cast<std::size_t>(p.table_size), 0);
    for (int k = 0; k < width; ++k) {
      std::uint64_t unary = std::uint64_t{1} << k;
      table_[slot_of(unary)] = static_cast<std::uint8_t>(k);
    }
  }
}

std::size_t UnaryToBinaryTable::slot_of(std::uint64_t unary) const {
  if (table_.size() == 1) return 0;
  // Perfect hash of one-hot values: multiply by a De Bruijn sequence
  // modulo 2^W (W = table size) and read the top log2(W) window.
  return static_cast<std::size_t>(((unary * debruijn_) & mask_) >> shift_);
}

int UnaryToBinaryTable::convert(std::uint64_t unary) const {
  LLMP_DCHECK(unary != 0 && (unary & (unary - 1)) == 0);
  if (layout_ == Layout::kDirect) {
    LLMP_DCHECK(unary < table_.size());
    return table_[static_cast<std::size_t>(unary)];
  }
  return table_[slot_of(unary)];
}

BitReversalTable::BitReversalTable(int width) : width_(width) {
  LLMP_CHECK(width >= 1 && width <= 24);
  table_.resize(std::size_t{1} << width);
  for (std::size_t x = 0; x < table_.size(); ++x)
    table_[x] = static_cast<std::uint32_t>(
        reverse_bits(static_cast<std::uint64_t>(x), width));
}

}  // namespace llmp::bits
