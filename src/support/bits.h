// Bit-manipulation primitives used by the matching partition functions.
//
// The paper's appendix discusses two ways to find the index of the
// distinguishing bit k = max/min{ i : bit i of (a XOR b) is 1 }:
//
//   1. assume the machine has a unary→binary "convert" instruction
//      (here: compiler builtins / std::countl_zero), or
//   2. use lookup tables: isolate the lowest 1-bit with
//      c := a XOR b; c := c XOR (c-1); c := (c+1)/2 (now c is a power of
//      two, a "unary number") and convert it with a table T[c] = log2 c.
//      For the *most* significant bit the appendix composes this with a
//      bit-reversal permutation table.
//
// We implement both so the appendix's preprocessing cost (table
// construction) can be measured by bench_appendix_tables, and so the
// algorithms can be run in a mode that makes no assumptions beyond
// O(1)-time table lookup — exactly the paper's model.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "support/check.h"
#include "support/types.h"

namespace llmp::bits {

/// Index of the most significant set bit of x (bits counted from 0).
/// Precondition: x != 0.
inline int msb_index(std::uint64_t x) {
  LLMP_DCHECK(x != 0);
  return 63 - std::countl_zero(x);
}

/// Index of the least significant set bit of x. Precondition: x != 0.
inline int lsb_index(std::uint64_t x) {
  LLMP_DCHECK(x != 0);
  return std::countr_zero(x);
}

/// Isolate the lowest set bit as a power of two, exactly as the appendix
/// computes it:  c := x XOR (x-1);  c := (c+1)/2.
/// Precondition: x != 0.
inline std::uint64_t isolate_lsb(std::uint64_t x) {
  LLMP_DCHECK(x != 0);
  std::uint64_t c = x ^ (x - 1);  // ones through the lowest set bit
  return (c + 1) / 2;             // the lowest set bit itself ("unary")
}

/// Reverse the low `width` bits of x (the rest must be zero).
std::uint64_t reverse_bits(std::uint64_t x, int width);

/// Unary→binary conversion table (paper appendix): maps a power of two
/// 2^k, k < width, to k. The paper indexes T directly by the unary number,
/// which needs 2^width cells of which only `width` are useful; we offer
/// that faithful "direct" layout for small widths plus a De Bruijn
/// perfect-hash layout of only `width` cells for production use. Both are
/// O(1) lookup; the direct layout's construction cost is what the appendix
/// analyses (it is why p copies cannot be built in O(G(n)) time on EREW).
class UnaryToBinaryTable {
 public:
  enum class Layout { kDirect, kDeBruijn };

  /// Build a table answering queries for unary numbers 2^k, k < width.
  /// Direct layout requires width <= 28 (2^28 cells) to bound memory.
  UnaryToBinaryTable(int width, Layout layout);

  /// k for a unary input 2^k. Precondition: exactly one bit set, k < width.
  int convert(std::uint64_t unary) const;

  /// Convenience: index of the lowest set bit of x via this table.
  int lsb_index(std::uint64_t x) const { return convert(isolate_lsb(x)); }

  int width() const { return width_; }
  Layout layout() const { return layout_; }
  std::size_t cells() const { return table_.size(); }

 private:
  std::size_t slot_of(std::uint64_t unary) const;

  int width_;
  Layout layout_;
  std::uint64_t debruijn_ = 0;  // multiplier for the De Bruijn layout
  std::uint64_t mask_ = 0;      // reduce the product mod 2^table_size
  int shift_ = 0;
  std::vector<std::uint8_t> table_;
};

/// Bit-reversal permutation table for `width`-bit values (paper appendix:
/// used to reduce the MSB computation to the LSB computation). 2^width
/// cells; width <= 24 enforced.
class BitReversalTable {
 public:
  explicit BitReversalTable(int width);

  std::uint32_t reverse(std::uint32_t x) const {
    LLMP_DCHECK(x < table_.size());
    return table_[x];
  }

  int width() const { return width_; }
  std::size_t cells() const { return table_.size(); }

 private:
  int width_;
  std::vector<std::uint32_t> table_;
};

/// Appendix-faithful MSB finder: bit-reverse both operands' XOR and take
/// the LSB via the conversion table. Bundles the two tables so callers can
/// run the algorithms in "pure table lookup" mode.
class TableBitOps {
 public:
  explicit TableBitOps(int width)
      : width_(width),
        rev_(width),
        conv_(width, UnaryToBinaryTable::Layout::kDeBruijn) {}

  int width() const { return width_; }

  /// MSB index of x (x != 0, x < 2^width), computed with tables only.
  int msb_index(std::uint64_t x) const {
    LLMP_DCHECK(x != 0 && x < (std::uint64_t{1} << width_));
    std::uint32_t r = rev_.reverse(static_cast<std::uint32_t>(x));
    return width_ - 1 - conv_.lsb_index(r);
  }

  /// LSB index of x (x != 0), computed with tables only.
  int lsb_index(std::uint64_t x) const { return conv_.lsb_index(x); }

 private:
  int width_;
  BitReversalTable rev_;
  UnaryToBinaryTable conv_;
};

}  // namespace llmp::bits
