// Integrity auditor — structured O(n) corruption scans over the raw
// arrays that everything else trusts blindly.
//
// The verify oracles (core/verify.h) answer "is this result correct?"
// with a throw or a boolean-ish Status. This auditor answers the harder
// operational question "*what* is wrong, and where?" so that
//
//   * the serve layer can fail a corrupted request with a kDataLoss
//     Status naming the first divergent node instead of "invalid list",
//   * the self-stabilizing repair engine (repair.h) can decide whether
//     a state is worth repairing (matching damage) or unrecoverable
//     (structural damage — the original links are gone),
//   * chaos tests can reconcile *named* injected damage against *named*
//     detected damage.
//
// Everything here takes raw arrays (`links`, `marks`, `m`, `ranks`), not
// list::LinkedList — the whole point is to scan state that may be too
// corrupt for LinkedList's constructor to accept. llmp_stabilize
// therefore depends only on llmp_support; list::LinkedList::validate is
// implemented on top of audit_structure, not the other way around.
//
// Every audit walks its input once (O(n)), never throws, and returns a
// CorruptionReport listing every finding in deterministic (node) order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"
#include "support/types.h"

namespace llmp::stabilize {

/// Everything the auditor can detect, one enumerator per failure shape.
enum class Corruption : std::uint8_t {
  // -- structure (the successor array itself) --
  kEmptyList,            ///< zero nodes (a list needs at least one)
  kSuccessorOutOfRange,  ///< links[v] >= n and != knil
  kSharedSuccessor,      ///< two nodes point at the same successor
  kNoTail,               ///< no knil successor anywhere (pure cycle)
  kMultipleTails,        ///< more than one knil successor (chain cut)
  kMultipleHeads,        ///< more than one node with no predecessor
  kCycle,                ///< node unreachable from the head (on a cycle)
  // -- matching (tail-side bitmap marks[v] over pointers <v, links[v]>) --
  kMarkOnTail,        ///< marks[v] set but v has no pointer
  kOverlappingMatch,  ///< node is an endpoint of two chosen pointers
  kNotMaximal,        ///< unchosen pointer with both endpoints free
  // -- match pointers (link-register m[v] in {knil, neighbor}) --
  kMatchOutOfRange,   ///< m[v] >= n and != knil
  kNonAdjacentMatch,  ///< m[v] is neither pred nor succ of v
  kAsymmetricMatch,   ///< m[v] == u but m[u] != v
  // -- ranks (distance-to-tail, rank[tail] == 0) --
  kRankOutOfRange,  ///< ranks[v] >= n
  kRankBroken,      ///< ranks[v] != ranks[links[v]] + 1 (or tail != 0)
};

const char* to_string(Corruption kind);

/// One detected defect: the kind, the node it anchors to (knil for
/// whole-list findings like kNoTail), and the offending value (the
/// out-of-range successor, the second predecessor, the bad rank, ...).
struct Finding {
  Corruption kind;
  index_t node = knil;
  std::uint64_t value = 0;

  /// "node 17: successor out of range (value 70000)".
  std::string to_string() const;
};

/// The auditor's verdict: every finding, in deterministic node order.
struct CorruptionReport {
  std::size_t n = 0;  ///< size of the audited array
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }
  /// The first (lowest-anchor) finding; findings.front() but null-safe.
  const Finding* first() const {
    return findings.empty() ? nullptr : &findings.front();
  }
  /// Whether any finding is structural (successor-array damage): the
  /// original chain cannot be recovered by matching repair.
  bool structural() const;
  /// "clean", or "node 17: successor out of range (value 70000) [+2 more]".
  std::string summary() const;
  /// OK when clean; otherwise `code` carrying summary() as the message.
  Status to_status(StatusCode code = StatusCode::kDataLoss) const;
};

/// Audit a successor array: exactly one chain covering every node. The
/// same predicate as list::LinkedList::validate (which is implemented on
/// top of this), but reporting every defect instead of the first.
CorruptionReport audit_structure(const std::vector<index_t>& links);

/// Audit a tail-side matching bitmap over a *valid* chain: marks[v] == 1
/// chooses pointer <v, links[v]>. Detects marks beyond the tail or range,
/// overlapping chosen pointers, and non-maximality. marks.size() must
/// equal links.size().
CorruptionReport audit_matching(const std::vector<index_t>& links,
                                const std::vector<std::uint8_t>& marks);

/// Audit link-register match pointers over a valid chain: m[v] is knil or
/// the matched neighbor. Detects out-of-range/non-adjacent/asymmetric
/// pointers — the states the repair engine's sanitize phase clears.
/// Passing this audit means m encodes a valid (not necessarily maximal)
/// matching. m.size() must equal links.size().
CorruptionReport audit_match_pointers(const std::vector<index_t>& links,
                                      const std::vector<index_t>& m);

/// Audit distance-to-tail ranks over a valid chain: ranks[tail] == 0 and
/// ranks[v] == ranks[links[v]] + 1. ranks.size() must equal links.size().
CorruptionReport audit_ranks(const std::vector<index_t>& links,
                             const std::vector<std::uint64_t>& ranks);

}  // namespace llmp::stabilize
