// Self-stabilizing maximal-matching repair for the linked-list case.
//
// Model: Cohen, Manoussakis, Pilard, Sohier, "A self-stabilizing
// algorithm for maximal matching in link-register model" (PAPERS.md)
// repairs a maximal matching from *arbitrary* register contents in
// O(nΔ³) moves: each node owns a match register pointing at the
// neighbor it believes it is matched with, inspects only its own and
// its neighbors' registers, and the algorithm converges no matter what
// garbage the registers start with. A linked list is the Δ = 2
// instance of that model: node v's neighbors are its predecessor and
// successor, and m[v] ∈ {knil, pred(v), succ(v)} once sane.
//
// This adaptation runs under the synchronous daemon (every node moves
// in lock-step rounds — exactly what pram's step primitive provides)
// and replaces the general algorithm's Δ³ proposal handshake with the
// path structure: because a free run of nodes is a path, its start is
// locally detectable (free, with no free predecessor), and the run can
// greedily marry alternate pointers in one sweep. Each iteration is
// three phases:
//
//   sanitize  clear registers that are out of range, non-adjacent, or
//             point at a node engaged elsewhere (one-sided pointers at
//             a *free* node survive: they are proposals);
//   marry     a free node accepts a neighbor that proposes to it
//             (lowest id wins when both neighbors propose; the loser's
//             register is garbage the next sanitize clears);
//   augment   the start of every free run pairs alternate pointers
//             down the run.
//
// Married pairs (m[v] = u ∧ m[u] = v, adjacent) are invariant under all
// three phases, so progress is monotone; every corrupted register is
// cleared or completed within one iteration and freed losers re-pair in
// the next, giving convergence in <= 3 acting iterations and <= ~3n
// moves from any state (tests/stabilize_test.cpp pins moves <= 4n + 8
// and exact determinism from the injector seed). A move is one register
// write that changes its value — the Cohen et al. complexity measure —
// counted per node per round and reported in RepairStats; the cost of
// the sweep lands in the metrics sink under phase "repair".
//
// Precondition: `links` itself is a valid chain (audit_structure clean).
// Structural damage is unrecoverable by matching repair — the original
// successors are simply gone — which is why the serve layer audits
// structure to kDataLoss but repairs only matchings.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pram/arena.h"
#include "pram/context.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::stabilize {

/// Convergence accounting, in the paper's currency.
struct RepairStats {
  std::uint64_t moves = 0;       ///< register writes that changed a value
  std::uint64_t rounds = 0;      ///< synchronous steps executed
  std::uint64_t iterations = 0;  ///< sanitize/marry/augment sweeps (incl.
                                 ///< the final all-quiet one)
};

/// Tail-side matching bitmap -> match registers: marks[v] == 1 claims
/// pointer <v, links[v]>, so m[v] = links[v] and m[links[v]] = v.
/// Host-sequential on purpose: the bitmap may be corrupt (overlapping
/// claims), and ascending order makes the conflicting writes land
/// deterministically — sanitize clears whatever is left asymmetric.
inline void bits_to_registers(const std::vector<index_t>& links,
                              const std::vector<std::uint8_t>& marks,
                              std::vector<index_t>& m) {
  const std::size_t n = links.size();
  LLMP_CHECK(marks.size() == n);
  m.assign(n, knil);
  for (index_t v = 0; v < n; ++v) {
    if (marks[v] == 0) continue;
    const index_t s = links[v];
    if (s == knil || s >= n) continue;  // mark beyond the tail: dropped
    m[v] = s;
    m[s] = v;
  }
}

/// Match registers -> tail-side bitmap: only symmetric adjacent pairs
/// survive (exactly what repair leaves behind).
template <class Exec>
void registers_to_bits(Exec& exec, const std::vector<index_t>& links,
                       const std::vector<index_t>& m,
                       std::vector<std::uint8_t>& marks) {
  const std::size_t n = links.size();
  LLMP_CHECK(m.size() == n);
  marks.assign(n, 0);
  exec.step(n, [&](std::size_t v, auto&& mem) {
    const index_t s = mem.rd(links, v);
    if (s == knil || s >= n) return;
    const bool married = mem.rd(m, v) == s &&
                         mem.rd(m, static_cast<std::size_t>(s)) ==
                             static_cast<index_t>(v);
    if (married) mem.wr(marks, v, std::uint8_t{1});
  });
}

/// The repair loop over match registers (see header comment). `links`
/// must be a valid chain; `m` may hold anything. On return, m encodes a
/// maximal matching (audit_match_pointers clean, registers_to_bits ->
/// audit_matching clean).
template <class Exec>
RepairStats repair_match_registers(Exec& exec,
                                   const std::vector<index_t>& links,
                                   std::vector<index_t>& m) {
  RepairStats stats;
  const std::size_t n = links.size();
  LLMP_CHECK(m.size() == n);
  if (n == 0) return stats;
  const pram::Stats cost_start = exec.stats();
  const auto wall_start = std::chrono::steady_clock::now();

  auto prv_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& prv = *prv_h;
  exec.step(n, [&](std::size_t v, auto&& mem) { mem.wr(prv, v, knil); });
  exec.step(n, [&](std::size_t v, auto&& mem) {
    const index_t s = mem.rd(links, v);
    if (s != knil) {
      mem.wr(prv, static_cast<std::size_t>(s), static_cast<index_t>(v));
    }
  });

  auto nxt_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& nxt = *nxt_h;
  auto fre_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& fre = *fre_h;
  auto moved_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& moved = *moved_h;

  auto drain_moves = [&]() {
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v < n; ++v) sum += moved[v];
    stats.moves += sum;
    return sum;
  };

  // Iterate to a fixed point; the bound is a loud invariant, not a
  // tuning knob — see the convergence argument in the header comment.
  for (;;) {
    ++stats.iterations;
    LLMP_CHECK_MSG(stats.iterations <= 8,
                   "stabilize repair failed to converge");
    std::uint64_t iteration_moves = 0;

    // Phase 1 — sanitize (synchronous: read m, write nxt, swap).
    exec.step(n, [&](std::size_t v, auto&& mem) {
      const index_t r = mem.rd(m, v);
      index_t keep = r;
      if (r != knil) {
        if (r >= n || r == static_cast<index_t>(v)) {
          keep = knil;
        } else {
          const bool adjacent =
              mem.rd(links, v) == r ||
              mem.rd(links, static_cast<std::size_t>(r)) ==
                  static_cast<index_t>(v);
          if (!adjacent) {
            keep = knil;
          } else {
            const index_t back = mem.rd(m, static_cast<std::size_t>(r));
            if (back != static_cast<index_t>(v) && back != knil) keep = knil;
          }
        }
      }
      mem.wr(nxt, v, keep);
      mem.wr(moved, v, static_cast<std::uint8_t>(keep != r));
    });
    ++stats.rounds;
    m.swap(nxt);
    iteration_moves += drain_moves();

    // Phase 2 — marry: free nodes accept proposals (lowest id first).
    exec.step(n, [&](std::size_t v, auto&& mem) {
      const index_t r = mem.rd(m, v);
      index_t take = r;
      if (r == knil) {
        const index_t s = mem.rd(links, v);
        const index_t p = mem.rd(prv, v);
        const bool from_s =
            s != knil && mem.rd(m, static_cast<std::size_t>(s)) ==
                             static_cast<index_t>(v);
        const bool from_p =
            p != knil && mem.rd(m, static_cast<std::size_t>(p)) ==
                             static_cast<index_t>(v);
        if (from_s && from_p) {
          take = s < p ? s : p;
        } else if (from_s) {
          take = s;
        } else if (from_p) {
          take = p;
        }
      }
      mem.wr(nxt, v, take);
      mem.wr(moved, v, static_cast<std::uint8_t>(take != r));
    });
    ++stats.rounds;
    m.swap(nxt);
    iteration_moves += drain_moves();

    // Phase 3 — augment. 3a: snapshot who is free.
    exec.step(n, [&](std::size_t v, auto&& mem) {
      mem.wr(fre, v, static_cast<std::uint8_t>(mem.rd(m, v) == knil));
      mem.wr(moved, v, std::uint8_t{0});
    });
    ++stats.rounds;

    // 3b: each free-run start pairs alternate pointers down its run.
    // Runs are disjoint, so the non-owner writes are exclusive; the body
    // reads only the `fre` snapshot, never m.
    exec.step(n, [&](std::size_t v, auto&& mem) {
      if (!mem.rd(fre, v)) return;
      const index_t p = mem.rd(prv, v);
      if (p != knil && mem.rd(fre, static_cast<std::size_t>(p))) return;
      index_t u = static_cast<index_t>(v);
      for (;;) {
        const index_t w = mem.rd(links, static_cast<std::size_t>(u));
        if (w == knil || !mem.rd(fre, static_cast<std::size_t>(w))) break;
        mem.wr(m, static_cast<std::size_t>(u), w);
        mem.wr(m, static_cast<std::size_t>(w), u);
        mem.wr(moved, static_cast<std::size_t>(u), std::uint8_t{1});
        mem.wr(moved, static_cast<std::size_t>(w), std::uint8_t{1});
        const index_t after = mem.rd(links, static_cast<std::size_t>(w));
        if (after == knil) break;
        u = after;
        if (!mem.rd(fre, static_cast<std::size_t>(u))) break;
      }
    });
    ++stats.rounds;
    iteration_moves += drain_moves();

    if (iteration_moves == 0) break;
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  pram::note_phase(exec, "repair", exec.stats() - cost_start, wall_ms);
  return stats;
}

/// Bitmap form, the serve layer's entry point: convert, repair, convert
/// back. `links` must be a valid chain; `marks` may hold anything.
template <class Exec>
RepairStats repair_matching(Exec& exec, const std::vector<index_t>& links,
                            std::vector<std::uint8_t>& marks) {
  auto m_h = pram::scratch<index_t>(exec, links.size());
  std::vector<index_t>& m = *m_h;
  bits_to_registers(links, marks, m);
  const RepairStats stats = repair_match_registers(exec, links, m);
  registers_to_bits(exec, links, m, marks);
  return stats;
}

}  // namespace llmp::stabilize
