// Corruption injector — deterministic, *named* damage for chaos tests.
//
// Two layers:
//
//   * damage primitives (flip_links, truncate_links, break_matching,
//     scramble_match_pointers) — always apply, seeded splitmix64 streams,
//     so a test can replay the exact same damage from the same seed;
//   * failpoint-gated wrappers (maybe_*) — evaluate a stabilize.corrupt.*
//     failpoint and damage only when it fires, so a chaos storm arms
//     "stabilize.corrupt.match=status(data_loss):p=0.02" and reconciles
//     the point's fire count exactly against the serve layer's
//     repairs/audits_failed counters.
//
// Detection guarantees (what makes exact reconciliation possible):
//
//   * flip_links / truncate_links with count == 1 always leave the links
//     detectably corrupt (out-of-range, shared successor, extra
//     tail/head, or an unreachable cycle) — a single edit cannot reach
//     another valid chain;
//   * break_matching on a valid maximal matching always leaves the marks
//     detectably corrupt (kNotMaximal, kOverlappingMatch or kMarkOnTail)
//     for any count >= 1: beyond the first edit it only *clears* distinct
//     chosen bits, and removals can never cancel into a maximal state;
//   * scramble_match_pointers promises nothing — it is the repair
//     engine's adversary, exercising its full input space.
//
// The maybe_* wrappers check that damage is actually applicable *before*
// evaluating their failpoint, so every counted fire corresponds to real
// injected damage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.h"

namespace llmp::stabilize {

/// XOR a random nonzero bit pattern into `count` random successors.
/// Returns the number of nodes edited (== min(count, n) for n >= 1).
std::size_t flip_links(std::vector<index_t>& links, std::uint64_t seed,
                       std::size_t count);

/// Cut the chain: set `count` distinct random non-tail successors to
/// knil. Returns the number of cuts applied (capped by available
/// pointers).
std::size_t truncate_links(std::vector<index_t>& links, std::uint64_t seed,
                           std::size_t count);

/// Break a valid maximal matching detectably (see header comment).
/// Returns the number of bits edited; 0 iff the matching has no chosen
/// pointer (nothing corruptible).
std::size_t break_matching(const std::vector<index_t>& links,
                           std::vector<std::uint8_t>& marks,
                           std::uint64_t seed, std::size_t count);

/// Arbitrary match-pointer damage: clears, out-of-range values,
/// one-sided proposals, non-adjacent targets. Returns entries edited.
std::size_t scramble_match_pointers(const std::vector<index_t>& links,
                                    std::vector<index_t>& m,
                                    std::uint64_t seed, std::size_t count);

/// Failpoint `stabilize.corrupt.succ`: when it fires, one flip_links
/// edit. Returns the damage count (0 when disarmed / not fired / the
/// list is too small to damage detectably).
std::size_t maybe_flip_links(std::vector<index_t>& links, std::uint64_t seed);

/// Failpoint `stabilize.corrupt.chain`: when it fires, one
/// truncate_links cut.
std::size_t maybe_truncate_links(std::vector<index_t>& links,
                                 std::uint64_t seed);

/// Failpoint `stabilize.corrupt.match`: when it fires, one break_matching
/// edit. The no-chosen-pointer check happens before the failpoint is
/// evaluated, so counts("stabilize.corrupt.match").statuses equals the
/// number of requests actually damaged.
std::size_t maybe_break_matching(const std::vector<index_t>& links,
                                 std::vector<std::uint8_t>& marks,
                                 std::uint64_t seed);

}  // namespace llmp::stabilize
