#include "stabilize/audit.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace llmp::stabilize {

const char* to_string(Corruption kind) {
  switch (kind) {
    case Corruption::kEmptyList: return "empty list";
    case Corruption::kSuccessorOutOfRange: return "successor out of range";
    case Corruption::kSharedSuccessor: return "node has two predecessors";
    case Corruption::kNoTail: return "no tail (links contain a cycle)";
    case Corruption::kMultipleTails: return "more than one tail";
    case Corruption::kMultipleHeads: return "more than one head (disjoint chains)";
    case Corruption::kCycle: return "unreachable from the head (cycle present)";
    case Corruption::kMarkOnTail: return "matching marks a non-existent pointer";
    case Corruption::kOverlappingMatch: return "node covered by two chosen pointers";
    case Corruption::kNotMaximal: return "unchosen pointer with both endpoints free (not maximal)";
    case Corruption::kMatchOutOfRange: return "match pointer out of range";
    case Corruption::kNonAdjacentMatch: return "match pointer to a non-neighbor";
    case Corruption::kAsymmetricMatch: return "match pointer not reciprocated";
    case Corruption::kRankOutOfRange: return "rank out of range";
    case Corruption::kRankBroken: return "rank does not step by one toward the tail";
  }
  return "?";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  if (node == knil) {
    os << "list";
  } else {
    os << "node " << node;
  }
  os << ": " << stabilize::to_string(kind) << " (value " << value << ")";
  return os.str();
}

bool CorruptionReport::structural() const {
  for (const Finding& f : findings) {
    if (f.kind <= Corruption::kCycle) return true;
  }
  return false;
}

std::string CorruptionReport::summary() const {
  if (clean()) return "clean";
  std::string s = findings.front().to_string();
  if (findings.size() > 1) {
    s += " [+" + std::to_string(findings.size() - 1) + " more]";
  }
  return s;
}

Status CorruptionReport::to_status(StatusCode code) const {
  if (clean()) return {};
  return Status(code, summary());
}

namespace {

/// Deterministic report order: lowest anchor node first (knil — the
/// whole-list findings — last), ties by kind. The "first divergent node"
/// a Status message names is then stable across runs and platforms.
void finish(CorruptionReport& report) {
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.node != b.node) return a.node < b.node;
                     return a.kind < b.kind;
                   });
}

}  // namespace

CorruptionReport audit_structure(const std::vector<index_t>& links) {
  CorruptionReport report;
  const std::size_t n = links.size();
  report.n = n;
  auto add = [&report](Corruption kind, index_t node, std::uint64_t value) {
    report.findings.push_back({kind, node, value});
  };
  if (n == 0) {
    add(Corruption::kEmptyList, knil, 0);
    return report;
  }
  LLMP_CHECK(n < static_cast<std::size_t>(knil));
  // Pass 1: tails, range, in-degrees.
  std::vector<std::uint8_t> indeg(n, 0);
  index_t first_tail = knil;
  for (index_t v = 0; v < n; ++v) {
    const index_t s = links[v];
    if (s == knil) {
      if (first_tail == knil) {
        first_tail = v;
      } else {
        add(Corruption::kMultipleTails, v, first_tail);
      }
    } else if (s >= n) {
      add(Corruption::kSuccessorOutOfRange, v, s);
    } else if (indeg[s] != 0) {
      add(Corruption::kSharedSuccessor, s, v);
    } else {
      indeg[s] = 1;
    }
  }
  if (first_tail == knil) add(Corruption::kNoTail, knil, 0);
  // Pass 2: heads (nodes with no in-range predecessor).
  index_t first_head = knil;
  for (index_t v = 0; v < n; ++v) {
    if (indeg[v] != 0) continue;
    if (first_head == knil) {
      first_head = v;
    } else {
      add(Corruption::kMultipleHeads, v, first_head);
    }
  }
  // Pass 3: reachability from the head — anything unreached sits on a
  // cycle (or hangs off one). A pure cycle has no head; kNoTail already
  // covers it, so skip the walk.
  if (first_head != knil) {
    std::vector<std::uint8_t> seen(n, 0);
    std::uint64_t reached = 0;
    for (index_t v = first_head; v != knil && v < n && seen[v] == 0;
         v = links[v]) {
      seen[v] = 1;
      ++reached;
    }
    for (index_t v = 0; v < n; ++v) {
      if (seen[v] == 0) {
        add(Corruption::kCycle, v, reached);
        break;  // one witness; the repair story is the same for all
      }
    }
  }
  finish(report);
  return report;
}

CorruptionReport audit_matching(const std::vector<index_t>& links,
                                const std::vector<std::uint8_t>& marks) {
  CorruptionReport report;
  const std::size_t n = links.size();
  report.n = n;
  LLMP_CHECK(marks.size() == n);
  // Endpoint cover counts; a valid matching covers every node at most once.
  std::vector<std::uint8_t> covered(n, 0);
  for (index_t v = 0; v < n; ++v) {
    if (marks[v] == 0) continue;
    const index_t s = links[v];
    if (s == knil || s >= n) {
      report.findings.push_back({Corruption::kMarkOnTail, v, s});
      continue;
    }
    if (covered[v] < 2) ++covered[v];
    if (covered[s] < 2) ++covered[s];
  }
  for (index_t v = 0; v < n; ++v) {
    if (covered[v] >= 2) {
      report.findings.push_back({Corruption::kOverlappingMatch, v, covered[v]});
    }
  }
  for (index_t v = 0; v < n; ++v) {
    const index_t s = links[v];
    if (s == knil || s >= n || marks[v] != 0) continue;
    if (covered[v] == 0 && covered[s] == 0) {
      report.findings.push_back({Corruption::kNotMaximal, v, s});
    }
  }
  finish(report);
  return report;
}

CorruptionReport audit_match_pointers(const std::vector<index_t>& links,
                                      const std::vector<index_t>& m) {
  CorruptionReport report;
  const std::size_t n = links.size();
  report.n = n;
  LLMP_CHECK(m.size() == n);
  for (index_t v = 0; v < n; ++v) {
    const index_t u = m[v];
    if (u == knil) continue;
    if (u >= n) {
      report.findings.push_back({Corruption::kMatchOutOfRange, v, u});
      continue;
    }
    const bool adjacent = u != v && (links[v] == u || links[u] == v);
    if (!adjacent) {
      report.findings.push_back({Corruption::kNonAdjacentMatch, v, u});
    } else if (m[u] != v) {
      report.findings.push_back({Corruption::kAsymmetricMatch, v, u});
    }
  }
  finish(report);
  return report;
}

CorruptionReport audit_ranks(const std::vector<index_t>& links,
                             const std::vector<std::uint64_t>& ranks) {
  CorruptionReport report;
  const std::size_t n = links.size();
  report.n = n;
  LLMP_CHECK(ranks.size() == n);
  for (index_t v = 0; v < n; ++v) {
    if (ranks[v] >= n) {
      report.findings.push_back({Corruption::kRankOutOfRange, v, ranks[v]});
      continue;
    }
    const index_t s = links[v];
    if (s == knil) {
      if (ranks[v] != 0) {
        report.findings.push_back({Corruption::kRankBroken, v, ranks[v]});
      }
    } else if (s < n && ranks[s] < n && ranks[v] != ranks[s] + 1) {
      report.findings.push_back({Corruption::kRankBroken, v, ranks[v]});
    }
  }
  finish(report);
  return report;
}

}  // namespace llmp::stabilize
