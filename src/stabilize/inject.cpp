#include "stabilize/inject.h"

#include "support/check.h"
#include "support/failpoint.h"

namespace llmp::stabilize {
namespace {

/// splitmix64 — the same deterministic stream shape the failpoint
/// framework uses, so damage replays exactly from (seed, call order).
struct Rng {
  std::uint64_t x;
  explicit Rng(std::uint64_t seed) : x(seed) {}
  std::uint64_t next() {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

}  // namespace

std::size_t flip_links(std::vector<index_t>& links, std::uint64_t seed,
                       std::size_t count) {
  const std::size_t n = links.size();
  if (n == 0 || count == 0) return 0;
  LLMP_CHECK(n < static_cast<std::size_t>(knil));
  // One more bit than the index width, so a flip can leave [0, n).
  unsigned width = 1;
  while ((std::size_t{1} << width) < n) ++width;
  Rng rng(seed);
  std::size_t edits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<index_t>(rng.below(n));
    const index_t mask = index_t{1} << rng.below(width + 1);
    links[v] ^= mask;
    ++edits;
  }
  return edits;
}

std::size_t truncate_links(std::vector<index_t>& links, std::uint64_t seed,
                           std::size_t count) {
  const std::size_t n = links.size();
  if (n == 0 || count == 0) return 0;
  LLMP_CHECK(n < static_cast<std::size_t>(knil));
  std::vector<index_t> tails_of_pointers;
  tails_of_pointers.reserve(n);
  for (index_t v = 0; v < n; ++v) {
    if (links[v] != knil) tails_of_pointers.push_back(v);
  }
  Rng rng(seed);
  std::size_t edits = 0;
  while (edits < count && !tails_of_pointers.empty()) {
    const std::size_t i = rng.below(tails_of_pointers.size());
    links[tails_of_pointers[i]] = knil;
    tails_of_pointers[i] = tails_of_pointers.back();
    tails_of_pointers.pop_back();
    ++edits;
  }
  return edits;
}

std::size_t break_matching(const std::vector<index_t>& links,
                           std::vector<std::uint8_t>& marks,
                           std::uint64_t seed, std::size_t count) {
  const std::size_t n = links.size();
  LLMP_CHECK(marks.size() == n);
  if (count == 0) return 0;
  std::vector<index_t> chosen;
  chosen.reserve(n);
  for (index_t v = 0; v < n; ++v) {
    if (marks[v] != 0) chosen.push_back(v);
  }
  if (chosen.empty()) return 0;
  Rng rng(seed);
  std::size_t edits = 0;
  if (count == 1 && (rng.next() & 1) != 0) {
    // Break symmetry upward: also mark the chosen pointer's head. Lands
    // as kOverlappingMatch (or kMarkOnTail when the head is the tail).
    const index_t v = chosen[rng.below(chosen.size())];
    const index_t s = links[v];
    if (s == knil || s >= n) {
      marks[v] = 0;  // already-broken input: degrade to a clear
      return 1;
    }
    marks[s] = 1;
    return 1;
  }
  // Clears of distinct chosen bits: each leaves its pointer with both
  // endpoints free (kNotMaximal), and removals cannot cancel.
  while (edits < count && !chosen.empty()) {
    const std::size_t i = rng.below(chosen.size());
    marks[chosen[i]] = 0;
    chosen[i] = chosen.back();
    chosen.pop_back();
    ++edits;
  }
  return edits;
}

std::size_t scramble_match_pointers(const std::vector<index_t>& links,
                                    std::vector<index_t>& m,
                                    std::uint64_t seed, std::size_t count) {
  const std::size_t n = links.size();
  LLMP_CHECK(m.size() == n);
  if (n == 0 || count == 0) return 0;
  Rng rng(seed);
  std::size_t edits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<index_t>(rng.below(n));
    switch (rng.below(4)) {
      case 0:  // dropped register
        m[v] = knil;
        break;
      case 1:  // wild value, possibly far out of range
        m[v] = static_cast<index_t>(rng.below(n + 8));
        break;
      case 2:  // one-sided proposal at the successor
        m[v] = links[v];
        break;
      default:  // arbitrary node, usually non-adjacent
        m[v] = static_cast<index_t>(rng.below(n));
        break;
    }
    ++edits;
  }
  return edits;
}

std::size_t maybe_flip_links(std::vector<index_t>& links, std::uint64_t seed) {
  if (links.empty()) return 0;
  if (LLMP_FAILPOINT_STATUS("stabilize.corrupt.succ").ok()) return 0;
  return flip_links(links, seed, 1);
}

std::size_t maybe_truncate_links(std::vector<index_t>& links,
                                 std::uint64_t seed) {
  // A detectable cut needs a real pointer; a singleton has none.
  bool has_pointer = false;
  for (index_t s : links) has_pointer |= (s != knil);
  if (!has_pointer) return 0;
  if (LLMP_FAILPOINT_STATUS("stabilize.corrupt.chain").ok()) return 0;
  return truncate_links(links, seed, 1);
}

std::size_t maybe_break_matching(const std::vector<index_t>& links,
                                 std::vector<std::uint8_t>& marks,
                                 std::uint64_t seed) {
  // Applicability first, failpoint second: a counted fire must always
  // correspond to real damage, or chaos reconciliation drifts.
  bool any_chosen = false;
  for (std::uint8_t b : marks) any_chosen |= (b != 0);
  if (!any_chosen || marks.size() != links.size()) return 0;
  if (LLMP_FAILPOINT_STATUS("stabilize.corrupt.match").ok()) return 0;
  return break_matching(links, marks, seed, 1);
}

}  // namespace llmp::stabilize
