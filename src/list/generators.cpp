#include "list/generators.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"
#include "support/rng.h"

namespace llmp::list::generators {

namespace {

/// Build a list whose order visits array positions perm[0], perm[1], ….
LinkedList from_visit_order(const std::vector<index_t>& perm) {
  const std::size_t n = perm.size();
  LLMP_CHECK(n >= 1);
  std::vector<index_t> next(n, knil);
  for (std::size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
  next[perm[n - 1]] = knil;
  return LinkedList(std::move(next));
}

std::vector<index_t> iota_perm(std::size_t n) {
  std::vector<index_t> perm(n);
  std::iota(perm.begin(), perm.end(), index_t{0});
  return perm;
}

void shuffle_range(std::vector<index_t>& perm, std::size_t lo, std::size_t hi,
                   rng::Xoshiro256& gen) {
  LLMP_DCHECK(lo < hi && hi <= perm.size());
  for (std::size_t i = hi - 1; i > lo; --i) {
    const std::size_t j = lo + gen.below(i - lo + 1);
    std::swap(perm[i], perm[j]);
  }
}

}  // namespace

LinkedList random_list(std::size_t n, std::uint64_t seed) {
  LLMP_CHECK(n >= 1);
  auto perm = iota_perm(n);
  rng::Xoshiro256 gen(seed);
  if (n > 1) shuffle_range(perm, 0, n, gen);
  return from_visit_order(perm);
}

LinkedList identity_list(std::size_t n) { return LinkedList::identity(n); }

LinkedList reverse_list(std::size_t n) {
  LLMP_CHECK(n >= 1);
  auto perm = iota_perm(n);
  std::reverse(perm.begin(), perm.end());
  return from_visit_order(perm);
}

LinkedList strided_list(std::size_t n, std::size_t stride) {
  LLMP_CHECK(n >= 1);
  LLMP_CHECK(stride >= 1);
  LLMP_CHECK_MSG(std::gcd(n, stride) == 1,
                 "stride must be coprime with n to cover all nodes");
  std::vector<index_t> perm(n);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<index_t>(pos);
    pos = (pos + stride) % n;
  }
  return from_visit_order(perm);
}

LinkedList blocked_list(std::size_t n, std::size_t block, std::uint64_t seed) {
  LLMP_CHECK(n >= 1);
  LLMP_CHECK(block >= 1);
  auto perm = iota_perm(n);
  rng::Xoshiro256 gen(seed);
  for (std::size_t lo = 0; lo < n; lo += block) {
    const std::size_t hi = std::min(n, lo + block);
    if (hi - lo > 1) shuffle_range(perm, lo, hi, gen);
  }
  return from_visit_order(perm);
}

}  // namespace llmp::list::generators
