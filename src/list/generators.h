// Workload generators. The algorithms' costs do not depend on data values
// (they are oblivious up to the pointer structure), but the *shape* of the
// list in memory governs how pointers distribute over bisecting lines
// (Fig. 2 / E1), over Match4's rows, and over matching-set sizes, so the
// experiments sweep several shapes:
//
//   random_list     — uniformly random placement of list order in the
//                     array (a random permutation); the generic workload.
//   identity_list   — list order equals array order: every pointer is the
//                     minimal forward pointer <i, i+1>; adversarial for
//                     bisection-crossing counts (only log n crossings).
//   reverse_list    — array order reversed: all pointers backward.
//   strided_list    — list order jumps by a fixed stride (mod n):
//                     concentrates pointers in few matching sets.
//   blocked_list    — random within blocks, sequential across blocks:
//                     models partially sorted inputs; parameterizes the
//                     inter-/intra-row pointer ratio in Match4 (E7/E8).
#pragma once

#include <cstdint>

#include "list/linked_list.h"

namespace llmp::list::generators {

LinkedList random_list(std::size_t n, std::uint64_t seed);
LinkedList identity_list(std::size_t n);
LinkedList reverse_list(std::size_t n);

/// List order visits array positions 0, s, 2s, … (mod n); requires
/// gcd(s, n) == 1 so the walk covers every node (checked).
LinkedList strided_list(std::size_t n, std::size_t stride);

/// Array positions are shuffled within consecutive blocks of `block`
/// cells, and the list visits blocks in order.
LinkedList blocked_list(std::size_t n, std::size_t block, std::uint64_t seed);

}  // namespace llmp::list::generators
