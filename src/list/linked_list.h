// Linked list stored in an array, exactly as the paper's Fig. 1: nodes
// live in X[0..n-1] and NEXT[i] gives the array position of the node that
// follows X[i] in list order. A node is identified with its array address;
// the matching partition functions operate on those addresses.
//
// A list of n nodes has n−1 "pointers" <v, suc(v)>; the pointer is
// identified by its tail v. For labeling, the paper makes `suc` total by
// letting the last element's successor be the first ("we can define
// f(a, suc(a)) = f(a, b) where b is the first element"); circular_next()
// implements that convention. The matching itself is over the n−1 real
// pointers only.
#pragma once

#include <cstddef>
#include <vector>

#include "list/storage.h"
#include "support/check.h"
#include "support/status.h"
#include "support/types.h"

namespace llmp::list {

class LinkedList {
 public:
  /// Build from a successor array. next[i] == knil marks the tail;
  /// exactly one tail must exist and the links must form one chain
  /// covering all nodes (validated; throws check_error otherwise).
  explicit LinkedList(std::vector<index_t> next);

  /// Non-throwing factory for untrusted input (the public API / serve
  /// boundary): kInvalidArgument with the diagnostic instead of a throw.
  static Result<LinkedList> make(std::vector<index_t> next);

  /// Structure check alone: OK iff `next` encodes one chain over all
  /// nodes (the constructor would accept it).
  static Status validate(const std::vector<index_t>& next);

  /// The list with nodes in array order: next[i] = i+1.
  static LinkedList identity(std::size_t n);

  std::size_t size() const { return storage_.size(); }
  /// Number of real pointers, n − 1 (0 for the empty/singleton list).
  std::size_t pointers() const {
    return storage_.size() == 0 ? 0 : storage_.size() - 1;
  }

  /// Where the successor data lives (always kFlat here; the blocked
  /// counterpart is engine::BlockedList — see list/storage.h).
  StoragePolicy storage_policy() const { return FlatStorage::policy(); }

  index_t head() const { return head_; }
  index_t tail() const { return tail_; }

  /// Successor of v; knil for the tail.
  index_t next(index_t v) const { return storage_.successor(v); }

  /// Successor under the paper's circular convention: suc(tail) = head.
  index_t circular_next(index_t v) const {
    const index_t s = next(v);
    return s == knil ? head_ : s;
  }

  /// Whether v is the tail of a real pointer <v, suc(v)>.
  bool has_pointer(index_t v) const { return next(v) != knil; }

  const std::vector<index_t>& next_array() const {
    return storage_.next_array();
  }

  /// Predecessor array: pred[next[v]] = v, pred[head] = knil. Computed on
  /// demand (one parallel step in the algorithms; here a plain loop since
  /// the list itself is input data, not part of any measured algorithm).
  std::vector<index_t> predecessors() const;

 private:
  LinkedList() = default;

  /// The one structure walk behind the constructor, validate() and
  /// make(): fills *head/*tail when non-null.
  static Status structure(const std::vector<index_t>& next, index_t* head,
                          index_t* tail);

  FlatStorage storage_;
  index_t head_ = knil;
  index_t tail_ = knil;
};

}  // namespace llmp::list
