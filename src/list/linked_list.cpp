#include "list/linked_list.h"

namespace llmp::list {

LinkedList::LinkedList(std::vector<index_t> next) : next_(std::move(next)) {
  const std::size_t n = next_.size();
  LLMP_CHECK_MSG(n >= 1, "a linked list needs at least one node");
  // Find the tail and check in-degrees: every node except the head has
  // exactly one incoming pointer.
  std::vector<std::uint8_t> indeg(n, 0);
  tail_ = knil;
  for (index_t v = 0; v < n; ++v) {
    const index_t s = next_[v];
    if (s == knil) {
      LLMP_CHECK_MSG(tail_ == knil, "more than one tail");
      tail_ = v;
    } else {
      LLMP_CHECK_MSG(s < n, "successor out of range");
      LLMP_CHECK_MSG(indeg[s] == 0, "node " << s << " has two predecessors");
      indeg[s] = 1;
    }
  }
  LLMP_CHECK_MSG(tail_ != knil, "no tail (links contain a cycle)");
  head_ = knil;
  for (index_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) {
      LLMP_CHECK_MSG(head_ == knil, "more than one head (disjoint chains)");
      head_ = v;
    }
  }
  LLMP_CHECK(head_ != knil);
  // Head + unique tail + in-degree <= 1 everywhere rules out everything
  // except one chain plus disjoint cycles; walking from the head and
  // counting proves there are no cycles.
  std::size_t seen = 0;
  for (index_t v = head_; v != knil; v = next_[v]) {
    ++seen;
    LLMP_CHECK_MSG(seen <= n, "links contain a cycle");
  }
  LLMP_CHECK_MSG(seen == n, "links do not cover all nodes (cycle present)");
}

LinkedList LinkedList::identity(std::size_t n) {
  LLMP_CHECK(n >= 1);
  std::vector<index_t> next(n);
  for (std::size_t i = 0; i + 1 < n; ++i) next[i] = static_cast<index_t>(i + 1);
  next[n - 1] = knil;
  return LinkedList(std::move(next));
}

std::vector<index_t> LinkedList::predecessors() const {
  std::vector<index_t> pred(next_.size(), knil);
  for (index_t v = 0; v < next_.size(); ++v) {
    const index_t s = next_[v];
    if (s != knil) pred[s] = v;
  }
  return pred;
}

}  // namespace llmp::list
