#include "list/linked_list.h"

#include <sstream>
#include <utility>

namespace llmp::list {

Status LinkedList::structure(const std::vector<index_t>& next, index_t* head,
                             index_t* tail) {
  const std::size_t n = next.size();
  auto fail = [](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return Status::invalid_argument(os.str());
  };
  if (n < 1) return fail("a linked list needs at least one node");
  // Find the tail and check in-degrees: every node except the head has
  // exactly one incoming pointer.
  std::vector<std::uint8_t> indeg(n, 0);
  index_t the_tail = knil;
  for (index_t v = 0; v < n; ++v) {
    LLMP_DCHECK(v < next.size());
    const index_t s = next[v];
    if (s == knil) {
      if (the_tail != knil) return fail("more than one tail");
      the_tail = v;
    } else {
      if (s >= n) return fail("successor out of range");
      if (indeg[s] != 0)
        return fail("node ", s, " has two predecessors");
      indeg[s] = 1;
    }
  }
  if (the_tail == knil) return fail("no tail (links contain a cycle)");
  index_t the_head = knil;
  for (index_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) {
      if (the_head != knil)
        return fail("more than one head (disjoint chains)");
      the_head = v;
    }
  }
  if (the_head == knil) return fail("no head");
  // Head + unique tail + in-degree <= 1 everywhere rules out everything
  // except one chain plus disjoint cycles; walking from the head and
  // counting proves there are no cycles.
  std::size_t seen = 0;
  for (index_t v = the_head; v != knil; v = next[v]) {
    ++seen;
    if (seen > n) return fail("links contain a cycle");
  }
  if (seen != n)
    return fail("links do not cover all nodes (cycle present)");
  if (head != nullptr) *head = the_head;
  if (tail != nullptr) *tail = the_tail;
  return {};
}

LinkedList::LinkedList(std::vector<index_t> next)
    : storage_(std::move(next)) {
  const Status s = structure(storage_.next_array(), &head_, &tail_);
  LLMP_CHECK_MSG(s.ok(), s.message());
}

Result<LinkedList> LinkedList::make(std::vector<index_t> next) {
  LinkedList l;
  if (Status s = structure(next, &l.head_, &l.tail_); !s.ok())
    return s;
  l.storage_ = FlatStorage(std::move(next));
  return l;
}

Status LinkedList::validate(const std::vector<index_t>& next) {
  return structure(next, nullptr, nullptr);
}

LinkedList LinkedList::identity(std::size_t n) {
  LLMP_CHECK(n >= 1);
  std::vector<index_t> next(n);
  for (std::size_t i = 0; i + 1 < n; ++i) next[i] = static_cast<index_t>(i + 1);
  next[n - 1] = knil;
  return LinkedList(std::move(next));
}

std::vector<index_t> LinkedList::predecessors() const {
  const std::size_t n = size();
  std::vector<index_t> result(n, knil);
  for (index_t v = 0; v < n; ++v) {
    const index_t s = next(v);
    if (s != knil) result[s] = v;
  }
  return result;
}

}  // namespace llmp::list
