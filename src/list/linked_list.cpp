#include "list/linked_list.h"

#include <utility>

#include "stabilize/audit.h"

namespace llmp::list {

Status LinkedList::structure(const std::vector<index_t>& next, index_t* head,
                             index_t* tail) {
  // The integrity auditor is the one structure predicate in the tree;
  // its report names the first divergent node and what is wrong with it
  // (stabilize/audit.h) instead of a bare "invalid list".
  const stabilize::CorruptionReport report = stabilize::audit_structure(next);
  if (!report.clean()) {
    return Status::invalid_argument("invalid successor array — " +
                                    report.summary());
  }
  // Clean: exactly one tail (the knil successor) and one head (the one
  // node with no predecessor).
  const std::size_t n = next.size();
  std::vector<std::uint8_t> indeg(n, 0);
  index_t the_tail = knil;
  for (index_t v = 0; v < n; ++v) {
    LLMP_DCHECK(v < next.size());
    const index_t s = next[v];
    if (s == knil) {
      the_tail = v;
    } else {
      indeg[s] = 1;
    }
  }
  index_t the_head = knil;
  for (index_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) the_head = v;
  }
  if (head != nullptr) *head = the_head;
  if (tail != nullptr) *tail = the_tail;
  return {};
}

LinkedList::LinkedList(std::vector<index_t> next)
    : storage_(std::move(next)) {
  const Status s = structure(storage_.next_array(), &head_, &tail_);
  LLMP_CHECK_MSG(s.ok(), s.message());
}

Result<LinkedList> LinkedList::make(std::vector<index_t> next) {
  LinkedList l;
  if (Status s = structure(next, &l.head_, &l.tail_); !s.ok())
    return s;
  l.storage_ = FlatStorage(std::move(next));
  return l;
}

Status LinkedList::validate(const std::vector<index_t>& next) {
  return structure(next, nullptr, nullptr);
}

LinkedList LinkedList::identity(std::size_t n) {
  LLMP_CHECK(n >= 1);
  std::vector<index_t> next(n);
  for (std::size_t i = 0; i + 1 < n; ++i) next[i] = static_cast<index_t>(i + 1);
  next[n - 1] = knil;
  return LinkedList(std::move(next));
}

std::vector<index_t> LinkedList::predecessors() const {
  const std::size_t n = size();
  std::vector<index_t> result(n, knil);
  for (index_t v = 0; v < n; ++v) {
    const index_t s = next(v);
    if (s != knil) result[s] = v;
  }
  return result;
}

}  // namespace llmp::list
