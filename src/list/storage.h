// Storage-policy seam for list data.
//
// A linked list's successor array can live in one flat in-memory vector
// (the PRAM algorithms' native layout) or partitioned into cached blocks
// behind the out-of-core engine (src/engine). Every layer that cares
// which one it holds asks storage_policy() instead of assuming a raw
// array; code outside src/list and src/engine accesses successors through
// accessors (LinkedList::next, Mem::rd over next_array()) — llmp_lint's
// storage-access rule fences direct `next[]`/`succ[]`/`pred[]` indexing
// to these two directories.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/types.h"

namespace llmp::list {

enum class StoragePolicy {
  kFlat,     ///< one in-memory successor array (list::LinkedList)
  kBlocked,  ///< fixed-size blocks behind a bounded cache (engine::BlockedList)
};

inline const char* to_string(StoragePolicy p) {
  switch (p) {
    case StoragePolicy::kFlat: return "flat";
    case StoragePolicy::kBlocked: return "blocked";
  }
  return "?";
}

/// The flat policy: owns the successor vector and is the only place the
/// raw array lives. LinkedList delegates its accessors here.
class FlatStorage {
 public:
  FlatStorage() = default;
  explicit FlatStorage(std::vector<index_t> next) : next_(std::move(next)) {}

  static constexpr StoragePolicy policy() { return StoragePolicy::kFlat; }

  std::size_t size() const { return next_.size(); }

  index_t successor(index_t v) const {
    LLMP_DCHECK(v < next_.size());
    return next_[v];
  }

  /// The whole array, for the PRAM passes' m.rd(next, v) accesses.
  const std::vector<index_t>& next_array() const { return next_; }

 private:
  std::vector<index_t> next_;
};

}  // namespace llmp::list
