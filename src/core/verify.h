// Correctness oracles. These are deliberately simple sequential checks —
// independent of the PRAM machinery they audit — used by every test and by
// the benches' self-checks.
#pragma once

#include <cstdint>
#include <vector>

#include "list/linked_list.h"
#include "support/status.h"
#include "support/types.h"

namespace llmp::core::verify {

/// A matching is given as in_matching[v] == 1 for chosen pointers
/// <v, suc(v)> (v must have a real pointer). Throws check_error with a
/// diagnostic if two chosen pointers share a node.
void check_matching(const list::LinkedList& list,
                    const std::vector<std::uint8_t>& in_matching);

/// Throws unless the matching is maximal: every unchosen pointer has at
/// least one endpoint covered by a chosen pointer.
void check_maximal(const list::LinkedList& list,
                   const std::vector<std::uint8_t>& in_matching);

/// The paper's maximality witness: of any three consecutive pointers at
/// least one is in the matching. Implies maximality for paths; checked
/// separately because Match1's analysis promises it directly.
void check_one_of_three(const list::LinkedList& list,
                        const std::vector<std::uint8_t>& in_matching);

/// Throws unless labels[v] != labels[suc(v)] for every *circular* pointer
/// — i.e. the labels form a valid (circular) matching partition.
void check_partition_labels(const list::LinkedList& list,
                            const std::vector<label_t>& labels);

/// Throws unless labels restricted to real pointers are a valid matching
/// partition: adjacent real pointers e_v, e_{suc(v)} get different labels.
void check_pointer_partition(const list::LinkedList& list,
                             const std::vector<label_t>& labels);

/// Number of chosen pointers.
std::size_t matching_size(const std::vector<std::uint8_t>& in_matching);

/// Status forms of the two headline oracles for public entry points (the
/// serve layer and llmp::run audit results instead of aborting a server):
/// the identical checks, but a kFailedVerification Status carrying the
/// diagnostic instead of a thrown check_error.
Status matching_status(const list::LinkedList& list,
                       const std::vector<std::uint8_t>& in_matching);
Status maximal_status(const list::LinkedList& list,
                      const std::vector<std::uint8_t>& in_matching);

}  // namespace llmp::core::verify
