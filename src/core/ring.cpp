#include "core/ring.h"

#include "support/rng.h"

namespace llmp::core {

void check_ring(const std::vector<index_t>& ring_next) {
  const std::size_t n = ring_next.size();
  LLMP_CHECK_MSG(n >= 1, "empty ring");
  std::vector<std::uint8_t> indeg(n, 0);
  for (index_t v = 0; v < n; ++v) {
    LLMP_CHECK_MSG(ring_next[v] < n, "successor out of range");
    LLMP_CHECK_MSG(indeg[ring_next[v]] == 0, "two predecessors");
    indeg[ring_next[v]] = 1;
  }
  std::size_t seen = 0;
  index_t v = 0;
  do {
    ++seen;
    LLMP_CHECK_MSG(seen <= n, "not a single cycle");
    v = ring_next[v];
  } while (v != 0);
  LLMP_CHECK_MSG(seen == n, "links form more than one cycle");
}

void check_ring_matching(const std::vector<index_t>& ring_next,
                         const std::vector<std::uint8_t>& in_matching) {
  check_ring(ring_next);
  const std::size_t n = ring_next.size();
  LLMP_CHECK(in_matching.size() == n);
  if (n <= 1) {
    LLMP_CHECK_MSG(in_matching[0] == 0, "self-loop cannot be matched");
    return;
  }
  // Validity: no two cyclically adjacent pointers chosen; n == 2 is the
  // special case where the two pointers share *both* endpoints.
  if (n == 2) {
    LLMP_CHECK_MSG(!(in_matching[0] && in_matching[1]),
                   "both parallel pointers chosen");
    LLMP_CHECK_MSG(in_matching[0] || in_matching[1], "not maximal");
    return;
  }
  std::vector<std::uint8_t> covered(n, 0);
  for (index_t v = 0; v < n; ++v) {
    if (!in_matching[v]) continue;
    const index_t s = ring_next[v];
    LLMP_CHECK_MSG(!covered[v] && !covered[s],
                   "pointers sharing node chosen");
    covered[v] = 1;
    covered[s] = 1;
  }
  for (index_t v = 0; v < n; ++v) {
    if (in_matching[v]) continue;
    LLMP_CHECK_MSG(covered[v] || covered[ring_next[v]],
                   "pointer <" << v << "," << ring_next[v]
                               << "> addable: not maximal");
  }
}

std::vector<index_t> random_ring(std::size_t n, std::uint64_t seed) {
  LLMP_CHECK(n >= 1);
  std::vector<index_t> perm(n);
  for (index_t v = 0; v < n; ++v) perm[v] = v;
  rng::Xoshiro256 gen(seed);
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(perm[i], perm[gen.below(i + 1)]);
  std::vector<index_t> ring(n);
  for (std::size_t i = 0; i < n; ++i)
    ring[perm[i]] = perm[(i + 1) % n];
  return ring;
}

}  // namespace llmp::core
