// The single algorithm registry.
//
// Every runnable algorithm in the repo is described by one AlgorithmEntry:
// its public name, the PRAM variant it is designed for, the paper's time
// bound as a display string, and a type-erased runner that executes it on
// any of the four execution backends (SeqExec, ParallelExec, Machine,
// SymbolicExec) through a pram::Context. The registry is the one dispatch
// surface: core::maximal_matching routes through it, tools/llmp_prove and
// the analysis tests sweep it, examples/llmp_cli lists and resolves names
// from it, and the benches read formulas from it.
//
// Layering: core/ cannot depend on apps/, so the registry is extensible —
// instance() seeds the core entries (matching algorithms and the bare
// WalkDown schedules); apps::register_algorithms() (src/apps/register.h)
// appends the application entries. Table order is pinned by the explicit
// `order` rank, never by registration order, so the llmp_prove report is
// byte-stable however registration interleaves. Registration is expected
// to happen on one thread before any parallel use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/match_result.h"
#include "core/partition_fn.h"
#include "list/linked_list.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "pram/symbolic_exec.h"

namespace llmp::core {

enum class Algorithm {
  kSequential,  ///< greedy walk, T1 = n (the optimality baseline)
  kMatch1,      ///< O(n·G(n)/p + G(n))
  kMatch2,      ///< O(n/p + log n), sort-bound
  kMatch3,      ///< O(n·log G(n)/p + log G(n)), not optimal
  kMatch4,      ///< this paper: O(n·log i/p + log^(i) n + log i)
  kRandomized,  ///< Luby-style coin tossing, O(log n) rounds w.h.p.
};

std::string to_string(Algorithm alg);

struct MatchOptions {
  Algorithm algorithm = Algorithm::kMatch4;
  /// Match4's adjustable i (rows = Θ(log^(i) n)); also reused as Match2's
  /// partition rounds and Match3's crunch rounds when nonzero.
  int i_parameter = 3;
  /// Match4: use the Lemma 5 table-accelerated partition.
  bool partition_with_table = false;
  /// Run the algorithm's EREW variant where one exists (Match1, Match2,
  /// Match4); ignored by the others.
  bool erew = false;
  BitRule rule = BitRule::kMostSignificant;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< randomized baseline only
};

/// Type-erased "run this algorithm once" entry point, instantiated over
/// the four Context backends from one generic lambda (make_runner below).
/// Runners take a Context so algorithm bodies can lease arena scratch and
/// report phase spans whatever the backend.
class AlgoRunner {
 public:
  virtual ~AlgoRunner() = default;
  virtual void run(pram::Context<pram::SeqExec>& ctx,
                   const list::LinkedList& list) const = 0;
  virtual void run(pram::Context<pram::ParallelExec>& ctx,
                   const list::LinkedList& list) const = 0;
  virtual void run(pram::Context<pram::Machine>& ctx,
                   const list::LinkedList& list) const = 0;
  virtual void run(pram::Context<pram::SymbolicExec>& ctx,
                   const list::LinkedList& list) const = 0;
};

/// Type-erased options-driven matching entry point: the one dispatcher
/// behind core::maximal_matching for the known backends. Fills `out` in
/// place so a warm caller reuses its result buffers.
class MatchDispatcher {
 public:
  virtual ~MatchDispatcher() = default;
  virtual void run(pram::Context<pram::SeqExec>& ctx,
                   const list::LinkedList& list, const MatchOptions& opt,
                   MatchResult& out) const = 0;
  virtual void run(pram::Context<pram::ParallelExec>& ctx,
                   const list::LinkedList& list, const MatchOptions& opt,
                   MatchResult& out) const = 0;
  virtual void run(pram::Context<pram::Machine>& ctx,
                   const list::LinkedList& list, const MatchOptions& opt,
                   MatchResult& out) const = 0;
  virtual void run(pram::Context<pram::SymbolicExec>& ctx,
                   const list::LinkedList& list, const MatchOptions& opt,
                   MatchResult& out) const = 0;
};

struct AlgorithmEntry {
  std::string name;      ///< registry key, e.g. "match4-erew"
  pram::Mode declared;   ///< PRAM variant the algorithm is designed for
  std::string formula;   ///< the paper's time bound, for display
  int order = 0;         ///< report/table rank (llmp_prove row order)
  bool in_prover = false;  ///< swept by llmp_prove / the analysis tests
  bool matching = false;   ///< `canonical` drives core::maximal_matching
  /// The MatchOptions this name denotes (e.g. "match4-table" sets
  /// partition_with_table); meaningful only when `matching` is true.
  MatchOptions canonical{};
  std::shared_ptr<const AlgoRunner> runner;
};

class AlgorithmRegistry {
 public:
  /// The process-wide registry, seeded with the core entries on first use.
  static AlgorithmRegistry& instance();

  /// Register an entry; a name collision keeps the first registration
  /// (makes repeated register_algorithms() calls idempotent).
  void add(AlgorithmEntry entry);

  const AlgorithmEntry* find(std::string_view name) const;

  /// All entries, ordered by `order` rank.
  std::vector<const AlgorithmEntry*> entries() const;
  /// The prover-swept subset, ordered by `order` rank.
  std::vector<const AlgorithmEntry*> prover_entries() const;

  /// The options-driven matching dispatcher behind maximal_matching.
  const MatchDispatcher& match_dispatcher() const { return *dispatcher_; }

 private:
  AlgorithmRegistry();

  std::vector<AlgorithmEntry> entries_;
  std::shared_ptr<const MatchDispatcher> dispatcher_;
};

namespace detail {

template <class Fn>
class AlgoRunnerImpl final : public AlgoRunner {
 public:
  explicit AlgoRunnerImpl(Fn fn) : fn_(std::move(fn)) {}
  void run(pram::Context<pram::SeqExec>& ctx,
           const list::LinkedList& list) const override {
    fn_(ctx, list);
  }
  void run(pram::Context<pram::ParallelExec>& ctx,
           const list::LinkedList& list) const override {
    fn_(ctx, list);
  }
  void run(pram::Context<pram::Machine>& ctx,
           const list::LinkedList& list) const override {
    fn_(ctx, list);
  }
  void run(pram::Context<pram::SymbolicExec>& ctx,
           const list::LinkedList& list) const override {
    fn_(ctx, list);
  }

 private:
  Fn fn_;
};

}  // namespace detail

/// Wrap one generic lambda `fn(ctx, list)` as a four-backend runner.
template <class Fn>
std::shared_ptr<const AlgoRunner> make_runner(Fn fn) {
  return std::make_shared<detail::AlgoRunnerImpl<Fn>>(std::move(fn));
}

}  // namespace llmp::core
