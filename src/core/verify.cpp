#include "core/verify.h"

#include <algorithm>

#include "stabilize/audit.h"
#include "support/check.h"

namespace llmp::core::verify {

void check_matching(const list::LinkedList& list,
                    const std::vector<std::uint8_t>& in_matching) {
  LLMP_CHECK(in_matching.size() == list.size());
  // Two pointers share a node iff they are consecutive along the list, so
  // a single ordered walk suffices.
  bool prev_chosen = false;
  for (index_t v = list.head(); v != knil; v = list.next(v)) {
    const bool has = list.has_pointer(v);
    const bool chosen = has && in_matching[v] != 0;
    LLMP_CHECK_MSG(!in_matching[v] || has,
                   "node " << v << " marks a non-existent pointer");
    LLMP_CHECK_MSG(!(prev_chosen && chosen),
                   "pointers <pre(" << v << ")," << v << "> and <" << v
                                    << ",suc> both chosen");
    prev_chosen = chosen;
  }
}

void check_maximal(const list::LinkedList& list,
                   const std::vector<std::uint8_t>& in_matching) {
  LLMP_CHECK(in_matching.size() == list.size());
  // covered[v]: v is an endpoint of a chosen pointer.
  std::vector<std::uint8_t> covered(list.size(), 0);
  for (index_t v = 0; v < list.size(); ++v) {
    if (in_matching[v]) {
      covered[v] = 1;
      covered[list.next(v)] = 1;
    }
  }
  for (index_t v = 0; v < list.size(); ++v) {
    if (!list.has_pointer(v) || in_matching[v]) continue;
    LLMP_CHECK_MSG(covered[v] || covered[list.next(v)],
                   "pointer <" << v << "," << list.next(v)
                               << "> could be added: not maximal");
  }
}

void check_one_of_three(const list::LinkedList& list,
                        const std::vector<std::uint8_t>& in_matching) {
  LLMP_CHECK(in_matching.size() == list.size());
  int gap = 0;
  for (index_t v = list.head(); v != knil; v = list.next(v)) {
    if (!list.has_pointer(v)) break;
    if (in_matching[v]) {
      gap = 0;
    } else {
      ++gap;
      LLMP_CHECK_MSG(gap <= 2, "three consecutive pointers unmatched at <"
                                   << v << "," << list.next(v) << ">");
    }
  }
}

void check_partition_labels(const list::LinkedList& list,
                            const std::vector<label_t>& labels) {
  LLMP_CHECK(labels.size() == list.size());
  if (list.size() <= 1) return;
  for (index_t v = 0; v < list.size(); ++v) {
    const index_t s = list.circular_next(v);
    LLMP_CHECK_MSG(labels[v] != labels[s],
                   "circular pointers at " << v << " and " << s
                                           << " share label " << labels[v]);
  }
}

void check_pointer_partition(const list::LinkedList& list,
                             const std::vector<label_t>& labels) {
  LLMP_CHECK(labels.size() == list.size());
  for (index_t v = 0; v < list.size(); ++v) {
    if (!list.has_pointer(v)) continue;
    const index_t s = list.next(v);
    if (!list.has_pointer(s)) continue;
    LLMP_CHECK_MSG(labels[v] != labels[s],
                   "adjacent pointers e_" << v << ", e_" << s
                                          << " share label " << labels[v]);
  }
}

std::size_t matching_size(const std::vector<std::uint8_t>& in_matching) {
  std::size_t count = 0;
  for (auto b : in_matching) count += (b != 0);
  return count;
}

namespace {

/// The Status forms run the structured auditor (stabilize/audit.h) and
/// split its one scan by kind: validity findings belong to
/// matching_status, maximality findings to maximal_status. The message
/// then names the first divergent node and the failure shape instead of
/// the oracle's free-form diagnostic.
Status audit_subset(const list::LinkedList& list,
                    const std::vector<std::uint8_t>& in_matching,
                    bool maximality) {
  try {
    stabilize::CorruptionReport report =
        stabilize::audit_matching(list.next_array(), in_matching);
    auto is_maximality = [](const stabilize::Finding& f) {
      return f.kind == stabilize::Corruption::kNotMaximal;
    };
    report.findings.erase(
        std::remove_if(report.findings.begin(), report.findings.end(),
                       [&](const stabilize::Finding& f) {
                         return is_maximality(f) != maximality;
                       }),
        report.findings.end());
    return report.to_status(StatusCode::kFailedVerification);
  } catch (const check_error& e) {
    return Status::failed_verification(e.what());
  }
}

}  // namespace

Status matching_status(const list::LinkedList& list,
                       const std::vector<std::uint8_t>& in_matching) {
  return audit_subset(list, in_matching, /*maximality=*/false);
}

Status maximal_status(const list::LinkedList& list,
                      const std::vector<std::uint8_t>& in_matching) {
  return audit_subset(list, in_matching, /*maximality=*/true);
}

}  // namespace llmp::core::verify
