// Maximal matching on a *ring* (circular linked list).
//
// The paper's matching partition function is already circular (it defines
// f(tail, head) so every node carries a label), and rings are the natural
// closed form of the input: n nodes, n pointers, no head or tail. The
// standard reduction to the path case: delete one arbitrary pointer e0,
// solve the resulting open list with any of Match1–4, then add e0 back iff
// both its endpoints stayed free. The result is a valid maximal matching
// of the ring: validity is inherited (e0 is only added when addable), and
// maximality holds because every other pointer was already maximal against
// the path matching, while e0 is explicitly reconsidered.
#pragma once

#include <vector>

#include "core/maximal_matching.h"
#include "list/linked_list.h"

namespace llmp::core {

/// Validate that `ring_next` is one n-cycle covering all nodes.
void check_ring(const std::vector<index_t>& ring_next);

struct RingMatchResult {
  /// in_matching[v] == 1 ⇔ ring pointer <v, ring_next[v]> chosen.
  std::vector<std::uint8_t> in_matching;
  std::size_t edges = 0;
  bool seam_added = false;  ///< whether the deleted pointer rejoined
  pram::Stats cost;
  MatchResult path;  ///< the underlying open-list run (for inspection)
};

/// Compute a maximal matching of the ring's n pointers.
template <class Exec>
RingMatchResult ring_matching(Exec& exec,
                              const std::vector<index_t>& ring_next,
                              const MatchOptions& opt = {}) {
  check_ring(ring_next);
  const std::size_t n = ring_next.size();
  RingMatchResult r;
  r.in_matching.assign(n, 0);
  if (n == 1) return r;  // a self-loop has no matchable pointer
  if (n == 2) {
    // Two mutual pointers share both endpoints; either one alone is a
    // maximal matching. Take <0, 1>.
    r.in_matching[0] = 1;
    r.edges = 1;
    return r;
  }
  const pram::Stats start = exec.stats();
  LLMP_DCHECK(n >= 3);  // the seam fix-up below assumes a real cycle

  // Cut the seam pointer e0 = <0, ring_next[0]>: the open list runs from
  // ring_next[0] around to 0.
  const index_t seam_tail = 0;
  const index_t seam_head = ring_next[0];
  std::vector<index_t> open_next(ring_next);
  open_next[seam_tail] = knil;
  const list::LinkedList path(std::move(open_next));

  r.path = maximal_matching(exec, path, opt);
  r.in_matching = r.path.in_matching;

  // Seam fix-up: one O(1) step — e0 is addable iff neither endpoint is
  // covered. seam_tail's other pointer is e_pred(0) (checked via the
  // matching bit of pred(0)); seam_head's other pointer is e_{seam_head}.
  const auto preds = path.predecessors();
  exec.step(1, [&](std::size_t, auto&& m) {
    const index_t p0 = preds[seam_tail];
    const bool tail_covered =
        p0 != knil && m.rd(r.in_matching, static_cast<std::size_t>(p0));
    const bool head_covered =
        m.rd(r.in_matching, static_cast<std::size_t>(seam_head)) != 0;
    if (!tail_covered && !head_covered) {
      m.wr(r.in_matching, static_cast<std::size_t>(seam_tail),
           std::uint8_t{1});
      r.seam_added = true;
    }
  });

  r.edges = 0;
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
  return r;
}

/// Oracle: throws unless in_matching is a valid maximal matching of the
/// ring (cyclic adjacency).
void check_ring_matching(const std::vector<index_t>& ring_next,
                         const std::vector<std::uint8_t>& in_matching);

/// Ring workload: a random n-cycle over array positions.
std::vector<index_t> random_ring(std::size_t n, std::uint64_t seed);

}  // namespace llmp::core
