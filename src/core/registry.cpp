#include "core/registry.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/match_dispatch.h"
#include "core/walkdown.h"
#include "support/types.h"

namespace llmp::core {

std::string to_string(Algorithm alg) {
  switch (alg) {
    case Algorithm::kSequential: return "sequential";
    case Algorithm::kMatch1: return "Match1";
    case Algorithm::kMatch2: return "Match2";
    case Algorithm::kMatch3: return "Match3";
    case Algorithm::kMatch4: return "Match4";
    case Algorithm::kRandomized: return "randomized";
  }
  return "?";
}

namespace {

/// The options-driven dispatcher: one dispatch_match instantiation per
/// backend, shared by every matching entry.
class MatchDispatcherImpl final : public MatchDispatcher {
 public:
  void run(pram::Context<pram::SeqExec>& ctx, const list::LinkedList& list,
           const MatchOptions& opt, MatchResult& out) const override {
    detail::dispatch_match(ctx, list, opt, out);
  }
  void run(pram::Context<pram::ParallelExec>& ctx,
           const list::LinkedList& list, const MatchOptions& opt,
           MatchResult& out) const override {
    detail::dispatch_match(ctx, list, opt, out);
  }
  void run(pram::Context<pram::Machine>& ctx, const list::LinkedList& list,
           const MatchOptions& opt, MatchResult& out) const override {
    detail::dispatch_match(ctx, list, opt, out);
  }
  void run(pram::Context<pram::SymbolicExec>& ctx,
           const list::LinkedList& list, const MatchOptions& opt,
           MatchResult& out) const override {
    detail::dispatch_match(ctx, list, opt, out);
  }
};

/// The bare WalkDown schedule on a completed partition: reduce labels to
/// the fixed point, lay the list out in a kFixedPointBound × ceil(n/x)
/// grid, then run WalkDown1 (inter-row pointers) and WalkDown2 (intra-row
/// walk). Mirrors match4's steps 2–4 without the final cut.
template <class Exec>
void walkdown_schedule(Exec& exec, const list::LinkedList& list, bool erew) {
  const std::size_t n = list.size();
  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  parallel_predecessors_into(exec, list, pred);
  auto labels_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& labels = *labels_h;
  init_address_labels(exec, n, labels);
  if (erew)
    reduce_to_constant_erew(exec, list, pred, labels,
                            BitRule::kMostSignificant);
  else
    reduce_to_constant(exec, list, labels, BitRule::kMostSignificant,
                       /*labels_are_addresses=*/true);
  auto keys_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& keys = *keys_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(keys, v, static_cast<index_t>(m.rd(labels, v)));
  });
  Layout2D lay = build_layout(exec, n, keys,
                              static_cast<std::size_t>(kFixedPointBound));
  auto color_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& color = *color_h;
  exec.step(n, [&](std::size_t v, auto&& m) { m.wr(color, v, kNoColor); });
  if (erew) {
    ErewWalkState st = make_erew_walk_state(exec, list, lay, pred);
    walkdown1_erew(exec, list, lay, pred, st, color);
    walkdown2_erew(exec, list, lay, pred, st, color);
  } else {
    walkdown1(exec, list, lay, pred, color);
    walkdown2(exec, list, lay, pred, color);
  }
}

AlgorithmEntry match_entry(std::string name, pram::Mode declared,
                           std::string formula, int order, bool in_prover,
                           MatchOptions canonical) {
  AlgorithmEntry e;
  e.name = std::move(name);
  e.declared = declared;
  e.formula = std::move(formula);
  e.order = order;
  e.in_prover = in_prover;
  e.matching = true;
  e.canonical = canonical;
  e.runner = make_runner([canonical](auto& ctx, const list::LinkedList& list) {
    MatchResult out;
    detail::dispatch_match(ctx, list, canonical, out);
  });
  return e;
}

AlgorithmEntry schedule_entry(std::string name, pram::Mode declared,
                              std::string formula, int order, bool erew) {
  AlgorithmEntry e;
  e.name = std::move(name);
  e.declared = declared;
  e.formula = std::move(formula);
  e.order = order;
  e.in_prover = true;
  e.runner = make_runner([erew](auto& ctx, const list::LinkedList& list) {
    walkdown_schedule(ctx, list, erew);
  });
  return e;
}

}  // namespace

AlgorithmRegistry::AlgorithmRegistry()
    : dispatcher_(std::make_shared<MatchDispatcherImpl>()) {
  // Ranks 0–9: the matching algorithms and the bare WalkDown schedules, in
  // the order llmp_prove has always reported them. apps/register.cpp takes
  // ranks 10+; the non-prover baselines sit at the end of listings.
  add(match_entry("match1", pram::Mode::kCREW, "O(n·G(n)/p + G(n))", 0, true,
                  {.algorithm = Algorithm::kMatch1}));
  add(match_entry("match1-erew", pram::Mode::kEREW, "O(n·G(n)/p + G(n))", 1,
                  true, {.algorithm = Algorithm::kMatch1, .erew = true}));
  add(match_entry("match2", pram::Mode::kCREW, "O(n/p + log n)", 2, true,
                  {.algorithm = Algorithm::kMatch2}));
  add(match_entry("match2-erew", pram::Mode::kEREW, "O(n/p + log n)", 3, true,
                  {.algorithm = Algorithm::kMatch2, .erew = true}));
  add(match_entry("match3", pram::Mode::kCREW,
                  "O(n·log G(n)/p + log G(n))", 4, true,
                  {.algorithm = Algorithm::kMatch3}));
  add(match_entry("match4", pram::Mode::kCREW,
                  "O(n·log i/p + log^(i) n + log i)", 5, true,
                  {.algorithm = Algorithm::kMatch4}));
  add(match_entry("match4-table", pram::Mode::kCREW,
                  "O(n·log i/p + log^(i) n + log i)", 6, true,
                  {.algorithm = Algorithm::kMatch4,
                   .partition_with_table = true}));
  add(match_entry("match4-erew", pram::Mode::kEREW,
                  "O(n·log i/p + log^(i) n + log i)", 7, true,
                  {.algorithm = Algorithm::kMatch4, .erew = true}));
  add(schedule_entry("walkdown1+2", pram::Mode::kCREW,
                     "3x−1 steps of ⌈n/x⌉ procs", 8, /*erew=*/false));
  add(schedule_entry("walkdown-erew", pram::Mode::kEREW,
                     "3x−1 steps of ⌈n/x⌉ procs", 9, /*erew=*/true));
  add(match_entry("sequential", pram::Mode::kEREW, "T1 = n", 90, false,
                  {.algorithm = Algorithm::kSequential}));
  add(match_entry("randomized", pram::Mode::kCREW,
                  "O(log n) rounds w.h.p.", 91, false,
                  {.algorithm = Algorithm::kRandomized}));
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::add(AlgorithmEntry entry) {
  if (find(entry.name) != nullptr) return;  // first registration wins
  entries_.push_back(std::move(entry));
}

const AlgorithmEntry* AlgorithmRegistry::find(std::string_view name) const {
  for (const AlgorithmEntry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

std::vector<const AlgorithmEntry*> AlgorithmRegistry::entries() const {
  std::vector<const AlgorithmEntry*> out;
  out.reserve(entries_.size());
  for (const AlgorithmEntry& e : entries_) out.push_back(&e);
  std::stable_sort(out.begin(), out.end(),
                   [](const AlgorithmEntry* a, const AlgorithmEntry* b) {
                     return a->order < b->order;
                   });
  return out;
}

std::vector<const AlgorithmEntry*> AlgorithmRegistry::prover_entries() const {
  std::vector<const AlgorithmEntry*> out = entries();
  std::erase_if(out, [](const AlgorithmEntry* e) { return !e->in_prover; });
  return out;
}

}  // namespace llmp::core
