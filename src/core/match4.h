// Algorithm Match4 — the paper's contribution (§3, Theorems 1–2).
//
//   Step 1  partition the pointers into < x matching sets, x = Θ(log^(i) n)
//           — either i relabel rounds (Lemma 3 flavour, O(n·i/p + i)) or
//           crunch+gather+table (Lemma 5 flavour, O(n·log i/p + log i))
//   Step 2  view the array as x rows × y = n/x columns; every column's
//           processor sorts its own cells by set number (sequential
//           counting sort, O(x)) — NO global sort
//   Step 3  WalkDown1 labels the inter-row pointers           (x steps)
//   Step 4  WalkDown2 labels the intra-row pointers           (2x−1 steps)
//   Step 5  Match1 steps 3–4 on the 3-color pointer labels
//
// With p = y = n/x processors every phase is O(x) time, so
// time·p = O(n·log i + n): optimal for constant i using up to
// O(n / log^(i) n) processors (Theorem 1), and the general curve
// O(n·log i/p + log^(i) n + log i) for constructible i (Theorem 2).
#pragma once

#include <algorithm>
#include <chrono>
#include <string>

#include "core/cut.h"
#include "core/gather.h"
#include "core/match_result.h"
#include "core/partition_fn.h"
#include "core/walkdown.h"
#include "list/linked_list.h"
#include "pram/context.h"

namespace llmp::core {

struct Match4Options {
  /// The adjustable parameter i: rows x = Θ(log^(i) n).
  int i_parameter = 3;
  /// Step-1 strategy: false = i relabel rounds (simple, O(n·i/p + i));
  /// true = Lemma 5's crunch+gather+table path (O(n·log i/p + log i)).
  bool partition_with_table = false;
  BitRule rule = BitRule::kMostSignificant;
  /// EREW-legal variant (inbox fan-outs; forces the iterative partition —
  /// the appendix runs the table-based paths on EREW only with
  /// preprocessing-stage table copies).
  bool erew = false;
};

/// The plan Match4 derives from (n, options); exposed for tests and E9/E10.
struct Match4Plan {
  label_t set_bound = 0;     ///< x: rows = exclusive bound on set numbers
  int equivalent_rounds = 0; ///< relabel rounds the partition realizes
  // Table path only:
  bool uses_table = false;
  int crunch_rounds = 0;
  int component_bits = 0;
  int collapse_width = 1;
  int gather_rounds = 0;
};

inline Match4Plan plan_match4(std::size_t n, const Match4Options& opt) {
  LLMP_CHECK(opt.i_parameter >= 1);
  Match4Plan plan;
  plan.equivalent_rounds = opt.i_parameter;
  plan.set_bound = bound_after_rounds(n, opt.i_parameter);
  if (!opt.partition_with_table || n <= 2) return plan;

  // Lemma 5 path: crunch k rounds, then one probe of a table collapsing
  // w = i−k+1 components stands in for the remaining i−k rounds; the
  // pointer jumping that gathers ceil-power-of-two(w) components costs
  // ceil(log2 w) steps. Pick the smallest k whose table fits.
  const int i = opt.i_parameter;
  for (int k = 1; k < i; ++k) {
    const label_t bound_k = bound_after_rounds(n, k);
    if (bound_k <= kFixedPointBound) break;  // crunching already done
    const int b = itlog::ceil_log2(bound_k);
    const int w = i - k + 1;
    const int r = itlog::ceil_log2(static_cast<std::uint64_t>(w));
    const int key_bits = b * (1 << r);
    if (key_bits > MatchingLookupTable::kMaxKeyBits) continue;
    plan.uses_table = true;
    plan.crunch_rounds = k;
    plan.component_bits = b;
    plan.collapse_width = w;
    plan.gather_rounds = r;
    break;
  }
  return plan;
}

/// In-place entry point; see match1_into. All scratch — predecessors,
/// labels, the 2D layout, WalkDown state, colors — is leased from the
/// executor's arena, so warm Context runs allocate nothing.
template <class Exec>
void match4_into(Exec& exec, const list::LinkedList& list,
                 const Match4Options& opt, MatchResult& r) {
  r.reset();
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  pram::Stats mark = start;
  auto wall_mark = std::chrono::steady_clock::now();
  auto phase = [&](const std::string& name) {
    const pram::Stats delta = exec.stats() - mark;
    const auto now = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - wall_mark).count();
    r.phases.push_back({name, delta, wall_ms});
    pram::note_phase(exec, name, delta, wall_ms);
    mark = exec.stats();
    wall_mark = now;
  };

  Match4Options eff = opt;
  if (eff.erew) eff.partition_with_table = false;
  const Match4Plan plan = plan_match4(n, eff);

  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  parallel_predecessors_into(exec, list, pred);

  // ---- Step 1: partition into sets numbered < x. -------------------------
  auto labels_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& labels = *labels_h;
  init_address_labels(exec, n, labels);
  label_t bound = static_cast<label_t>(std::max<std::size_t>(n, 1));
  if (n > 1) {
    if (plan.uses_table) {
      relabel_rounds(exec, list, labels, plan.crunch_rounds, opt.rule,
                     /*labels_are_addresses=*/true);
      const MatchingLookupTable& table = cached_lookup_table(
          plan.component_bits, 1 << plan.gather_rounds, opt.rule,
          plan.collapse_width);
      r.table_cells = table.cells();
      gather_labels(exec, list, labels, plan.component_bits,
                    plan.gather_rounds);
      lookup_labels(exec, table, labels);
      r.relabel_rounds = plan.crunch_rounds;
      r.gather_rounds = plan.gather_rounds;
      bound = std::max<label_t>(table.final_bound(), 2);
    } else {
      if (eff.erew)
        relabel_rounds_erew(exec, list, pred, labels, opt.i_parameter,
                            opt.rule);
      else
        relabel_rounds(exec, list, labels, opt.i_parameter, opt.rule,
                       /*labels_are_addresses=*/true);
      r.relabel_rounds = opt.i_parameter;
      bound = std::max<label_t>(plan.set_bound, 2);
    }
  } else {
    bound = 1;
  }
  r.partition_sets = distinct_labels(exec, labels);
  phase("partition");

  // ---- Step 2: 2D layout, per-column sequential sorts. -------------------
  // Rows x = the set-number bound, so every key fits a row; columns
  // y = ceil(n/x), one processor each.
  auto keys_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& keys = *keys_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(keys, v, static_cast<index_t>(m.rd(labels, v)));
  });
  Layout2D lay =
      build_layout(exec, n, keys, static_cast<std::size_t>(bound));
  phase("column-sort");

  // ---- Steps 3–4: the WalkDown schedule. ---------------------------------
  auto color_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& color = *color_h;
  exec.step(n, [&](std::size_t v, auto&& m) { m.wr(color, v, kNoColor); });
  if (eff.erew) {
    ErewWalkState st = make_erew_walk_state(exec, list, lay, pred);
    walkdown1_erew(exec, list, lay, pred, st, color);
    walkdown2_erew(exec, list, lay, pred, st, color);
  } else {
    walkdown1(exec, list, lay, pred, color);
    walkdown2(exec, list, lay, pred, color);
  }
  phase("walkdown");

  // ---- Step 5: Match1 steps 3–4 on the 3-color labels. -------------------
  auto plabel_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& plabel = *plabel_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    const std::uint8_t c = m.rd(color, v);
    m.wr(plabel, v, static_cast<label_t>(c == kNoColor ? 0 : c));
  });
  r.cut = eff.erew
              ? cut_and_walk_erew(exec, list, pred, plabel, 3, r.in_matching)
              : cut_and_walk(exec, list, pred, plabel, 3, r.in_matching);
  phase("cut+walk");

  r.edges = 0;
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
}

template <class Exec>
MatchResult match4(Exec& exec, const list::LinkedList& list,
                   const Match4Options& opt = {}) {
  MatchResult r;
  match4_into(exec, list, opt, r);
  return r;
}

}  // namespace llmp::core
