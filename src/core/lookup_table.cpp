#include "core/lookup_table.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "support/failpoint.h"

namespace llmp::core {

MatchingLookupTable::MatchingLookupTable(int component_bits, int tuple_width,
                                         BitRule rule, int collapse_width)
    : component_bits_(component_bits),
      tuple_width_(tuple_width),
      collapse_width_(collapse_width == 0 ? tuple_width : collapse_width),
      rule_(rule) {
  LLMP_CHECK(component_bits >= 1 && tuple_width >= 1);
  LLMP_CHECK(collapse_width_ >= 1 && collapse_width_ <= tuple_width);
  const int key_bits = component_bits * tuple_width;
  LLMP_CHECK_MSG(key_bits <= kMaxKeyBits,
                 "table would need 2^" << key_bits << " cells");
  table_.resize(std::size_t{1} << key_bits);
  std::vector<label_t> comp(static_cast<std::size_t>(collapse_width_));
  const label_t comp_mask = (label_t{1} << component_bits) - 1;
  const int skip_bits = component_bits * (tuple_width - collapse_width_);
  for (std::size_t key = 0; key < table_.size(); ++key) {
    // Decompose; component 0 is the most significant b-bit field. Only the
    // first collapse_width components participate in the value.
    label_t k = static_cast<label_t>(key) >> skip_bits;
    for (int i = collapse_width_ - 1; i >= 0; --i) {
      comp[static_cast<std::size_t>(i)] = k & comp_mask;
      k >>= component_bits;
    }
    const label_t v = collapse(comp, rule_);
    LLMP_CHECK(v <= 0xFF);
    table_[key] = static_cast<std::uint8_t>(v);
    // Track the bound over valid keys only (adjacent components differ).
    bool valid = true;
    for (int i = 0; i + 1 < collapse_width_; ++i)
      valid &= comp[static_cast<std::size_t>(i)] !=
               comp[static_cast<std::size_t>(i) + 1];
    if (valid) final_bound_ = std::max(final_bound_, v + 1);
  }
  if (collapse_width_ == 1)
    final_bound_ = label_t{1} << component_bits;  // identity collapse
}

std::vector<label_t> MatchingLookupTable::components(label_t key) const {
  std::vector<label_t> comp(static_cast<std::size_t>(tuple_width_));
  const label_t comp_mask = (label_t{1} << component_bits_) - 1;
  for (int i = tuple_width_ - 1; i >= 0; --i) {
    comp[static_cast<std::size_t>(i)] = key & comp_mask;
    key >>= component_bits_;
  }
  return comp;
}

label_t MatchingLookupTable::collapse(const std::vector<label_t>& a,
                                      BitRule rule) {
  LLMP_CHECK(!a.empty());
  std::vector<label_t> level(a);
  while (level.size() > 1) {
    for (std::size_t i = 0; i + 1 < level.size(); ++i)
      level[i] = safe_partition_value(level[i], level[i + 1], rule);
    level.pop_back();
  }
  return level[0];
}

const MatchingLookupTable& cached_lookup_table(int component_bits,
                                               int tuple_width, BitRule rule,
                                               int collapse_width) {
  using Key = std::tuple<int, int, int, int>;
  static std::mutex mu;
  static std::map<Key, std::unique_ptr<const MatchingLookupTable>> cache;
  const Key key{component_bits, tuple_width, static_cast<int>(rule),
                collapse_width};
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    LLMP_FAILPOINT("core.lookup.build");
    it = cache
             .emplace(key, std::make_unique<const MatchingLookupTable>(
                               component_bits, tuple_width, rule,
                               collapse_width))
             .first;
  }
  return *it->second;
}

}  // namespace llmp::core
