// Algorithm Match1 (paper §2; Han [6] / Cole–Vishkin [3]).
//
//   Step 1  label[v] := address of v
//   Step 2  repeat ~G(n) times: label[v] := f(label[v], label[suc(v)])
//   Step 3  cut <v, suc(v)> at label local minima
//   Step 4  walk each constant-length sublist, taking alternate pointers
//
// Time O(n·G(n)/p + G(n)) (Lemma 3): step 2 runs Θ(G(n)) synchronous
// steps of n processors. Not optimal — the whole point of the paper is to
// do better — but it is the building block every later algorithm reuses
// (Match3 and Match4 call steps 3–4 verbatim via cut.h).
#pragma once

#include <chrono>
#include <string>

#include "core/cut.h"
#include "core/match_result.h"
#include "core/partition_fn.h"
#include "list/linked_list.h"
#include "pram/context.h"

namespace llmp::core {

struct Match1Options {
  BitRule rule = BitRule::kMostSignificant;
  /// Run the EREW-legal variant (inbox fan-outs instead of neighbour
  /// reads): ~2x the steps, verified exclusive by pram::Machine.
  bool erew = false;
};

/// In-place entry point: reuses `r`'s buffers, and leases all scratch from
/// the executor's arena — zero heap allocations on a warm pram::Context.
template <class Exec>
void match1_into(Exec& exec, const list::LinkedList& list,
                 const Match1Options& opt, MatchResult& r) {
  r.reset();
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  pram::Stats mark = start;
  auto wall_mark = std::chrono::steady_clock::now();
  auto phase = [&](const std::string& name) {
    const pram::Stats delta = exec.stats() - mark;
    const auto now = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - wall_mark).count();
    r.phases.push_back({name, delta, wall_ms});
    pram::note_phase(exec, name, delta, wall_ms);
    mark = exec.stats();
    wall_mark = now;
  };

  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  parallel_predecessors_into(exec, list, pred);
  phase("pred");

  auto labels_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& labels = *labels_h;
  init_address_labels(exec, n, labels);
  r.relabel_rounds =
      opt.erew ? reduce_to_constant_erew(exec, list, pred, labels, opt.rule)
               : reduce_to_constant(exec, list, labels, opt.rule,
                                    /*labels_are_addresses=*/true);
  r.partition_sets = distinct_labels(exec, labels);
  phase("reduce");

  r.cut = opt.erew
              ? cut_and_walk_erew(exec, list, pred, labels, kFixedPointBound,
                                  r.in_matching)
              : cut_and_walk(exec, list, pred, labels, kFixedPointBound,
                             r.in_matching);
  phase("cut+walk");

  r.edges = 0;
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
}

template <class Exec>
MatchResult match1(Exec& exec, const list::LinkedList& list,
                   const Match1Options& opt = {}) {
  MatchResult r;
  match1_into(exec, list, opt, r);
  return r;
}

}  // namespace llmp::core
