// Parallel evaluation of G(n) and log G(n) — the appendix's construction.
//
// "We use array N[1..n] and n processors. Processor i checks whether i is
// a power of 2; if so it sets N[i] := log i, else N[i] := nil. Processor 1
// sets N[1] := 1. This creates linked lists in N; the one containing N[1]
// is the main list. G(n) is the length of the main list, computable in
// O(log G(n)) time by pointer jumping N[i] := N[N[i]]; the number of
// jumping rounds needed to make the main list's last pointer point at 1 is
// an evaluation of log G(n)."
//
// The powers of two 2^⌊log n⌋ → ⌊log 2^⌊log n⌋⌋ → … → 1 form exactly the
// iterated-log chain, so its hop count is Θ(G(n)) (the appendix evaluates
// every function H "as finding m = Θ(H)"; tests pin the result to within
// ±1 of the exact G). Implemented with Wyllie-style distance doubling so
// one pointer-jumping pass yields both quantities.
#pragma once

#include <vector>

#include "pram/stats.h"
#include "support/check.h"
#include "support/itlog.h"
#include "support/types.h"

namespace llmp::core {

struct AppendixGEval {
  int G = 0;      ///< hops of the main list: Θ(G(n))
  int log_G = 0;  ///< pointer-jumping rounds used: Θ(log G(n))
  pram::Stats cost;
};

/// Evaluate G(n) and log G(n) with n virtual processors in O(log G(n))
/// synchronous steps. CREW: node 1's cell is read concurrently by itself
/// and its predecessor on the chain.
template <class Exec>
AppendixGEval eval_G_parallel(Exec& exec, std::uint64_t n) {
  LLMP_CHECK(n >= 1);
  AppendixGEval out;
  const pram::Stats start = exec.stats();
  const std::size_t size = static_cast<std::size_t>(n) + 1;  // 1-indexed

  // The main list over the powers of two. Non-powers hold knil and take
  // no further part (their processors idle).
  std::vector<index_t> cell(size, knil), cell2(size, knil);
  std::vector<std::uint32_t> dist(size, 0), dist2(size, 0);
  exec.step(size - 1, [&](std::size_t p, auto&& m) {
    const std::uint64_t i = p + 1;
    if ((i & (i - 1)) != 0) return;  // not a power of two
    const index_t target =
        i == 1 ? index_t{1}
               : static_cast<index_t>(itlog::floor_log2(i));
    m.wr(cell, static_cast<std::size_t>(i), target);
    m.wr(dist, static_cast<std::size_t>(i),
         static_cast<std::uint32_t>(i == 1 ? 0 : 1));
  });

  // The "main list" (the one containing N[1]) is the tower 1 ← 2 ← 4 ←
  // 16 ← 65536 ← …: a power 2^k feeds the chain only when k is itself on
  // the chain (e.g. N[64] = 6 dangles). Start at the largest tower
  // element <= n; the number of tower elements is Θ(G(n)) = Θ(log* n).
  std::size_t head = 1;
  while (head < 64 && (std::uint64_t{1} << head) <= n)
    head = std::size_t{1} << head;
  int rounds = 0;
  while (cell[head] != 1) {
    exec.step(size - 1, [&](std::size_t p, auto&& m) {
      const std::uint64_t i = p + 1;
      const index_t s = m.rd(cell, static_cast<std::size_t>(i));
      if (s == knil) return;
      m.wr(dist2, static_cast<std::size_t>(i),
           m.rd(dist, static_cast<std::size_t>(i)) +
               m.rd(dist, static_cast<std::size_t>(s)));
      m.wr(cell2, static_cast<std::size_t>(i),
           m.rd(cell, static_cast<std::size_t>(s)));
    });
    cell.swap(cell2);
    dist.swap(dist2);
    ++rounds;
    LLMP_CHECK_MSG(rounds <= 64, "jumping failed to converge");
  }
  // dist[head] = hops from 2^⌊log n⌋ down to 1; the +1 accounts for the
  // initial application n → log n that enters the chain.
  out.G = static_cast<int>(dist[head]) + 1;
  out.log_G = rounds;
  out.cost = exec.stats() - start;
  return out;
}

}  // namespace llmp::core
