#include "core/maximal_matching.h"

namespace llmp::core {

std::string to_string(Algorithm alg) {
  switch (alg) {
    case Algorithm::kSequential: return "sequential";
    case Algorithm::kMatch1: return "Match1";
    case Algorithm::kMatch2: return "Match2";
    case Algorithm::kMatch3: return "Match3";
    case Algorithm::kMatch4: return "Match4";
    case Algorithm::kRandomized: return "randomized";
  }
  return "?";
}

}  // namespace llmp::core
