#include "core/partition_fn.h"

#include <algorithm>

#include "support/itlog.h"

namespace llmp::core {

label_t partition_bound_after(label_t input_bound) {
  LLMP_CHECK(input_bound >= 2);
  // Arguments < B occupy ceil(log2 B) bits, so k <= ceil(log2 B) − 1 and
  // f = 2k + a_k < 2·ceil(log2 B).
  return 2 * static_cast<label_t>(itlog::ceil_log2(input_bound));
}

std::size_t distinct_labels(const std::vector<label_t>& labels) {
  std::vector<label_t> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

}  // namespace llmp::core
