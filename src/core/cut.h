// Match1 steps 3–4: cut the list at label local minima, then walk each of
// the resulting constant-length sublists taking every other pointer.
// Shared by Match1, Match3 and Match4, which differ only in how they
// produce the constant-alphabet pointer labels fed in here.
//
// Pointer labels: plabel[v] is the label of pointer e_v = <v, suc(v)>;
// adjacent real pointers must carry different labels (a matching
// partition, enforced by LLMP_DCHECK and by the callers' contracts).
//
// Cut rule (paper step 3, with explicit boundary convention): e_v is cut
// iff both neighbour pointers exist and plabel is a strict local minimum
// at v. Boundary pointers are never cut, hence no two cut pointers are
// adjacent, hence the pointer after a cut is always the first of a run and
// is always taken — which is what makes the matching maximal (the cut
// pointer's head endpoint is covered). Runs between cuts are valley-free
// label sequences over an alphabet of size A, so their length is at most
// 2A−1: the per-head walk is a bounded sequential subroutine and the step
// declares that bound as its unit cost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fanout.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "pram/stats.h"
#include "pram/sweep.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::core {

struct CutStats {
  std::size_t cuts = 0;     ///< pointers deleted in step 3
  std::size_t max_run = 0;  ///< longest sublist walked in step 4
};

namespace detail {
/// Fused step-3 kernel: mark strict-local-minimum cut pointers over
/// [lo, hi), prefetching the three neighbour-cell chases ahead. The label
/// type is templated: constant-alphabet labels fit a byte, and the fused
/// caller narrows them first so the neighbour chases touch an n-byte
/// array instead of the 8n-byte input.
template <class LabelT>
inline void cut_mark_span(const index_t* nx, const index_t* pr,
                          const LabelT* pl, std::uint8_t* cut_flags,
                          std::size_t lo, std::size_t hi) {
  const std::size_t dist =
      static_cast<std::size_t>(pram::tuning().prefetch.distance);
  for (std::size_t v = lo; v < hi; ++v) {
    if (dist != 0 && v + dist < hi) {
      const index_t pf_n = nx[v + dist];
      const index_t pf_p = pr[v + dist];
      if (pf_n != knil) {
        pram::prefetch_ro(pl + pf_n);
        pram::prefetch_ro(nx + pf_n);
      }
      if (pf_p != knil) pram::prefetch_ro(pl + pf_p);
    }
    const index_t nv = nx[v];
    if (nv == knil) continue;  // no pointer e_v
    const index_t pv = pr[v];
    if (pv == knil) continue;  // boundary: never cut
    if (nx[nv] == knil) continue;
    const LabelT here = pl[v];
    if (pl[pv] > here && here < pl[nv]) cut_flags[v] = 1;
  }
}

/// Fused step-4 kernel: every run head in [lo, hi) walks its run taking
/// alternate pointers. Walks may leave the chunk — they only *read* cells
/// no walker writes this step, and the written cells (in_matching,
/// run_len) are disjoint per run, so chunked execution stays exact.
template <class RunT>
inline void cut_walk_span(const index_t* nx, const index_t* pr,
                          const std::uint8_t* cut_flags,
                          std::uint8_t* matched, RunT* run_len,
                          std::size_t lo, std::size_t hi,
                          std::size_t max_run) {
  const std::size_t dist =
      static_cast<std::size_t>(pram::tuning().prefetch.distance);
  for (std::size_t v = lo; v < hi; ++v) {
    if (dist != 0 && v + dist < hi) {
      const index_t pf_p = pr[v + dist];
      if (pf_p != knil) pram::prefetch_ro(cut_flags + pf_p);
    }
    const index_t pv = pr[v];
    if (nx[v] == knil) continue;
    if (pv != knil && !cut_flags[pv]) continue;
    std::size_t len = 0;
    bool take = true;
    index_t u = static_cast<index_t>(v);
    for (;;) {
      ++len;
      LLMP_CHECK_MSG(len <= max_run, "run exceeds 2·alphabet − 1");
      if (take) matched[u] = 1;
      take = !take;
      const index_t u2 = nx[u];
      if (nx[u2] == knil) break;
      if (cut_flags[u2]) break;  // run ends
      u = u2;
    }
    run_len[v] = static_cast<RunT>(len);
  }
}
}  // namespace detail

/// Execute steps 3–4. `alphabet` is an upper bound on plabel values + 1
/// (6 for the fixed-point labels; 3 for Match4's WalkDown output).
/// `pred` is the predecessor array; `in_matching` receives the result.
template <class Exec>
CutStats cut_and_walk(Exec& exec, const list::LinkedList& list,
                      const std::vector<index_t>& pred,
                      const std::vector<label_t>& plabel, label_t alphabet,
                      std::vector<std::uint8_t>& in_matching) {
  const std::size_t n = list.size();
  LLMP_CHECK(plabel.size() == n);
  LLMP_CHECK(pred.size() == n);
  in_matching.assign(n, 0);
  if (n <= 1) return {};
  const auto& next = list.next_array();
  const std::size_t max_run = 2 * static_cast<std::size_t>(alphabet) - 1;

  // Step 3: mark cut pointers. Each processor reads three label cells
  // (its own pointer's and both neighbours') — CREW.
  auto cut_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& cut = *cut_h;
  CutStats stats;
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      const index_t* nx = next.data();
      const index_t* pr = pred.data();
      std::uint8_t* cf = cut.data();
      std::uint8_t* matched = in_matching.data();
      // Runs are bounded by 2·alphabet − 1, so the audit column fits
      // uint32 comfortably for any alphabet the narrow check below admits
      // and for the wide fallback alike.
      auto run32_h = pram::scratch<std::uint32_t>(exec, n);
      std::vector<std::uint32_t>& run32 = *run32_h;
      std::uint32_t* rl = run32.data();
      if (alphabet <= 256) {
        auto pl8_h = pram::scratch<std::uint8_t>(exec, n);
        std::uint8_t* pl8 = (*pl8_h).data();
        const label_t* wide = plabel.data();
        for (std::size_t v = 0; v < n; ++v)
          pl8[v] = static_cast<std::uint8_t>(wide[v]);
        exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
          detail::cut_mark_span(nx, pr, pl8, cf, lo, hi);
        });
      } else {
        const label_t* pl = plabel.data();
        exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
          detail::cut_mark_span(nx, pr, pl, cf, lo, hi);
        });
      }
      exec.sweep(n, max_run, [=](std::size_t lo, std::size_t hi) {
        detail::cut_walk_span(nx, pr, cf, matched, rl, lo, hi, max_run);
      });
      for (index_t v = 0; v < n; ++v) {
        stats.max_run =
            std::max(stats.max_run, static_cast<std::size_t>(run32[v]));
        stats.cuts += cut[v];
      }
      return stats;
    }
  }
  auto run_len_h = pram::scratch<std::size_t>(exec, n);  // max_run audit
  std::vector<std::size_t>& run_len = *run_len_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    const index_t nv = m.rd(next, v);
    if (nv == knil) return;                       // no pointer e_v
    const index_t pv = m.rd(pred, v);
    if (pv == knil) return;                       // boundary: never cut
    if (m.rd(next, static_cast<std::size_t>(nv)) == knil) return;
    const label_t here = m.rd(plabel, v);
    const label_t before = m.rd(plabel, static_cast<std::size_t>(pv));
    const label_t after = m.rd(plabel, static_cast<std::size_t>(nv));
    LLMP_DCHECK(here != before && here != after);
    if (before > here && here < after) m.wr(cut, v, std::uint8_t{1});
  });

  // Step 4: each sublist head walks its run, taking alternate pointers.
  // A head is a node whose pointer exists and whose predecessor pointer is
  // absent or cut. Every run's first pointer is taken.
  exec.step(n, max_run, [&](std::size_t v, auto&& m) {
    const index_t pv = m.rd(pred, v);
    if (m.rd(next, v) == knil) return;
    if (pv != knil && !m.rd(cut, static_cast<std::size_t>(pv))) return;
    // v heads a run (cut pointers head nothing: no two cuts are adjacent,
    // and a head's own pointer is never cut — see header comment).
    std::size_t len = 0;
    bool take = true;
    index_t u = static_cast<index_t>(v);
    for (;;) {
      ++len;
      LLMP_CHECK_MSG(len <= max_run, "run exceeds 2·alphabet − 1");
      if (take) m.wr(in_matching, static_cast<std::size_t>(u), std::uint8_t{1});
      take = !take;
      const index_t u2 = m.rd(next, static_cast<std::size_t>(u));
      if (m.rd(next, static_cast<std::size_t>(u2)) == knil) break;
      if (m.rd(cut, static_cast<std::size_t>(u2))) break;  // run ends
      u = u2;
    }
    m.wr(run_len, v, len);
  });

  for (index_t v = 0; v < n; ++v) {
    stats.max_run = std::max(stats.max_run, run_len[v]);
    stats.cuts += cut[v];
  }
  return stats;
}

/// EREW variant of cut_and_walk: every neighbour read that had multiple
/// simultaneous readers (plabel of the two adjacent pointers, pointer
/// existence of the successor, cut flag of the predecessor pointer) is
/// replaced by a pushed inbox, read exclusively. Costs 4 extra fan-out
/// steps; same output (tested).
template <class Exec>
CutStats cut_and_walk_erew(Exec& exec, const list::LinkedList& list,
                           const std::vector<index_t>& pred,
                           const std::vector<label_t>& plabel,
                           label_t alphabet,
                           std::vector<std::uint8_t>& in_matching) {
  const std::size_t n = list.size();
  LLMP_CHECK(plabel.size() == n);
  LLMP_CHECK(pred.size() == n);
  in_matching.assign(n, 0);
  if (n <= 1) return {};
  const auto& next = list.next_array();
  const std::size_t max_run = 2 * static_cast<std::size_t>(alphabet) - 1;
  constexpr label_t kNoLbl = kno_label;

  // Inboxes: neighbour pointer labels and whether the successor has a
  // pointer of its own.
  auto lbl_prev_h = pram::scratch<label_t>(exec, n, kNoLbl);
  auto lbl_next_h = pram::scratch<label_t>(exec, n, kNoLbl);
  std::vector<label_t>& lbl_prev = *lbl_prev_h;
  std::vector<label_t>& lbl_next = *lbl_next_h;
  pull_from_pred(exec, list, plabel, lbl_prev, /*circular=*/false);
  pull_from_next(exec, list, pred, plabel, lbl_next, /*circular=*/false);
  auto has_ptr_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& has_ptr = *has_ptr_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(has_ptr, v, static_cast<std::uint8_t>(m.rd(next, v) != knil));
  });
  auto next_has_ptr_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& next_has_ptr = *next_has_ptr_h;
  pull_from_next(exec, list, pred, has_ptr, next_has_ptr, false);

  // Step 3 (EREW): every read is of the processor's own cells.
  auto cut_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& cut = *cut_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    if (!m.rd(has_ptr, v)) return;
    if (m.rd(pred, v) == knil) return;        // boundary: never cut
    if (!m.rd(next_has_ptr, v)) return;       // successor pointer missing
    const label_t here = m.rd(plabel, v);
    const label_t before = m.rd(lbl_prev, v);
    const label_t after = m.rd(lbl_next, v);
    LLMP_DCHECK(here != before && here != after);
    if (before > here && here < after) m.wr(cut, v, std::uint8_t{1});
  });

  // Head detection needs the predecessor pointer's cut flag: push it.
  auto cut_prev_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& cut_prev = *cut_prev_h;
  pull_from_pred(exec, list, cut, cut_prev, false);

  // Step 4: walks are disjoint, so the traversal reads are exclusive; the
  // only cross-run reads (cut flag and pointer-existence of the boundary
  // pointer) touch cells no other walker reads this step.
  CutStats stats;
  auto run_len_h = pram::scratch<std::size_t>(exec, n);
  std::vector<std::size_t>& run_len = *run_len_h;
  exec.step(n, max_run, [&](std::size_t v, auto&& m) {
    if (!m.rd(has_ptr, v)) return;
    if (m.rd(pred, v) != knil && !m.rd(cut_prev, v)) return;
    std::size_t len = 0;
    bool take = true;
    index_t u = static_cast<index_t>(v);
    for (;;) {
      ++len;
      LLMP_CHECK_MSG(len <= max_run, "run exceeds 2·alphabet − 1");
      if (take)
        m.wr(in_matching, static_cast<std::size_t>(u), std::uint8_t{1});
      take = !take;
      const index_t u2 = m.rd(next, static_cast<std::size_t>(u));
      if (m.rd(next, static_cast<std::size_t>(u2)) == knil) break;
      if (m.rd(cut, static_cast<std::size_t>(u2))) break;
      u = u2;
    }
    m.wr(run_len, v, len);
  });

  for (index_t v = 0; v < n; ++v) {
    stats.max_run = std::max(stats.max_run, run_len[v]);
    stats.cuts += cut[v];
  }
  return stats;
}

}  // namespace llmp::core
