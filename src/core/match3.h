// Algorithm Match3 (paper §2; Han [7] / Beame, as stated in Goldberg–
// Plotkin–Shannon [5]) — time O(n·log G(n)/p + log G(n)), not optimal.
//
//   Step 1  label[v] := address of v
//   Step 2  k relabel rounds — "number crunching": labels shrink to
//           b_k = O(log^(k) n) bits so the table below stays small
//   Step 3  log-many rounds of label[v] := label[v] ++ label[NEXT[v]];
//           NEXT[v] := NEXT[NEXT[v]]  (concatenation by pointer jumping)
//   Step 4  label[v] := T[label[v]] — one probe of a table holding an
//           iterated matching partition function; labels are now constant
//   Steps 5–6 = Match1 steps 3–4 (cut + walk)
//
// The table replaces Θ(G(n)) relabel rounds with ceil(log2 w) jump rounds
// plus one probe, w the collapse width needed to reach the fixed-point
// alphabet from b_k-bit labels. Construction cost is preprocessing (the
// paper counts it separately; E11 measures it).
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "core/cut.h"
#include "core/gather.h"
#include "core/match_result.h"
#include "core/partition_fn.h"
#include "list/linked_list.h"
#include "pram/context.h"
#include "support/failpoint.h"

namespace llmp::core {

struct Match3Options {
  /// Crunch rounds k in step 2. 0 = auto: smallest k whose table fits in
  /// kAutoTableCells cells (more crunching → smaller table, more steps —
  /// the adjustable trade-off the paper describes).
  int crunch_rounds = 0;
  BitRule rule = BitRule::kMostSignificant;
  static constexpr std::size_t kAutoTableCells = std::size_t{1} << 16;
};

/// The concrete plan Match3 derives from (n, options); exposed so tests
/// and E6/E11 can sweep it.
struct Match3Plan {
  int crunch_rounds = 0;
  int component_bits = 0;
  int collapse_width = 1;  ///< relabel rounds the table stands in for, +1
  int gather_rounds = 0;   ///< ceil(log2 collapse_width)
  std::size_t table_cells = 0;
  bool needs_table = false;
};

inline Match3Plan plan_match3(std::size_t n, const Match3Options& opt) {
  Match3Plan plan;
  auto build = [&](int k) {
    Match3Plan p;
    p.crunch_rounds = k;
    label_t bound = bound_after_rounds(n, k);
    p.component_bits = itlog::ceil_log2(bound);
    p.needs_table = bound > kFixedPointBound;
    if (p.needs_table) {
      // Width w: collapsing w components performs w−1 more relabel
      // rounds; stop when the bound hits the fixed point.
      int w = 1;
      label_t b = bound;
      while (b > kFixedPointBound) {
        b = partition_bound_after(b);
        ++w;
      }
      p.collapse_width = w;
      p.gather_rounds = itlog::ceil_log2(static_cast<std::uint64_t>(w));
      const int width = 1 << p.gather_rounds;
      const int key_bits = p.component_bits * width;
      p.table_cells = key_bits > MatchingLookupTable::kMaxKeyBits
                          ? 0  // infeasible
                          : std::size_t{1} << key_bits;
    }
    return p;
  };
  if (opt.crunch_rounds > 0) {
    plan = build(opt.crunch_rounds);
    LLMP_CHECK_MSG(!plan.needs_table || plan.table_cells != 0,
                   "crunch_rounds=" << opt.crunch_rounds
                                    << " leaves labels too wide for a table");
    return plan;
  }
  const int max_k = rounds_to_constant(n);
  for (int k = 1; k <= max_k; ++k) {
    plan = build(k);
    if (!plan.needs_table) return plan;  // crunching already finished
    if (plan.table_cells != 0 &&
        plan.table_cells <= Match3Options::kAutoTableCells)
      return plan;
  }
  return build(std::max(1, max_k));
}

/// In-place entry point; see match1_into. (The lookup table itself is
/// preprocessing — E11 measures its construction separately — and is
/// served from the process-wide cached_lookup_table, so only the first
/// call at a given plan pays for the build.)
template <class Exec>
void match3_into(Exec& exec, const list::LinkedList& list,
                 const Match3Options& opt, MatchResult& r) {
  r.reset();
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  pram::Stats mark = start;
  auto wall_mark = std::chrono::steady_clock::now();
  auto phase = [&](const std::string& name) {
    const pram::Stats delta = exec.stats() - mark;
    const auto now = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - wall_mark).count();
    r.phases.push_back({name, delta, wall_ms});
    pram::note_phase(exec, name, delta, wall_ms);
    mark = exec.stats();
    wall_mark = now;
  };

  const Match3Plan plan = plan_match3(n, opt);
  r.relabel_rounds = plan.crunch_rounds;
  r.gather_rounds = plan.gather_rounds;

  // Steps 1–2: address labels, then crunch.
  auto labels_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& labels = *labels_h;
  init_address_labels(exec, n, labels);
  if (n > 1)
    relabel_rounds(exec, list, labels, plan.crunch_rounds, opt.rule,
                   /*labels_are_addresses=*/true);
  phase("crunch");

  // Steps 3–4: concatenate and probe (table construction is
  // preprocessing, not counted in the algorithm's phases; E11 reports it —
  // and the process-wide cache hands warm runs the already-built table, so
  // repeated calls at a stable n allocate nothing here).
  if (n > 1 && plan.needs_table) {
    LLMP_FAILPOINT("core.match3.table");
    const MatchingLookupTable& table = cached_lookup_table(
        plan.component_bits, 1 << plan.gather_rounds, opt.rule,
        plan.collapse_width);
    r.table_cells = table.cells();
    LLMP_CHECK(table.final_bound() <= kFixedPointBound);
    gather_labels(exec, list, labels, plan.component_bits,
                  plan.gather_rounds);
    lookup_labels(exec, table, labels);
  }
  r.partition_sets = distinct_labels(exec, labels);
  phase("gather+lookup");

  // Steps 5–6 = Match1 steps 3–4.
  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  parallel_predecessors_into(exec, list, pred);
  r.cut = cut_and_walk(exec, list, pred, labels, kFixedPointBound,
                       r.in_matching);
  phase("cut+walk");

  r.edges = 0;
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
}

template <class Exec>
MatchResult match3(Exec& exec, const list::LinkedList& list,
                   const Match3Options& opt = {}) {
  MatchResult r;
  match3_into(exec, list, opt, r);
  return r;
}

}  // namespace llmp::core
