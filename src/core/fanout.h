// Exclusive-read fan-out helpers — the EREW idiom.
//
// The CREW variants of the algorithms read a neighbour's cell directly
// (label[suc(v)], color[pred(v)], …): each cell then has up to three
// simultaneous readers, which EREW forbids. The standard fix is an inbox
// per node: in one extra step, every node *pushes* its value to the unique
// neighbour that wants it (writes are exclusive because every node has at
// most one predecessor and one successor), and in the next step every node
// reads only its own inbox. Lemma 4's EREW claim — and the appendix's
// remark that Match2 "can be executed on the EREW model without any
// precomputation" — is validated by running the EREW algorithm variants
// built from these helpers on pram::Machine(Mode::kEREW); see
// tests/erew_test.cpp.
#pragma once

#include <vector>

#include "list/linked_list.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::core {

/// inbox[v] := src[suc(v)] — every node pushes its value to its
/// predecessor. With `circular`, the head pushes to the tail (the paper's
/// suc(tail) = head convention); otherwise the tail's inbox keeps its
/// prior contents. One EREW step.
template <class Exec, class T>
void pull_from_next(Exec& exec, const list::LinkedList& list,
                    const std::vector<index_t>& pred,
                    const std::vector<T>& src, std::vector<T>& inbox,
                    bool circular) {
  const std::size_t n = list.size();
  LLMP_CHECK(src.size() == n && inbox.size() == n && pred.size() == n);
  const index_t tail = list.tail();
  exec.step(n, [&](std::size_t u, auto&& m) {
    index_t p = m.rd(pred, u);
    if (p == knil) {
      if (!circular) return;
      p = tail;
    }
    m.wr(inbox, static_cast<std::size_t>(p), m.rd(src, u));
  });
}

/// inbox[v] := src[pred(v)] — every node pushes its value to its
/// successor. With `circular`, the tail pushes to the head. One EREW step.
template <class Exec, class T>
void pull_from_pred(Exec& exec, const list::LinkedList& list,
                    const std::vector<T>& src, std::vector<T>& inbox,
                    bool circular) {
  const std::size_t n = list.size();
  LLMP_CHECK(src.size() == n && inbox.size() == n);
  const auto& next = list.next_array();
  const index_t head = list.head();
  exec.step(n, [&](std::size_t u, auto&& m) {
    index_t s = m.rd(next, u);
    if (s == knil) {
      if (!circular) return;
      s = head;
    }
    m.wr(inbox, static_cast<std::size_t>(s), m.rd(src, u));
  });
}

}  // namespace llmp::core
