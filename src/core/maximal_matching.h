// Public entry point: pick an algorithm, get a maximal matching plus its
// PRAM cost accounting. This is the API the examples and benches use; the
// individual algorithm headers remain available for fine-grained options.
//
//   llmp::pram::SeqExec exec(/*processors=*/64);
//   auto list = llmp::list::generators::random_list(1 << 20, /*seed=*/1);
//   auto result = llmp::core::maximal_matching(
//       exec, list, {.algorithm = llmp::core::Algorithm::kMatch4,
//                    .i_parameter = 3});
//   llmp::core::verify::check_maximal(list, result.in_matching);
#pragma once

#include <string>

#include "core/match1.h"
#include "core/match2.h"
#include "core/match3.h"
#include "core/match4.h"
#include "core/random_match.h"
#include "core/sequential.h"

namespace llmp::core {

enum class Algorithm {
  kSequential,  ///< greedy walk, T1 = n (the optimality baseline)
  kMatch1,      ///< O(n·G(n)/p + G(n))
  kMatch2,      ///< O(n/p + log n), sort-bound
  kMatch3,      ///< O(n·log G(n)/p + log G(n)), not optimal
  kMatch4,      ///< this paper: O(n·log i/p + log^(i) n + log i)
  kRandomized,  ///< Luby-style coin tossing, O(log n) rounds w.h.p.
};

std::string to_string(Algorithm alg);

struct MatchOptions {
  Algorithm algorithm = Algorithm::kMatch4;
  /// Match4's adjustable i (rows = Θ(log^(i) n)); also reused as Match2's
  /// partition rounds and Match3's crunch rounds when nonzero.
  int i_parameter = 3;
  /// Match4: use the Lemma 5 table-accelerated partition.
  bool partition_with_table = false;
  BitRule rule = BitRule::kMostSignificant;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< randomized baseline only
};

template <class Exec>
MatchResult maximal_matching(Exec& exec, const list::LinkedList& list,
                             const MatchOptions& opt = {}) {
  switch (opt.algorithm) {
    case Algorithm::kSequential:
      return sequential_matching(list);
    case Algorithm::kMatch1:
      return match1(exec, list, Match1Options{opt.rule});
    case Algorithm::kMatch2: {
      Match2Options o;
      o.rule = opt.rule;
      return match2(exec, list, o);
    }
    case Algorithm::kMatch3: {
      Match3Options o;
      o.rule = opt.rule;
      return match3(exec, list, o);
    }
    case Algorithm::kMatch4: {
      Match4Options o;
      o.i_parameter = opt.i_parameter;
      o.partition_with_table = opt.partition_with_table;
      o.rule = opt.rule;
      return match4(exec, list, o);
    }
    case Algorithm::kRandomized:
      return random_matching(exec, list, RandomMatchOptions{opt.seed});
  }
  LLMP_CHECK_MSG(false, "unknown algorithm");
  return {};
}

}  // namespace llmp::core
