// Public entry point: pick an algorithm, get a maximal matching plus its
// PRAM cost accounting. This is the API the examples and benches use; the
// individual algorithm headers remain available for fine-grained options.
//
//   llmp::pram::SeqExec seq(/*processors=*/64);
//   llmp::pram::Context ctx(seq);   // pooled scratch + phase metrics
//   auto list = llmp::list::generators::random_list(1 << 20, /*seed=*/1);
//   auto result = llmp::core::maximal_matching(
//       ctx, list, {.algorithm = llmp::core::Algorithm::kMatch4,
//                   .i_parameter = 3});
//   llmp::core::verify::check_maximal(list, result.in_matching);
//
// Dispatch goes through the single algorithm registry (registry.h): a
// Context over one of the four standard backends — and a bare backend,
// which is wrapped in a throwaway Context — routes through the type-erased
// MatchDispatcher; any other executor type falls back to the same
// dispatch_match template instantiated inline. Either way the algorithm
// code and the step sequence are identical.
#pragma once

#include <string>
#include <type_traits>

#include "core/match_dispatch.h"
#include "core/registry.h"

namespace llmp::core {

namespace detail {

/// The four backends the registry's type-erased runners cover.
template <class E>
inline constexpr bool is_registry_backend_v =
    std::is_same_v<E, pram::SeqExec> || std::is_same_v<E, pram::ParallelExec> ||
    std::is_same_v<E, pram::Machine> || std::is_same_v<E, pram::SymbolicExec>;

}  // namespace detail

/// In-place entry point: fills `out`, reusing its buffers. Warm calls
/// through a pooled pram::Context perform zero heap allocations for the
/// non-sort algorithms (asserted in tests/context_test.cpp).
template <class Exec>
void maximal_matching_into(Exec& exec, const list::LinkedList& list,
                           const MatchOptions& opt, MatchResult& out) {
  if constexpr (pram::is_context_v<Exec>) {
    if constexpr (detail::is_registry_backend_v<typename Exec::backend_type>) {
      AlgorithmRegistry::instance().match_dispatcher().run(exec, list, opt,
                                                           out);
    } else {
      detail::dispatch_match(exec, list, opt, out);
    }
  } else if constexpr (detail::is_registry_backend_v<Exec>) {
    pram::Context<Exec> ctx(exec);
    AlgorithmRegistry::instance().match_dispatcher().run(ctx, list, opt, out);
  } else {
    detail::dispatch_match(exec, list, opt, out);
  }
}

template <class Exec>
MatchResult maximal_matching(Exec& exec, const list::LinkedList& list,
                             const MatchOptions& opt = {}) {
  MatchResult r;
  maximal_matching_into(exec, list, opt, r);
  return r;
}

}  // namespace llmp::core
