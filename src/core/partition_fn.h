// Matching partition functions (paper §2, Lemmas 1–2).
//
// A function m is a *matching partition function* when
// m(a,b) != m(b,c) whenever a != b or b != c: labeling every pointer
// <a, suc(a)> of a linked list with m(a, suc(a)) then partitions the
// pointers into classes in which no two pointers share a node — matching
// sets. The paper's function is
//
//     f(<a,b>) = 2k + a_k,   k = max{ i : bit i of (a XOR b) is 1 },
//
// where a_k (whether the tail's distinguishing bit is set) doubles as the
// forward/backward direction of the pointer across the bisecting line of
// Fig. 2. The variant with k = min{...} (used in [6,15] and in Cole–
// Vishkin's deterministic coin tossing) trades the bisection intuition for
// cheaper evaluation; both are implemented and proven equivalent in the
// tests (both are matching partition functions; their set counts match the
// same bound).
//
// Applying f once maps labels < B to labels < 2·ceil(log2 B) (Lemma 1:
// addresses < n give at most 2 log n matching sets). Re-applying f to the
// labels coarsens the partition (Lemma 2: f^(k) yields 2·log^(k−1) n·
// (1+o(1)) sets) and reaches the fixed point B = 6 after ~G(n) rounds,
// where labels take values in {0..5} and adjacent pointers still differ —
// the basis of Match1 and of the 6→3 coloring in apps/.
#pragma once

#include <algorithm>
#include <vector>

#include "core/fanout.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "support/bits.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::core {

enum class BitRule {
  kMostSignificant,   // the paper's f: k = msb(a XOR b) (Fig. 2 intuition)
  kLeastSignificant,  // the [6,15]/[3] variant: k = lsb(a XOR b)
};

/// f(<a,b>) = 2k + a_k. Precondition: a != b.
inline label_t partition_value(label_t a, label_t b, BitRule rule) {
  LLMP_DCHECK(a != b);
  const label_t x = a ^ b;
  const int k = rule == BitRule::kMostSignificant ? bits::msb_index(x)
                                                  : bits::lsb_index(x);
  return 2 * static_cast<label_t>(k) + ((a >> k) & 1);
}

/// Upper bound on f's value when both arguments are < `input_bound`:
/// one application maps [0, B) into [0, 2·ceil(log2 B)). The fixed point
/// is 6 — the constant label alphabet Match1 cuts on.
label_t partition_bound_after(label_t input_bound);

/// The fixed-point alphabet size: labels no longer shrink once < 6.
inline constexpr label_t kFixedPointBound = 6;

/// One synchronous relabel step over the whole (circularly closed) list:
/// out[v] = f(in[v], in[suc(v)]). One PRAM step, n processors, EREW-illegal
/// only in that each cell is read by its own and its predecessor's
/// processor — i.e. it is CREW (the machine tests pin this down).
template <class Exec>
void relabel(Exec& exec, const list::LinkedList& list,
             const std::vector<label_t>& in, std::vector<label_t>& out,
             BitRule rule) {
  LLMP_CHECK(in.size() == list.size());
  LLMP_CHECK(out.size() == list.size());
  const std::size_t n = list.size();
  const auto& next = list.next_array();
  const index_t head = list.head();
  exec.step(n, [&](std::size_t v, auto&& m) {
    const index_t raw = m.rd(next, v);
    const index_t s = raw == knil ? head : raw;
    const label_t a = m.rd(in, v);
    const label_t b = m.rd(in, static_cast<std::size_t>(s));
    m.wr(out, v, partition_value(a, b, rule));
  });
}

/// EREW relabel: two steps — fan the successor labels into per-node
/// inboxes (exclusive writes), then combine locally (exclusive reads).
/// Same result as relabel(); costs one extra step and one extra array.
template <class Exec>
void relabel_erew(Exec& exec, const list::LinkedList& list,
                  const std::vector<index_t>& pred,
                  const std::vector<label_t>& in, std::vector<label_t>& out,
                  std::vector<label_t>& inbox, BitRule rule) {
  const std::size_t n = list.size();
  LLMP_CHECK(in.size() == n && out.size() == n && inbox.size() == n);
  pull_from_next(exec, list, pred, in, inbox, /*circular=*/true);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(out, v, partition_value(m.rd(in, v), m.rd(inbox, v), rule));
  });
}

/// Assign initial labels: the node's own address (paper Match1 step 1).
template <class Exec>
void init_address_labels(Exec& exec, std::size_t n,
                         std::vector<label_t>& labels) {
  labels.assign(n, 0);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(labels, v, static_cast<label_t>(v));
  });
}

/// Iterate `rounds` relabel steps (computing f^(rounds+1)); labels must
/// start pairwise-distinct-adjacent (addresses qualify). Uses an internal
/// scratch buffer; `labels` holds the result.
template <class Exec>
void relabel_rounds(Exec& exec, const list::LinkedList& list,
                    std::vector<label_t>& labels, int rounds, BitRule rule) {
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  for (int r = 0; r < rounds; ++r) {
    relabel(exec, list, labels, tmp, rule);
    labels.swap(tmp);
  }
}

/// Iterate relabel steps until the label *bound* reaches the fixed point
/// (< 6). Returns the number of rounds executed — Θ(G(n)), compared
/// against itlog::G in the Lemma 2 tests. Single-node lists need no work.
template <class Exec>
int reduce_to_constant(Exec& exec, const list::LinkedList& list,
                       std::vector<label_t>& labels, BitRule rule) {
  if (list.size() <= 1) return 0;
  label_t bound = static_cast<label_t>(list.size());
  int rounds = 0;
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  while (bound > kFixedPointBound) {
    relabel(exec, list, labels, tmp, rule);
    labels.swap(tmp);
    bound = partition_bound_after(bound);
    ++rounds;
  }
  return rounds;
}

/// EREW counterpart of relabel_rounds (needs the predecessor array).
template <class Exec>
void relabel_rounds_erew(Exec& exec, const list::LinkedList& list,
                         const std::vector<index_t>& pred,
                         std::vector<label_t>& labels, int rounds,
                         BitRule rule) {
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  auto inbox_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  std::vector<label_t>& inbox = *inbox_h;
  for (int r = 0; r < rounds; ++r) {
    relabel_erew(exec, list, pred, labels, tmp, inbox, rule);
    labels.swap(tmp);
  }
}

/// EREW counterpart of reduce_to_constant.
template <class Exec>
int reduce_to_constant_erew(Exec& exec, const list::LinkedList& list,
                            const std::vector<index_t>& pred,
                            std::vector<label_t>& labels, BitRule rule) {
  if (list.size() <= 1) return 0;
  label_t bound = static_cast<label_t>(list.size());
  int rounds = 0;
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  auto inbox_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  std::vector<label_t>& inbox = *inbox_h;
  while (bound > kFixedPointBound) {
    relabel_erew(exec, list, pred, labels, tmp, inbox, rule);
    labels.swap(tmp);
    bound = partition_bound_after(bound);
    ++rounds;
  }
  return rounds;
}

/// Number of distinct values among labels[v] for all n circular pointers.
std::size_t distinct_labels(const std::vector<label_t>& labels);

/// Arena-aware overload: sorts a pooled copy, so warm Context runs do not
/// allocate for the audit. Host-side (no PRAM steps), like the above.
template <class Exec>
std::size_t distinct_labels(Exec& exec, const std::vector<label_t>& labels) {
  auto copy_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& copy = *copy_h;
  std::copy(labels.begin(), labels.end(), copy.begin());
  std::sort(copy.begin(), copy.end());
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < copy.size(); ++i)
    distinct += (i == 0 || copy[i] != copy[i - 1]);
  return distinct;
}

}  // namespace llmp::core
