// Matching partition functions (paper §2, Lemmas 1–2).
//
// A function m is a *matching partition function* when
// m(a,b) != m(b,c) whenever a != b or b != c: labeling every pointer
// <a, suc(a)> of a linked list with m(a, suc(a)) then partitions the
// pointers into classes in which no two pointers share a node — matching
// sets. The paper's function is
//
//     f(<a,b>) = 2k + a_k,   k = max{ i : bit i of (a XOR b) is 1 },
//
// where a_k (whether the tail's distinguishing bit is set) doubles as the
// forward/backward direction of the pointer across the bisecting line of
// Fig. 2. The variant with k = min{...} (used in [6,15] and in Cole–
// Vishkin's deterministic coin tossing) trades the bisection intuition for
// cheaper evaluation; both are implemented and proven equivalent in the
// tests (both are matching partition functions; their set counts match the
// same bound).
//
// Applying f once maps labels < B to labels < 2·ceil(log2 B) (Lemma 1:
// addresses < n give at most 2 log n matching sets). Re-applying f to the
// labels coarsens the partition (Lemma 2: f^(k) yields 2·log^(k−1) n·
// (1+o(1)) sets) and reaches the fixed point B = 6 after ~G(n) rounds,
// where labels take values in {0..5} and adjacent pointers still differ —
// the basis of Match1 and of the 6→3 coloring in apps/.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/fanout.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "pram/sweep.h"
#include "support/bits.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::core {

enum class BitRule {
  kMostSignificant,   // the paper's f: k = msb(a XOR b) (Fig. 2 intuition)
  kLeastSignificant,  // the [6,15]/[3] variant: k = lsb(a XOR b)
};

/// f(<a,b>) = 2k + a_k. Precondition: a != b.
inline label_t partition_value(label_t a, label_t b, BitRule rule) {
  LLMP_DCHECK(a != b);
  const label_t x = a ^ b;
  const int k = rule == BitRule::kMostSignificant ? bits::msb_index(x)
                                                  : bits::lsb_index(x);
  return 2 * static_cast<label_t>(k) + ((a >> k) & 1);
}

/// Upper bound on f's value when both arguments are < `input_bound`:
/// one application maps [0, B) into [0, 2·ceil(log2 B)). The fixed point
/// is 6 — the constant label alphabet Match1 cuts on.
label_t partition_bound_after(label_t input_bound);

/// The fixed-point alphabet size: labels no longer shrink once < 6.
inline constexpr label_t kFixedPointBound = 6;

namespace detail {
/// Fused relabel kernel over [lo, hi): gather the successor labels into a
/// small contiguous buffer (prefetching the pointer chase `dist` elements
/// ahead), then crunch whole blocks through the SIMD partition function.
/// Bit-identical to the per-element step body it replaces. The label type
/// is templated so multi-round callers can keep intermediate labels in
/// uint8 (one application of f lands below 2·64 = 128 whatever the input,
/// since k <= 63), shrinking the random-gather working set 8x.
template <class SrcT, class DstT>
inline void relabel_span_t(const index_t* nx, const SrcT* src, DstT* dst,
                           std::size_t lo, std::size_t hi, index_t head,
                           BitRule rule) {
  constexpr std::size_t kBlock = 256;
  const std::size_t dist =
      static_cast<std::size_t>(pram::tuning().prefetch.distance);
  const bool msb = rule == BitRule::kMostSignificant;
  SrcT bbuf[kBlock];
  for (std::size_t base = lo; base < hi; base += kBlock) {
    const std::size_t len = std::min(kBlock, hi - base);
    for (std::size_t i = 0; i < len; ++i) {
      if (dist != 0 && i + dist < len) {
        const index_t pf = nx[base + i + dist];
        pram::prefetch_ro(src + (pf == knil ? head : pf));
      }
      const index_t raw = nx[base + i];
      bbuf[i] = src[raw == knil ? head : raw];
    }
    if constexpr (std::is_same_v<SrcT, label_t>) {
      if constexpr (std::is_same_v<DstT, label_t>) {
        pram::simd::crunch_pairs(src + base, bbuf, dst + base, len, msb);
      } else {
        label_t wide[kBlock];
        pram::simd::crunch_pairs(src + base, bbuf, wide, len, msb);
        for (std::size_t i = 0; i < len; ++i)
          dst[base + i] = static_cast<DstT>(wide[i]);
      }
    } else {
      if constexpr (std::is_same_v<DstT, std::uint8_t>) {
        pram::simd::crunch_bytes(src + base, bbuf, dst + base, len, msb);
      } else {
        std::uint8_t narrow[kBlock];
        pram::simd::crunch_bytes(src + base, bbuf, narrow, len, msb);
        for (std::size_t i = 0; i < len; ++i)
          dst[base + i] = static_cast<DstT>(narrow[i]);
      }
    }
  }
}

inline void relabel_span(const index_t* nx, const label_t* src, label_t* dst,
                         std::size_t lo, std::size_t hi, index_t head,
                         BitRule rule) {
  relabel_span_t(nx, src, dst, lo, hi, head, rule);
}

/// Round-1 kernel for labels that ARE the node addresses (the state right
/// after init_address_labels): in[v] = v and in[suc(v)] = suc(v), so both
/// crunch operands come straight from the loop counter and the streamed
/// next array — the round needs no random access at all.
template <class DstT>
inline void relabel_addresses_span(const index_t* nx, DstT* dst,
                                   std::size_t lo, std::size_t hi,
                                   index_t head, BitRule rule) {
  constexpr std::size_t kBlock = 256;
  const bool msb = rule == BitRule::kMostSignificant;
  label_t abuf[kBlock];
  label_t bbuf[kBlock];
  for (std::size_t base = lo; base < hi; base += kBlock) {
    const std::size_t len = std::min(kBlock, hi - base);
    for (std::size_t i = 0; i < len; ++i) {
      abuf[i] = static_cast<label_t>(base + i);
      const index_t raw = nx[base + i];
      bbuf[i] = static_cast<label_t>(raw == knil ? head : raw);
    }
    if constexpr (std::is_same_v<DstT, label_t>) {
      pram::simd::crunch_pairs(abuf, bbuf, dst + base, len, msb);
    } else {
      label_t wide[kBlock];
      pram::simd::crunch_pairs(abuf, bbuf, wide, len, msb);
      for (std::size_t i = 0; i < len; ++i)
        dst[base + i] = static_cast<DstT>(wide[i]);
    }
  }
}

/// Fused driver for `rounds` >= 2 consecutive relabel steps. The first
/// round crunches the caller's 64-bit labels into a uint8 shadow, the
/// middle rounds ping-pong uint8 -> uint8 (the random gather then touches
/// an n-byte array instead of an 8n-byte one — at sizes beyond cache this
/// is where the relabel wall time goes), and the last round widens back
/// into `labels`. Values are bit-identical to iterating relabel(): every
/// post-first-round label fits uint8 because f(a,b) = 2k + a_k <= 127.
/// Charges exactly one sweep (= one legacy step) per round.
template <class Exec>
void narrow_relabel_rounds(Exec& exec, const list::LinkedList& list,
                           std::vector<label_t>& labels, int rounds,
                           BitRule rule, bool labels_are_addresses) {
  LLMP_DCHECK(rounds >= 2);
  const std::size_t n = list.size();
  const index_t* nx = list.next_array().data();
  const index_t head = list.head();
  auto shadow_h = pram::scratch<std::uint8_t>(exec, n);
  auto shadow2_h = pram::scratch<std::uint8_t>(exec, n);
  std::uint8_t* cur = (*shadow_h).data();
  std::uint8_t* nxt_buf = (*shadow2_h).data();
  if (labels_are_addresses) {
    std::uint8_t* dst = cur;
    exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
      relabel_addresses_span(nx, dst, lo, hi, head, rule);
    });
  } else {
    const label_t* src = labels.data();
    std::uint8_t* dst = cur;
    exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
      relabel_span_t(nx, src, dst, lo, hi, head, rule);
    });
  }
  for (int r = 1; r + 1 < rounds; ++r) {
    const std::uint8_t* src = cur;
    std::uint8_t* dst = nxt_buf;
    exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
      relabel_span_t(nx, src, dst, lo, hi, head, rule);
    });
    std::swap(cur, nxt_buf);
  }
  {
    const std::uint8_t* src = cur;
    label_t* dst = labels.data();
    exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
      relabel_span_t(nx, src, dst, lo, hi, head, rule);
    });
  }
}
}  // namespace detail

/// One synchronous relabel step over the whole (circularly closed) list:
/// out[v] = f(in[v], in[suc(v)]). One PRAM step, n processors, EREW-illegal
/// only in that each cell is read by its own and its predecessor's
/// processor — i.e. it is CREW (the machine tests pin this down).
template <class Exec>
void relabel(Exec& exec, const list::LinkedList& list,
             const std::vector<label_t>& in, std::vector<label_t>& out,
             BitRule rule) {
  LLMP_CHECK(in.size() == list.size());
  LLMP_CHECK(out.size() == list.size());
  const std::size_t n = list.size();
  const auto& next = list.next_array();
  const index_t head = list.head();
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      const index_t* nx = next.data();
      const label_t* src = in.data();
      label_t* dst = out.data();
      exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
        detail::relabel_span(nx, src, dst, lo, hi, head, rule);
      });
      return;
    }
  }
  exec.step(n, [&](std::size_t v, auto&& m) {
    const index_t raw = m.rd(next, v);
    const index_t s = raw == knil ? head : raw;
    const label_t a = m.rd(in, v);
    const label_t b = m.rd(in, static_cast<std::size_t>(s));
    m.wr(out, v, partition_value(a, b, rule));
  });
}

/// EREW relabel: two steps — fan the successor labels into per-node
/// inboxes (exclusive writes), then combine locally (exclusive reads).
/// Same result as relabel(); costs one extra step and one extra array.
template <class Exec>
void relabel_erew(Exec& exec, const list::LinkedList& list,
                  const std::vector<index_t>& pred,
                  const std::vector<label_t>& in, std::vector<label_t>& out,
                  std::vector<label_t>& inbox, BitRule rule) {
  const std::size_t n = list.size();
  LLMP_CHECK(in.size() == n && out.size() == n && inbox.size() == n);
  pull_from_next(exec, list, pred, in, inbox, /*circular=*/true);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(out, v, partition_value(m.rd(in, v), m.rd(inbox, v), rule));
  });
}

/// Assign initial labels: the node's own address (paper Match1 step 1).
template <class Exec>
void init_address_labels(Exec& exec, std::size_t n,
                         std::vector<label_t>& labels) {
  labels.assign(n, 0);
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      label_t* dst = labels.data();
      exec.sweep(n, 1, [dst](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) dst[v] = static_cast<label_t>(v);
      });
      return;
    }
  }
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(labels, v, static_cast<label_t>(v));
  });
}

/// Iterate `rounds` relabel steps (computing f^(rounds+1)); labels must
/// start pairwise-distinct-adjacent (addresses qualify). Uses an internal
/// scratch buffer; `labels` holds the result.
/// `labels_are_addresses` asserts the caller just ran init_address_labels
/// and has not touched `labels` since — the fused first round then skips
/// its gather entirely (the operands are the loop counter and the streamed
/// next array). Results are identical either way.
template <class Exec>
void relabel_rounds(Exec& exec, const list::LinkedList& list,
                    std::vector<label_t>& labels, int rounds, BitRule rule,
                    bool labels_are_addresses = false) {
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      if (rounds >= 2) {
        detail::narrow_relabel_rounds(exec, list, labels, rounds, rule,
                                      labels_are_addresses);
        return;
      }
      if (rounds == 1 && labels_are_addresses) {
        const index_t* nx = list.next_array().data();
        const index_t head = list.head();
        label_t* dst = labels.data();
        exec.sweep(list.size(), 1, [=](std::size_t lo, std::size_t hi) {
          detail::relabel_addresses_span(nx, dst, lo, hi, head, rule);
        });
        return;
      }
    }
  }
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  for (int r = 0; r < rounds; ++r) {
    relabel(exec, list, labels, tmp, rule);
    labels.swap(tmp);
  }
}

/// Iterate relabel steps until the label *bound* reaches the fixed point
/// (< 6). Returns the number of rounds executed — Θ(G(n)), compared
/// against itlog::G in the Lemma 2 tests. Single-node lists need no work.
template <class Exec>
int reduce_to_constant(Exec& exec, const list::LinkedList& list,
                       std::vector<label_t>& labels, BitRule rule,
                       bool labels_are_addresses = false) {
  if (list.size() <= 1) return 0;
  // The round count is a pure function of n (the bound sequence), so it
  // can be planned upfront and the whole run handed to the narrowed
  // multi-round driver.
  int planned = 0;
  for (label_t bound = static_cast<label_t>(list.size());
       bound > kFixedPointBound; bound = partition_bound_after(bound))
    ++planned;
  relabel_rounds(exec, list, labels, planned, rule, labels_are_addresses);
  return planned;
}

/// EREW counterpart of relabel_rounds (needs the predecessor array).
template <class Exec>
void relabel_rounds_erew(Exec& exec, const list::LinkedList& list,
                         const std::vector<index_t>& pred,
                         std::vector<label_t>& labels, int rounds,
                         BitRule rule) {
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  auto inbox_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  std::vector<label_t>& inbox = *inbox_h;
  for (int r = 0; r < rounds; ++r) {
    relabel_erew(exec, list, pred, labels, tmp, inbox, rule);
    labels.swap(tmp);
  }
}

/// EREW counterpart of reduce_to_constant.
template <class Exec>
int reduce_to_constant_erew(Exec& exec, const list::LinkedList& list,
                            const std::vector<index_t>& pred,
                            std::vector<label_t>& labels, BitRule rule) {
  if (list.size() <= 1) return 0;
  label_t bound = static_cast<label_t>(list.size());
  int rounds = 0;
  auto tmp_h = pram::scratch<label_t>(exec, labels.size());
  auto inbox_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& tmp = *tmp_h;
  std::vector<label_t>& inbox = *inbox_h;
  while (bound > kFixedPointBound) {
    relabel_erew(exec, list, pred, labels, tmp, inbox, rule);
    labels.swap(tmp);
    bound = partition_bound_after(bound);
    ++rounds;
  }
  return rounds;
}

/// Number of distinct values among labels[v] for all n circular pointers.
std::size_t distinct_labels(const std::vector<label_t>& labels);

/// Arena-aware overload: sorts a pooled copy, so warm Context runs do not
/// allocate for the audit. Host-side (no PRAM steps), like the above.
template <class Exec>
std::size_t distinct_labels(Exec& exec, const std::vector<label_t>& labels) {
  auto copy_h = pram::scratch<label_t>(exec, labels.size());
  std::vector<label_t>& copy = *copy_h;
  std::copy(labels.begin(), labels.end(), copy.begin());
  std::sort(copy.begin(), copy.end());
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < copy.size(); ++i)
    distinct += (i == 0 || copy[i] != copy[i - 1]);
  return distinct;
}

}  // namespace llmp::core
