// Result type shared by all matching algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cut.h"
#include "pram/stats.h"
#include "pram/sweep.h"
#include "support/types.h"

namespace llmp::core {

struct MatchResult {
  /// in_matching[v] == 1 ⇔ pointer <v, suc(v)> is in the matching.
  std::vector<std::uint8_t> in_matching;
  std::size_t edges = 0;  ///< number of chosen pointers

  pram::Stats cost;              ///< total PRAM cost of the run
  pram::PhaseBreakdown phases;   ///< per-phase deltas (see stats.h)

  int relabel_rounds = 0;        ///< deterministic-coin-tossing rounds used
  int gather_rounds = 0;         ///< Match3/4 concatenation-jump rounds
  std::size_t table_cells = 0;   ///< Match3/4 lookup-table size (0 = none)
  std::size_t partition_sets = 0;  ///< matching sets before combining
  CutStats cut;                  ///< step-3/4 audit numbers

  /// Reset for reuse by the *_into entry points: clears counters and the
  /// phase list while keeping vector capacity, so warm calls through a
  /// pram::Context allocate nothing.
  void reset() {
    edges = 0;
    cost = {};
    phases.clear();
    relabel_rounds = 0;
    gather_rounds = 0;
    table_cells = 0;
    partition_sets = 0;
    cut = {};
  }
};

/// Compute the predecessor array as one PRAM step pair (init + scatter)
/// into a caller-sized buffer; writes are exclusive (each node has at most
/// one predecessor) — EREW.
template <class Exec>
void parallel_predecessors_into(Exec& exec, const list::LinkedList& list,
                                std::vector<index_t>& pred) {
  const std::size_t n = list.size();
  const auto& next = list.next_array();
  LLMP_CHECK(pred.size() == n);
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      const index_t* nx = next.data();
      index_t* pr = pred.data();
      exec.sweep(n, 1, [pr](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) pr[v] = knil;
      });
      const std::size_t dist =
          static_cast<std::size_t>(pram::tuning().prefetch.distance);
      exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          if (dist != 0 && v + dist < hi) {
            const index_t pf = nx[v + dist];
            if (pf != knil) pram::prefetch_rw(pr + pf);
          }
          const index_t s = nx[v];
          if (s != knil) pr[s] = static_cast<index_t>(v);
        }
      });
      return;
    }
  }
  exec.step(n, [&](std::size_t v, auto&& m) { m.wr(pred, v, knil); });
  exec.step(n, [&](std::size_t v, auto&& m) {
    const index_t s = m.rd(next, v);
    if (s != knil) m.wr(pred, static_cast<std::size_t>(s),
                        static_cast<index_t>(v));
  });
}

template <class Exec>
std::vector<index_t> parallel_predecessors(Exec& exec,
                                           const list::LinkedList& list) {
  std::vector<index_t> pred(list.size());
  parallel_predecessors_into(exec, list, pred);
  return pred;
}

}  // namespace llmp::core
