// Algorithm Match2 (paper §2; Han [6] / Cole–Vishkin [3]) — the optimal
// O(n/p + log n) algorithm whose sort step the paper's contribution
// (Match4) eliminates.
//
//   Step 1  partition the pointers into ≤ 2·log^(2) n·(1+o(1)) matching
//           sets (two relabel rounds, i.e. f^(3))
//   Step 2  *globally* sort pointers by set number so each set is
//           contiguous — integers in {0..R−1}, R = O(log log n)
//   Step 3  sweep the sets one at a time; within a set all pointers are
//           node-disjoint, so each checks DONE on its endpoints, claims
//           both, and joins S
//
// The sort is a parallel stable counting sort (pram/prefix.h); the paper's
// point — visible in this implementation's phase breakdown (E5) — is that
// the sort is the only phase whose time does not scale down to O(n/p)
// with many processors, which makes Match2 "inefficient" beyond
// p = O(n / log n).
#pragma once

#include <algorithm>
#include <chrono>
#include <string>

#include "core/match_result.h"
#include "core/partition_fn.h"
#include "list/linked_list.h"
#include "pram/context.h"
#include "pram/prefix.h"
#include "support/failpoint.h"
#include "support/itlog.h"

namespace llmp::core {

struct Match2Options {
  /// Relabel rounds in step 1. Two rounds compute f^(3): set numbers
  /// bounded by 2·ceil(log2(2·ceil(log2 n))) = O(log log n), the paper's
  /// choice. More rounds shrink R further at one extra step each.
  int partition_rounds = 2;
  BitRule rule = BitRule::kMostSignificant;
  /// Histogram blocks for the sort; 0 = use the executor's p.
  std::size_t sort_blocks = 0;
  /// Run the EREW-legal variant. The paper's Lemma 4 is an EREW bound and
  /// the appendix notes Match2 runs on EREW "without any precomputation";
  /// only step 1's relabel needs the inbox fan-out — the sort and the
  /// sweep are exclusive already.
  bool erew = false;
};

/// The concrete sizes Match2 derives from (n, options, p) before touching
/// the list — the plan every sort buffer is pre-sized from, which is what
/// extends the zero-steady-state-allocation guarantee to Match2: all
/// scratch (keys, order, offsets, the padded counter grid) is leased at
/// plan-determined sizes, so a warm Context serves every take from the
/// pool (asserted by tests/context_test.cpp).
struct Match2Plan {
  int partition_rounds = 2;
  label_t label_bound = 1;   ///< R: exclusive bound on set numbers
  std::size_t blocks = 1;    ///< histogram blocks (min(p-or-option, n))
  std::size_t count_cells = 1;  ///< counter grid, pow2-padded for the scan
};

inline Match2Plan plan_match2(std::size_t n, const Match2Options& opt,
                              std::size_t processors) {
  LLMP_FAILPOINT("core.match2.plan");
  Match2Plan plan;
  plan.partition_rounds = opt.partition_rounds;
  label_t bound = static_cast<label_t>(n);
  if (n > 1) {
    for (int t = 0; t < opt.partition_rounds; ++t)
      bound = partition_bound_after(bound);
  } else {
    bound = 1;
  }
  plan.label_bound = bound;
  plan.blocks = opt.sort_blocks == 0 ? processors : opt.sort_blocks;
  plan.blocks = std::min(plan.blocks, std::max<std::size_t>(n, 1));
  plan.count_cells = std::size_t{1} << itlog::ceil_log2(
      static_cast<std::size_t>(plan.label_bound) * plan.blocks);
  return plan;
}

/// In-place entry point; see match1_into. Warm calls through a pooled
/// pram::Context allocate nothing: every sort buffer is pre-sized from
/// plan_match2 and leased from the arena.
template <class Exec>
void match2_into(Exec& exec, const list::LinkedList& list,
                 const Match2Options& opt, MatchResult& r) {
  r.reset();
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  pram::Stats mark = start;
  auto wall_mark = std::chrono::steady_clock::now();
  auto phase = [&](const std::string& name) {
    const pram::Stats delta = exec.stats() - mark;
    const auto now = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - wall_mark).count();
    r.phases.push_back({name, delta, wall_ms});
    pram::note_phase(exec, name, delta, wall_ms);
    mark = exec.stats();
    wall_mark = now;
  };

  const Match2Plan plan = plan_match2(n, opt, exec.processors());

  // Step 1: matching partition into R sets.
  auto labels_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& labels = *labels_h;
  init_address_labels(exec, n, labels);
  if (n > 1) {
    if (opt.erew) {
      auto pred_h = pram::scratch<index_t>(exec, n);
      std::vector<index_t>& pred = *pred_h;
      parallel_predecessors_into(exec, list, pred);
      relabel_rounds_erew(exec, list, pred, labels, opt.partition_rounds,
                          opt.rule);
    } else {
      relabel_rounds(exec, list, labels, opt.partition_rounds, opt.rule,
                     /*labels_are_addresses=*/true);
    }
  }
  r.relabel_rounds = opt.partition_rounds;
  r.partition_sets = distinct_labels(exec, labels);
  phase("partition");

  // Step 2: global sort of pointers by set number, into arena-leased
  // buffers pre-sized from the plan. (The tail has no real pointer; it is
  // sorted along and skipped in the sweep.)
  const index_t range = static_cast<index_t>(plan.label_bound);
  auto keys_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& keys = *keys_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(keys, v, static_cast<index_t>(m.rd(labels, v)));
  });
  auto order_h = pram::scratch<index_t>(exec, n);
  auto offsets_h =
      pram::scratch<std::uint64_t>(exec, static_cast<std::size_t>(range) + 1);
  std::vector<index_t>& order = *order_h;
  std::vector<std::uint64_t>& offsets = *offsets_h;
  pram::counting_sort_by_key_into(exec, keys, range, plan.blocks, order,
                                  offsets);
  phase("sort");

  // Step 3: process the sets one by one.
  const auto& next = list.next_array();
  auto done_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& done = *done_h;
  r.in_matching.assign(n, 0);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(done, v, std::uint8_t{0});
  });
  for (index_t k = 0; k < range; ++k) {
    const std::uint64_t lo = offsets[k];
    const std::uint64_t hi = offsets[k + 1];
    if (lo == hi) continue;
    exec.step(static_cast<std::size_t>(hi - lo), [&](std::size_t t,
                                                     auto&& m) {
      const index_t v = m.rd(order, static_cast<std::size_t>(lo) + t);
      const index_t s = m.rd(next, static_cast<std::size_t>(v));
      if (s == knil) return;  // tail: no pointer
      if (m.rd(done, static_cast<std::size_t>(v)) ||
          m.rd(done, static_cast<std::size_t>(s)))
        return;
      m.wr(done, static_cast<std::size_t>(v), std::uint8_t{1});
      m.wr(done, static_cast<std::size_t>(s), std::uint8_t{1});
      m.wr(r.in_matching, static_cast<std::size_t>(v), std::uint8_t{1});
    });
  }
  phase("sweep");

  r.edges = 0;
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
}

template <class Exec>
MatchResult match2(Exec& exec, const list::LinkedList& list,
                   const Match2Options& opt = {}) {
  MatchResult r;
  match2_into(exec, list, opt, r);
  return r;
}

}  // namespace llmp::core
