// Randomized coin-tossing baseline (the prior-art family the paper's
// introduction contrasts with: randomized list algorithms à la Miller–Reif
// [11,13]). Luby-style symmetry breaking on the path graph of pointers:
// every round, each still-active pointer draws a random priority; a
// pointer joins the matching when its priority beats both neighbours'.
// Selected pointers and their neighbours deactivate; a constant expected
// fraction of active pointers dies per round, so O(log n) rounds w.h.p.
// — which is exactly what the deterministic algorithms beat.
#pragma once

#include <string>

#include "core/match_result.h"
#include "list/linked_list.h"
#include "pram/context.h"
#include "support/rng.h"

namespace llmp::core {

struct RandomMatchOptions {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

namespace detail {
/// Deterministic per-(round, node) priority: a pure function, so every
/// virtual processor can evaluate it locally with no shared RNG state.
inline std::uint64_t priority(std::uint64_t seed, std::uint64_t round,
                              std::uint64_t v) {
  rng::SplitMix64 sm(seed ^ (round * 0xa0761d6478bd642fULL) ^
                     (v * 0xe7037ed1a0b428dbULL));
  return sm.next();
}
}  // namespace detail

/// In-place entry point; see match1_into.
template <class Exec>
void random_matching_into(Exec& exec, const list::LinkedList& list,
                          const RandomMatchOptions& opt, MatchResult& r) {
  r.reset();
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  const auto& next = list.next_array();
  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  parallel_predecessors_into(exec, list, pred);

  auto active_h = pram::scratch<std::uint8_t>(exec, n);
  auto covered_h = pram::scratch<std::uint8_t>(exec, n);
  auto selected_h = pram::scratch<std::uint8_t>(exec, n);
  std::vector<std::uint8_t>& active = *active_h;
  std::vector<std::uint8_t>& covered = *covered_h;
  std::vector<std::uint8_t>& selected = *selected_h;
  r.in_matching.assign(n, 0);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(active, v, static_cast<std::uint8_t>(m.rd(next, v) != knil));
    m.wr(covered, v, std::uint8_t{0});
  });

  std::size_t remaining = list.pointers();
  int rounds = 0;
  while (remaining > 0) {
    const std::uint64_t round = static_cast<std::uint64_t>(rounds);
    // Draw priorities implicitly; select local maxima among active
    // pointers (ties broken by node id, which priority() makes measure-0
    // anyway).
    exec.step(n, [&](std::size_t v, auto&& m) {
      m.wr(selected, v, std::uint8_t{0});
      if (!m.rd(active, v)) return;
      const std::uint64_t mine = detail::priority(opt.seed, round, v);
      const index_t pv = m.rd(pred, v);
      if (pv != knil && m.rd(active, static_cast<std::size_t>(pv)) &&
          detail::priority(opt.seed, round, pv) >= mine)
        return;
      const index_t s = m.rd(next, v);
      if (s != knil && m.rd(next, static_cast<std::size_t>(s)) != knil &&
          m.rd(active, static_cast<std::size_t>(s)) &&
          detail::priority(opt.seed, round, s) > mine)
        return;
      m.wr(selected, v, std::uint8_t{1});
    });
    // Commit selections: cover both endpoints.
    exec.step(n, [&](std::size_t v, auto&& m) {
      if (!m.rd(selected, v)) return;
      m.wr(r.in_matching, v, std::uint8_t{1});
      m.wr(covered, v, std::uint8_t{1});
      m.wr(covered, static_cast<std::size_t>(m.rd(next, v)), std::uint8_t{1});
    });
    // Deactivate pointers with a covered endpoint.
    exec.step(n, [&](std::size_t v, auto&& m) {
      if (!m.rd(active, v)) return;
      const index_t s = m.rd(next, v);
      if (m.rd(covered, v) || m.rd(covered, static_cast<std::size_t>(s)))
        m.wr(active, v, std::uint8_t{0});
    });
    // Loop control (host side; a PRAM would OR-reduce in O(log n) once).
    std::size_t still = 0;
    for (std::size_t v = 0; v < n; ++v) still += (active[v] != 0);
    LLMP_CHECK_MSG(still < remaining, "no progress in a randomized round");
    remaining = still;
    ++rounds;
  }

  r.relabel_rounds = rounds;
  r.edges = 0;
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
  r.phases.push_back({"rounds", r.cost});
  pram::note_phase(exec, "rounds", r.cost);
}

template <class Exec>
MatchResult random_matching(Exec& exec, const list::LinkedList& list,
                            const RandomMatchOptions& opt = {}) {
  MatchResult r;
  random_matching_into(exec, list, opt, r);
  return r;
}

}  // namespace llmp::core
