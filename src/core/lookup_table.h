// Lookup tables for iterated matching partition functions (Match3 step 4
// and the paper's appendix).
//
// Match3 concatenates the (crunched, b-bit) labels of w = 2^r consecutive
// nodes into one key of b·w bits and resolves the whole remaining
// reduction with a single table probe: T[key] = f^(w)(a_1, …, a_w), the
// w-fold iterated matching partition function evaluated on the key's
// components. f^(w) is itself a matching partition function (paper §2), so
// T[key(v)] != T[key(suc(v))] whenever adjacent node labels differ — and
// with b >= 3-bit components the collapsed value lands in the fixed-point
// alphabet {0..5}, ready for Match1 steps 3–4.
//
// The appendix constructs such a table on the EREW PRAM by *guessing* the
// i(i+1)/2 pyramid cells f^(q+1)(a_p..a_{p+q}) of every key, verifying
// each cell from the two cells below it in one parallel step, and fanning
// in the per-cell verdicts with a binary tree in O(log w) steps. We
// reproduce that scheme in verify_pyramid (templated on the executor so
// the Machine can audit its depth and memory discipline): the simulator
// cannot enumerate exponentially many guesses at once, so it plays the
// nondeterministic move by presenting the (unique) consistent guess and
// then runs the paper's verification circuit verbatim. Its measured depth
// — O(log w), independent of n — is experiment E11.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition_fn.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::core {

/// f extended to equal arguments (never queried for valid list keys):
/// returns 0 so table construction can enumerate all bit patterns.
inline label_t safe_partition_value(label_t a, label_t b, BitRule rule) {
  return a == b ? 0 : partition_value(a, b, rule);
}

class MatchingLookupTable {
 public:
  static constexpr int kMaxKeyBits = 26;  // 64 MiB of uint8 cells at most

  /// Build T for tuples of `tuple_width` components of `component_bits`
  /// bits each (component_bits·tuple_width <= kMaxKeyBits).
  /// `collapse_width` (default 0 = tuple_width) collapses only the first
  /// that many components: T[key] = f^(collapse_width)(a_1 … a_cw). Match3
  /// collapses the full tuple to a constant; Match4's fast partition
  /// (Lemma 5) stops at w = i−k+1 components to land on Θ(log^(i) n) sets
  /// even though pointer jumping gathered a power-of-two tuple.
  MatchingLookupTable(int component_bits, int tuple_width, BitRule rule,
                      int collapse_width = 0);

  /// T[key]: the collapsed label, < final_bound().
  label_t value(label_t key) const {
    LLMP_DCHECK(key < table_.size());
    return table_[static_cast<std::size_t>(key)];
  }

  /// Raw cell storage (cells() entries) — lets fused sweeps prefetch the
  /// probe target ahead of the dependent load (core/gather.h).
  const std::uint8_t* raw() const { return table_.data(); }

  int component_bits() const { return component_bits_; }
  int tuple_width() const { return tuple_width_; }
  int collapse_width() const { return collapse_width_; }
  std::size_t cells() const { return table_.size(); }
  /// Exclusive upper bound of stored values over *valid* keys (those whose
  /// adjacent components differ); <= 6 whenever component_bits <= 3.
  label_t final_bound() const { return final_bound_; }
  BitRule rule() const { return rule_; }

  /// Split a key into its components, a[0] = most significant (the tuple
  /// head's own label, per Match3's concatenation order).
  std::vector<label_t> components(label_t key) const;

  /// Collapse one tuple directly (no table) — the ground truth the table
  /// is built from and that tests compare against.
  static label_t collapse(const std::vector<label_t>& a, BitRule rule);

 private:
  int component_bits_;
  int tuple_width_;
  int collapse_width_;
  BitRule rule_;
  label_t final_bound_ = 0;
  std::vector<std::uint8_t> table_;
};

/// Process-wide cache of built tables, keyed by the full constructor
/// parameter tuple. A table depends only on its parameters — which Match3
/// and Match4 derive deterministically from (n, options) via their plan
/// objects — never on the list, so warm repeated runs at a stable size
/// reuse one immutable table instead of re-running the Θ(cells·w)
/// construction per call; this is what extends the zero-steady-state-
/// allocation guarantee to the table-based algorithms. Thread-safe
/// (serve workers share it); entries live for the process lifetime.
const MatchingLookupTable& cached_lookup_table(int component_bits,
                                               int tuple_width, BitRule rule,
                                               int collapse_width = 0);

/// Appendix guess-and-verify construction audit: presents the consistent
/// pyramid for `key` and runs the paper's verification circuit — one
/// parallel step checking every cell against the two below it, then a
/// binary AND-reduction tree. Returns true iff the pyramid verifies.
/// Depth: 1 + ceil(log2(#cells)); #cells = w(w+1)/2.
template <class Exec>
bool verify_pyramid(Exec& exec, const MatchingLookupTable& table,
                    label_t key) {
  const int w = table.collapse_width();
  auto all = table.components(key);
  std::vector<label_t> base(all.begin(), all.begin() + w);
  // cells[level][pos] flattened; level 0 = the w components.
  std::vector<std::vector<label_t>> pyramid(static_cast<std::size_t>(w));
  pyramid[0] = base;
  for (int level = 1; level < w; ++level) {
    pyramid[level].resize(static_cast<std::size_t>(w - level));
    for (int i = 0; i + level < w; ++i)
      pyramid[level][i] =
          safe_partition_value(pyramid[level - 1][i], pyramid[level - 1][i + 1],
                               table.rule());
  }
  // Flatten the guessed cells (levels >= 1) and verify each in parallel.
  struct Cell {
    int level, pos;
  };
  std::vector<Cell> cells;
  for (int level = 1; level < w; ++level)
    for (int i = 0; i + level < w; ++i) cells.push_back({level, i});
  std::vector<std::uint8_t> ok(cells.size() == 0 ? 1 : cells.size(), 1);
  exec.step(cells.size(), [&](std::size_t c, auto&& m) {
    const auto [level, pos] = cells[c];
    const label_t expect = safe_partition_value(
        pyramid[level - 1][pos], pyramid[level - 1][pos + 1], table.rule());
    m.wr(ok, c, static_cast<std::uint8_t>(pyramid[level][pos] == expect));
  });
  // Binary fan-in of the verdicts (the appendix's O(log i) AND tree).
  for (std::size_t span = 1; span < ok.size(); span <<= 1) {
    exec.step((ok.size() + 2 * span - 1) / (2 * span), [&](std::size_t v,
                                                           auto&& m) {
      const std::size_t lhs = v * 2 * span;
      const std::size_t rhs = lhs + span;
      if (rhs < ok.size()) {
        const std::uint8_t a = m.rd(ok, lhs);
        const std::uint8_t b = m.rd(ok, rhs);
        m.wr(ok, lhs, static_cast<std::uint8_t>(a & b));
      }
    });
  }
  const bool verified = ok[0] != 0;
  // The verified apex must equal the table entry.
  return verified && pyramid[w - 1][0] == table.value(key);
}

}  // namespace llmp::core
