// Sequential baseline: one walk down the list, greedily taking every
// pointer whose tail is still free. T1 = Θ(n) — the denominator of every
// optimality claim (a parallel algorithm is optimal when p·T = O(T1)).
// Greedy on a path takes the first pointer of every free run, so the
// result is maximal and in fact maximum for a path.
#pragma once

#include "core/match_result.h"
#include "list/linked_list.h"
#include "pram/prefetch.h"

namespace llmp::core {

/// In-place entry point: reuses `r`'s buffers across warm calls.
inline void sequential_matching_into(const list::LinkedList& list,
                                     MatchResult& r) {
  r.reset();
  const std::size_t n = list.size();
  r.in_matching.assign(n, 0);
  bool prev_taken = false;
  std::uint64_t ops = 0;
  // The walk is a dependent pointer chase, so the best software prefetch
  // can do is a one-deep pipeline: while handling v, pull the successor's
  // next-cell into cache ahead of the dependent load.
  const index_t* nx = list.next_array().data();
  for (index_t v = list.head(); v != knil; v = list.next(v)) {
    ++ops;
    const index_t s = nx[v];
    if (s != knil) pram::prefetch_ro(nx + s);
    if (!list.has_pointer(v)) break;
    if (!prev_taken) {
      r.in_matching[v] = 1;
      ++r.edges;
      prev_taken = true;
    } else {
      prev_taken = false;
    }
  }
  r.cost = {ops, ops, ops, 0, 0};  // depth = time_1 = work = n
  r.phases.push_back({"walk", r.cost});
}

inline MatchResult sequential_matching(const list::LinkedList& list) {
  MatchResult r;
  sequential_matching_into(list, r);
  return r;
}

}  // namespace llmp::core
