// Label crunching and concatenation-by-pointer-jumping (Match3 steps 2–4,
// also Match4's fast partition path per Lemma 5).
//
// After k relabel rounds ("number crunching", Match3 step 2) every label
// fits in b_k = ceil(log2 B_k) bits, B_k the k-fold image bound of
// partition_bound_after starting at n. `gather_labels` then runs r rounds
// of
//     label[v] := label[v] ++ label[NEXT[v]];  NEXT[v] := NEXT[NEXT[v]];
// (Match3 step 3) leaving in label[v] the concatenation of the crunched
// labels of v, suc(v), …, suc^(2^r − 1)(v) — a key for a
// MatchingLookupTable whose single probe (Match3 step 4) stands in for
// w − 1 further relabel rounds, w ≤ 2^r the collapse width. The NEXT
// chain is circular, so keys are defined for every node; adjacent keys
// always differ in their leading component, and the table value is an
// iterated matching partition function, so adjacent values differ too.
#pragma once

#include <algorithm>
#include <vector>

#include "core/lookup_table.h"
#include "core/partition_fn.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "pram/sweep.h"
#include "support/itlog.h"

namespace llmp::core {

/// Label bound after `rounds` relabel rounds starting from addresses < n.
inline label_t bound_after_rounds(std::size_t n, int rounds) {
  label_t bound = static_cast<label_t>(n);
  for (int t = 0; t < rounds && bound > 2; ++t)
    bound = partition_bound_after(bound);
  return bound;
}

/// Relabel rounds needed to reach the fixed point (< 6) from addresses
/// < n — the iteration count of Match1 step 2, Θ(G(n)).
inline int rounds_to_constant(std::size_t n) {
  label_t bound = static_cast<label_t>(n);
  int rounds = 0;
  while (bound > kFixedPointBound) {
    bound = partition_bound_after(bound);
    ++rounds;
  }
  return rounds;
}

namespace detail {
/// Fused concatenation-jump kernel over [lo, hi): gather the successor
/// labels and successor-successor pointers (prefetched `dist` ahead), then
/// concatenate whole blocks through the SIMD shift-or kernel.
inline void gather_span(const index_t* jn, const label_t* lbl,
                        label_t* lbl_out, index_t* jn_out, std::size_t lo,
                        std::size_t hi, int shift) {
  constexpr std::size_t kBlock = 256;
  const std::size_t dist =
      static_cast<std::size_t>(pram::tuning().prefetch.distance);
  label_t bbuf[kBlock];
  for (std::size_t base = lo; base < hi; base += kBlock) {
    const std::size_t len = std::min(kBlock, hi - base);
    for (std::size_t i = 0; i < len; ++i) {
      if (dist != 0 && i + dist < len) {
        const index_t pf = jn[base + i + dist];
        pram::prefetch_ro(lbl + pf);
        pram::prefetch_ro(jn + pf);
      }
      const index_t s = jn[base + i];
      bbuf[i] = lbl[s];
      jn_out[base + i] = jn[s];
    }
    pram::simd::concat_pairs(lbl + base, bbuf, lbl_out + base, len, shift);
  }
}
}  // namespace detail

/// Run `jump_rounds` concatenation rounds over b-bit labels (bound 2^b).
/// labels[v] becomes the b·2^jump_rounds-bit key described above.
template <class Exec>
void gather_labels(Exec& exec, const list::LinkedList& list,
                   std::vector<label_t>& labels, int component_bits,
                   int jump_rounds) {
  const std::size_t n = list.size();
  LLMP_CHECK(labels.size() == n);
  LLMP_CHECK(component_bits * (1 << jump_rounds) <= 63);
  const auto& next_arr = list.next_array();
  const index_t head = list.head();

  auto nxt_h = pram::scratch<index_t>(exec, n);
  auto nxt2_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& nxt = *nxt_h;
  std::vector<index_t>& nxt2 = *nxt2_h;

  auto lbl2_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& lbl2 = *lbl2_h;

  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      {
        const index_t* na = next_arr.data();
        index_t* jn = nxt.data();
        exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t v = lo; v < hi; ++v) {
            const index_t s = na[v];
            jn[v] = s == knil ? head : s;
          }
        });
      }
      for (int t = 0; t < jump_rounds; ++t) {
        const int shift = component_bits << t;
        const index_t* jn = nxt.data();
        index_t* jn_out = nxt2.data();
        const label_t* lbl = labels.data();
        label_t* lbl_out = lbl2.data();
        exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
          detail::gather_span(jn, lbl, lbl_out, jn_out, lo, hi, shift);
        });
        labels.swap(lbl2);
        nxt.swap(nxt2);
      }
      return;
    }
  }
  exec.step(n, [&](std::size_t v, auto&& m) {
    const index_t s = m.rd(next_arr, v);
    m.wr(nxt, v, s == knil ? head : s);
  });
  for (int t = 0; t < jump_rounds; ++t) {
    const int shift = component_bits << t;  // current label width in bits
    exec.step(n, [&](std::size_t v, auto&& m) {
      const index_t s = m.rd(nxt, v);
      const label_t mine = m.rd(labels, v);
      const label_t theirs = m.rd(labels, static_cast<std::size_t>(s));
      m.wr(lbl2, v, (mine << shift) | theirs);
      m.wr(nxt2, v, m.rd(nxt, static_cast<std::size_t>(s)));
    });
    labels.swap(lbl2);
    nxt.swap(nxt2);
  }
}

/// Replace every label by its table value (Match3 step 4): one step.
template <class Exec>
void lookup_labels(Exec& exec, const MatchingLookupTable& table,
                   std::vector<label_t>& labels) {
  const std::size_t n = labels.size();
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      label_t* lb = labels.data();
      const std::uint8_t* cells = table.raw();
      const std::size_t dist =
          static_cast<std::size_t>(pram::tuning().prefetch.distance);
      exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          if (dist != 0 && v + dist < hi)
            pram::prefetch_ro(cells + lb[v + dist]);
          lb[v] = cells[lb[v]];
        }
      });
      return;
    }
  }
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(labels, v, table.value(m.rd(labels, v)));
  });
}

}  // namespace llmp::core
