// The processor-scheduling technique of §3: the 2D layout, WalkDown1
// (Lemma 6) and WalkDown2 (Lemma 7 + Corollaries 1–2).
//
// The array holding the list is viewed as x rows × y columns
// (column-major: column j owns array cells [j·x, j·x + x)), one processor
// per column. Each processor sorts its own column by the pointers'
// matching-set numbers — a *sequential* integer sort of x keys, O(x) time,
// replacing Match2's global sort. A pointer <a,b> is intra-row when a and
// b land on the same row of the sorted layout, inter-row otherwise.
//
// WalkDown1 processes inter-row pointers: at step t every processor
// handles the pointer whose tail sits in row t of its column. Two
// pointers sharing a node are adjacent, <a,b> and <b,c>; they are handled
// at steps row(a) and row(b), which differ precisely because <a,b> is
// inter-row — so concurrent labelings never touch a common node and a
// greedy choice from {0,1,2} (different from both neighbour pointers'
// current labels) is safe.
//
// WalkDown2 processes intra-row pointers: each processor walks its sorted
// column with a (count, index) pair over 2x−1 steps, handling the cell at
// `index` exactly when its set number equals `count` (Lemma 7: the cell
// in row r is handled at step r + A[r]; Corollary 1: everything is handled
// by step 2x−2; Corollary 2: cells handled concurrently in one row share
// one set number). Intra-row pointers that share a node lie in the same
// row (both endpoints of each are in that row) and in different sets, so
// they are handled at different steps; their inter-row neighbours were
// fully labeled by WalkDown1 beforehand.
//
// Both phases draw from the shared palette {0,1,2}: every adjacent pair
// of pointers is handled at distinct (phase, step) times, so the later one
// sees and avoids the earlier one's label — a proper 3-set matching
// partition of all pointers, which cut.h turns into a maximal matching.
// (The paper labels the two phases from separate palettes "with minor
// adjustment"; the shared palette is the same schedule and is verified by
// the E7/E8 property tests.)
#pragma once

#include <algorithm>
#include <vector>

#include "core/fanout.h"
#include "core/match_result.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "pram/stats.h"
#include "pram/sweep.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::core {

/// No color assigned yet (valid colors are 0,1,2).
inline constexpr std::uint8_t kNoColor = 0xFF;

/// The sorted 2D view of the list. The arrays are arena leases (pooled
/// when built through a pram::Context, plain heap otherwise), so the
/// struct is move-only and its backing stores recycle across warm runs.
struct Layout2D {
  std::size_t rows = 0;  ///< x
  std::size_t cols = 0;  ///< y = ceil(n/x)
  /// cell_node[j*rows + r]: node in (row r, column j); knil for padding
  /// cells of the last column.
  pram::ScratchVec<index_t> cell_node;
  /// node_row[v]: the row node v occupies after its column's sort.
  pram::ScratchVec<index_t> node_row;
  /// node_key[v]: the matching-set number the columns were sorted by.
  pram::ScratchVec<index_t> node_key;
};

/// Sort every column by set number (keys[v] < rows for all v). One step of
/// `cols` processors, each running an O(rows)-time sequential counting
/// sort of its own cells — the unit cost declares 2·rows+2 accordingly.
template <class Exec>
Layout2D build_layout(Exec& exec, std::size_t n,
                      const std::vector<index_t>& keys, std::size_t rows) {
  LLMP_CHECK(rows >= 1);
  LLMP_CHECK(keys.size() == n);
  Layout2D lay;
  lay.rows = rows;
  lay.cols = (n + rows - 1) / rows;
  lay.cell_node = pram::scratch<index_t>(exec, lay.rows * lay.cols, knil);
  lay.node_row = pram::scratch<index_t>(exec, n, index_t{0});
  lay.node_key = pram::scratch<index_t>(exec, n);
  std::copy(keys.begin(), keys.end(), lay.node_key.vec().begin());

  // Per-column histograms, hoisted into one zero-filled lease so the step
  // body allocates nothing (column j owns slice [j·(rows+1), (j+1)·(rows+1))
  // — processor-local, hence untracked, exactly like the per-column local
  // vector it replaces).
  auto hist_h = pram::scratch<std::size_t>(exec, lay.cols * (rows + 1));
  std::vector<std::size_t>& hist = *hist_h;

  exec.step(lay.cols, 2 * rows + 2, [&](std::size_t j, auto&& m) {
    const std::size_t lo = j * rows;
    const std::size_t hi = std::min(n, lo + rows);
    // Sequential counting sort of the column's cells by key — processor-
    // local histogram, shared writes only to this column's cells.
    std::size_t* count = hist.data() + j * (rows + 1);
    for (std::size_t v = lo; v < hi; ++v) {
      const index_t k = m.rd(keys, v);
      LLMP_DCHECK(k < rows);
      ++count[k + 1];
    }
    for (std::size_t k = 1; k <= rows; ++k) count[k] += count[k - 1];
    for (std::size_t v = lo; v < hi; ++v) {
      const index_t k = m.rd(keys, v);
      const std::size_t r = count[k]++;
      m.wr(lay.cell_node, lo + r, static_cast<index_t>(v));
      m.wr(lay.node_row, v, static_cast<index_t>(r));
    }
  });
  return lay;
}

/// Whether pointer e_v is intra-row under the layout. Precondition:
/// e_v exists (succ_of[v] != knil).
inline bool is_intra_row(const Layout2D& lay,
                         const std::vector<index_t>& succ_of, index_t v) {
  LLMP_DCHECK(v < succ_of.size() && v < lay.node_row.size());
  LLMP_DCHECK(succ_of[v] < lay.node_row.size());
  return lay.node_row[v] == lay.node_row[succ_of[v]];
}

/// Greedy color: smallest of {0,1,2} not used by either neighbour pointer.
inline std::uint8_t smallest_free_color(std::uint8_t a, std::uint8_t b) {
  for (std::uint8_t c = 0; c < 3; ++c)
    if (c != a && c != b) return c;
  LLMP_CHECK_MSG(false, "two neighbours exhausted three colors");
  return kNoColor;
}

/// WalkDown1 (Lemma 6): label every inter-row pointer. x steps of y
/// processors. `color` must be kNoColor-initialized, size n.
template <class Exec>
void walkdown1(Exec& exec, const list::LinkedList& list, const Layout2D& lay,
               const std::vector<index_t>& pred,
               std::vector<std::uint8_t>& color) {
  const auto& next = list.next_array();
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      const index_t* nx = next.data();
      const index_t* pr = pred.data();
      const index_t* cell = lay.cell_node.vec().data();
      const index_t* rowv = lay.node_row.vec().data();
      std::uint8_t* col = color.data();
      const std::size_t rows = lay.rows;
      const std::size_t dist =
          static_cast<std::size_t>(pram::tuning().prefetch.distance);
      for (std::size_t t = 0; t < rows; ++t) {
        exec.sweep(lay.cols, 1, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (dist != 0 && j + dist < hi)
              pram::prefetch_ro(cell + (j + dist) * rows + t);
            const index_t v = cell[j * rows + t];
            if (v == knil) continue;  // padding cell
            const index_t s = nx[v];
            if (s == knil) continue;  // tail: no pointer
            if (rowv[v] == rowv[s]) continue;  // intra-row
            const index_t pv = pr[v];
            const std::uint8_t before = pv == knil ? kNoColor : col[pv];
            col[v] = smallest_free_color(before, col[s]);
          }
        });
      }
      return;
    }
  }
  for (std::size_t t = 0; t < lay.rows; ++t) {
    exec.step(lay.cols, [&](std::size_t j, auto&& m) {
      const index_t v = m.rd(lay.cell_node, j * lay.rows + t);
      if (v == knil) return;  // padding cell
      const index_t s = m.rd(next, static_cast<std::size_t>(v));
      if (s == knil) return;  // tail: no pointer
      if (m.rd(lay.node_row, static_cast<std::size_t>(v)) ==
          m.rd(lay.node_row, static_cast<std::size_t>(s)))
        return;  // intra-row: WalkDown2's job
      const index_t pv = m.rd(pred, static_cast<std::size_t>(v));
      const std::uint8_t before =
          pv == knil ? kNoColor : m.rd(color, static_cast<std::size_t>(pv));
      const std::uint8_t after = m.rd(color, static_cast<std::size_t>(s));
      m.wr(color, static_cast<std::size_t>(v),
           smallest_free_color(before, after));
    });
  }
}

/// Per-step trace of WalkDown2, kept for the Lemma 7 / Corollary audits
/// (E8): handled_at[v] = the step at which node v's cell was handled.
/// `handled_at` is an arena lease (move-only, recycled like Layout2D's).
struct WalkDown2Trace {
  pram::ScratchVec<index_t> handled_at;
  std::size_t steps = 0;
};

/// WalkDown2 (Lemma 7): walk the sorted columns with (count, index),
/// labeling intra-row pointers. 2x−1 steps of y processors.
template <class Exec>
WalkDown2Trace walkdown2(Exec& exec, const list::LinkedList& list,
                         const Layout2D& lay,
                         const std::vector<index_t>& pred,
                         std::vector<std::uint8_t>& color) {
  const std::size_t n = list.size();
  const auto& next = list.next_array();
  WalkDown2Trace trace;
  trace.handled_at = pram::scratch<index_t>(exec, n, knil);
  const std::size_t total_steps = lay.rows == 0 ? 0 : 2 * lay.rows - 1;
  trace.steps = total_steps;

  auto count_h = pram::scratch<index_t>(exec, lay.cols);
  auto index_h = pram::scratch<index_t>(exec, lay.cols);
  std::vector<index_t>& count = *count_h;
  std::vector<index_t>& index = *index_h;

  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      const index_t* nx = next.data();
      const index_t* pr = pred.data();
      const index_t* cell = lay.cell_node.vec().data();
      const index_t* rowv = lay.node_row.vec().data();
      const index_t* keyv = lay.node_key.vec().data();
      std::uint8_t* col = color.data();
      index_t* cnt_a = count.data();
      index_t* idx_a = index.data();
      index_t* done = trace.handled_at.vec().data();
      const std::size_t rows = lay.rows;
      const std::size_t dist =
          static_cast<std::size_t>(pram::tuning().prefetch.distance);
      exec.sweep(lay.cols, 1, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          cnt_a[j] = 0;
          idx_a[j] = 0;
        }
      });
      for (std::size_t k = 0; k < total_steps; ++k) {
        exec.sweep(lay.cols, 1, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            const index_t idx = idx_a[j];
            if (idx >= rows) continue;  // column fully walked
            if (dist != 0 && j + dist < hi && idx_a[j + dist] < rows)
              pram::prefetch_ro(cell + (j + dist) * rows + idx_a[j + dist]);
            const index_t v = cell[j * rows + idx];
            if (v == knil) {  // padding: walk straight past
              idx_a[j] = static_cast<index_t>(idx + 1);
              continue;
            }
            const index_t cnt = cnt_a[j];
            if (keyv[v] != cnt) {  // idle in this row, advance the count
              cnt_a[j] = static_cast<index_t>(cnt + 1);
              continue;
            }
            // "Mark the cell": handle the pointer if it is intra-row.
            done[v] = static_cast<index_t>(k);
            const index_t s = nx[v];
            if (s != knil && rowv[v] == rowv[s]) {
              const index_t pv = pr[v];
              const std::uint8_t before = pv == knil ? kNoColor : col[pv];
              col[v] = smallest_free_color(before, col[s]);
            }
            idx_a[j] = static_cast<index_t>(idx + 1);
          }
        });
      }
      return trace;
    }
  }
  exec.step(lay.cols, [&](std::size_t j, auto&& m) {
    m.wr(count, j, index_t{0});
    m.wr(index, j, index_t{0});
  });

  for (std::size_t k = 0; k < total_steps; ++k) {
    exec.step(lay.cols, [&](std::size_t j, auto&& m) {
      const index_t idx = m.rd(index, j);
      if (idx >= lay.rows) return;  // column fully walked
      const index_t v = m.rd(lay.cell_node, j * lay.rows + idx);
      if (v == knil) {  // padding: walk straight past
        m.wr(index, j, static_cast<index_t>(idx + 1));
        return;
      }
      const index_t cnt = m.rd(count, j);
      const index_t key = m.rd(lay.node_key, static_cast<std::size_t>(v));
      if (key != cnt) {  // idle in this row, advance the count
        m.wr(count, j, static_cast<index_t>(cnt + 1));
        return;
      }
      // "Mark the cell": handle the pointer if it is intra-row.
      m.wr(trace.handled_at, static_cast<std::size_t>(v),
           static_cast<index_t>(k));
      const index_t s = m.rd(next, static_cast<std::size_t>(v));
      if (s != knil &&
          m.rd(lay.node_row, static_cast<std::size_t>(v)) ==
              m.rd(lay.node_row, static_cast<std::size_t>(s))) {
        const index_t pv = m.rd(pred, static_cast<std::size_t>(v));
        const std::uint8_t before =
            pv == knil ? kNoColor
                       : m.rd(color, static_cast<std::size_t>(pv));
        const std::uint8_t after =
            m.rd(color, static_cast<std::size_t>(s));
        m.wr(color, static_cast<std::size_t>(v),
             smallest_free_color(before, after));
      }
      m.wr(index, j, static_cast<index_t>(idx + 1));
    });
  }
  return trace;
}

// ---------------------------------------------------------------------------
// EREW variants. The CREW WalkDowns read three neighbour cells per handled
// pointer (the successor's row, and both neighbour pointers' colors);
// under EREW those reads are replaced by per-node inboxes: the successor
// row is fanned out once after the layout is built, and every processor
// that colors a pointer *pushes* the color to the two neighbours' inboxes
// in the same step (exclusive writes — one predecessor, one successor;
// adjacent pointers are handled at distinct steps, so the push never
// collides with the read). Audited by pram::Machine(kEREW) in
// tests/erew_test.cpp.
// ---------------------------------------------------------------------------

/// Shared EREW state for the two WalkDown phases (arena leases, move-only).
struct ErewWalkState {
  pram::ScratchVec<index_t> row_next;       ///< node_row[suc(v)], knil if none
  pram::ScratchVec<std::uint8_t> col_prev;  ///< color of e_pred(v) so far
  pram::ScratchVec<std::uint8_t> col_next;  ///< color of e_suc(v) so far
};

template <class Exec>
ErewWalkState make_erew_walk_state(Exec& exec, const list::LinkedList& list,
                                   const Layout2D& lay,
                                   const std::vector<index_t>& pred) {
  const std::size_t n = list.size();
  ErewWalkState st;
  st.row_next = pram::scratch<index_t>(exec, n, knil);
  st.col_prev = pram::scratch<std::uint8_t>(exec, n, kNoColor);
  st.col_next = pram::scratch<std::uint8_t>(exec, n, kNoColor);
  pull_from_next(exec, list, pred, lay.node_row.vec(), st.row_next.vec(),
                 /*circular=*/false);
  return st;
}

namespace detail {
/// Color pointer e_v from its inboxes and push the choice to both
/// neighbours. All accesses exclusive.
template <class Mem>
void erew_color_and_push(Mem&& m, const std::vector<index_t>& pred,
                         ErewWalkState& st,
                         std::vector<std::uint8_t>& color, index_t v,
                         index_t s) {
  const std::uint8_t pick = smallest_free_color(
      m.rd(st.col_prev, static_cast<std::size_t>(v)),
      m.rd(st.col_next, static_cast<std::size_t>(v)));
  m.wr(color, static_cast<std::size_t>(v), pick);
  // e_v is the predecessor pointer of node s and the successor pointer of
  // node pred(v).
  m.wr(st.col_prev, static_cast<std::size_t>(s), pick);
  const index_t pv = m.rd(pred, static_cast<std::size_t>(v));
  if (pv != knil)
    m.wr(st.col_next, static_cast<std::size_t>(pv), pick);
}
}  // namespace detail

/// EREW WalkDown1: same schedule as walkdown1, inbox-based coloring.
template <class Exec>
void walkdown1_erew(Exec& exec, const list::LinkedList& list,
                    const Layout2D& lay, const std::vector<index_t>& pred,
                    ErewWalkState& st, std::vector<std::uint8_t>& color) {
  const auto& next = list.next_array();
  for (std::size_t t = 0; t < lay.rows; ++t) {
    exec.step(lay.cols, [&](std::size_t j, auto&& m) {
      const index_t v = m.rd(lay.cell_node, j * lay.rows + t);
      if (v == knil) return;
      const index_t s = m.rd(next, static_cast<std::size_t>(v));
      if (s == knil) return;
      if (m.rd(lay.node_row, static_cast<std::size_t>(v)) ==
          m.rd(st.row_next, static_cast<std::size_t>(v)))
        return;  // intra-row
      detail::erew_color_and_push(m, pred, st, color, v, s);
    });
  }
}

/// EREW WalkDown2: same (count, index) schedule as walkdown2, inbox-based
/// coloring.
template <class Exec>
WalkDown2Trace walkdown2_erew(Exec& exec, const list::LinkedList& list,
                              const Layout2D& lay,
                              const std::vector<index_t>& pred,
                              ErewWalkState& st,
                              std::vector<std::uint8_t>& color) {
  const std::size_t n = list.size();
  const auto& next = list.next_array();
  WalkDown2Trace trace;
  trace.handled_at = pram::scratch<index_t>(exec, n, knil);
  const std::size_t total_steps = lay.rows == 0 ? 0 : 2 * lay.rows - 1;
  trace.steps = total_steps;

  auto count_h = pram::scratch<index_t>(exec, lay.cols);
  auto index_h = pram::scratch<index_t>(exec, lay.cols);
  std::vector<index_t>& count = *count_h;
  std::vector<index_t>& index = *index_h;
  exec.step(lay.cols, [&](std::size_t j, auto&& m) {
    m.wr(count, j, index_t{0});
    m.wr(index, j, index_t{0});
  });

  for (std::size_t k = 0; k < total_steps; ++k) {
    exec.step(lay.cols, [&](std::size_t j, auto&& m) {
      const index_t idx = m.rd(index, j);
      if (idx >= lay.rows) return;
      const index_t v = m.rd(lay.cell_node, j * lay.rows + idx);
      if (v == knil) {
        m.wr(index, j, static_cast<index_t>(idx + 1));
        return;
      }
      const index_t cnt = m.rd(count, j);
      const index_t key = m.rd(lay.node_key, static_cast<std::size_t>(v));
      if (key != cnt) {
        m.wr(count, j, static_cast<index_t>(cnt + 1));
        return;
      }
      m.wr(trace.handled_at, static_cast<std::size_t>(v),
           static_cast<index_t>(k));
      const index_t s = m.rd(next, static_cast<std::size_t>(v));
      if (s != knil &&
          m.rd(lay.node_row, static_cast<std::size_t>(v)) ==
              m.rd(st.row_next, static_cast<std::size_t>(v))) {
        detail::erew_color_and_push(m, pred, st, color, v, s);
      }
      m.wr(index, j, static_cast<index_t>(idx + 1));
    });
  }
  return trace;
}

}  // namespace llmp::core
