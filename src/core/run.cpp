#include "core/run.h"

#include <string>

#include "core/registry.h"

namespace llmp::core {

Status validate_options(const MatchOptions& opt) {
  switch (opt.algorithm) {
    case Algorithm::kSequential:
    case Algorithm::kMatch1:
    case Algorithm::kMatch2:
    case Algorithm::kMatch3:
    case Algorithm::kMatch4:
    case Algorithm::kRandomized:
      break;
    default:
      return Status::invalid_argument("unknown algorithm enum value");
  }
  if (opt.algorithm == Algorithm::kMatch4) {
    // i is the paper's adjustable parameter: rows = Θ(log^(i) n). Every
    // useful value is tiny (log* n <= 5 for any feasible n); the cap stops
    // a hostile request from buying i full relabel sweeps.
    if (opt.i_parameter < 1)
      return Status::invalid_argument("Match4 requires i_parameter >= 1");
    if (opt.i_parameter > 64)
      return Status::invalid_argument(
          "i_parameter " + std::to_string(opt.i_parameter) +
          " is beyond any useful value (max 64)");
  }
  if (opt.erew && opt.algorithm != Algorithm::kMatch1 &&
      opt.algorithm != Algorithm::kMatch2 &&
      opt.algorithm != Algorithm::kMatch4) {
    return Status::invalid_argument(
        "erew variants exist for Match1/Match2/Match4 only");
  }
  return {};
}

Result<MatchOptions> resolve_algorithm(std::string_view name) {
  // Historical aliases from the CLI, kept at the one resolution point.
  if (name == "seq") name = "sequential";
  if (name == "random") name = "randomized";
  const AlgorithmEntry* entry = AlgorithmRegistry::instance().find(name);
  if (entry == nullptr)
    return Status::not_found("unknown algorithm '" + std::string(name) +
                             "' (see the registry listing)");
  if (!entry->matching)
    return Status::invalid_argument(
        "'" + std::string(name) +
        "' is registered but is not a matching algorithm");
  return entry->canonical;
}

}  // namespace llmp::core
