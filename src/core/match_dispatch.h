// The one options→algorithm switch, shared by every dispatch path.
//
// core::maximal_matching uses it directly for executor types outside the
// four registry backends; core/registry.cpp instantiates it once per
// backend to build the type-erased MatchDispatcher. Keeping the switch
// here (and nowhere else) is what makes the registry the single dispatch
// surface: adding an algorithm means one enum case, one entry, one case
// below.
#pragma once

#include "core/match1.h"
#include "core/match2.h"
#include "core/match3.h"
#include "core/match4.h"
#include "core/random_match.h"
#include "core/registry.h"
#include "core/sequential.h"
#include "support/check.h"

namespace llmp::core::detail {

template <class Exec>
void dispatch_match(Exec& exec, const list::LinkedList& list,
                    const MatchOptions& opt, MatchResult& out) {
  switch (opt.algorithm) {
    case Algorithm::kSequential:
      sequential_matching_into(list, out);
      return;
    case Algorithm::kMatch1: {
      Match1Options o;
      o.rule = opt.rule;
      o.erew = opt.erew;
      match1_into(exec, list, o, out);
      return;
    }
    case Algorithm::kMatch2: {
      Match2Options o;
      o.rule = opt.rule;
      o.erew = opt.erew;
      match2_into(exec, list, o, out);
      return;
    }
    case Algorithm::kMatch3: {
      Match3Options o;
      o.rule = opt.rule;
      match3_into(exec, list, o, out);
      return;
    }
    case Algorithm::kMatch4: {
      Match4Options o;
      o.i_parameter = opt.i_parameter;
      o.partition_with_table = opt.partition_with_table;
      o.rule = opt.rule;
      o.erew = opt.erew;
      match4_into(exec, list, o, out);
      return;
    }
    case Algorithm::kRandomized:
      random_matching_into(exec, list, RandomMatchOptions{opt.seed}, out);
      return;
  }
  LLMP_CHECK_MSG(false, "unknown algorithm");
}

}  // namespace llmp::core::detail
