// Status-based public entry points over the algorithm registry.
//
// core::maximal_matching (maximal_matching.h) trusts its caller: invalid
// MatchOptions abort through LLMP_CHECK, unknown names never reach it
// because callers resolve them by hand. Those conventions are fine inside
// the repo but wrong at a service boundary, where user input arrives over
// a queue and a bad request must fail *that request*, not the process.
// This header is the boundary: every function validates first and reports
// user-input problems as a Status (support/status.h); only genuinely
// broken internal invariants surface as kInternal.
//
//   pram::Context ctx(exec);
//   core::MatchResult out;
//   llmp::Status s = core::run_matching_into(ctx, list, opt, out);
//
// serve::Service workers and the llmp.h facade both funnel through here,
// so the validation rules live in exactly one place (run.cpp).
#pragma once

#include <string_view>

#include "core/maximal_matching.h"
#include "support/status.h"

namespace llmp::core {

/// Validate user-supplied MatchOptions: kInvalidArgument for an
/// out-of-range algorithm enum, a non-positive or table-infeasible
/// Match4 i, or --erew on an algorithm without an EREW variant.
Status validate_options(const MatchOptions& opt);

/// Resolve a registry name ("match4-table", "match1-erew", …) to that
/// entry's canonical MatchOptions. kNotFound for unknown names and
/// kInvalidArgument for registered non-matching entries (schedules/apps).
/// Callers that want the app entries listed must have called
/// apps::register_algorithms() first (the llmp.h facade does).
Result<MatchOptions> resolve_algorithm(std::string_view name);

/// Validate, then dispatch through the registry into `out` (reusing its
/// buffers — warm calls through a pooled Context allocate nothing).
template <class Exec>
Status run_matching_into(Exec& exec, const list::LinkedList& list,
                         const MatchOptions& opt, MatchResult& out) {
  if (Status s = validate_options(opt); !s.ok()) return s;
  try {
    maximal_matching_into(exec, list, opt, out);
  } catch (const check_error& e) {
    return Status::internal(e.what());
  }
  return {};
}

template <class Exec>
Result<MatchResult> run_matching(Exec& exec, const list::LinkedList& list,
                                 const MatchOptions& opt = {}) {
  MatchResult out;
  if (Status s = run_matching_into(exec, list, opt, out); !s.ok()) return s;
  return out;
}

}  // namespace llmp::core
