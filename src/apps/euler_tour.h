// Euler-tour tree computations — the classic reduction that turns tree
// problems into the linked-list problems this paper solves (its reference
// [11], Miller–Reif parallel tree contraction, is the companion line of
// work; Tarjan–Vishkin's Euler-tour technique is the standard bridge).
//
// A rooted tree with m edges becomes a linked list of 2m directed arcs:
// the tour enters a child, walks its subtree, and returns. Every tree
// statistic below is then ONE weighted list prefix over that list —
// computed with llmp's matching-contraction prefix, i.e. ultimately with
// the paper's maximal-matching machinery:
//
//   depth[v]        prefix with +1 on down-arcs, −1 on up-arcs
//   subtree_size[v] (rank of up-arc − rank of down-arc + 1) / 2
//   preorder[v]     count of down-arcs before v's down-arc
//
// Input trees are parent arrays (parent[root] = knil). Arc lists are
// built deterministically from per-node child lists.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/list_prefix.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/types.h"

namespace llmp::apps {

/// A rooted tree given as a parent array.
struct Tree {
  std::vector<index_t> parent;  ///< parent[root] == knil
  index_t root = knil;
  std::size_t size() const { return parent.size(); }
};

/// Deterministic random tree: node i (i >= 1, in a seeded random order)
/// attaches to a uniformly random earlier node.
Tree random_tree(std::size_t n, std::uint64_t seed);

/// Degenerate shapes for edge-case coverage.
Tree path_tree(std::size_t n);   ///< a single chain (depth n−1)
Tree star_tree(std::size_t n);   ///< root with n−1 leaves

/// The Euler tour as a LinkedList of 2(n−1) arcs plus the arc metadata.
/// Arc 2e is the down-arc of edge e (parent→child of child_of[e]); arc
/// 2e+1 is the matching up-arc. For n == 1 the tour is a single dummy
/// node so the list type's n >= 1 invariant holds.
struct EulerTour {
  explicit EulerTour(list::LinkedList arc_list)
      : arcs(std::move(arc_list)) {}

  list::LinkedList arcs;
  std::vector<index_t> arc_child;   ///< the child endpoint of each arc
  std::vector<std::uint8_t> is_down;  ///< 1 = parent→child
};

/// Build the tour (sequential preprocessing — input encoding, not a
/// measured algorithm).
EulerTour build_euler_tour(const Tree& tree);

struct TreeStats {
  std::vector<std::uint64_t> depth;        ///< root has depth 0
  std::vector<std::uint64_t> subtree_size; ///< root has n
  std::vector<std::uint64_t> preorder;     ///< root has 0
  int prefix_rounds = 0;
  pram::Stats cost;
};

/// All three statistics via ONE list prefix on the tour: each arc
/// contributes packed(count = 1, downs = is_down); the inclusive prefix
/// at arc a then holds the 1-based tour position and the number of
/// down-arcs so far, from which
///
///   depth(child of down-arc) = downs − ups = 2·downs − position,
///   preorder(child)          = downs   (root stays 0),
///   subtree_size(v)          = (position(up_v) − position(down_v) + 1)/2.
template <class Exec>
TreeStats tree_statistics(Exec& exec, const Tree& tree,
                          const PrefixOptions& opt = {}) {
  const std::size_t n = tree.size();
  TreeStats out;
  out.depth.assign(n, 0);
  out.subtree_size.assign(n, 1);
  out.preorder.assign(n, 0);
  if (n <= 1) return out;
  const pram::Stats start = exec.stats();
  const EulerTour tour = build_euler_tour(tree);
  const std::size_t m = tour.arcs.size();
  LLMP_CHECK(m < (std::size_t{1} << 31));  // both fields fit 32 bits

  auto packed_h = pram::scratch<std::uint64_t>(exec, m);
  std::vector<std::uint64_t>& packed = *packed_h;
  exec.step(m, [&](std::size_t a, auto&& mm) {
    mm.wr(packed, a,
          (std::uint64_t{1} << 32) |
              static_cast<std::uint64_t>(tour.is_down[a]));
  });
  auto prefix = list_prefix<SumMonoid>(exec, tour.arcs, packed, opt);
  out.prefix_rounds = prefix.rounds;

  // Down-arc 2e and up-arc 2e+1 of the edge above child tour.arc_child[2e]
  // are adjacent ids, so one processor per edge reads both prefix cells.
  exec.step(m / 2, [&](std::size_t e, auto&& mm) {
    const std::size_t down = 2 * e, up = 2 * e + 1;
    const index_t v = tour.arc_child[down];
    const std::uint64_t pd = mm.rd(prefix.prefix, down);
    const std::uint64_t pu = mm.rd(prefix.prefix, up);
    const std::uint64_t pos_d = pd >> 32, downs_d = pd & 0xFFFFFFFFu;
    const std::uint64_t pos_u = pu >> 32;
    mm.wr(out.depth, static_cast<std::size_t>(v), 2 * downs_d - pos_d);
    mm.wr(out.preorder, static_cast<std::size_t>(v), downs_d);
    mm.wr(out.subtree_size, static_cast<std::size_t>(v),
          (pos_u - pos_d + 1) / 2);
  });
  out.subtree_size[tree.root] = n;

  out.cost = exec.stats() - start;
  return out;
}

}  // namespace llmp::apps
