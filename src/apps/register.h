// Registration of the application algorithms (chapter-7 material: the
// things matching partition is *for*) into the core AlgorithmRegistry.
//
// core/ cannot depend on apps/, so the registry is seeded with only the
// matching algorithms; call register_algorithms() once (idempotent, and
// cheap thereafter) before consuming AlgorithmRegistry entries that should
// include the apps — analysis::algorithm_registry() does this for you.
#pragma once

namespace llmp::apps {

/// Append the application entries (three-coloring, independent-set,
/// wyllie-ranking, contract-ranking, list-prefix) to
/// core::AlgorithmRegistry::instance(). Safe to call repeatedly.
void register_algorithms();

}  // namespace llmp::apps
