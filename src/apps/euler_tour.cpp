#include "apps/euler_tour.h"

#include <algorithm>

namespace llmp::apps {

Tree random_tree(std::size_t n, std::uint64_t seed) {
  LLMP_CHECK(n >= 1);
  Tree t;
  t.parent.assign(n, knil);
  // Random attachment order so node ids carry no structure.
  std::vector<index_t> order(n);
  for (index_t v = 0; v < n; ++v) order[v] = v;
  rng::Xoshiro256 gen(seed);
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(order[i], order[gen.below(i + 1)]);
  t.root = order[0];
  for (std::size_t i = 1; i < n; ++i)
    t.parent[order[i]] = order[gen.below(i)];
  return t;
}

Tree path_tree(std::size_t n) {
  LLMP_CHECK(n >= 1);
  Tree t;
  t.parent.assign(n, knil);
  t.root = 0;
  for (index_t v = 1; v < n; ++v) t.parent[v] = v - 1;
  return t;
}

Tree star_tree(std::size_t n) {
  LLMP_CHECK(n >= 1);
  Tree t;
  t.parent.assign(n, knil);
  t.root = 0;
  for (index_t v = 1; v < n; ++v) t.parent[v] = 0;
  return t;
}

EulerTour build_euler_tour(const Tree& tree) {
  const std::size_t n = tree.size();
  LLMP_CHECK(n >= 2);
  // Child lists in ascending node-id order (deterministic tours).
  std::vector<std::vector<index_t>> children(n);
  index_t root = tree.root;
  for (index_t v = 0; v < n; ++v) {
    const index_t p = tree.parent[v];
    if (p == knil) {
      LLMP_CHECK_MSG(v == root, "parent array disagrees with root");
      continue;
    }
    LLMP_CHECK(p < n);
    children[p].push_back(v);
  }
  LLMP_CHECK_MSG(!children[root].empty(), "root must have a child (n >= 2)");

  // Edge ids by child, compacted to skip the root.
  std::vector<index_t> edge_of(n, knil);
  index_t edges = 0;
  for (index_t v = 0; v < n; ++v)
    if (v != root) edge_of[v] = edges++;
  LLMP_CHECK(edges + 1 == n);

  const std::size_t m = 2 * static_cast<std::size_t>(edges);
  std::vector<index_t> arc_next(m, knil);
  std::vector<index_t> arc_child(m, knil);
  std::vector<std::uint8_t> is_down(m, 0);
  auto down = [&](index_t v) { return 2 * edge_of[v]; };
  auto up = [&](index_t v) { return 2 * edge_of[v] + 1; };
  for (index_t v = 0; v < n; ++v) {
    if (v != root) {
      arc_child[down(v)] = v;
      arc_child[up(v)] = v;
      is_down[down(v)] = 1;
    }
  }
  for (index_t v = 0; v < n; ++v) {
    const auto& kids = children[v];
    if (v != root) {
      // Entering v: descend to the first child, or bounce straight back.
      arc_next[down(v)] = kids.empty() ? up(v) : down(kids.front());
    }
    for (std::size_t i = 0; i + 1 < kids.size(); ++i)
      arc_next[up(kids[i])] = down(kids[i + 1]);
    if (!kids.empty() && v != root) arc_next[up(kids.back())] = up(v);
    // Root's last child's up-arc stays knil: the tour's tail.
  }
  EulerTour tour{list::LinkedList(std::move(arc_next))};
  tour.arc_child = std::move(arc_child);
  tour.is_down = std::move(is_down);
  LLMP_CHECK(tour.arcs.head() == down(children[root].front()));
  return tour;
}

}  // namespace llmp::apps
