// Deterministic list ranking — the flagship consumer of maximal matching
// in the literature the paper sits in (its references [1,7] are list
// ranking papers, and the abstract's symmetry-breaking is exactly what a
// deterministic ranking algorithm needs).
//
// rank[v] = number of nodes after v in list order (weighted variant: sum
// of link weights from v to the tail).
//
// Two algorithms:
//
//   wyllie_ranking       — pointer jumping [16]: O(log n) steps, O(n log n)
//                          work; the classic non-optimal baseline.
//   contraction_ranking  — repeat: compute a maximal matching (any of
//                          Match1–4), splice out every matched pointer's
//                          head (the splices are node-disjoint because
//                          matched pointers are), fold the spliced link's
//                          weight into its tail, compact, recurse; expand
//                          ranks in reverse. A maximal matching covers
//                          ≥ (m)/3 of m pointers (one-of-three), so each
//                          round removes ≥ 1/3 of the nodes-with-pointers
//                          and O(log n) rounds suffice. With Match4 the
//                          per-round work is O(n_cur), giving O(n) work
//                          total up to the O(log n) additive terms —
//                          the deterministic-coin-tossing route to
//                          near-optimal ranking (full optimality needs
//                          Anderson–Miller [1] load balancing, out of
//                          scope; E12 quantifies the gap).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/maximal_matching.h"
#include "list/linked_list.h"
#include "pram/arena.h"
#include "pram/prefix.h"
#include "pram/sweep.h"

namespace llmp::apps {

struct RankingResult {
  std::vector<std::uint64_t> rank;  ///< rank[v] = weighted distance to tail
  int rounds = 0;                   ///< contraction rounds / jump rounds
  pram::Stats cost;
};

/// Wyllie's pointer jumping. O(log n) steps of n processors.
template <class Exec>
RankingResult wyllie_ranking(Exec& exec, const list::LinkedList& list) {
  RankingResult r;
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  const auto& next_arr = list.next_array();

  // rank is moved into the result, so it (and its swap partner below)
  // stays a plain vector rather than an arena lease.
  std::vector<std::uint64_t> rank(n);
  if constexpr (pram::has_sweep_v<Exec>) {
    if (pram::tuning().fused) {
      // The fused rounds jump through interleaved {successor, rank} pairs:
      // the random access at jn[v] then costs ONE cache line instead of
      // two (separate nxt/rank arrays), and ranks travel as uint32 — they
      // are list distances < n, and index_t caps n below 2^32 — halving
      // the streamed traffic. The final round widens straight into the
      // public uint64 ranks, so results are bit-identical to the legacy
      // per-element rounds.
      struct JumpPair {
        index_t s;
        std::uint32_t r;
      };
      const std::size_t dist =
          static_cast<std::size_t>(pram::tuning().prefetch.distance);
      auto pairs_h = pram::scratch<JumpPair>(exec, n);
      auto pairs2_h = pram::scratch<JumpPair>(exec, n);
      JumpPair* cur = (*pairs_h).data();
      JumpPair* nxt_buf = (*pairs2_h).data();
      {
        const index_t* na = next_arr.data();
        JumpPair* out = cur;
        exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t v = lo; v < hi; ++v) {
            const index_t s = na[v];
            out[v] = {s, s == knil ? 0u : 1u};
          }
        });
      }
      std::uint64_t* rk64 = rank.data();
      for (std::size_t span = 1; span < n; span <<= 1) {
        const bool last = (span << 1) >= n;
        const JumpPair* jn = cur;
        if (!last) {
          JumpPair* out = nxt_buf;
          exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
            for (std::size_t v = lo; v < hi; ++v) {
              if (dist != 0 && v + dist < hi) {
                const index_t pf = jn[v + dist].s;
                if (pf != knil) pram::prefetch_ro(jn + pf);
              }
              const JumpPair p = jn[v];
              out[v] = p.s == knil ? p
                                   : JumpPair{jn[p.s].s, p.r + jn[p.s].r};
            }
          });
          std::swap(cur, nxt_buf);
        } else {
          // Last doubling: only the ranks are ever read again, so write
          // them wide and skip the dead successor column.
          exec.sweep(n, 1, [=](std::size_t lo, std::size_t hi) {
            for (std::size_t v = lo; v < hi; ++v) {
              if (dist != 0 && v + dist < hi) {
                const index_t pf = jn[v + dist].s;
                if (pf != knil) pram::prefetch_ro(jn + pf);
              }
              const JumpPair p = jn[v];
              rk64[v] = p.s == knil
                            ? p.r
                            : std::uint64_t{p.r} + jn[p.s].r;
            }
          });
        }
        ++r.rounds;
      }
      if (n == 1) rank[0] = cur[0].r;  // no doubling round ran
      r.rank = std::move(rank);
      r.cost = exec.stats() - start;
      return r;
    }
  }
  auto nxt_h = pram::scratch<index_t>(exec, n);
  auto nxt2_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& nxt = *nxt_h;
  std::vector<index_t>& nxt2 = *nxt2_h;
  std::vector<std::uint64_t> rank2(n);
  exec.step(n, [&](std::size_t v, auto&& m) {
    const index_t s = m.rd(next_arr, v);
    m.wr(nxt, v, s);
    m.wr(rank, v, std::uint64_t{s == knil ? 0u : 1u});
  });
  for (std::size_t span = 1; span < n; span <<= 1) {
    exec.step(n, [&](std::size_t v, auto&& m) {
      const index_t s = m.rd(nxt, v);
      if (s == knil) {
        m.wr(rank2, v, m.rd(rank, v));
        m.wr(nxt2, v, knil);
        return;
      }
      m.wr(rank2, v, m.rd(rank, v) + m.rd(rank, static_cast<std::size_t>(s)));
      m.wr(nxt2, v, m.rd(nxt, static_cast<std::size_t>(s)));
    });
    rank.swap(rank2);
    nxt.swap(nxt2);
    ++r.rounds;
  }
  r.rank = std::move(rank);
  r.cost = exec.stats() - start;
  return r;
}

struct ContractionOptions {
  core::Algorithm matcher = core::Algorithm::kMatch4;
  int i_parameter = 3;
};

/// Matching-contraction ranking (see header comment).
template <class Exec>
RankingResult contraction_ranking(Exec& exec, const list::LinkedList& list,
                                  const ContractionOptions& opt = {}) {
  RankingResult result;
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();

  // Working copy in *original* node ids; each round also keeps a dense
  // LinkedList of the alive nodes for the matcher.
  auto nxt_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& nxt = *nxt_h;
  std::copy(list.next_array().begin(), list.next_array().end(), nxt.begin());
  auto dist_h = pram::scratch<std::uint64_t>(exec, n);
  std::vector<std::uint64_t>& dist = *dist_h;
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(dist, v, std::uint64_t{1});
  });

  // One expansion record per spliced-out node. Internally we rank by
  // *distance from the head* (h), because the head is never a matched
  // pointer's head node and thus survives every round; the public
  // distance-to-tail rank is (n−1) − h at the end.
  struct Splice {
    index_t node;    // the removed node s (original id)
    index_t anchor;  // the matched tail v that absorbed s
    std::uint64_t d; // dist[v] at splice time: h(s) = h(v) + d
  };
  std::vector<std::vector<Splice>> rounds_log;

  std::vector<index_t> alive;  // original ids, in current dense order
  alive.reserve(n);
  for (index_t v = 0; v < n; ++v) alive.push_back(v);

  while (alive.size() > 1) {
    const std::size_t m_cur = alive.size();
    // Dense view: position of each alive node, dense next array.
    auto pos_h = pram::scratch<index_t>(exec, n, knil);
    std::vector<index_t>& pos = *pos_h;
    exec.step(m_cur, [&](std::size_t d_id, auto&& mm) {
      mm.wr(pos, static_cast<std::size_t>(alive[d_id]),
            static_cast<index_t>(d_id));
    });
    std::vector<index_t> dense_next(m_cur);
    exec.step(m_cur, [&](std::size_t d_id, auto&& mm) {
      const index_t s = mm.rd(nxt, static_cast<std::size_t>(alive[d_id]));
      mm.wr(dense_next, d_id,
            s == knil ? knil : mm.rd(pos, static_cast<std::size_t>(s)));
    });
    list::LinkedList cur(std::move(dense_next));

    core::MatchOptions mopt;
    mopt.algorithm = opt.matcher;
    mopt.i_parameter = opt.i_parameter;
    const core::MatchResult match = core::maximal_matching(exec, cur, mopt);

    // Splice matched heads out (in original-id space).
    auto removed_h = pram::scratch<std::uint8_t>(exec, n);
    auto log_entries_h = pram::scratch<Splice>(exec, m_cur);
    auto has_entry_h = pram::scratch<std::uint8_t>(exec, m_cur);
    std::vector<std::uint8_t>& removed = *removed_h;
    std::vector<Splice>& log_entries = *log_entries_h;
    std::vector<std::uint8_t>& has_entry = *has_entry_h;
    exec.step(m_cur, [&](std::size_t d_id, auto&& mm) {
      if (!match.in_matching[d_id]) return;
      const index_t v = alive[d_id];
      const index_t s = mm.rd(nxt, static_cast<std::size_t>(v));
      LLMP_DCHECK(s != knil);
      const index_t s_next = mm.rd(nxt, static_cast<std::size_t>(s));
      const std::uint64_t vd = mm.rd(dist, static_cast<std::size_t>(v));
      const std::uint64_t sd = mm.rd(dist, static_cast<std::size_t>(s));
      mm.wr(log_entries, d_id, Splice{s, v, vd});
      mm.wr(has_entry, d_id, std::uint8_t{1});
      mm.wr(removed, static_cast<std::size_t>(s), std::uint8_t{1});
      mm.wr(nxt, static_cast<std::size_t>(v), s_next);
      mm.wr(dist, static_cast<std::size_t>(v), vd + sd);
    });

    std::vector<Splice> round_log;
    round_log.reserve(match.edges);
    for (std::size_t d_id = 0; d_id < m_cur; ++d_id)
      if (has_entry[d_id]) round_log.push_back(log_entries[d_id]);
    rounds_log.push_back(std::move(round_log));

    std::vector<index_t> next_alive;
    next_alive.reserve(m_cur - match.edges);
    for (index_t v : alive)
      if (!removed[v]) next_alive.push_back(v);
    alive.swap(next_alive);
    ++result.rounds;
    LLMP_CHECK_MSG(alive.size() < m_cur, "contraction made no progress");
  }

  // Base: the single survivor is the original head (only pointer *heads*
  // are ever removed, and the list head is nobody's pointer head), so its
  // head-distance is 0.
  LLMP_CHECK(alive.front() == list.head());
  auto h_h = pram::scratch<std::uint64_t>(exec, n);
  std::vector<std::uint64_t>& h = *h_h;

  // Expand in reverse: h[s] = h[anchor] + dist[anchor]-at-splice. The
  // anchor is alive when s is expanded (it survived this round; if a
  // later round removed it, that round's expansion already ran).
  for (auto it = rounds_log.rbegin(); it != rounds_log.rend(); ++it) {
    const std::vector<Splice>& entries = *it;
    exec.step(entries.size(), [&](std::size_t e, auto&& mm) {
      const Splice sp = entries[e];
      const std::uint64_t base =
          mm.rd(h, static_cast<std::size_t>(sp.anchor));
      mm.wr(h, static_cast<std::size_t>(sp.node), base + sp.d);
    });
  }

  // Convert head-distance to the public distance-to-tail rank.
  result.rank.assign(n, 0);
  const std::uint64_t total = static_cast<std::uint64_t>(n) - 1;
  exec.step(n, [&](std::size_t v, auto&& mm) {
    mm.wr(result.rank, v, total - mm.rd(h, v));
  });
  result.cost = exec.stats() - start;
  return result;
}

/// Sequential oracle: ranks by one backward accumulation.
std::vector<std::uint64_t> sequential_ranking(const list::LinkedList& list);

}  // namespace llmp::apps
