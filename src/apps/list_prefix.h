// Parallel prefix over a linked list — the problem family this paper's
// machinery was built for (its references [9,11,13,16] are list-prefix
// papers and Han's own [7] is "an optimal linked list prefix algorithm
// on a local memory computer").
//
// Given value[v] per node and an associative operation ⊕ (a monoid — NOT
// required to be commutative), compute the inclusive prefix
//     prefix[v] = value[head] ⊕ value[suc(head)] ⊕ … ⊕ value[v]
// in list order. Same matching-contraction skeleton as list ranking:
// every round a maximal matching selects node-disjoint pointers; each
// matched tail absorbs its head's *segment value* (segments stay
// contiguous in list order, so the fold is order-correct even for
// non-commutative ⊕); O(log n) rounds; expansion replays the splices in
// reverse, handing every removed node the fold of everything before its
// segment. Ranking is the special case ⊕ = + over unit weights.
//
// The Monoid concept:
//   struct M { using value_type = …;
//              static value_type identity();
//              static value_type op(value_type, value_type); };
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/maximal_matching.h"
#include "list/linked_list.h"
#include "pram/arena.h"

namespace llmp::apps {

/// ⊕ = + over uint64 (prefix sums).
struct SumMonoid {
  using value_type = std::uint64_t;
  static value_type identity() { return 0; }
  static value_type op(value_type a, value_type b) { return a + b; }
};

/// ⊕ = max over uint64 (prefix maxima).
struct MaxMonoid {
  using value_type = std::uint64_t;
  static value_type identity() { return 0; }
  static value_type op(value_type a, value_type b) {
    return a < b ? b : a;
  }
};

/// Composition of affine maps x ↦ a·x + b over uint64 (mod 2^64) —
/// deliberately non-commutative, used by the tests to prove the fold
/// respects list order.
struct AffineMonoid {
  struct Affine {
    std::uint64_t a = 1, b = 0;
    bool operator==(const Affine&) const = default;
  };
  using value_type = Affine;
  static value_type identity() { return {1, 0}; }
  /// (g ∘ f)(x) = g(f(x)) where `first` applies first: list order.
  static value_type op(value_type first, value_type then) {
    return {then.a * first.a, then.a * first.b + then.b};
  }
};

struct PrefixOptions {
  core::Algorithm matcher = core::Algorithm::kMatch4;
  int i_parameter = 3;
};

template <class Monoid, class Exec>
struct PrefixResult {
  std::vector<typename Monoid::value_type> prefix;  ///< inclusive, by node
  int rounds = 0;
  pram::Stats cost;
};

/// Inclusive prefix of `values` along the list order of `list`.
template <class Monoid, class Exec>
PrefixResult<Monoid, Exec> list_prefix(
    Exec& exec, const list::LinkedList& list,
    const std::vector<typename Monoid::value_type>& values,
    const PrefixOptions& opt = {}) {
  using T = typename Monoid::value_type;
  const std::size_t n = list.size();
  LLMP_CHECK(values.size() == n);
  PrefixResult<Monoid, Exec> result;
  const pram::Stats start = exec.stats();

  // seg[v]: fold of the contiguous original segment node v represents.
  auto nxt_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& nxt = *nxt_h;
  std::copy(list.next_array().begin(), list.next_array().end(), nxt.begin());
  auto seg_h = pram::scratch<T>(exec, n);
  std::vector<T>& seg = *seg_h;
  std::copy(values.begin(), values.end(), seg.begin());

  struct Splice {
    index_t node;    // removed node s
    index_t anchor;  // matched tail v that absorbed s
    T before;        // seg[v] at splice time: before[s's segment]
  };
  std::vector<std::vector<Splice>> rounds_log;

  std::vector<index_t> alive;
  alive.reserve(n);
  for (index_t v = 0; v < n; ++v) alive.push_back(v);

  while (alive.size() > 1) {
    const std::size_t m_cur = alive.size();
    auto pos_h = pram::scratch<index_t>(exec, n, knil);
    std::vector<index_t>& pos = *pos_h;
    exec.step(m_cur, [&](std::size_t d, auto&& mm) {
      mm.wr(pos, static_cast<std::size_t>(alive[d]),
            static_cast<index_t>(d));
    });
    std::vector<index_t> dense_next(m_cur);
    exec.step(m_cur, [&](std::size_t d, auto&& mm) {
      const index_t s = mm.rd(nxt, static_cast<std::size_t>(alive[d]));
      mm.wr(dense_next, d,
            s == knil ? knil : mm.rd(pos, static_cast<std::size_t>(s)));
    });
    list::LinkedList cur(std::move(dense_next));

    core::MatchOptions mopt;
    mopt.algorithm = opt.matcher;
    mopt.i_parameter = opt.i_parameter;
    const core::MatchResult match = core::maximal_matching(exec, cur, mopt);

    auto removed_h = pram::scratch<std::uint8_t>(exec, n);
    auto has_entry_h = pram::scratch<std::uint8_t>(exec, m_cur);
    auto entries_h = pram::scratch<Splice>(exec, m_cur);
    std::vector<std::uint8_t>& removed = *removed_h;
    std::vector<std::uint8_t>& has_entry = *has_entry_h;
    std::vector<Splice>& entries = *entries_h;
    exec.step(m_cur, [&](std::size_t d, auto&& mm) {
      if (!match.in_matching[d]) return;
      const index_t v = alive[d];
      const index_t s = mm.rd(nxt, static_cast<std::size_t>(v));
      LLMP_DCHECK(s != knil);
      const T seg_v = mm.rd(seg, static_cast<std::size_t>(v));
      const T seg_s = mm.rd(seg, static_cast<std::size_t>(s));
      mm.wr(entries, d, Splice{s, v, seg_v});
      mm.wr(has_entry, d, std::uint8_t{1});
      mm.wr(removed, static_cast<std::size_t>(s), std::uint8_t{1});
      mm.wr(nxt, static_cast<std::size_t>(v),
            mm.rd(nxt, static_cast<std::size_t>(s)));
      mm.wr(seg, static_cast<std::size_t>(v), Monoid::op(seg_v, seg_s));
    });

    std::vector<Splice> log;
    log.reserve(match.edges);
    for (std::size_t d = 0; d < m_cur; ++d)
      if (has_entry[d]) log.push_back(entries[d]);
    rounds_log.push_back(std::move(log));

    std::vector<index_t> next_alive;
    next_alive.reserve(m_cur - match.edges);
    for (index_t v : alive)
      if (!removed[v]) next_alive.push_back(v);
    alive.swap(next_alive);
    ++result.rounds;
    LLMP_CHECK_MSG(alive.size() < m_cur, "contraction made no progress");
  }

  // P[v] = fold of everything strictly before v's original position.
  LLMP_CHECK(alive.front() == list.head());
  auto before_h = pram::scratch<T>(exec, n, Monoid::identity());
  std::vector<T>& before = *before_h;
  for (auto it = rounds_log.rbegin(); it != rounds_log.rend(); ++it) {
    const std::vector<Splice>& entries = *it;
    exec.step(entries.size(), [&](std::size_t e, auto&& mm) {
      const Splice& sp = entries[e];
      mm.wr(before, static_cast<std::size_t>(sp.node),
            Monoid::op(mm.rd(before, static_cast<std::size_t>(sp.anchor)),
                       sp.before));
    });
  }

  result.prefix.assign(n, Monoid::identity());
  exec.step(n, [&](std::size_t v, auto&& mm) {
    mm.wr(result.prefix, v, Monoid::op(mm.rd(before, v), values[v]));
  });
  result.cost = exec.stats() - start;
  return result;
}

/// Sequential oracle.
template <class Monoid>
std::vector<typename Monoid::value_type> sequential_prefix(
    const list::LinkedList& list,
    const std::vector<typename Monoid::value_type>& values) {
  using T = typename Monoid::value_type;
  LLMP_CHECK(values.size() == list.size());
  std::vector<T> out(list.size(), Monoid::identity());
  T acc = Monoid::identity();
  for (index_t v = list.head(); v != knil; v = list.next(v)) {
    acc = Monoid::op(acc, values[v]);
    out[v] = acc;
  }
  return out;
}

}  // namespace llmp::apps
