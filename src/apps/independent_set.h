// Maximal independent set of the nodes of a linked list (paper §1's other
// advertised application).
//
// From a 3-coloring: color class 0 is independent; two more passes add
// every color-1 node with no selected neighbour, then every color-2 node
// likewise. Each pass treats an independent set of candidates, so the
// simultaneous checks are race-free; the result is independent (selected
// neighbours block) and maximal (a never-selected node was blocked in its
// own pass by an already-selected neighbour).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/three_coloring.h"
#include "list/linked_list.h"
#include "pram/arena.h"

namespace llmp::apps {

struct IndependentSetResult {
  std::vector<std::uint8_t> in_set;  ///< in_set[v] == 1 ⇔ v selected
  std::size_t size = 0;
  pram::Stats cost;
};

template <class Exec>
IndependentSetResult independent_set(Exec& exec,
                                     const list::LinkedList& list,
                                     core::BitRule rule =
                                         core::BitRule::kMostSignificant) {
  IndependentSetResult r;
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();

  ColoringResult coloring = three_coloring(exec, list, rule);
  const auto& next = list.next_array();
  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  core::parallel_predecessors_into(exec, list, pred);

  std::vector<std::uint8_t>& in_set = r.in_set;
  in_set.assign(n, 0);
  for (std::uint8_t c = 0; c < 3; ++c) {
    exec.step(n, [&](std::size_t v, auto&& m) {
      if (m.rd(coloring.colors, v) != c) return;
      const index_t pv = m.rd(pred, v);
      const index_t s = m.rd(next, v);
      if (pv != knil && m.rd(in_set, static_cast<std::size_t>(pv))) return;
      if (s != knil && m.rd(in_set, static_cast<std::size_t>(s))) return;
      m.wr(in_set, v, std::uint8_t{1});
    });
  }

  for (auto b : in_set) r.size += (b != 0);
  r.cost = exec.stats() - start;
  return r;
}

/// Oracle: throws unless in_set is an independent set and maximal.
void check_independent_set(const list::LinkedList& list,
                           const std::vector<std::uint8_t>& in_set);

}  // namespace llmp::apps
