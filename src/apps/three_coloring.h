// 3-coloring of a linked list (the paper's §1: "This algorithm can be used
// to compute a maximal independent set or a 3 coloring for a linked list").
//
// Deterministic coin tossing (Match1 step 2) leaves every node a label in
// {0..5} with adjacent labels distinct — a 6-coloring. Three reduction
// passes remove colors 5, 4, 3: nodes of the color being removed form an
// independent set (adjacent nodes never share a color), so each can
// simultaneously re-pick the smallest of {0,1,2} unused by its two
// neighbours, whose colors are stable during the pass. O(n·G(n)/p + G(n))
// total; the recolor passes add O(1) steps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/match_result.h"
#include "core/partition_fn.h"
#include "list/linked_list.h"
#include "pram/arena.h"

namespace llmp::apps {

struct ColoringResult {
  /// colors[v] ∈ {0,1,2}; adjacent nodes (v, suc(v)) always differ.
  std::vector<std::uint8_t> colors;
  int reduce_rounds = 0;  ///< deterministic coin-tossing rounds used
  pram::Stats cost;
};

template <class Exec>
ColoringResult three_coloring(Exec& exec, const list::LinkedList& list,
                              core::BitRule rule =
                                  core::BitRule::kMostSignificant) {
  ColoringResult r;
  const std::size_t n = list.size();
  const pram::Stats start = exec.stats();
  const auto& next = list.next_array();

  // 6-coloring: the fixed-point labels of deterministic coin tossing.
  // (Adjacent-distinct holds circularly, so it holds on the path.)
  auto labels_h = pram::scratch<label_t>(exec, n);
  std::vector<label_t>& labels = *labels_h;
  core::init_address_labels(exec, n, labels);
  r.reduce_rounds = core::reduce_to_constant(exec, list, labels, rule,
                                             /*labels_are_addresses=*/true);

  auto pred_h = pram::scratch<index_t>(exec, n);
  std::vector<index_t>& pred = *pred_h;
  core::parallel_predecessors_into(exec, list, pred);
  // colors is moved into the result, so it (and its swap partner) stays a
  // plain vector rather than an arena lease.
  std::vector<std::uint8_t> colors(n), colors2(n);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(colors, v, static_cast<std::uint8_t>(m.rd(labels, v)));
  });

  // Remove colors 5, 4, 3. Nodes holding color c form an independent set;
  // they re-pick in one synchronous step (reads of neighbour colors are
  // stable: a neighbour holds color != c, hence is not recoloring now).
  for (std::uint8_t c = 5; c >= 3; --c) {
    exec.step(n, [&](std::size_t v, auto&& m) {
      const std::uint8_t mine = m.rd(colors, v);
      if (mine != c) {
        m.wr(colors2, v, mine);
        return;
      }
      const index_t pv = m.rd(pred, v);
      const index_t s = m.rd(next, v);
      const std::uint8_t a =
          pv == knil ? 0xFF : m.rd(colors, static_cast<std::size_t>(pv));
      const std::uint8_t b =
          s == knil ? 0xFF : m.rd(colors, static_cast<std::size_t>(s));
      std::uint8_t pick = 0;
      while (pick == a || pick == b) ++pick;
      LLMP_DCHECK(pick < 3);
      m.wr(colors2, v, pick);
    });
    colors.swap(colors2);
  }

  r.colors = std::move(colors);
  r.cost = exec.stats() - start;
  return r;
}

/// Oracle: throws unless colors is a proper coloring of the path with
/// values < palette.
void check_coloring(const list::LinkedList& list,
                    const std::vector<std::uint8_t>& colors,
                    std::uint8_t palette);

}  // namespace llmp::apps
