#include "apps/register.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "apps/independent_set.h"
#include "apps/list_prefix.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/registry.h"

namespace llmp::apps {

namespace {

template <class Fn>
core::AlgorithmEntry app_entry(std::string name, pram::Mode declared,
                               std::string formula, int order, Fn fn) {
  core::AlgorithmEntry e;
  e.name = std::move(name);
  e.declared = declared;
  e.formula = std::move(formula);
  e.order = order;
  e.in_prover = true;
  e.runner = core::make_runner(std::move(fn));
  return e;
}

}  // namespace

void register_algorithms() {
  static const bool done = [] {
    auto& reg = core::AlgorithmRegistry::instance();
    // Ranks 10–14: after the core matching/walkdown rows, before the
    // non-prover baselines. add() is first-wins, so re-registration is a
    // no-op even if this initializer somehow runs again.
    reg.add(app_entry("three-coloring", pram::Mode::kCREW,
                      "O(n·G(n)/p + G(n))", 10,
                      [](auto& ctx, const list::LinkedList& list) {
                        apps::three_coloring(ctx, list);
                      }));
    reg.add(app_entry("independent-set", pram::Mode::kCREW,
                      "O(n·G(n)/p + G(n))", 11,
                      [](auto& ctx, const list::LinkedList& list) {
                        apps::independent_set(ctx, list);
                      }));
    reg.add(app_entry("wyllie-ranking", pram::Mode::kCREW,
                      "O(log n) steps, O(n log n) work", 12,
                      [](auto& ctx, const list::LinkedList& list) {
                        apps::wyllie_ranking(ctx, list);
                      }));
    reg.add(app_entry("contract-ranking", pram::Mode::kCREW,
                      "O(n) work, O(log n) rounds", 13,
                      [](auto& ctx, const list::LinkedList& list) {
                        apps::contraction_ranking(ctx, list);
                      }));
    reg.add(app_entry("list-prefix", pram::Mode::kCREW,
                      "O(n) work, O(log n) rounds", 14,
                      [](auto& ctx, const list::LinkedList& list) {
                        std::vector<std::uint64_t> ones(list.size(), 1);
                        apps::list_prefix<apps::SumMonoid>(ctx, list, ones);
                      }));
    return true;
  }();
  (void)done;
}

}  // namespace llmp::apps
