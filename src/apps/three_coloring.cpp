#include "apps/three_coloring.h"

#include "support/check.h"

namespace llmp::apps {

void check_coloring(const list::LinkedList& list,
                    const std::vector<std::uint8_t>& colors,
                    std::uint8_t palette) {
  LLMP_CHECK(colors.size() == list.size());
  for (index_t v = 0; v < list.size(); ++v) {
    LLMP_CHECK_MSG(colors[v] < palette,
                   "node " << v << " has color " << int(colors[v])
                           << " >= palette " << int(palette));
    const index_t s = list.next(v);
    if (s != knil)
      LLMP_CHECK_MSG(colors[v] != colors[s],
                     "adjacent nodes " << v << "," << s << " share color "
                                       << int(colors[v]));
  }
}

}  // namespace llmp::apps
