#include "apps/independent_set.h"

#include "support/check.h"

namespace llmp::apps {

void check_independent_set(const list::LinkedList& list,
                           const std::vector<std::uint8_t>& in_set) {
  LLMP_CHECK(in_set.size() == list.size());
  for (index_t v = 0; v < list.size(); ++v) {
    const index_t s = list.next(v);
    if (s == knil) continue;
    LLMP_CHECK_MSG(!(in_set[v] && in_set[s]),
                   "adjacent nodes " << v << "," << s << " both selected");
  }
  const auto preds = list.predecessors();
  for (index_t v = 0; v < list.size(); ++v) {
    if (in_set[v]) continue;
    const index_t s = list.next(v);
    const index_t p = preds[v];
    const bool blocked =
        (s != knil && in_set[s]) || (p != knil && in_set[p]);
    LLMP_CHECK_MSG(blocked, "node " << v << " could be added: not maximal");
  }
}

}  // namespace llmp::apps
