#include "apps/list_ranking.h"

namespace llmp::apps {

std::vector<std::uint64_t> sequential_ranking(const list::LinkedList& list) {
  const std::size_t n = list.size();
  std::vector<std::uint64_t> rank(n, 0);
  // One forward walk records positions; rank = n-1-position.
  std::uint64_t pos = 0;
  for (index_t v = list.head(); v != knil; v = list.next(v), ++pos)
    rank[v] = static_cast<std::uint64_t>(n) - 1 - pos;
  return rank;
}

}  // namespace llmp::apps
