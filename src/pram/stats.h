// PRAM cost model.
//
// The paper states every bound as "time with p processors": a parallel
// statement over n virtual processors costs ceil(n/p) steps (Brent
// scheduling), and a full algorithm costs the sum over its synchronous
// steps. Executors account exactly that:
//
//   depth   — number of synchronous steps (= time with p = ∞),
//   time_p  — Σ_j ceil(n_j / p) · unit_j   (time with p processors),
//   work    — Σ_j n_j · unit_j             (total operations).
//
// `unit_j` is 1 for ordinary O(1)-per-processor steps; steps whose body is
// a bounded sequential subroutine (e.g. Match4's per-column counting sort,
// which does O(x) work per processor) declare their per-processor
// instruction count so time_p stays faithful to the paper's accounting.
//
// On this host the wall clock cannot exhibit PRAM speedups (1 core), so
// time_p is the headline metric of every experiment; see EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llmp::pram {

struct Stats {
  std::uint64_t depth = 0;   ///< synchronous steps (time with unlimited p)
  std::uint64_t time_p = 0;  ///< Σ ceil(n_j/p)·unit_j — time with p procs
  std::uint64_t work = 0;    ///< Σ n_j·unit_j — total operations
  std::uint64_t reads = 0;   ///< tracked reads (Machine only)
  std::uint64_t writes = 0;  ///< tracked writes (Machine only)

  Stats operator-(const Stats& o) const {
    return {depth - o.depth, time_p - o.time_p, work - o.work,
            reads - o.reads, writes - o.writes};
  }
  Stats& operator+=(const Stats& o) {
    depth += o.depth;
    time_p += o.time_p;
    work += o.work;
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

/// Named per-phase cost deltas, e.g. {"partition", ...}, {"sort", ...}.
/// Match2's experiment (E5) exists to show one phase dominating.
/// `wall_ms` is the measured wall-clock time of the span when the caller
/// timed it (0 otherwise) — machine noise beside the deterministic model
/// cost, reported by the benches' --compare-baseline mode and ignored by
/// the bench gate.
struct Phase {
  std::string name;
  Stats cost;
  double wall_ms = 0.0;
};

using PhaseBreakdown = std::vector<Phase>;

/// Find a phase by name; returns zero Stats when absent.
Stats phase_cost(const PhaseBreakdown& phases, const std::string& name);

inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

}  // namespace llmp::pram
