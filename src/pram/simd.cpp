// SIMD kernel implementations + runtime dispatch. See simd.h for the
// contract: every level computes identical integers, only faster.
//
// The vector kernels avoid lane-variable shifts entirely (SSE2 has none):
// instead of (a >> k) & 1 they isolate bit k as a mask and take
// popcount(a & bit_k), and k itself is a popcount of the smeared (msb) or
// decremented-isolated (lsb) XOR. Popcount per 64-bit lane is the nibble
// shuffle-LUT on AVX2 and the SWAR add-chain on SSE2, both folded to a
// per-lane sum with the (SSE2-era) psadbw instruction.

#include "pram/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define LLMP_SIMD_X86 1
#include <immintrin.h>
#else
#define LLMP_SIMD_X86 0
#endif

namespace llmp::pram::simd {

namespace {

// ---- Scalar reference (also the tail path of the vector kernels). --------

inline std::uint64_t crunch_one(std::uint64_t a, std::uint64_t b,
                                bool most_significant) {
  const std::uint64_t x = a ^ b;
  const int k = most_significant ? 63 - std::countl_zero(x)
                                 : std::countr_zero(x);
  return 2 * static_cast<std::uint64_t>(k) + ((a >> k) & 1);
}

void crunch_scalar(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t n, bool most_significant) {
  if (most_significant) {
    for (std::size_t i = 0; i < n; ++i) out[i] = crunch_one(a[i], b[i], true);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = crunch_one(a[i], b[i], false);
  }
}

void concat_scalar(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t n, int shift) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (a[i] << shift) | b[i];
}

inline std::uint8_t crunch_byte_one(std::uint8_t a, std::uint8_t b,
                                    bool most_significant) {
  const unsigned x = static_cast<unsigned>(a ^ b);
  const int k = most_significant ? 31 - std::countl_zero(x)
                                 : std::countr_zero(x);
  return static_cast<std::uint8_t>(2 * k + ((a >> k) & 1));
}

void crunch_bytes_scalar(const std::uint8_t* a, const std::uint8_t* b,
                         std::uint8_t* out, std::size_t n,
                         bool most_significant) {
  if (most_significant) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = crunch_byte_one(a[i], b[i], true);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = crunch_byte_one(a[i], b[i], false);
  }
}

#if LLMP_SIMD_X86

// ---- SSE2 (baseline on x86-64). ------------------------------------------

__attribute__((target("sse2"))) inline __m128i popcount64_sse2(__m128i v) {
  const __m128i m1 = _mm_set1_epi64x(0x5555555555555555LL);
  const __m128i m2 = _mm_set1_epi64x(0x3333333333333333LL);
  const __m128i m4 = _mm_set1_epi64x(0x0f0f0f0f0f0f0f0fLL);
  v = _mm_sub_epi64(v, _mm_and_si128(_mm_srli_epi64(v, 1), m1));
  v = _mm_add_epi64(_mm_and_si128(v, m2),
                    _mm_and_si128(_mm_srli_epi64(v, 2), m2));
  v = _mm_and_si128(_mm_add_epi64(v, _mm_srli_epi64(v, 4)), m4);
  return _mm_sad_epu8(v, _mm_setzero_si128());
}

__attribute__((target("sse2"))) void crunch_sse2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
    std::size_t n, bool most_significant) {
  const __m128i one = _mm_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i x = _mm_xor_si128(va, vb);
    __m128i bit, k;
    if (most_significant) {
      __m128i s = x;
      s = _mm_or_si128(s, _mm_srli_epi64(s, 1));
      s = _mm_or_si128(s, _mm_srli_epi64(s, 2));
      s = _mm_or_si128(s, _mm_srli_epi64(s, 4));
      s = _mm_or_si128(s, _mm_srli_epi64(s, 8));
      s = _mm_or_si128(s, _mm_srli_epi64(s, 16));
      s = _mm_or_si128(s, _mm_srli_epi64(s, 32));
      bit = _mm_xor_si128(s, _mm_srli_epi64(s, 1));
      k = _mm_sub_epi64(popcount64_sse2(s), one);
    } else {
      bit = _mm_and_si128(x, _mm_sub_epi64(_mm_setzero_si128(), x));
      k = popcount64_sse2(_mm_sub_epi64(bit, one));
    }
    const __m128i dir = popcount64_sse2(_mm_and_si128(va, bit));
    const __m128i r = _mm_add_epi64(_mm_slli_epi64(k, 1), dir);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), r);
  }
  if (i < n) crunch_scalar(a + i, b + i, out + i, n - i, most_significant);
}

__attribute__((target("sse2"))) void concat_sse2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
    std::size_t n, int shift) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(_mm_sll_epi64(va, cnt), vb));
  }
  if (i < n) concat_scalar(a + i, b + i, out + i, n - i, shift);
}

// ---- AVX2. ---------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i popcount64_avx2(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i m4 = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, m4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), m4);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) void crunch_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
    std::size_t n, bool most_significant) {
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i x = _mm256_xor_si256(va, vb);
    __m256i bit, k;
    if (most_significant) {
      __m256i s = x;
      s = _mm256_or_si256(s, _mm256_srli_epi64(s, 1));
      s = _mm256_or_si256(s, _mm256_srli_epi64(s, 2));
      s = _mm256_or_si256(s, _mm256_srli_epi64(s, 4));
      s = _mm256_or_si256(s, _mm256_srli_epi64(s, 8));
      s = _mm256_or_si256(s, _mm256_srli_epi64(s, 16));
      s = _mm256_or_si256(s, _mm256_srli_epi64(s, 32));
      bit = _mm256_xor_si256(s, _mm256_srli_epi64(s, 1));
      k = _mm256_sub_epi64(popcount64_avx2(s), one);
    } else {
      bit = _mm256_and_si256(x,
                             _mm256_sub_epi64(_mm256_setzero_si256(), x));
      k = popcount64_avx2(_mm256_sub_epi64(bit, one));
    }
    const __m256i dir = popcount64_avx2(_mm256_and_si256(va, bit));
    const __m256i r = _mm256_add_epi64(_mm256_slli_epi64(k, 1), dir);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  if (i < n) crunch_scalar(a + i, b + i, out + i, n - i, most_significant);
}

// Byte lanes have no variable shifts at all, so the byte kernel is pure
// nibble-LUT shuffles: k from an msb-of-nibble table (the lsb rule first
// isolates the low bit with x & -x and takes its msb), bit_k from a
// power-of-two table indexed by k, and the direction as a compare of
// a & bit_k against zero.
__attribute__((target("avx2"))) void crunch_bytes_avx2(
    const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out,
    std::size_t n, bool most_significant) {
  // msb4[v] = index of the highest set bit of the nibble v (v = 0 unused).
  const __m256i msb4 = _mm256_setr_epi8(
      0, 0, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3,
      0, 0, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i pow2 = _mm256_setr_epi8(
      1, 2, 4, 8, 16, 32, 64, -128, 0, 0, 0, 0, 0, 0, 0, 0,
      1, 2, 4, 8, 16, 32, 64, -128, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m256i m4 = _mm256_set1_epi8(0x0f);
  const __m256i four = _mm256_set1_epi8(4);
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i x = _mm256_xor_si256(va, vb);
    if (!most_significant)  // isolate the low set bit; its msb is the lsb
      x = _mm256_and_si256(x, _mm256_sub_epi8(zero, x));
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), m4);
    const __m256i lo = _mm256_and_si256(x, m4);
    const __m256i hi_is_zero = _mm256_cmpeq_epi8(hi, zero);
    const __m256i k = _mm256_blendv_epi8(
        _mm256_add_epi8(_mm256_shuffle_epi8(msb4, hi), four),
        _mm256_shuffle_epi8(msb4, lo), hi_is_zero);
    const __m256i bit = _mm256_shuffle_epi8(pow2, k);
    // dir = (a & bit_k) != 0: cmpeq gives 0xFF (== -1) on zero, so 1 +
    // mask is exactly the direction bit.
    const __m256i dir = _mm256_add_epi8(
        one, _mm256_cmpeq_epi8(_mm256_and_si256(va, bit), zero));
    const __m256i r = _mm256_add_epi8(_mm256_add_epi8(k, k), dir);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  if (i < n)
    crunch_bytes_scalar(a + i, b + i, out + i, n - i, most_significant);
}

__attribute__((target("avx2"))) void concat_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
    std::size_t n, int shift) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(_mm256_sll_epi64(va, cnt), vb));
  }
  if (i < n) concat_scalar(a + i, b + i, out + i, n - i, shift);
}

#endif  // LLMP_SIMD_X86

// ---- Dispatch state. -----------------------------------------------------

Level env_requested_level(Level supported) {
  const char* e = std::getenv("LLMP_SIMD");
  if (e == nullptr || std::strcmp(e, "auto") == 0) return supported;
  if (std::strcmp(e, "off") == 0 || std::strcmp(e, "scalar") == 0 ||
      std::strcmp(e, "0") == 0)
    return Level::kScalar;
  if (std::strcmp(e, "sse2") == 0) return Level::kSse2;
  if (std::strcmp(e, "avx2") == 0) return Level::kAvx2;
  return supported;
}

std::atomic<int>& level_slot() {
  static std::atomic<int> slot{[] {
    const Level supported = max_supported_level();
    const Level want = env_requested_level(supported);
    return static_cast<int>(want < supported ? want : supported);
  }()};
  return slot;
}

}  // namespace

Level max_supported_level() {
#if LLMP_SIMD_X86
  static const Level lvl = [] {
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Level::kSse2;
    return Level::kScalar;
  }();
  return lvl;
#else
  return Level::kScalar;
#endif
}

Level active_level() {
  return static_cast<Level>(level_slot().load(std::memory_order_relaxed));
}

Level set_level(Level want) {
  const Level supported = max_supported_level();
  const Level lvl = want < supported ? want : supported;
  level_slot().store(static_cast<int>(lvl), std::memory_order_relaxed);
  return lvl;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

void crunch_pairs(const std::uint64_t* a, const std::uint64_t* b,
                  std::uint64_t* out, std::size_t n, bool most_significant) {
#if LLMP_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2: crunch_avx2(a, b, out, n, most_significant); return;
    case Level::kSse2: crunch_sse2(a, b, out, n, most_significant); return;
    case Level::kScalar: break;
  }
#endif
  crunch_scalar(a, b, out, n, most_significant);
}

void concat_pairs(const std::uint64_t* a, const std::uint64_t* b,
                  std::uint64_t* out, std::size_t n, int shift) {
#if LLMP_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2: concat_avx2(a, b, out, n, shift); return;
    case Level::kSse2: concat_sse2(a, b, out, n, shift); return;
    case Level::kScalar: break;
  }
#endif
  concat_scalar(a, b, out, n, shift);
}

void crunch_bytes(const std::uint8_t* a, const std::uint8_t* b,
                  std::uint8_t* out, std::size_t n, bool most_significant) {
#if LLMP_SIMD_X86
  // SSE2 has no byte shuffle; only AVX2 beats the scalar loop here.
  if (active_level() == Level::kAvx2) {
    crunch_bytes_avx2(a, b, out, n, most_significant);
    return;
  }
#endif
  crunch_bytes_scalar(a, b, out, n, most_significant);
}

}  // namespace llmp::pram::simd
