// Parallel prefix sums and stable integer sorting on the Executor concept.
//
// Match2 (Lemma 4) needs a *global* sort of all n pointers by their
// matching-set number — small integers in {0, …, R−1} with R = O(log log n).
// The paper attributes Match2's bottleneck to exactly this step and cites
// Reif's and Cole–Vishkin's partial-sum subroutines for sharpening it; we
// implement the standard work-efficient structure:
//
//   exclusive_scan — Blelloch up-/down-sweep: 2·ceil(log2 m) steps, O(m)
//                    work, EREW-legal (verified by machine tests).
//   counting_sort_by_key — B block histograms (one virtual processor per
//                    block, O(n/B + R) sequential work each), a scan over
//                    the R·B counters laid out key-major (which makes the
//                    sort stable), and a scatter pass. With B = p the time
//                    is O(n/p + R + log(R·p)) — the O(n/p + log n) shape of
//                    Lemma 4.
//
// Match4's whole point (E13) is that this global sort can be replaced by
// per-column sequential sorts plus the WalkDown schedule; bench_ablation
// runs both against each other.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/arena.h"
#include "pram/stats.h"
#include "support/check.h"
#include "support/itlog.h"
#include "support/types.h"

namespace llmp::pram {

/// In-place exclusive prefix sum (Blelloch scan) of a[0..n). Returns the
/// total sum. Depth 2·ceil(log2 n) + O(1); work O(n).
template <class Exec>
std::uint64_t exclusive_scan(Exec& exec, std::vector<std::uint64_t>& a) {
  const std::size_t n = a.size();
  if (n == 0) return 0;
  if (n == 1) {
    std::uint64_t total = a[0];  // lint:allow(unchecked-index) — n == 1
    a[0] = 0;
    return total;
  }
  // Pad to a power of two with zeros (identity of +).
  std::size_t m = std::size_t{1} << itlog::ceil_log2(n);
  a.resize(m, 0);

  // Up-sweep: each virtual processor owns one internal tree node; it reads
  // its left child's boundary cell and accumulates into its right one. The
  // read and written cells are distinct within each step, so the fast
  // executors' immediate writes match lockstep semantics.
  for (std::size_t d = 1; d < m; d <<= 1) {
    const std::size_t stride = d << 1;
    exec.step(m / stride, [&](std::size_t v, auto&& mem) {
      const std::size_t base = v * stride;
      const std::uint64_t left = mem.rd(a, base + d - 1);
      const std::uint64_t right = mem.rd(a, base + stride - 1);
      mem.wr(a, base + stride - 1, left + right);
    });
  }

  std::uint64_t total = 0;
  exec.step(1, [&](std::size_t, auto&& mem) {
    total = mem.rd(a, m - 1);
    mem.wr(a, m - 1, std::uint64_t{0});
  });

  // Down-sweep.
  for (std::size_t d = m >> 1; d >= 1; d >>= 1) {
    const std::size_t stride = d << 1;
    exec.step(m / stride, [&](std::size_t v, auto&& mem) {
      const std::size_t base = v * stride;
      const std::uint64_t t = mem.rd(a, base + d - 1);
      const std::uint64_t r = mem.rd(a, base + stride - 1);
      mem.wr(a, base + d - 1, r);
      mem.wr(a, base + stride - 1, r + t);
    });
  }
  a.resize(n);
  return total;
}

/// Result of counting_sort_by_key: `order` lists element indices in stable
/// sorted-by-key sequence; `offsets[k]..offsets[k+1]` is the slice of
/// `order` holding key k (offsets has range+1 entries).
struct SortedByKey {
  std::vector<index_t> order;
  std::vector<std::uint64_t> offsets;
};

/// In-place stable parallel counting sort of `keys` (each < range) using
/// `blocks` virtual processors, writing into caller-owned buffers so warm
/// repeated sorts reuse capacity (Match2 leases them from the Context
/// arena and reaches zero steady-state allocations — see Match2Plan).
/// Time O(n/blocks + range + log(range·blocks)) with p >= blocks.
template <class Exec>
void counting_sort_by_key_into(Exec& exec, const std::vector<index_t>& keys,
                               index_t range, std::size_t blocks,
                               std::vector<index_t>& order,
                               std::vector<std::uint64_t>& offsets) {
  LLMP_CHECK(range >= 1);
  LLMP_CHECK(blocks >= 1);
  const std::size_t n = keys.size();
  order.resize(n);
  offsets.assign(static_cast<std::size_t>(range) + 1, 0);
  if (n == 0) return;
  blocks = std::min(blocks, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  // counts laid out key-major: counts[r·blocks + b] = multiplicity of key
  // r in block b. The key-major layout means the exclusive scan hands each
  // (key, block) pair the final start offset with blocks ordered within a
  // key — which preserves block order and hence stability. The grid is
  // leased pre-padded to the power of two the scan will grow it to, so
  // the cold call's single take is already final-sized (the cost model is
  // unchanged: the scan pads to this same size internally either way).
  const std::size_t cells = static_cast<std::size_t>(range) * blocks;
  const std::size_t padded = std::size_t{1} << itlog::ceil_log2(cells);
  auto counts_h = pram::scratch<std::uint64_t>(exec, padded);
  std::vector<std::uint64_t>& counts = *counts_h;
  const std::uint64_t per_block =
      static_cast<std::uint64_t>(chunk) + range;  // histogram work/proc
  exec.step(blocks, per_block, [&](std::size_t b, auto&& mem) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      const index_t k = mem.rd(keys, i);
      LLMP_DCHECK(k < range);
      const std::size_t cell = static_cast<std::size_t>(k) * blocks + b;
      mem.wr(counts, cell, mem.rd(counts, cell) + 1);
    }
  });

  exclusive_scan(exec, counts);

  // offsets[k] = start of key k = the scanned count of its first block.
  exec.step(range, [&](std::size_t k, auto&& mem) {
    mem.wr(offsets, k, mem.rd(counts, k * blocks));
  });
  exec.step(1, [&](std::size_t, auto&& mem) {
    mem.wr(offsets, static_cast<std::size_t>(range),
           static_cast<std::uint64_t>(n));
  });

  exec.step(blocks, per_block, [&](std::size_t b, auto&& mem) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      const index_t k = mem.rd(keys, i);
      const std::size_t cell = static_cast<std::size_t>(k) * blocks + b;
      const std::uint64_t pos = mem.rd(counts, cell);
      mem.wr(counts, cell, pos + 1);
      mem.wr(order, static_cast<std::size_t>(pos),
             static_cast<index_t>(i));
    }
  });
}

/// Allocating convenience form of counting_sort_by_key_into.
template <class Exec>
SortedByKey counting_sort_by_key(Exec& exec, const std::vector<index_t>& keys,
                                 index_t range, std::size_t blocks) {
  SortedByKey result;
  counting_sort_by_key_into(exec, keys, range, blocks, result.order,
                            result.offsets);
  return result;
}

}  // namespace llmp::pram
