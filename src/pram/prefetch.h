// Software-prefetch policy seam.
//
// This header is the ONLY place in the tree allowed to spell
// __builtin_prefetch (enforced by llmp_lint's raw-intrinsic rule): every
// pointer-chasing sweep in core/ and apps/ hints the cache through these
// wrappers, so the policy — distance, on/off, future locality tuning —
// lives in one file instead of being scattered through the kernels.
//
// Prefetching matters exactly where the PRAM model says it shouldn't: the
// relabel / pointer-doubling sweeps read a[next[v]] for a random-ish next,
// so at list sizes past the last-level cache every element is a ~100ns
// miss. Issuing the load `distance` iterations early overlaps that miss
// with useful work; the sweet spot is memory-system dependent, hence the
// env override (LLMP_PREFETCH_DIST, 0 disables) threaded through
// pram::tuning().
#pragma once

namespace llmp::pram {

/// Tunable knobs for the prefetching sweeps. Carried inside SweepTuning
/// (tune.h); kernels receive the distance as a plain loop-hoisted value.
struct PrefetchPolicy {
  /// Elements of look-ahead in fused sweeps. 0 = no prefetching.
  int distance = 16;
};

/// Hint a future read of *p. Safe on any address; no-op off GCC/Clang.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Hint a future write of *p.
inline void prefetch_rw(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace llmp::pram
