// Crossover measurement for the adaptive parallel threshold. See
// calibrate.h for the contract.

#include "pram/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "pram/thread_pool.h"

namespace llmp::pram {

namespace {

using clock_type = std::chrono::steady_clock;

/// The probe kernel: a linear uint64 sweep, the cheapest body a real step
/// runs. If the pool cannot beat inline on this, it cannot beat it on
/// anything at that size.
void touch_range(const std::uint64_t* src, std::uint64_t* dst,
                 std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) dst[i] = src[i] + 1;
}

double best_of(int trials, std::size_t reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = clock_type::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    const auto t1 = clock_type::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  static_cast<double>(reps));
  }
  return best;
}

Calibration measure(ThreadPool& pool) {
  Calibration cal;
  constexpr std::size_t kMaxProbe = std::size_t{1} << 19;
  std::vector<std::uint64_t> src(kMaxProbe, 1), dst(kMaxProbe, 0);
  const std::uint64_t* s = src.data();
  std::uint64_t* d = dst.data();

  // Geometric size ladder; the first size where the pooled sweep wins
  // outright becomes the threshold. Work per sample is capped so the
  // whole calibration stays a few milliseconds (paid once per process).
  for (std::size_t n = 512; n <= kMaxProbe; n <<= 1) {
    const std::size_t reps = std::max<std::size_t>(1, (1u << 20) / n);
    const double inline_ns =
        best_of(3, reps, [&] { touch_range(s, d, 0, n); });
    const double pooled_ns = best_of(3, reps, [&] {
      pool.parallel_for_slices(
          n, [&](std::size_t lo, std::size_t hi) { touch_range(s, d, lo, hi); });
    });
    if (pooled_ns < inline_ns * 0.95) {
      cal.threshold = n;
      cal.measured = true;
      return cal;
    }
  }
  // The pool never won — a loaded or single-core host. Run everything
  // inline; the phase metrics still expose the decision.
  cal.threshold = kNeverParallel;
  cal.measured = true;
  return cal;
}

}  // namespace

Calibration calibrate_parallel_threshold(ThreadPool& pool) {
  if (const char* e = std::getenv("LLMP_PARALLEL_THRESHOLD")) {
    Calibration cal;
    cal.threshold = static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
    cal.measured = false;
    return cal;
  }
  if (pool.workers() == 0) {
    Calibration cal;
    cal.threshold = kNeverParallel;
    cal.measured = false;
    return cal;
  }
  static std::mutex mu;
  static std::map<std::size_t, Calibration> cache;
  std::lock_guard<std::mutex> lk(mu);
  auto it = cache.find(pool.workers());
  if (it != cache.end()) return it->second;
  const Calibration cal = measure(pool);
  cache.emplace(pool.workers(), cal);
  return cal;
}

}  // namespace llmp::pram
