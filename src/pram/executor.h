// Executor concept and its fast implementations.
//
// Every algorithm in core/ and apps/ is a template over an Executor E
// whose single primitive is one synchronous PRAM step:
//
//   exec.step(nprocs, [&](std::size_t v, auto&& m) { ... });
//   exec.step(nprocs, unit_cost, body);   // body does `unit_cost` ops/proc
//
// Inside the body, shared memory is touched only through the accessor:
//
//   T x = m.rd(vec, i);      // read vec[i]
//   m.wr(vec, i, value);     // write vec[i]
//
// Algorithms obey the double-buffer discipline: within one step, no cell
// is read after any processor wrote it. Under that discipline, executing
// the virtual processors in any order — sequentially, or chunked over real
// threads — is equivalent to the PRAM's lockstep read-phase/write-phase
// semantics, so the fast executors below apply writes immediately. The
// discipline itself (plus EREW/CREW legality) is *verified* by
// pram::Machine (machine.h), which runs the same algorithm templates with
// tracked memory.
//
// Executors implement the cost model of stats.h: step(n, u, ·) adds
// ceil(n/p)·u to time_p, n·u to work, and 1 to depth, where p is the
// processor budget given at construction — a model parameter, independent
// of how many host threads actually execute the body.
//
// Beside step, the fast executors offer the *fused sweep* (sweep.h):
// sweep(n, u, body) is one accounted step whose body receives a contiguous
// index range [lo, hi) — inline below the parallel threshold, one chunk
// per pool thread above it — so hot kernels run raw-array loops with no
// per-element dispatch. sweep accounts exactly like step, so fused and
// legacy runs have bit-identical cost surfaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "pram/calibrate.h"
#include "pram/stats.h"
#include "pram/thread_pool.h"
#include "support/check.h"

namespace llmp::pram {

/// Untracked pass-through memory accessor used by the fast executors.
struct DirectMem {
  template <class T>
  T rd(const std::vector<T>& a, std::size_t i) const {
    LLMP_DCHECK(i < a.size());
    return a[i];
  }
  template <class T>
  void wr(std::vector<T>& a, std::size_t i, T v) const {
    LLMP_DCHECK(i < a.size());
    a[i] = v;
  }

  /// Vector-like handles (pram::ScratchVec) route through their .vec().
  template <class V>
    requires requires(const V& h) { h.vec(); }
  auto rd(const V& a, std::size_t i) const {
    return rd(a.vec(), i);
  }
  template <class V, class T>
    requires requires(V& h) { h.vec(); }
  void wr(V& a, std::size_t i, T v) const {
    using U = typename std::remove_reference_t<decltype(a.vec())>::value_type;
    wr(a.vec(), i, static_cast<U>(v));
  }
};

/// Sequential executor: virtual processors run in index order on the
/// calling thread. The default for tests and for benches, whose metric is
/// the cost model, not the wall clock.
class SeqExec {
 public:
  /// `processors` is the PRAM processor budget p used for time_p.
  explicit SeqExec(std::size_t processors) : p_(processors) {
    LLMP_CHECK(processors >= 1);
  }

  template <class F>
  void step(std::size_t nprocs, std::uint64_t unit_cost, F&& body) {
    account(nprocs, unit_cost);
    DirectMem m;
    for (std::size_t v = 0; v < nprocs; ++v) body(v, m);
  }

  template <class F>
  void step(std::size_t nprocs, F&& body) {
    step(nprocs, 1, std::forward<F>(body));
  }

  /// Fused sweep: one accounted step, body(0, nprocs) on the caller.
  template <class F>
  void sweep(std::size_t nprocs, std::uint64_t unit_cost, F&& range_body) {
    account(nprocs, unit_cost);
    if (nprocs != 0) range_body(std::size_t{0}, nprocs);
  }

  std::size_t processors() const { return p_; }
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  void account(std::size_t nprocs, std::uint64_t unit_cost) {
    stats_.depth += 1;
    stats_.time_p += ceil_div(nprocs, p_) * unit_cost;
    stats_.work += static_cast<std::uint64_t>(nprocs) * unit_cost;
  }

  std::size_t p_;
  Stats stats_;
};

/// Thread-pool executor: each step's virtual processors are chunked over
/// the pool. Correct for all llmp algorithms by the double-buffer
/// discipline (see header comment). The processor budget p for the cost
/// model is independent of the pool size.
class ParallelExec {
 public:
  /// Historical default crossover, kept as the documented fallback and for
  /// tests that pin the inline/pooled seam at an exact boundary. The
  /// default constructor no longer uses it: the threshold is *measured*
  /// (pram/calibrate.h) — per host, per pool size — and LLMP_PARALLEL_
  /// THRESHOLD or the explicit constructor below can override it.
  static constexpr std::size_t kDefaultParallelThreshold = 2048;

  /// Adaptive threshold: micro-calibrated at construction (cached per
  /// process), env-overridable. A zero-worker pool calibrates to
  /// kNeverParallel, which hoists the old per-step `workers() == 0`
  /// re-check out of the hot path entirely.
  ParallelExec(std::size_t processors, ThreadPool& pool)
      : ParallelExec(processors, pool,
                     calibrate_parallel_threshold(pool)) {}

  /// Explicit threshold: steps/sweeps with nprocs below it run inline on
  /// the caller. The zero-worker hoist still applies.
  ParallelExec(std::size_t processors, ThreadPool& pool,
               std::size_t threshold)
      : ParallelExec(processors, pool,
                     Calibration{threshold, /*measured=*/false}) {}

  template <class F>
  void step(std::size_t nprocs, std::uint64_t unit_cost, F&& body) {
    account(nprocs, unit_cost);
    if (nprocs < threshold_) {
      DirectMem m;
      for (std::size_t v = 0; v < nprocs; ++v) body(v, m);
      return;
    }
    // Templated chunked dispatch: the pool inlines the body per chunk, no
    // per-index std::function hop (thread_pool.h).
    pool_->parallel_for(nprocs, [&body](std::size_t v) {
      DirectMem m;
      body(v, m);
    });
  }

  template <class F>
  void step(std::size_t nprocs, F&& body) {
    step(nprocs, 1, std::forward<F>(body));
  }

  /// Fused sweep: one accounted step; the body gets contiguous [lo, hi)
  /// ranges — the whole range inline below the threshold, one chunk per
  /// pool thread above it.
  template <class F>
  void sweep(std::size_t nprocs, std::uint64_t unit_cost, F&& range_body) {
    account(nprocs, unit_cost);
    if (nprocs == 0) return;
    if (nprocs < threshold_) {
      range_body(std::size_t{0}, nprocs);
      return;
    }
    pool_->parallel_for_slices(nprocs, range_body);
  }

  std::size_t processors() const { return p_; }
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// The effective inline/pooled crossover (kNeverParallel = always
  /// inline, e.g. zero workers or a host where the pool never won).
  std::size_t parallel_threshold() const { return threshold_; }
  /// How the threshold was chosen (measured vs. pinned).
  const Calibration& calibration() const { return calibration_; }

 private:
  ParallelExec(std::size_t processors, ThreadPool& pool, Calibration cal)
      : p_(processors),
        pool_(&pool),
        calibration_(cal),
        threshold_(pool.workers() == 0 ? kNeverParallel : cal.threshold) {
    LLMP_CHECK(processors >= 1);
  }

  void account(std::size_t nprocs, std::uint64_t unit_cost) {
    stats_.depth += 1;
    stats_.time_p += ceil_div(nprocs, p_) * unit_cost;
    stats_.work += static_cast<std::uint64_t>(nprocs) * unit_cost;
  }

  std::size_t p_;
  ThreadPool* pool_;
  Calibration calibration_;
  std::size_t threshold_;
  Stats stats_;
};

}  // namespace llmp::pram
