// Trace-recording executor for the access-pattern prover.
//
// SymbolicExec implements the same Executor concept as SeqExec /
// Machine (executor.h), so every algorithm template in core/ and
// apps/ runs on it unchanged. Each rd/wr is applied to the real vector
// (the algorithm computes its genuine result, including all data-dependent
// control flow) and simultaneously appended to a Trace. The prover then
// analyzes the trace offline: replaying it reproduces pram::Machine's
// conflict detection verdict for the run, and classifying its footprints
// (footprint.h) upgrades per-run facts to symbolic for-all-n statements
// wherever the pattern is affine in the processor index.
//
// Arrays are identified by their data pointer at access time, exactly like
// pram::Machine keys its per-cell metadata — ids are assigned densely in
// first-touch order so traces are comparable across runs. The usual
// caveat applies: an allocator may reuse a freed buffer's address for a
// later vector, merging their ids. Ids only group accesses for reporting;
// conflict detection is per step, where pointers are stable (no llmp step
// body resizes a shared vector mid-step), so this never affects verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pram/stats.h"
#include "pram/trace.h"
#include "support/check.h"

namespace llmp::pram {

class SymbolicExec {
 public:
  explicit SymbolicExec(std::size_t processors) : p_(processors) {
    LLMP_CHECK(processors >= 1);
  }

  /// Memory accessor handed to step bodies; applies and records.
  class Mem {
   public:
    explicit Mem(SymbolicExec& e) : e_(&e) {}

    template <class T>
    T rd(const std::vector<T>& a, std::size_t i) {
      LLMP_CHECK_MSG(i < a.size(), "SymbolicExec: read out of bounds");
      e_->record(a.data(), i, /*is_write=*/false, /*has_value=*/false, 0);
      return a[i];  // lint:allow(unchecked-index) — checked above
    }

    template <class T>
    void wr(std::vector<T>& a, std::size_t i, T v) {
      LLMP_CHECK_MSG(i < a.size(), "SymbolicExec: write out of bounds");
      bool hashed = false;
      std::uint64_t h = 0;
      if constexpr (std::is_trivially_copyable_v<T>) {
        h = fnv1a(&v, sizeof(T));
        hashed = true;
      }
      e_->record(a.data(), i, /*is_write=*/true, hashed, h);
      a[i] = v;  // lint:allow(unchecked-index) — checked above
    }

    /// Vector-like handles (pram::ScratchVec) route through their .vec().
    template <class V>
      requires requires(const V& h) { h.vec(); }
    auto rd(const V& a, std::size_t i) {
      return rd(a.vec(), i);
    }
    template <class V, class T>
      requires requires(V& h) { h.vec(); }
    void wr(V& a, std::size_t i, T v) {
      using U = typename std::remove_reference_t<decltype(a.vec())>::value_type;
      wr(a.vec(), i, static_cast<U>(v));
    }

   private:
    SymbolicExec* e_;
  };

  template <class F>
  void step(std::size_t nprocs, std::uint64_t unit_cost, F&& body) {
    stats_.depth += 1;
    stats_.time_p += ceil_div(nprocs, p_) * unit_cost;
    stats_.work += static_cast<std::uint64_t>(nprocs) * unit_cost;
    trace_.steps.emplace_back();
    trace_.steps.back().nprocs = nprocs;
    Mem m(*this);
    for (std::size_t v = 0; v < nprocs; ++v) {
      cur_proc_ = static_cast<std::uint32_t>(v);
      body(v, m);
    }
  }

  template <class F>
  void step(std::size_t nprocs, F&& body) {
    step(nprocs, 1, std::forward<F>(body));
  }

  std::size_t processors() const { return p_; }
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }
  const Trace& trace() const { return trace_; }

  /// Moves the recorded trace out and resets recording state.
  Trace take_trace() {
    Trace t = std::move(trace_);
    trace_ = Trace{};
    ids_.clear();
    return t;
  }

 private:
  friend class Mem;

  static std::uint64_t fnv1a(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  void record(const void* base, std::size_t cell, bool is_write,
              bool has_value, std::uint64_t value_hash) {
    LLMP_CHECK_MSG(!trace_.steps.empty(),
                   "shared access outside any step body");
    auto [it, inserted] =
        ids_.emplace(base, static_cast<std::uint32_t>(ids_.size()));
    if (inserted) trace_.arrays = ids_.size();
    trace_.steps.back().accesses.push_back(Access{
        it->second, cur_proc_, static_cast<std::uint64_t>(cell), is_write,
        has_value, value_hash});
  }

  std::size_t p_;
  Stats stats_;
  Trace trace_;
  std::uint32_t cur_proc_ = 0;
  std::unordered_map<const void*, std::uint32_t> ids_;
};

}  // namespace llmp::pram
