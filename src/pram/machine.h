// Lockstep PRAM simulator with memory-conflict detection.
//
// pram::Machine implements the same Executor concept as SeqExec but routes
// every rd/wr through per-cell access tracking, so it can *prove* that an
// algorithm run obeys:
//
//   * the synchronous discipline — no processor reads a cell after any
//     processor wrote it within the same step (this is what makes the fast
//     executors' immediate writes equivalent to the PRAM's two-phase
//     read-then-write step), and
//   * the declared PRAM variant's access rules (Snir's taxonomy, which the
//     paper cites): EREW — at most one reader and one writer per cell per
//     step; CREW — at most one writer; CRCW Common — concurrent writers
//     must write equal values; CRCW Arbitrary — any; CRCW Priority — the
//     lowest-numbered processor's write survives regardless of execution
//     order.
//
// Violations throw pram::model_violation by default; tests use kRecord to
// assert on the exact violation kinds. Tracking costs O(1) amortized per
// access, with memory proportional to the arrays touched, so validation
// runs use moderate n (the benches use the untracked executors for cost
// curves at scale — both account identical Stats by construction).
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "pram/stats.h"
#include "support/check.h"

namespace llmp::pram {

enum class Mode {
  kEREW,
  kCREW,
  kCRCWCommon,
  kCRCWArbitrary,
  kCRCWPriority,
};

std::string to_string(Mode mode);

class model_violation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Violation {
  enum class Kind {
    kReadAfterWrite,   // synchronous-discipline break (any mode)
    kConcurrentRead,   // EREW only
    kConcurrentWrite,  // EREW/CREW, or CRCW Common with differing values
    kReadWriteClash,   // EREW: same cell read and written by distinct procs
  };
  Kind kind;
  std::size_t cell;
  std::size_t step;
  std::size_t proc_a;
  std::size_t proc_b;
};

std::string to_string(Violation::Kind kind);

class Machine {
 public:
  enum class OnViolation { kThrow, kRecord };

  Machine(Mode mode, std::size_t processors,
          OnViolation policy = OnViolation::kThrow)
      : mode_(mode), p_(processors), policy_(policy) {
    LLMP_CHECK(processors >= 1);
  }

  /// Memory accessor handed to step bodies; tracks every access.
  class Mem {
   public:
    explicit Mem(Machine& m) : m_(&m) {}

    template <class T>
    T rd(const std::vector<T>& a, std::size_t i) {
      m_->on_read(a.data(), a.size(), i);
      return a[i];  // lint:allow(unchecked-index) — on_read bounds-checks
    }

    template <class T>
    void wr(std::vector<T>& a, std::size_t i, T v) {
      // CRCW Priority: a lower-numbered processor's value must survive, so
      // a later higher-numbered write is suppressed (on_write reports it).
      if (m_->on_write(a.data(), a.size(), i)) {
        a[i] = v;  // lint:allow(unchecked-index) — on_write bounds-checks
      } else if (m_->mode() == Mode::kCRCWCommon) {
        // Common: concurrent writers must agree. Types without operator==
        // cannot be checked; treat any concurrent write as a violation.
        if constexpr (requires(const T& x, const T& y) {
                        { x == y } -> std::convertible_to<bool>;
                      }) {
          if (!(a[i] == v)) m_->flag(Violation::Kind::kConcurrentWrite, i);
        } else {
          m_->flag(Violation::Kind::kConcurrentWrite, i);
        }
      }
    }

    /// Vector-like handles (pram::ScratchVec) route through their .vec().
    template <class V>
      requires requires(const V& h) { h.vec(); }
    auto rd(const V& a, std::size_t i) {
      return rd(a.vec(), i);
    }
    template <class V, class T>
      requires requires(V& h) { h.vec(); }
    void wr(V& a, std::size_t i, T v) {
      using U = typename std::remove_reference_t<decltype(a.vec())>::value_type;
      wr(a.vec(), i, static_cast<U>(v));
    }

   private:
    Machine* m_;
  };

  template <class F>
  void step(std::size_t nprocs, std::uint64_t unit_cost, F&& body) {
    stats_.depth += 1;
    stats_.time_p += ceil_div(nprocs, p_) * unit_cost;
    stats_.work += static_cast<std::uint64_t>(nprocs) * unit_cost;
    ++step_id_;
    Mem m(*this);
    for (std::size_t v = 0; v < nprocs; ++v) {
      cur_proc_ = v;
      body(v, m);
    }
  }

  template <class F>
  void step(std::size_t nprocs, F&& body) {
    step(nprocs, 1, std::forward<F>(body));
  }

  std::size_t processors() const { return p_; }
  Mode mode() const { return mode_; }
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  friend class Mem;

  // Per-array access metadata, keyed by the array's data pointer. Stamps
  // compare against the global step id, so clearing between steps is free.
  struct Meta {
    std::vector<std::uint64_t> read_stamp, write_stamp;
    std::vector<std::uint32_t> reader, writer;
  };

  Meta& meta_for(const void* base, std::size_t cells);
  void on_read(const void* base, std::size_t cells, std::size_t i);
  /// Returns true when the write should be applied (Priority may suppress).
  bool on_write(const void* base, std::size_t cells, std::size_t i);
  void flag(Violation::Kind kind, std::size_t cell,
            std::size_t other_proc = static_cast<std::size_t>(-1));

  Mode mode_;
  std::size_t p_;
  OnViolation policy_;
  Stats stats_;
  std::uint64_t step_id_ = 0;
  std::size_t cur_proc_ = 0;
  std::unordered_map<const void*, Meta> metas_;
  std::vector<Violation> violations_;
};

}  // namespace llmp::pram
