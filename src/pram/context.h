// pram::Context — the run context every layer executes through.
//
// A Context bundles what used to be re-invented at each call site:
//
//   * a backend executor (SeqExec, ParallelExec, Machine or SymbolicExec)
//     supplying the step primitive, the processor budget and the Stats
//     accounting of stats.h — Context forwards all of these untouched, so
//     it satisfies the same Executor concept and every algorithm template
//     runs on it unchanged with byte-identical step sequences and costs;
//   * a ScratchArena (arena.h) so repeated runs reuse scratch capacity
//     instead of reallocating ~30 vectors per maximal_matching call;
//   * a metrics sink: phase-labeled Stats spans that algorithms feed via
//     note_phase()/phase_span(), giving benches per-phase breakdowns
//     without re-deriving them at each call site.
//
//   pram::SeqExec seq(64);
//   pram::Context ctx(seq);                    // CTAD: Context<SeqExec>
//   auto r = core::maximal_matching(ctx, list);  // warm calls: no allocs
//   for (const pram::Phase& ph : ctx.phases()) ...
//
// Context does not own the backend (backends have heterogeneous
// constructors and tests frequently need the concrete type afterwards,
// e.g. Machine::violations()); it borrows it for the context's lifetime.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "pram/arena.h"
#include "pram/stats.h"

namespace llmp::pram {

template <class Exec>
class Context {
 public:
  using backend_type = Exec;

  explicit Context(Exec& backend,
                   ScratchArena::Policy policy = ScratchArena::Policy::kPooled)
      : exec_(&backend), arena_(policy) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // ---- Executor concept: forwarded verbatim to the backend. --------------
  template <class F>
  void step(std::size_t nprocs, std::uint64_t unit_cost, F&& body) {
    exec_->step(nprocs, unit_cost, std::forward<F>(body));
  }
  template <class F>
  void step(std::size_t nprocs, F&& body) {
    exec_->step(nprocs, std::forward<F>(body));
  }
  /// Fused range sweep — forwarded only when the backend has one, so a
  /// Context over the verifying backends (Machine, SymbolicExec) stays
  /// sweep-free and algorithms keep their legacy per-element paths there
  /// (pram/sweep.h).
  template <class F>
    requires requires(Exec& e, std::size_t n, std::uint64_t u, F&& f) {
      e.sweep(n, u, static_cast<F&&>(f));
    }
  void sweep(std::size_t nprocs, std::uint64_t unit_cost, F&& range_body) {
    exec_->sweep(nprocs, unit_cost, std::forward<F>(range_body));
  }
  std::size_t processors() const { return exec_->processors(); }
  Stats& stats() { return exec_->stats(); }
  const Stats& stats() const { return exec_->stats(); }

  // ---- Context extras. ---------------------------------------------------
  Exec& backend() { return *exec_; }
  const Exec& backend() const { return *exec_; }
  ScratchArena& arena() { return arena_; }

  /// Block-cache budget for out-of-core runs (src/engine), in bytes;
  /// 0 = unset (run flat). Carried here beside the ScratchArena so one
  /// warm Context describes all of a worker's memory policy.
  std::size_t block_cache_budget() const { return block_cache_budget_; }
  void set_block_cache_budget(std::size_t bytes) {
    block_cache_budget_ = bytes;
  }

  /// Append one phase-labeled cost span to the metrics sink. `wall_ms` is
  /// the measured wall-clock time of the span (0 when untimed) — the model
  /// cost in `delta` is deterministic, the wall time is machine noise; the
  /// bench gate compares only the former.
  void note_phase(const std::string& name, const Stats& delta,
                  double wall_ms = 0.0) {
    phases_.push_back({name, delta, wall_ms});
  }
  const PhaseBreakdown& phases() const { return phases_; }
  /// Drop recorded phases, keeping capacity (call between warm runs).
  void clear_phases() { phases_.clear(); }

  /// RAII phase span: records the backend Stats delta between construction
  /// and destruction under `name`.
  class PhaseSpan {
   public:
    PhaseSpan(Context& ctx, std::string name)
        : ctx_(&ctx),
          name_(std::move(name)),
          start_(ctx.stats()),
          wall_start_(std::chrono::steady_clock::now()) {}
    PhaseSpan(const PhaseSpan&) = delete;
    PhaseSpan& operator=(const PhaseSpan&) = delete;
    ~PhaseSpan() {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall_start_)
                                 .count();
      ctx_->note_phase(name_, ctx_->stats() - start_, wall_ms);
    }

   private:
    Context* ctx_;
    std::string name_;
    Stats start_;
    std::chrono::steady_clock::time_point wall_start_;
  };
  PhaseSpan phase_span(std::string name) {
    return PhaseSpan(*this, std::move(name));
  }

 private:
  Exec* exec_;
  ScratchArena arena_;
  PhaseBreakdown phases_;
  std::size_t block_cache_budget_ = 0;
};

template <class T>
inline constexpr bool is_context_v = false;
template <class E>
inline constexpr bool is_context_v<Context<E>> = true;

/// Forward a phase delta to the executor's metrics sink when it has one —
/// a no-op on bare executors, so instrumented algorithm templates cost
/// nothing outside a Context.
template <class Exec>
void note_phase(Exec& exec, const std::string& name, const Stats& delta,
                double wall_ms = 0.0) {
  if constexpr (requires { exec.note_phase(name, delta, wall_ms); }) {
    exec.note_phase(name, delta, wall_ms);
  }
}

}  // namespace llmp::pram
