#include "pram/thread_pool.h"

#include <algorithm>

#include "support/check.h"

namespace llmp::pram {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t)
    threads_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::size_t seen_epoch = 0;
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    try {
      job(tid);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::dispatch(const std::function<void(std::size_t)>& per_worker) {
  if (threads_.empty()) {
    per_worker(0);
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    LLMP_CHECK_MSG(pending_ == 0, "ThreadPool::dispatch is not reentrant");
    job_ = per_worker;
    pending_ = threads_.size();
    ++epoch_;
  }
  cv_job_.notify_all();
  // The caller runs the final slice itself (tid == workers()).
  try {
    per_worker(threads_.size());
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(e);
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t slices = threads_.size() + 1;
  const std::size_t chunk = (n + slices - 1) / slices;
  dispatch([&](std::size_t tid) {
    const std::size_t lo = tid * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void ThreadPool::run_spmd(const std::function<void(std::size_t)>& fn) {
  dispatch(fn);
}

}  // namespace llmp::pram
