#include "pram/thread_pool.h"

#include "support/check.h"

namespace llmp::pram {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t)
    threads_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::size_t seen_epoch = 0;
  for (;;) {
    SliceFn fn = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = job_fn_;
      ctx = job_ctx_;
    }
    try {
      fn(ctx, tid);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::dispatch(SliceFn fn, void* ctx) {
  if (threads_.empty()) {
    // Zero-worker path: the caller is the only slice (tid == workers()
    // == 0). Same protocol as below — capture into first_error_, then
    // rethrow once — so behavior is uniform whatever the pool size.
    LLMP_CHECK_MSG(pending_ == 0, "ThreadPool::dispatch is not reentrant");
    try {
      fn(ctx, 0);
    } catch (...) {
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    LLMP_CHECK_MSG(pending_ == 0, "ThreadPool::dispatch is not reentrant");
    job_fn_ = fn;
    job_ctx_ = ctx;
    pending_ = threads_.size();
    ++epoch_;
  }
  cv_job_.notify_all();
  // The caller runs the final slice itself (tid == workers()).
  try {
    fn(ctx, threads_.size());
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(e);
    }
  }
}

void ThreadPool::run_spmd(const std::function<void(std::size_t)>& fn) {
  auto call = [&fn](std::size_t tid) { fn(tid); };
  dispatch(&invoke<decltype(call)>, &call);
}

}  // namespace llmp::pram
