// Access traces recorded by pram::SymbolicExec.
//
// A Trace is the complete memory behaviour of one algorithm run: for every
// synchronous step, the ordered list of shared-memory accesses with the
// virtual processor that issued each one, the array touched (numbered by
// first-touch order), the cell index, and — for trivially copyable element
// types — a hash of the written value so CRCW-Common agreement can be
// checked after the fact. The prover (prover.h) consumes traces in two
// ways: an order-sensitive replay that reproduces pram::Machine's per-run
// conflict detection exactly, and an order-insensitive footprint
// classification (footprint.h) that generalizes the per-run facts into
// for-all-n statements where the access pattern is affine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace llmp::pram {

/// One shared-memory access inside a step.
struct Access {
  std::uint32_t array = 0;  ///< array id, dense by first-touch order
  std::uint32_t proc = 0;   ///< virtual processor that issued the access
  std::uint64_t cell = 0;   ///< element index within the array
  bool is_write = false;
  bool has_value = false;     ///< value_hash is meaningful (writes only)
  std::uint64_t value_hash = 0;  ///< FNV-1a of the written bytes
};

/// All accesses of one synchronous step, in execution order.
struct StepTrace {
  std::size_t nprocs = 0;
  std::vector<Access> accesses;
};

/// A full run: every step, plus how many distinct arrays were touched.
struct Trace {
  std::vector<StepTrace> steps;
  std::size_t arrays = 0;
};

}  // namespace llmp::pram
