// Runtime-dispatched SIMD kernels for the deterministic coin-tossing
// ("label crunching") bit tricks.
//
// The partition function f(<a,b>) = 2k + a_k with k = msb/lsb(a XOR b) is
// branch-free integer math, evaluated n times per relabel round — the
// single hottest scalar computation in Match1–4. The kernels below
// evaluate it 2 (SSE2) or 4 (AVX2) lanes at a time over contiguous pair
// buffers that the fused sweeps gather beforehand. All levels compute the
// SAME exact integers: k is recovered as popcount(smear(x)) − 1 (msb) or
// popcount((x & −x) − 1) (lsb), and the direction bit a_k as
// popcount(a & bit_k) — pure bit arithmetic with one canonical answer, so
// switching levels can never change a result, only its speed. The
// differential suite pins this down by re-running everything forced
// scalar (LLMP_SIMD=off).
//
// Dispatch: the active level starts at min(what the CPU supports, what
// LLMP_SIMD asks for: off|scalar|sse2|avx2|auto) and can be moved at
// runtime by set_level() — always clamped to CPU support, so requesting
// avx2 on a plain-SSE2 machine degrades safely. Implementations live in
// simd.cpp behind per-function target attributes; no global -mavx2 flag,
// so the binary stays runnable on any x86-64 (and the scalar path keeps
// non-x86 builds working).
#pragma once

#include <cstddef>
#include <cstdint>

namespace llmp::pram::simd {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Highest level this CPU can execute (compile-time capped off x86-64).
Level max_supported_level();

/// The level the kernels currently run at.
Level active_level();

/// Request a level; clamped to max_supported_level(). Returns the level
/// actually set. Not synchronized — switch between runs, not during one.
Level set_level(Level want);

const char* level_name(Level level);

/// out[i] = 2k + ((a[i] >> k) & 1) with k = msb (or lsb) index of
/// a[i] ^ b[i] — the matching partition function over a batch of pairs.
/// Precondition: a[i] != b[i] for all i (guaranteed by the matching
/// partition invariant the callers maintain).
void crunch_pairs(const std::uint64_t* a, const std::uint64_t* b,
                  std::uint64_t* out, std::size_t n, bool most_significant);

/// out[i] = (a[i] << shift) | b[i] — the label-concatenation step of the
/// Match3/4 gather rounds. Precondition: 0 <= shift < 64.
void concat_pairs(const std::uint64_t* a, const std::uint64_t* b,
                  std::uint64_t* out, std::size_t n, int shift);

/// Byte-wide partition function for the narrowed relabel rounds: one
/// application of f maps any 64-bit labels below 2·64 = 128, so every
/// round after the first crunches uint8 labels. Computes the same
/// integers as crunch_pairs would on the widened values (nibble-LUT
/// msb/lsb on AVX2; SSE2 lacks the byte shuffle and falls back to
/// scalar). Precondition: a[i] != b[i].
void crunch_bytes(const std::uint8_t* a, const std::uint8_t* b,
                  std::uint8_t* out, std::size_t n, bool most_significant);

}  // namespace llmp::pram::simd
