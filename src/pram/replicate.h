// EREW table replication (paper appendix).
//
// "To run our algorithms on the EREW model we need p copies of the table,
// one for each processor. … p copies of table T can be created using
// O(p·log n) space and O(n/p + log n) time on the EREW model."
//
// Doubling broadcast: starting from the master copy, each round every
// existing copy clones itself, doubling the replica count — ceil(log2 p)
// rounds of exclusive reads/writes (round r copies cells from replica i to
// replica i + 2^r; no cell is touched twice). Time with p processors:
// O(copies·size/p + log copies); the appendix's bound with size = Θ(log n)
// per-table and copies = p gives exactly O(n/p + log n)… which is why the
// table-based algorithms need it as *preprocessing* — it dwarfs the
// O(G(n)) main loops (E11 quantifies this).
#pragma once

#include <vector>

#include "pram/stats.h"
#include "support/check.h"
#include "support/itlog.h"

namespace llmp::pram {

/// Replicate `table` into `copies` contiguous copies (flat layout:
/// replica c occupies [c·size, (c+1)·size)). EREW-legal; ceil(log2 copies)
/// synchronous rounds.
template <class Exec, class T>
std::vector<T> replicate(Exec& exec, const std::vector<T>& table,
                         std::size_t copies) {
  LLMP_CHECK(copies >= 1);
  const std::size_t size = table.size();
  std::vector<T> out(size * copies);
  // Seed the master replica.
  exec.step(size, [&](std::size_t i, auto&& m) {
    m.wr(out, i, m.rd(table, i));
  });
  // Doubling rounds: replicas [0, have) clone into [have, min(2·have, p)).
  for (std::size_t have = 1; have < copies; have <<= 1) {
    const std::size_t make = std::min(have, copies - have);
    exec.step(make * size, [&](std::size_t w, auto&& m) {
      const std::size_t replica = w / size;
      const std::size_t cell = w % size;
      m.wr(out, (have + replica) * size + cell,
           m.rd(out, replica * size + cell));
    });
  }
  return out;
}

/// View of one replica inside the flat replicated array.
template <class T>
class ReplicaView {
 public:
  ReplicaView(const std::vector<T>& flat, std::size_t size,
              std::size_t replica)
      : flat_(&flat), base_(replica * size), size_(size) {
    LLMP_CHECK((replica + 1) * size <= flat.size());
  }

  const T& operator[](std::size_t i) const {
    LLMP_DCHECK(i < size_);
    return (*flat_)[base_ + i];
  }
  std::size_t size() const { return size_; }

 private:
  const std::vector<T>* flat_;
  std::size_t base_;
  std::size_t size_;
};

}  // namespace llmp::pram
