// Sense-reversing centralized barrier.
//
// C++20 has std::barrier, but a sense-reversing barrier is the classic HPC
// primitive for SPMD pools: one atomic counter + a per-thread local sense
// flag, no phase object reconstruction, and spin-then-yield waiting that
// behaves sanely both on dedicated cores and on oversubscribed hosts
// (this machine runs every worker on one core, so pure spinning would
// serialize progress behind the scheduler).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "support/check.h"

namespace llmp::pram {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    LLMP_CHECK(parties >= 1);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all `parties` threads arrive. Each participating thread
  /// must keep its own `local_sense` bool, initialized to false, and pass
  /// the same reference on every call.
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        if (++spins > kSpinLimit) std::this_thread::yield();
      }
    }
  }

  std::size_t parties() const { return parties_; }

 private:
  static constexpr int kSpinLimit = 256;
  const std::size_t parties_;
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace llmp::pram
