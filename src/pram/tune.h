// Process-wide tuning for the fused fast paths.
//
// One mutable singleton gathers the runtime switches of the raw-speed
// layer so benches and the differential tests can flip them without
// rebuilding:
//
//   fused              take the fused raw-array sweeps (vs. the legacy
//                      per-element step bodies)        LLMP_FUSED=off
//   prefetch.distance  look-ahead of the prefetching
//                      sweeps, 0 disables              LLMP_PREFETCH_DIST=N
//
// (The SIMD level has its own switch in simd.h — it additionally depends
// on what the CPU supports.) Every combination of these switches produces
// bit-identical results and bit-identical PRAM cost surfaces; the knobs
// only move wall-clock time. That invariant is what tests/
// fused_backend_test.cpp enforces against the pram::Machine referee.
//
// The struct is read at sweep entry, not per element; toggling it between
// runs is cheap and exact. It is not synchronized: flip it only while no
// sweeps are in flight (benches and tests do so from their main thread).
#pragma once

#include <cstdlib>
#include <cstring>

#include "pram/prefetch.h"

namespace llmp::pram {

struct SweepTuning {
  /// Fused raw-array sweeps on executors that support them (has_sweep_v).
  bool fused = true;
  /// Software-prefetch policy for the pointer-chasing sweeps.
  PrefetchPolicy prefetch;
};

namespace detail {
inline SweepTuning tuning_from_env() {
  SweepTuning t;
  if (const char* e = std::getenv("LLMP_FUSED")) {
    if (std::strcmp(e, "off") == 0 || std::strcmp(e, "0") == 0)
      t.fused = false;
  }
  if (const char* e = std::getenv("LLMP_PREFETCH_DIST")) {
    const int d = std::atoi(e);
    if (d >= 0 && d <= 256) t.prefetch.distance = d;
  }
  return t;
}
}  // namespace detail

/// The process-wide tuning block, seeded from the environment once.
inline SweepTuning& tuning() {
  static SweepTuning t = detail::tuning_from_env();
  return t;
}

}  // namespace llmp::pram
