// Pooled scratch-buffer arena for the execution context (context.h).
//
// Every matching algorithm allocates a family of per-run scratch vectors
// (labels, predecessor arrays, layout tables, inboxes, …). On a cold call
// those come from the heap; at production scale the same algorithm runs
// over and over with the same n, so the arena recycles the backing stores:
// releasing a ScratchVec returns its std::vector to a per-element-type
// pool, and the next take() of a fitting size reuses the capacity with no
// heap traffic. Repeated runs through a warm pram::Context therefore reach
// zero steady-state allocations in the algorithm body (asserted by
// tests/context_test.cpp with a counting global allocator).
//
// Slabs are size-tagged: take(n) picks the pooled vector with the
// smallest capacity >= n (best fit), falling back to the largest one
// (which then grows once). Because a warm run issues the same multiset of
// sizes as the run that populated the pool, best-fit always finds a
// fitting slab at steady state. Pools are keyed by element type, so a
// label_t slab is never reinterpreted as an index_t slab.
//
// The arena is deliberately *not* thread-safe: scratch is taken and
// released on the orchestrating thread, outside step bodies. Step bodies
// running on pool workers only touch the vectors' elements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/failpoint.h"

namespace llmp::pram {

class ScratchArena;

/// RAII lease of one pooled vector. Move-only; converts implicitly to
/// std::vector<T>& so it can be passed wherever the algorithms expect a
/// plain vector, and the Mem accessors (executor.h, machine.h,
/// symbolic_exec.h) accept it directly in step bodies via .vec().
template <class T>
class ScratchVec {
 public:
  ScratchVec() = default;
  ScratchVec(ScratchArena* arena, std::vector<T>&& v)
      : arena_(arena), v_(std::move(v)) {}
  ScratchVec(ScratchVec&& o) noexcept
      : arena_(o.arena_), v_(std::move(o.v_)) {
    o.arena_ = nullptr;
  }
  ScratchVec& operator=(ScratchVec&& o) noexcept {
    if (this != &o) {
      release();
      arena_ = o.arena_;
      v_ = std::move(o.v_);
      o.arena_ = nullptr;
    }
    return *this;
  }
  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;
  ~ScratchVec() { release(); }

  std::vector<T>& vec() { return v_; }
  const std::vector<T>& vec() const { return v_; }
  std::vector<T>& operator*() { return v_; }
  const std::vector<T>& operator*() const { return v_; }
  operator std::vector<T>&() { return v_; }             // NOLINT(runtime/explicit)
  operator const std::vector<T>&() const { return v_; } // NOLINT(runtime/explicit)

  T& operator[](std::size_t i) { return v_[i]; }
  const T& operator[](std::size_t i) const { return v_[i]; }
  std::size_t size() const { return v_.size(); }

 private:
  inline void release();

  ScratchArena* arena_ = nullptr;
  std::vector<T> v_;
};

class ScratchArena {
 public:
  enum class Policy {
    kPooled,       ///< recycle released slabs (the default)
    kPassthrough,  ///< plain heap vectors; released slabs are freed
  };

  explicit ScratchArena(Policy policy = Policy::kPooled) : policy_(policy) {}
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Lease a vector of `n` elements, every element set to `fill` —
  /// identical contents to a fresh std::vector<T>(n, fill).
  template <class T>
  ScratchVec<T> take(std::size_t n, T fill = T{}) {
    LLMP_FAILPOINT("pram.arena.take");
    ++takes_;
    std::vector<T> v;
    if (policy_ == Policy::kPooled) {
      auto& free_list = pool<T>().free_list;
      const std::size_t pick = best_fit(free_list, n);
      if (pick != free_list.size()) {
        if (free_list[pick].capacity() >= n) ++hits_;
        v = std::move(free_list[pick]);
        free_list[pick] = std::move(free_list.back());
        free_list.pop_back();
      }
    }
    v.assign(n, fill);
    return ScratchVec<T>(this, std::move(v));
  }

  /// Return a slab to its pool (called by ~ScratchVec).
  template <class T>
  void put(std::vector<T>&& v) {
    if (policy_ != Policy::kPooled) return;
    pool<T>().free_list.push_back(std::move(v));
  }

  Policy policy() const { return policy_; }
  /// Lifetime take() count and how many were served from a fitting slab.
  std::uint64_t takes() const { return takes_; }
  std::uint64_t hits() const { return hits_; }

 private:
  struct PoolBase {
    virtual ~PoolBase() = default;
  };
  template <class T>
  struct Pool : PoolBase {
    std::vector<std::vector<T>> free_list;
  };

  template <class T>
  Pool<T>& pool() {
    auto it = pools_.find(std::type_index(typeid(T)));
    if (it == pools_.end()) {
      it = pools_
               .emplace(std::type_index(typeid(T)),
                        std::make_unique<Pool<T>>())
               .first;
    }
    return static_cast<Pool<T>&>(*it->second);
  }

  /// Index of the slab with the smallest capacity >= n; if none fits, the
  /// largest slab (it grows once); free_list.size() when the list is empty.
  template <class T>
  static std::size_t best_fit(const std::vector<std::vector<T>>& free_list,
                              std::size_t n) {
    std::size_t best = free_list.size();
    std::size_t largest = free_list.size();
    for (std::size_t i = 0; i < free_list.size(); ++i) {
      LLMP_DCHECK(i < free_list.size());
      const std::size_t cap = free_list[i].capacity();
      if (largest == free_list.size() ||
          cap > free_list[largest].capacity())
        largest = i;
      if (cap >= n &&
          (best == free_list.size() || cap < free_list[best].capacity()))
        best = i;
    }
    return best != free_list.size() ? best : largest;
  }

  Policy policy_;
  std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools_;
  std::uint64_t takes_ = 0;
  std::uint64_t hits_ = 0;
};

template <class T>
void ScratchVec<T>::release() {
  if (arena_ != nullptr) {
    arena_->put(std::move(v_));
    arena_ = nullptr;
  }
  v_.clear();
}

/// Lease scratch from the executor's arena when it has one (pram::Context
/// does), else hand out a plain heap-backed vector — the customization
/// point that lets every algorithm template run unchanged on bare
/// executors and on Context. Contents match std::vector<T>(n, fill).
template <class T, class Exec>
ScratchVec<T> scratch(Exec& exec, std::size_t n, T fill = T{}) {
  if constexpr (requires { exec.arena(); }) {
    return exec.arena().template take<T>(n, fill);
  } else {
    return ScratchVec<T>(nullptr, std::vector<T>(n, fill));
  }
}

/// The executor's arena, or nullptr for bare executors — for host-side
/// helpers that want pooled temporaries without being templates over Exec.
template <class Exec>
ScratchArena* arena_ptr(Exec& exec) {
  if constexpr (requires { exec.arena(); }) {
    return &exec.arena();
  } else {
    return nullptr;
  }
}

}  // namespace llmp::pram
