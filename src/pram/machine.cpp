#include "pram/machine.h"

#include <sstream>

namespace llmp::pram {

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::kEREW: return "EREW";
    case Mode::kCREW: return "CREW";
    case Mode::kCRCWCommon: return "CRCW-Common";
    case Mode::kCRCWArbitrary: return "CRCW-Arbitrary";
    case Mode::kCRCWPriority: return "CRCW-Priority";
  }
  return "?";
}

std::string to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kReadAfterWrite:
      return "read-after-write within a step";
    case Violation::Kind::kConcurrentRead:
      return "concurrent read under EREW";
    case Violation::Kind::kConcurrentWrite:
      return "illegal concurrent write";
    case Violation::Kind::kReadWriteClash:
      return "read/write clash under EREW";
  }
  return "?";
}

Machine::Meta& Machine::meta_for(const void* base, std::size_t cells) {
  Meta& m = metas_[base];
  if (m.read_stamp.size() < cells) {
    m.read_stamp.resize(cells, 0);
    m.write_stamp.resize(cells, 0);
    m.reader.resize(cells, 0);
    m.writer.resize(cells, 0);
  }
  return m;
}

void Machine::on_read(const void* base, std::size_t cells, std::size_t i) {
  LLMP_CHECK(i < cells);
  Meta& m = meta_for(base, cells);
  ++stats_.reads;
  if (m.write_stamp[i] == step_id_ && m.writer[i] != cur_proc_) {
    // Another processor wrote this cell earlier in the same step: a PRAM
    // returns the old value, the fast executors the new one — the
    // algorithm broke the synchronous discipline. A processor re-reading
    // its *own* write models consecutive micro-steps of a sequential
    // subroutine (unit_cost > 1) and is deterministic, hence allowed.
    flag(Violation::Kind::kReadAfterWrite, i, m.writer[i]);
  }
  if (mode_ == Mode::kEREW && m.read_stamp[i] == step_id_ &&
      m.reader[i] != cur_proc_) {
    flag(Violation::Kind::kConcurrentRead, i, m.reader[i]);
  }
  m.read_stamp[i] = step_id_;
  m.reader[i] = static_cast<std::uint32_t>(cur_proc_);
}

bool Machine::on_write(const void* base, std::size_t cells, std::size_t i) {
  LLMP_CHECK(i < cells);
  Meta& m = meta_for(base, cells);
  ++stats_.writes;
  if (mode_ == Mode::kEREW && m.read_stamp[i] == step_id_ &&
      m.reader[i] != cur_proc_) {
    flag(Violation::Kind::kReadWriteClash, i, m.reader[i]);
  }
  const bool second_write = (m.write_stamp[i] == step_id_);
  if (!second_write) {
    m.write_stamp[i] = step_id_;
    m.writer[i] = static_cast<std::uint32_t>(cur_proc_);
    return true;
  }
  if (m.writer[i] == cur_proc_) {
    // Same processor updating its own cell again within a multi-op step
    // (sequential subroutine): legal in every mode.
    return true;
  }
  switch (mode_) {
    case Mode::kEREW:
    case Mode::kCREW:
      flag(Violation::Kind::kConcurrentWrite, i, m.writer[i]);
      m.writer[i] = static_cast<std::uint32_t>(cur_proc_);
      return true;  // keep going so tests can observe the final state
    case Mode::kCRCWCommon:
      // Mem::wr compares the stored value against the new one and flags a
      // mismatch; equal values need not be re-applied.
      return false;
    case Mode::kCRCWArbitrary:
      m.writer[i] = static_cast<std::uint32_t>(cur_proc_);
      return true;  // "arbitrary": this simulator picks the last writer
    case Mode::kCRCWPriority:
      // Lowest-numbered processor wins, independent of execution order.
      if (cur_proc_ < m.writer[i]) {
        m.writer[i] = static_cast<std::uint32_t>(cur_proc_);
        return true;
      }
      return false;
  }
  return true;
}

void Machine::flag(Violation::Kind kind, std::size_t cell,
                   std::size_t other_proc) {
  Violation v{kind, cell, static_cast<std::size_t>(step_id_), cur_proc_,
              other_proc};
  violations_.push_back(v);
  if (policy_ == OnViolation::kThrow) {
    std::ostringstream os;
    os << to_string(mode_) << " violation at step " << step_id_ << ", cell "
       << cell << ": " << to_string(kind) << " (proc " << cur_proc_
       << " vs proc " << other_proc << ")";
    throw model_violation(os.str());
  }
}

Stats phase_cost(const PhaseBreakdown& phases, const std::string& name) {
  for (const auto& ph : phases)
    if (ph.name == name) return ph.cost;
  return {};
}

}  // namespace llmp::pram
