// Adaptive inline-vs-pooled crossover for ParallelExec.
//
// The old constant kParallelThreshold = 2048 guessed where waking the
// thread pool starts paying for itself. The guess is wrong in both
// directions depending on the host: on a box with many idle cores the
// pool wins far earlier; on a loaded or single-core host it may *never*
// win, and every pooled step is pure overhead. This module measures the
// crossover once per process (per pool size) by timing the same trivial
// memory sweep inline and through the pool at geometrically growing sizes,
// and ParallelExec's default constructor adopts the measured threshold.
//
// Overrides, in precedence order:
//   1. LLMP_PARALLEL_THRESHOLD=<n>  pins the threshold (0 = always pool);
//   2. the explicit ParallelExec(p, pool, threshold) constructor;
//   3. the measurement below (cached per process, keyed by worker count).
//
// A pool with zero workers always calibrates to kNeverParallel: the
// inline/pooled decision is thereby hoisted to construction time and the
// per-step `workers() == 0` re-check disappears from the hot path
// (bench_dispatch measures the saving).
#pragma once

#include <cstddef>

namespace llmp::pram {

class ThreadPool;

/// Threshold value meaning "never dispatch to the pool".
inline constexpr std::size_t kNeverParallel = static_cast<std::size_t>(-1);

struct Calibration {
  /// Steps with nprocs below this run inline on the caller.
  std::size_t threshold = 2048;
  /// True when the value came from a wall-clock measurement (false: env
  /// override or the zero-worker shortcut).
  bool measured = false;
};

/// The crossover for `pool`, measured on first call and cached per process
/// (keyed by pool.workers()). Thread-safe.
Calibration calibrate_parallel_threshold(ThreadPool& pool);

}  // namespace llmp::pram
