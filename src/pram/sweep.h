// The fused-sweep capability trait.
//
// Fast executors (SeqExec, ParallelExec, and a Context over either) offer,
// beside the per-element `step`, a *sweep*: the same accounted PRAM step,
// but the body receives a contiguous index range [lo, hi) instead of one
// index — so algorithm kernels can run tight raw-array loops (prefetched,
// SIMD-batched) with zero per-element abstraction. The verifying backends
// (pram::Machine, SymbolicExec) deliberately do NOT provide sweep: they
// keep running the legacy per-element step bodies with tracked memory, and
// stay the referee that the fused paths are checked against
// (tests/fused_backend_test.cpp).
//
// Algorithms branch once per pass:
//
//   if constexpr (pram::has_sweep_v<Exec>) {
//     if (pram::tuning().fused) { exec.sweep(n, cost, fused kernel); ... }
//   }
//   ... legacy per-element step ...
//
// sweep(n, u, ·) accounts exactly like step(n, u, ·) — same depth, time_p
// and work — so taking either branch yields bit-identical cost surfaces.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pram/prefetch.h"
#include "pram/simd.h"
#include "pram/tune.h"

namespace llmp::pram {

/// Callable probe used to test for the sweep member (a named type rather
/// than a lambda so the trait works in any unevaluated context).
struct SweepProbe {
  void operator()(std::size_t, std::size_t) const {}
};

/// True when Exec offers the fused range-sweep primitive.
template <class Exec>
inline constexpr bool has_sweep_v = requires(Exec& e) {
  e.sweep(std::size_t{0}, std::uint64_t{0}, SweepProbe{});
};

}  // namespace llmp::pram
