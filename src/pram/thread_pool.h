// Persistent SPMD worker pool.
//
// The pool owns `workers` threads that sleep between jobs. `parallel_for`
// splits an index range into contiguous chunks, one per worker plus the
// calling thread, and blocks until all chunks complete. Exceptions thrown
// by the body are captured and rethrown on the caller (first one wins).
//
// `parallel_for` is a template: the per-chunk slice loop calls the body
// directly (inlined at the call site), and only the per-*chunk* dispatch
// is type-erased — as a raw {function pointer, context pointer} pair, not
// a std::function — so per-step dispatch cost does not scale with the
// step's processor count. The erasure is safe without ownership because
// dispatch blocks until every slice has run. run_spmd keeps the
// std::function interface for SPMD-style tests.
//
// The pool backs ParallelExec's synchronous steps: because every algorithm
// step writes only cells that no other virtual processor reads in the same
// step (the double-buffer discipline that pram::Machine verifies), chunked
// unordered execution of one step is equivalent to lockstep execution.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llmp::pram {

class ThreadPool {
 public:
  /// Spawn `workers` background threads (>= 0; 0 makes parallel_for run
  /// entirely on the caller, useful for tests of the dispatch logic).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Apply body(i) for all i in [0, n), split into per-thread contiguous
  /// chunks. Blocks until done; rethrows the first body exception.
  template <class F>
  void parallel_for(std::size_t n, F&& body) {
    if (n == 0) return;
    const std::size_t slices = threads_.size() + 1;
    const std::size_t chunk = (n + slices - 1) / slices;
    auto slice = [&body, n, chunk](std::size_t tid) {
      const std::size_t lo = tid * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) body(i);
    };
    dispatch(&invoke<decltype(slice)>, &slice);
  }

  /// Range flavour of parallel_for: apply body(lo, hi) once per contiguous
  /// chunk of [0, n) instead of once per index. This is the dispatch the
  /// fused sweeps ride — one type-erased call per *chunk*, and the body
  /// runs its own tight loop over the span (prefetch, SIMD, no per-element
  /// hops at all). Blocks until done; rethrows the first body exception.
  template <class F>
  void parallel_for_slices(std::size_t n, F&& body) {
    if (n == 0) return;
    const std::size_t slices = threads_.size() + 1;
    const std::size_t chunk = (n + slices - 1) / slices;
    auto slice = [&body, n, chunk](std::size_t tid) {
      const std::size_t lo = std::min(n, tid * chunk);
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo < hi) body(lo, hi);
    };
    dispatch(&invoke<decltype(slice)>, &slice);
  }

  /// Run fn(tid) once on every worker and on the caller (tid = workers()).
  /// Used by SPMD-style tests that exercise the Barrier.
  void run_spmd(const std::function<void(std::size_t)>& fn);

  std::size_t workers() const { return threads_.size(); }

 private:
  /// Type-erased per-slice job: fn(ctx, tid). ctx outlives the dispatch
  /// because dispatch blocks until all slices finish.
  using SliceFn = void (*)(void* ctx, std::size_t tid);

  template <class F>
  static void invoke(void* ctx, std::size_t tid) {
    (*static_cast<F*>(ctx))(tid);
  }

  void worker_loop(std::size_t tid);
  /// Run fn(ctx, tid) once per worker (tid < workers()) and once on the
  /// caller (tid == workers()). With zero workers the caller runs tid 0
  /// under the same exception-capture protocol as the threaded path.
  void dispatch(SliceFn fn, void* ctx);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  SliceFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace llmp::pram
