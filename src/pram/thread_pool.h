// Persistent SPMD worker pool.
//
// The pool owns `workers` threads that sleep between jobs. `parallel_for`
// splits an index range into contiguous chunks, one per worker plus the
// calling thread, and blocks until all chunks complete. Exceptions thrown
// by the body are captured and rethrown on the caller (first one wins).
//
// The pool backs ParallelExec's synchronous steps: because every algorithm
// step writes only cells that no other virtual processor reads in the same
// step (the double-buffer discipline that pram::Machine verifies), chunked
// unordered execution of one step is equivalent to lockstep execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llmp::pram {

class ThreadPool {
 public:
  /// Spawn `workers` background threads (>= 0; 0 makes parallel_for run
  /// entirely on the caller, useful for tests of the dispatch logic).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Apply body(i) for all i in [0, n), split into per-thread contiguous
  /// chunks. Blocks until done; rethrows the first body exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Run fn(tid) once on every worker and on the caller (tid = workers()).
  /// Used by SPMD-style tests that exercise the Barrier.
  void run_spmd(const std::function<void(std::size_t)>& fn);

  std::size_t workers() const { return threads_.size(); }

 private:
  struct Job {
    std::function<void(std::size_t worker)> work;  // per-worker slice
    std::size_t epoch = 0;
  };

  void worker_loop(std::size_t tid);
  void dispatch(const std::function<void(std::size_t)>& per_worker);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::function<void(std::size_t)> job_;
  std::size_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace llmp::pram
