// The llmp_serve command line, as a library.
//
// llmp_serve grew from a single-purpose load generator into the front
// door of three transports (in-process, listening server, network
// client), so its flags are namespaced by the subsystem they configure:
//
//   --serve.*   workload + serve::ServiceOptions (workers, queue, policy)
//   --fault.*   fault injection / resilience (failpoints, retries, …)
//   --net.*     the wire layer (listen / connect, tenancy, quotas)
//
// plus the un-namespaced --csv output toggle. Every flag the tool shipped
// before the split keeps working as a back-compat alias of its namespaced
// spelling (--workers ⇒ --serve.workers, --failpoints ⇒
// --fault.failpoints, …); tests/net_cli_test.cpp pins both spellings and
// the --help text.
//
// Parsing lives here — not in tools/ — so the test suite can drive it
// directly; the tool's main() is a thin shell around parse_serve_cli().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/service.h"
#include "support/status.h"

namespace llmp::net {

/// Sentinel for --serve.warmup "not given": the default depends on the
/// worker count and is resolved by the tool (8 × workers + 8).
inline constexpr std::uint64_t kAutoWarmup = ~0ull;

struct ServeCliOptions {
  // --serve.*: the workload and the Service under it.
  std::uint64_t requests = 2000;
  std::size_t n = 10000;
  std::size_t lists = 8;
  std::string alg = "match4";
  std::uint64_t deadline_ms = 0;
  std::uint64_t warmup = kAutoWarmup;
  serve::ServiceOptions service;

  // --fault.*
  std::string failpoints;  ///< armed after warmup, verbatim spec string

  // --net.*: absent both, the tool runs the classic in-process loop.
  bool listen = false;          ///< --net.listen PORT was given
  std::uint16_t listen_port = 0;
  std::string connect_host;     ///< --net.connect HOST:PORT was given
  std::uint16_t connect_port = 0;
  std::uint32_t tenant = 0;
  double quota_rps = 0;         ///< default-tenant token rate (0 = none)
  double quota_burst = 0;       ///< bucket depth (0 = rate)
  std::uint32_t max_in_flight = 0;
  std::size_t conns = 1;        ///< client connections in --net.connect mode

  bool csv = false;
};

/// The --help text (every namespaced flag with its legacy alias).
std::string serve_cli_usage();

/// Parse argv into *out. Sets *help and returns OK when --help/-h was
/// given. Unknown flags and malformed values are kInvalidArgument with a
/// message naming the flag.
Status parse_serve_cli(int argc, const char* const* argv,
                       ServeCliOptions* out, bool* help);

}  // namespace llmp::net
