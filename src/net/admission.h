// Multi-tenant admission control for the network front-end.
//
// Sits in FRONT of serve::Service's queue backpressure: a frame that
// fails admission is rejected kResourceExhausted before it ever touches
// the queue, so one tenant flooding the socket cannot convert its excess
// into queue slots that starve everyone else. Two independent limits per
// tenant, both optional (0 = unlimited):
//
//   * rate      — a token bucket (tokens_per_sec sustained, burst cap).
//                 Refill is computed from the caller-supplied clock, so
//                 tests drive it deterministically.
//   * in-flight — a cap on requests admitted but not yet completed,
//                 bounding the queue share a tenant can hold regardless
//                 of its arrival rate.
//
// Per-tenant counters (admitted / rejected by which limit / completed /
// in-flight) are the reconciliation ledger: the chaos test balances them
// against injected faults, and the stats frame ships them to clients.
// They live here, not in serve::ServiceStats — tenancy is a property of
// the front door; the Service itself treats all work alike.
//
// Thread-safety: one mutex. The server calls from its IO thread only,
// but the bench's load generators snapshot stats concurrently.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.h"

namespace llmp::net {

/// Limits for one tenant. Zero-initialised means "no limits".
struct TenantQuota {
  double tokens_per_sec = 0;      ///< sustained request rate; 0 = unlimited
  double burst = 0;               ///< bucket depth; defaults to tokens_per_sec
  std::uint32_t max_in_flight = 0;  ///< admitted-not-completed cap; 0 = none
};

struct AdmissionOptions {
  TenantQuota default_quota;                  ///< tenants not listed below
  std::map<std::uint32_t, TenantQuota> quotas;  ///< per-tenant overrides
};

/// Counters for one tenant, snapshot by stats().
struct TenantStats {
  std::uint32_t tenant = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;      ///< token bucket empty
  std::uint64_t rejected_in_flight = 0;  ///< max_in_flight hit
  std::uint64_t completed = 0;
  std::uint64_t in_flight = 0;  ///< admitted − completed, right now
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(AdmissionOptions options = {})
      : options_(std::move(options)) {}

  /// Admit one request for `tenant`, or explain the rejection. The clock
  /// parameter exists so tests can replay exact schedules.
  Status admit(std::uint32_t tenant, Clock::time_point now = Clock::now()) {
    std::lock_guard<std::mutex> lock(mu_);
    State& st = state(tenant, now);
    if (st.quota.max_in_flight != 0 &&
        st.stats.in_flight >= st.quota.max_in_flight) {
      st.stats.rejected_in_flight++;
      return Status::resource_exhausted(
          "tenant " + std::to_string(tenant) + " at max in-flight (" +
          std::to_string(st.quota.max_in_flight) + ")");
    }
    if (st.quota.tokens_per_sec > 0) {
      refill(st, now);
      if (st.tokens < 1.0) {
        st.stats.rejected_quota++;
        return Status::resource_exhausted(
            "tenant " + std::to_string(tenant) + " over rate quota (" +
            std::to_string(st.quota.tokens_per_sec) + "/s)");
      }
      st.tokens -= 1.0;
    }
    st.stats.admitted++;
    st.stats.in_flight++;
    return {};
  }

  /// Balance an earlier successful admit(); call exactly once per
  /// admitted request, however it ends (response, error, disconnect).
  void complete(std::uint32_t tenant) {
    std::lock_guard<std::mutex> lock(mu_);
    State& st = state(tenant, Clock::now());
    st.stats.completed++;
    if (st.stats.in_flight > 0) st.stats.in_flight--;
  }

  /// Every tenant seen so far, in tenant-id order.
  std::vector<TenantStats> stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TenantStats> out;
    out.reserve(states_.size());
    for (const auto& [id, st] : states_) out.push_back(st.stats);
    return out;
  }

 private:
  struct State {
    TenantQuota quota;
    double tokens = 0;
    Clock::time_point last_refill{};
    TenantStats stats;
  };

  State& state(std::uint32_t tenant, Clock::time_point now) {
    auto it = states_.find(tenant);
    if (it == states_.end()) {
      State st;
      auto q = options_.quotas.find(tenant);
      st.quota = q != options_.quotas.end() ? q->second
                                            : options_.default_quota;
      if (st.quota.burst <= 0) st.quota.burst = st.quota.tokens_per_sec;
      st.tokens = st.quota.burst;  // a fresh tenant starts with a full bucket
      st.last_refill = now;
      st.stats.tenant = tenant;
      it = states_.emplace(tenant, std::move(st)).first;
    }
    return it->second;
  }

  static void refill(State& st, Clock::time_point now) {
    const std::chrono::duration<double> dt = now - st.last_refill;
    if (dt.count() <= 0) return;
    st.tokens += dt.count() * st.quota.tokens_per_sec;
    if (st.tokens > st.quota.burst) st.tokens = st.quota.burst;
    st.last_refill = now;
  }

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::map<std::uint32_t, State> states_;
};

}  // namespace llmp::net
