// Wire protocol v1 — the length-prefixed binary framing of the network
// front-end (docs/NET.md has the full grammar and the tenancy model).
//
// Every message is one frame: a fixed 24-byte header followed by
// `payload_bytes` of type-specific payload, all little-endian, packed
// byte-by-byte (no struct punning — the encoding is the spec, not the
// host ABI):
//
//   offset  size  field
//        0     4  magic          0x706D6C6C ("llmp" as LE bytes)
//        4     1  version        kWireVersion (1)
//        5     1  type           FrameType
//        6     2  reserved       must be 0
//        8     4  tenant         tenant id the frame is accounted to
//       12     8  request_id     caller-chosen correlation id
//       20     4  payload_bytes  length of the payload that follows
//
// Frame types: a client sends kRequest / kStatsRequest; the server
// answers each request with exactly one kResponse (success) or kError
// frame carrying the SAME request_id, and each stats request with one
// kStats frame. Responses may arrive in any order — pipelined clients
// reconcile by request_id (net/client.h does).
//
// Decoding is strict and total: every read is bounds-checked, every
// enum/range is validated, and a payload must be consumed exactly —
// trailing bytes are a protocol error. Header-level corruption (bad
// magic/version/reserved, oversized length) is unrecoverable — the
// stream cannot be resynchronised — so the server answers with a final
// kError frame and drops the connection. Payload-level errors leave the
// stream framed and cost only that request. All of it surfaces as a
// Status; nothing in this header throws on untrusted bytes.
//
// The error-code field of kError frames is llmp::wire_code(StatusCode) —
// one table in support/status.h shared with the in-process API, so every
// StatusCode survives encode/decode (pinned by tests/net_wire_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"
#include "support/status.h"
#include "support/types.h"

namespace llmp::net {

inline constexpr std::uint32_t kWireMagic = 0x706D6C6C;  // "llmp" LE
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Hard decode bound on payload_bytes: a header advertising more is a
/// protocol error, not an allocation request. Generous enough for an
/// inline list of 2^26 nodes (4 bytes each).
inline constexpr std::uint32_t kMaxPayloadBytes = 257u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,       ///< client → server: run a matching request
  kResponse = 2,      ///< server → client: the request's result summary
  kError = 3,         ///< server → client: the request failed (Status)
  kStatsRequest = 4,  ///< client → server: snapshot the server counters
  kStats = 5,         ///< server → client: the stats snapshot
};

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kRequest;
  std::uint32_t tenant = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_bytes = 0;
};

/// How a request frame names its list.
enum class ListSpec : std::uint8_t {
  kGenerated = 0,  ///< (n, seed) — server materialises random_list(n, seed)
  kInline = 1,     ///< the successor array rides in the frame (n × u32)
};

/// Payload of kRequest.
struct RequestFrame {
  std::string algorithm = "match4";
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = no deadline
  std::uint64_t memory_budget_bytes = 0;
  ListSpec list_spec = ListSpec::kGenerated;
  std::uint64_t n = 0;         ///< list size (both specs)
  std::uint64_t seed = 0;      ///< kGenerated only
  std::vector<index_t> links;  ///< kInline only: successor array, knil tail
};

/// Payload of kResponse — the result *summary* (counters and model cost),
/// not the per-node matching vector: shipping n bytes per request back
/// would dwarf the request itself, and a caller that needs the vector
/// audited server-side asks for --serve.verify. See docs/NET.md.
struct ResponseFrame {
  std::uint64_t edges = 0;
  std::uint32_t relabel_rounds = 0;
  std::uint32_t gather_rounds = 0;
  std::uint64_t partition_sets = 0;
  std::uint64_t cost_depth = 0;
  std::uint64_t cost_time_p = 0;
  std::uint64_t cost_work = 0;
};

/// Payload of kError.
struct ErrorFrame {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

/// Payload of kStats: the serve-layer counters every transport shares,
/// then the net layer's own per-tenant admission ledger.
struct StatsFrame {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t restarts = 0;
  std::uint64_t audits_failed = 0;
  std::uint64_t repairs = 0;
  std::uint64_t p50_latency_us = 0;
  std::uint64_t p99_latency_us = 0;

  struct Tenant {
    std::uint32_t tenant = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t rejected_in_flight = 0;
    std::uint64_t completed = 0;
    std::uint64_t in_flight = 0;
  };
  std::vector<Tenant> tenants;
};

// ---------------------------------------------------------------------------
// Primitive encode/decode. Little-endian, explicit bytes.
// ---------------------------------------------------------------------------

/// Appends primitives to a byte buffer. Infallible (grows the vector).
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  /// Length-prefixed short string (u16 length).
  void str16(const std::string& s) {
    const std::size_t len = s.size() > 0xFFFF ? 0xFFFF : s.size();
    u16(static_cast<std::uint16_t>(len));
    out_.insert(out_.end(), s.begin(), s.begin() + static_cast<long>(len));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked reads over a fixed byte range; every failure is a
/// kInvalidArgument Status naming what was being read.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  Status u8(std::uint8_t* v, const char* what) {
    if (remaining() < 1) return truncated(what);
    *v = data_[pos_++];
    return {};
  }
  Status u16(std::uint16_t* v, const char* what) {
    if (remaining() < 2) return truncated(what);
    *v = static_cast<std::uint16_t>(data_[pos_]) |
         static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return {};
  }
  Status u32(std::uint32_t* v, const char* what) {
    if (remaining() < 4) return truncated(what);
    *v = static_cast<std::uint32_t>(data_[pos_]) |
         static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
         static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
         static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return {};
  }
  Status u64(std::uint64_t* v, const char* what) {
    std::uint32_t lo = 0, hi = 0;
    if (Status s = u32(&lo, what); !s.ok()) return s;
    if (Status s = u32(&hi, what); !s.ok()) return s;
    *v = static_cast<std::uint64_t>(hi) << 32 | lo;
    return {};
  }
  Status str16(std::string* v, const char* what) {
    std::uint16_t len = 0;
    if (Status s = u16(&len, what); !s.ok()) return s;
    if (remaining() < len) return truncated(what);
    v->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return {};
  }
  /// The payload must be consumed exactly; call after the last field.
  Status expect_end(const char* what) const {
    if (pos_ != size_)
      return Status::invalid_argument(std::string(what) + ": " +
                                      std::to_string(size_ - pos_) +
                                      " trailing payload byte(s)");
    return {};
  }

 private:
  Status truncated(const char* what) const {
    return Status::invalid_argument(std::string("truncated frame: ") + what);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Header.
// ---------------------------------------------------------------------------

/// Encode a header for a payload of `payload_bytes` onto `out`.
inline void encode_header(const FrameHeader& h,
                          std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  w.u32(kWireMagic);
  w.u8(h.version);
  w.u8(static_cast<std::uint8_t>(h.type));
  w.u16(0);  // reserved
  w.u32(h.tenant);
  w.u64(h.request_id);
  w.u32(h.payload_bytes);
}

/// Strict header decode from exactly kFrameHeaderBytes. A non-OK Status
/// means the stream is corrupt beyond resynchronisation (see header
/// comment); payload-level problems are reported by the payload decoders.
inline Status decode_header(const std::uint8_t* data, std::size_t size,
                            FrameHeader* out) {
  WireReader r(data, size);
  std::uint32_t magic = 0;
  std::uint16_t reserved = 0;
  std::uint8_t type = 0;
  if (Status s = r.u32(&magic, "header magic"); !s.ok()) return s;
  if (magic != kWireMagic)
    return Status::invalid_argument("bad frame magic");
  if (Status s = r.u8(&out->version, "header version"); !s.ok()) return s;
  if (out->version != kWireVersion)
    return Status::invalid_argument(
        "unsupported protocol version " + std::to_string(out->version) +
        " (expected " + std::to_string(kWireVersion) + ")");
  if (Status s = r.u8(&type, "header type"); !s.ok()) return s;
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kStats))
    return Status::invalid_argument("unknown frame type " +
                                    std::to_string(type));
  out->type = static_cast<FrameType>(type);
  if (Status s = r.u16(&reserved, "header reserved"); !s.ok()) return s;
  if (reserved != 0)
    return Status::invalid_argument("nonzero reserved header field");
  if (Status s = r.u32(&out->tenant, "header tenant"); !s.ok()) return s;
  if (Status s = r.u64(&out->request_id, "header request id"); !s.ok())
    return s;
  if (Status s = r.u32(&out->payload_bytes, "header payload length");
      !s.ok())
    return s;
  if (out->payload_bytes > kMaxPayloadBytes)
    return Status::invalid_argument(
        "payload length " + std::to_string(out->payload_bytes) +
        " exceeds the protocol bound");
  return {};
}

// ---------------------------------------------------------------------------
// Frame encode: header + payload in one buffer, ready to write.
// ---------------------------------------------------------------------------

namespace detail {

/// Encode `payload_fn(writer)` after a header of the given type, patching
/// the real payload length into the header afterwards.
template <class PayloadFn>
void encode_frame(FrameType type, std::uint32_t tenant,
                  std::uint64_t request_id, std::vector<std::uint8_t>& out,
                  PayloadFn&& payload_fn) {
  FrameHeader h;
  h.type = type;
  h.tenant = tenant;
  h.request_id = request_id;
  const std::size_t header_at = out.size();
  encode_header(h, out);
  const std::size_t payload_at = out.size();
  WireWriter w(out);
  payload_fn(w);
  const std::uint64_t len = out.size() - payload_at;
  LLMP_CHECK(out.size() >= header_at + kFrameHeaderBytes);
  // Every encoder either bounds its payload by construction (responses,
  // errors, stats) or validates before calling here (requests); a frame
  // above the protocol bound would wrap the u32 length field and
  // desynchronise the stream, so it is a programming error, not data.
  LLMP_CHECK(len <= kMaxPayloadBytes);
  // Patch payload_bytes (offset 20 in the header).
  for (int i = 0; i < 4; ++i)
    out[header_at + 20 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

}  // namespace detail

/// Encode a request frame, or refuse one whose payload cannot legally
/// cross the wire: an inline list near 2^26 nodes already fills
/// kMaxPayloadBytes, and anything ≥ 4 GiB would wrap the u32 length
/// field and silently desynchronise the stream. Failing locally is the
/// only safe surface for that.
inline Status encode_request(const RequestFrame& f, std::uint32_t tenant,
                             std::uint64_t request_id,
                             std::vector<std::uint8_t>& out) {
  const std::uint64_t alg_bytes =
      f.algorithm.size() > 0xFFFF ? 0xFFFF : f.algorithm.size();
  const std::uint64_t payload =
      2 + alg_bytes + 4 + 8 + 1 + 8 +
      (f.list_spec == ListSpec::kGenerated
           ? 8
           : static_cast<std::uint64_t>(f.links.size()) * sizeof(index_t));
  if (payload > kMaxPayloadBytes)
    return Status::invalid_argument(
        "request payload of " + std::to_string(payload) +
        " bytes exceeds the protocol bound of " +
        std::to_string(kMaxPayloadBytes) +
        "; an inline list this large cannot cross the wire");
  detail::encode_frame(
      FrameType::kRequest, tenant, request_id, out, [&](WireWriter& w) {
        w.str16(f.algorithm);
        w.u32(f.deadline_ms);
        w.u64(f.memory_budget_bytes);
        w.u8(static_cast<std::uint8_t>(f.list_spec));
        w.u64(f.n);
        if (f.list_spec == ListSpec::kGenerated) {
          w.u64(f.seed);
        } else {
          for (const index_t link : f.links) w.u32(link);
        }
      });
  return {};
}

inline void encode_response(const ResponseFrame& f, std::uint32_t tenant,
                            std::uint64_t request_id,
                            std::vector<std::uint8_t>& out) {
  detail::encode_frame(
      FrameType::kResponse, tenant, request_id, out, [&](WireWriter& w) {
        w.u64(f.edges);
        w.u32(f.relabel_rounds);
        w.u32(f.gather_rounds);
        w.u64(f.partition_sets);
        w.u64(f.cost_depth);
        w.u64(f.cost_time_p);
        w.u64(f.cost_work);
      });
}

inline void encode_error(const ErrorFrame& f, std::uint32_t tenant,
                         std::uint64_t request_id,
                         std::vector<std::uint8_t>& out) {
  detail::encode_frame(FrameType::kError, tenant, request_id, out,
                       [&](WireWriter& w) {
                         w.u16(wire_code(f.code));
                         w.str16(f.message);
                       });
}

inline void encode_stats_request(std::uint32_t tenant,
                                 std::uint64_t request_id,
                                 std::vector<std::uint8_t>& out) {
  detail::encode_frame(FrameType::kStatsRequest, tenant, request_id, out,
                       [](WireWriter&) {});
}

inline void encode_stats(const StatsFrame& f, std::uint32_t tenant,
                         std::uint64_t request_id,
                         std::vector<std::uint8_t>& out) {
  detail::encode_frame(
      FrameType::kStats, tenant, request_id, out, [&](WireWriter& w) {
        w.u64(f.submitted);
        w.u64(f.completed);
        w.u64(f.ok);
        w.u64(f.rejected);
        w.u64(f.expired);
        w.u64(f.failed);
        w.u64(f.retries);
        w.u64(f.restarts);
        w.u64(f.audits_failed);
        w.u64(f.repairs);
        w.u64(f.p50_latency_us);
        w.u64(f.p99_latency_us);
        w.u32(static_cast<std::uint32_t>(f.tenants.size()));
        for (const StatsFrame::Tenant& t : f.tenants) {
          w.u32(t.tenant);
          w.u64(t.admitted);
          w.u64(t.rejected_quota);
          w.u64(t.rejected_in_flight);
          w.u64(t.completed);
          w.u64(t.in_flight);
        }
      });
}

// ---------------------------------------------------------------------------
// Payload decode (the header was already validated by decode_header).
// ---------------------------------------------------------------------------

inline Status decode_request(const std::uint8_t* payload, std::size_t size,
                             RequestFrame* out) {
  WireReader r(payload, size);
  if (Status s = r.str16(&out->algorithm, "request algorithm"); !s.ok())
    return s;
  if (Status s = r.u32(&out->deadline_ms, "request deadline"); !s.ok())
    return s;
  if (Status s = r.u64(&out->memory_budget_bytes, "request budget"); !s.ok())
    return s;
  std::uint8_t spec = 0;
  if (Status s = r.u8(&spec, "request list spec"); !s.ok()) return s;
  if (spec > static_cast<std::uint8_t>(ListSpec::kInline))
    return Status::invalid_argument("unknown list spec " +
                                    std::to_string(spec));
  out->list_spec = static_cast<ListSpec>(spec);
  if (Status s = r.u64(&out->n, "request n"); !s.ok()) return s;
  if (out->list_spec == ListSpec::kGenerated) {
    if (Status s = r.u64(&out->seed, "request seed"); !s.ok()) return s;
    return r.expect_end("request frame");
  }
  // Inline: n successor words must be exactly what remains.
  if (out->n != r.remaining() / sizeof(index_t) ||
      r.remaining() % sizeof(index_t) != 0)
    return Status::invalid_argument(
        "inline list length mismatch: n=" + std::to_string(out->n) +
        " but " + std::to_string(r.remaining()) + " payload byte(s) follow");
  out->links.clear();
  out->links.reserve(out->n);
  for (std::uint64_t i = 0; i < out->n; ++i) {
    std::uint32_t link = 0;
    if (Status s = r.u32(&link, "inline list link"); !s.ok()) return s;
    out->links.push_back(link);
  }
  return r.expect_end("request frame");
}

inline Status decode_response(const std::uint8_t* payload, std::size_t size,
                              ResponseFrame* out) {
  WireReader r(payload, size);
  if (Status s = r.u64(&out->edges, "response edges"); !s.ok()) return s;
  if (Status s = r.u32(&out->relabel_rounds, "response relabel rounds");
      !s.ok())
    return s;
  if (Status s = r.u32(&out->gather_rounds, "response gather rounds");
      !s.ok())
    return s;
  if (Status s = r.u64(&out->partition_sets, "response partition sets");
      !s.ok())
    return s;
  if (Status s = r.u64(&out->cost_depth, "response depth"); !s.ok()) return s;
  if (Status s = r.u64(&out->cost_time_p, "response time_p"); !s.ok())
    return s;
  if (Status s = r.u64(&out->cost_work, "response work"); !s.ok()) return s;
  return r.expect_end("response frame");
}

inline Status decode_error(const std::uint8_t* payload, std::size_t size,
                           ErrorFrame* out) {
  WireReader r(payload, size);
  std::uint16_t code = 0;
  if (Status s = r.u16(&code, "error code"); !s.ok()) return s;
  if (!status_code_from_wire(code, &out->code))
    return Status::invalid_argument("unknown wire error code " +
                                    std::to_string(code));
  if (out->code == StatusCode::kOk)
    return Status::invalid_argument("error frame carrying OK");
  if (Status s = r.str16(&out->message, "error message"); !s.ok()) return s;
  return r.expect_end("error frame");
}

inline Status decode_stats_request(const std::uint8_t* /*payload*/,
                                   std::size_t size) {
  if (size != 0)
    return Status::invalid_argument("stats request carries a payload");
  return {};
}

inline Status decode_stats(const std::uint8_t* payload, std::size_t size,
                           StatsFrame* out) {
  WireReader r(payload, size);
  if (Status s = r.u64(&out->submitted, "stats submitted"); !s.ok()) return s;
  if (Status s = r.u64(&out->completed, "stats completed"); !s.ok()) return s;
  if (Status s = r.u64(&out->ok, "stats ok"); !s.ok()) return s;
  if (Status s = r.u64(&out->rejected, "stats rejected"); !s.ok()) return s;
  if (Status s = r.u64(&out->expired, "stats expired"); !s.ok()) return s;
  if (Status s = r.u64(&out->failed, "stats failed"); !s.ok()) return s;
  if (Status s = r.u64(&out->retries, "stats retries"); !s.ok()) return s;
  if (Status s = r.u64(&out->restarts, "stats restarts"); !s.ok()) return s;
  if (Status s = r.u64(&out->audits_failed, "stats audits failed"); !s.ok())
    return s;
  if (Status s = r.u64(&out->repairs, "stats repairs"); !s.ok()) return s;
  if (Status s = r.u64(&out->p50_latency_us, "stats p50"); !s.ok()) return s;
  if (Status s = r.u64(&out->p99_latency_us, "stats p99"); !s.ok()) return s;
  std::uint32_t tenants = 0;
  if (Status s = r.u32(&tenants, "stats tenant count"); !s.ok()) return s;
  // 44 bytes per tenant entry; a count the remaining bytes cannot hold is
  // a protocol error, not a resize request.
  if (static_cast<std::uint64_t>(tenants) * 44 != r.remaining())
    return Status::invalid_argument("stats tenant count mismatch");
  out->tenants.clear();
  out->tenants.reserve(tenants);
  for (std::uint32_t i = 0; i < tenants; ++i) {
    StatsFrame::Tenant t;
    if (Status s = r.u32(&t.tenant, "stats tenant id"); !s.ok()) return s;
    if (Status s = r.u64(&t.admitted, "stats tenant admitted"); !s.ok())
      return s;
    if (Status s = r.u64(&t.rejected_quota, "stats tenant rejected quota");
        !s.ok())
      return s;
    if (Status s =
            r.u64(&t.rejected_in_flight, "stats tenant rejected in-flight");
        !s.ok())
      return s;
    if (Status s = r.u64(&t.completed, "stats tenant completed"); !s.ok())
      return s;
    if (Status s = r.u64(&t.in_flight, "stats tenant in-flight"); !s.ok())
      return s;
    out->tenants.push_back(t);
  }
  return r.expect_end("stats frame");
}

}  // namespace llmp::net
