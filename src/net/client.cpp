#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace llmp::net {

namespace {

/// Percentile from a log2-bucketed histogram: the upper bound of the
/// bucket holding the p-th sample (same scheme as ServiceStats).
std::uint64_t histogram_percentile(const std::uint64_t* buckets,
                                   std::size_t n_buckets,
                                   std::uint64_t count, double p) {
  if (count == 0) return 0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(p * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return i == 0 ? 1 : (1ull << i);
  }
  return 1ull << (n_buckets - 1);
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { close(); }

Status Client::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    return Status::unavailable(std::string("socket: ") +
                               std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status::invalid_argument("bad host " + options_.host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::unavailable(
        "connect " + options_.host + ":" + std::to_string(options_.port) +
        ": " + std::strerror(errno));
    close();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = options_.recv_timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return {};
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::write_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t at = 0;
  while (at < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + at, bytes.size() - at,
                             MSG_NOSIGNAL);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::unavailable(std::string("send: ") + std::strerror(errno));
  }
  stats_.bytes_out += bytes.size();
  return {};
}

Status Client::read_frame(FrameHeader* header,
                          std::vector<std::uint8_t>* payload) {
  std::uint8_t head[kFrameHeaderBytes];
  std::size_t at = 0;
  while (at < kFrameHeaderBytes) {
    const ssize_t n = ::recv(fd_, head + at, kFrameHeaderBytes - at, 0);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      return Status::unavailable("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return Status::unavailable("timed out waiting for a response frame");
    return Status::unavailable(std::string("recv: ") + std::strerror(errno));
  }
  if (Status s = decode_header(head, kFrameHeaderBytes, header); !s.ok())
    return s;
  stats_.bytes_in += kFrameHeaderBytes + header->payload_bytes;
  payload->resize(header->payload_bytes);
  at = 0;
  while (at < payload->size()) {
    const ssize_t n = ::recv(fd_, payload->data() + at, payload->size() - at,
                             0);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      return Status::unavailable("connection closed mid-frame");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return Status::unavailable("timed out mid-frame");
    return Status::unavailable(std::string("recv: ") + std::strerror(errno));
  }
  return {};
}

Status Client::encode_builder(const RequestBuilder& req,
                              std::uint64_t request_id,
                              std::vector<std::uint8_t>& out) {
  RequestFrame f;
  f.algorithm = req.algorithm_name();
  f.memory_budget_bytes = req.budget_bytes();
  const auto deadline = req.deadline_point();
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    // An already-passed deadline still crosses the wire (as the minimum
    // interval) so the SERVER is the one to say kDeadlineExceeded.
    f.deadline_ms =
        left.count() > 0 ? static_cast<std::uint32_t>(left.count()) : 1;
  }
  if (req.is_generated()) {
    f.list_spec = ListSpec::kGenerated;
    f.n = req.generated_n();
    f.seed = req.generated_seed();
  } else if (req.list_ptr() != nullptr) {
    f.list_spec = ListSpec::kInline;
    f.n = req.list_ptr()->size();
    f.links = req.list_ptr()->next_array();
  } else {
    return Status::invalid_argument(
        "request names no list: call list() or generated()");
  }
  const std::uint32_t tenant =
      req.tenant_id() != 0 ? req.tenant_id() : options_.tenant;
  return encode_request(f, tenant, request_id, out);
}

void Client::record_latency(std::uint64_t us) {
  std::size_t b = 0;
  while (b + 1 < kLatencyBuckets && (1ull << b) < us) ++b;
  latency_[b]++;
  latency_count_++;
}

Result<core::MatchResult> Client::submit(const RequestBuilder& req) {
  std::vector<Result<core::MatchResult>> r =
      submit_batch(std::vector<RequestBuilder>{req});
  return std::move(r.front());
}

std::vector<Result<core::MatchResult>> Client::submit_batch(
    const std::vector<RequestBuilder>& reqs) {
  std::vector<Result<core::MatchResult>> results(
      reqs.size(), Status::unavailable("no response received"));
  if (reqs.empty()) return results;
  if (fd_ < 0) {
    for (auto& r : results) r = Status::unavailable("client not connected");
    return results;
  }

  // Encode the whole batch, ids mapping back to positions.
  std::map<std::uint64_t, std::size_t> position_of;
  std::vector<std::uint8_t> wire;
  std::size_t i = 0;
  for (const RequestBuilder& req : reqs) {
    const std::uint64_t id = next_id_++;
    if (Status s = encode_builder(req, id, wire); !s.ok()) {
      results[i++] = s;  // local rejection; nothing was written for it
      continue;
    }
    position_of.emplace(id, i++);
    stats_.requests++;
  }
  const auto started = std::chrono::steady_clock::now();
  if (Status s = write_all(wire); !s.ok()) {
    for (const auto& [id, i] : position_of) results[i] = s;
    close();
    return results;
  }

  // Read until every in-flight id is reconciled. Out-of-order is normal;
  // duplicates and unknowns are counted and skipped.
  std::size_t outstanding = position_of.size();
  std::vector<bool> answered(reqs.size(), false);
  while (outstanding > 0) {
    FrameHeader h;
    std::vector<std::uint8_t> payload;
    if (Status s = read_frame(&h, &payload); !s.ok()) {
      for (const auto& [id, i] : position_of)
        if (!answered[i])
          results[i] = Status::unavailable(
              "connection lost before this request's response: " +
              s.message());
      close();
      return results;
    }
    const auto now = std::chrono::steady_clock::now();
    stats_.responses++;
    auto it = position_of.find(h.request_id);
    if (it == position_of.end()) {
      stats_.unknown_ids++;
      continue;
    }
    if (answered[it->second]) {
      stats_.duplicates++;
      continue;
    }
    record_latency(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - started)
            .count()));
    if (h.type == FrameType::kResponse) {
      ResponseFrame f;
      if (Status s = decode_response(payload.data(), payload.size(), &f);
          !s.ok()) {
        results[it->second] = s;
      } else {
        core::MatchResult m;
        m.edges = f.edges;
        m.relabel_rounds = static_cast<int>(f.relabel_rounds);
        m.gather_rounds = static_cast<int>(f.gather_rounds);
        m.partition_sets = f.partition_sets;
        m.cost.depth = f.cost_depth;
        m.cost.time_p = f.cost_time_p;
        m.cost.work = f.cost_work;
        results[it->second] = std::move(m);
        stats_.ok++;
      }
    } else if (h.type == FrameType::kError) {
      ErrorFrame f;
      if (Status s = decode_error(payload.data(), payload.size(), &f);
          !s.ok())
        results[it->second] = s;
      else
        results[it->second] = Status(f.code, f.message);
      stats_.errors++;
    } else {
      results[it->second] = Status::invalid_argument(
          "unexpected frame type in response stream");
    }
    answered[it->second] = true;
    outstanding--;
  }
  return results;
}

Result<StatsFrame> Client::server_stats() {
  if (fd_ < 0) return Status::unavailable("client not connected");
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> wire;
  encode_stats_request(options_.tenant, id, wire);
  if (Status s = write_all(wire); !s.ok()) return s;
  // Stats may interleave with pipelined traffic only on a dedicated
  // client; this simple reader expects the stats frame (or errors) next.
  while (true) {
    FrameHeader h;
    std::vector<std::uint8_t> payload;
    if (Status s = read_frame(&h, &payload); !s.ok()) {
      // A failed frame read (timeout mid-header, server gone) leaves the
      // stream desynchronised; drop the connection so a later
      // submit_batch cannot misparse — same handling as submit_batch.
      close();
      return s;
    }
    if (h.request_id != id) {
      stats_.unknown_ids++;
      continue;
    }
    if (h.type == FrameType::kError) {
      ErrorFrame f;
      if (Status s = decode_error(payload.data(), payload.size(), &f);
          !s.ok())
        return s;
      return Status(f.code, f.message);
    }
    if (h.type != FrameType::kStats)
      return Status::invalid_argument("expected a stats frame");
    StatsFrame f;
    if (Status s = decode_stats(payload.data(), payload.size(), &f); !s.ok())
      return s;
    return f;
  }
}

ClientStats Client::stats() const {
  ClientStats out = stats_;
  out.p50_latency_us =
      histogram_percentile(latency_, kLatencyBuckets, latency_count_, 0.50);
  out.p99_latency_us =
      histogram_percentile(latency_, kLatencyBuckets, latency_count_, 0.99);
  return out;
}

}  // namespace llmp::net
