#include "net/server.h"

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <future>
#include <map>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "core/match_result.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "support/failpoint.h"

namespace llmp::net {

namespace {

namespace failpoint = support::failpoint;

/// Evaluate a socket-operation failpoint; throw rules are folded into the
/// returned Status so every injection takes the same disconnect path and
/// the chaos suite can reconcile counters deterministically.
Status guarded_failpoint(const char* name) {
  try {
    return LLMP_FAILPOINT_STATUS(name);
  } catch (const failpoint::InjectedFault& e) {
    return Status(e.code(), e.what());
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Status::unavailable(std::string("fcntl(O_NONBLOCK): ") +
                               std::strerror(errno));
  return {};
}

}  // namespace

struct Server::Impl {
  // ---- wiring ------------------------------------------------------------

  /// The bridge from worker threads back to the IO thread. on_ready hooks
  /// hold it by shared_ptr, so a late completion after stop() posts into a
  /// closed (wake_fd == -1) bus instead of freed memory.
  struct CompletionBus {
    std::mutex mu;
    std::vector<std::uint64_t> ready;
    int wake_fd = -1;

    void post(std::uint64_t token) {
      std::lock_guard<std::mutex> lock(mu);
      ready.push_back(token);
      if (wake_fd >= 0) {
        const std::uint8_t byte = 1;
        // A full pipe is fine: the IO loop also drains on its poll tick.
        [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
      }
    }
    std::vector<std::uint64_t> drain() {
      std::lock_guard<std::mutex> lock(mu);
      return std::exchange(ready, {});
    }
    void close() {
      std::lock_guard<std::mutex> lock(mu);
      wake_fd = -1;
    }
  };

  /// One connection slot; slots are reused, generations disambiguate a
  /// completion aimed at a connection that died meanwhile.
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    std::vector<std::uint8_t> in;   ///< unparsed received bytes
    std::vector<std::uint8_t> out;  ///< encoded frames awaiting write
    std::size_t out_at = 0;
    bool close_after_flush = false;
  };

  /// A submitted request the IO thread still owes a response frame (or a
  /// silent drop, when its connection died). Owns the list reference for
  /// exactly as long as the serve layer may touch it.
  struct Pending {
    std::size_t slot = 0;
    std::uint64_t gen = 0;
    std::uint64_t request_id = 0;
    std::uint32_t tenant = 0;
    std::shared_ptr<const list::LinkedList> list;
    std::future<Result<core::MatchResult>> fut;
  };

  Impl(serve::Service& s, ServerOptions o)
      : svc(s), opts(std::move(o)), admission(opts.admission) {}

  // ---- lifecycle ---------------------------------------------------------

  Status start() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
      return Status::unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1)
      return fail_start(Status::invalid_argument("bad listen host " +
                                                 opts.host));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return fail_start(Status::unavailable(
          "bind " + opts.host + ":" + std::to_string(opts.port) + ": " +
          std::strerror(errno)));
    if (::listen(listen_fd, 128) < 0)
      return fail_start(Status::unavailable(std::string("listen: ") +
                                            std::strerror(errno)));
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
        0)
      return fail_start(Status::unavailable(std::string("getsockname: ") +
                                            std::strerror(errno)));
    bound_port = ntohs(addr.sin_port);
    if (Status s = set_nonblocking(listen_fd); !s.ok())
      return fail_start(std::move(s));

    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0)
      return fail_start(Status::unavailable(std::string("pipe: ") +
                                            std::strerror(errno)));
    wake_rd = pipe_fds[0];
    {
      std::lock_guard<std::mutex> lock(bus->mu);
      bus->wake_fd = pipe_fds[1];
    }
    if (Status s = set_nonblocking(wake_rd); !s.ok())
      return fail_start(std::move(s));
    if (Status s = set_nonblocking(pipe_fds[1]); !s.ok())
      return fail_start(std::move(s));

    running.store(true);
    io = std::thread([this] { io_loop(); });
    return {};
  }

  Status fail_start(Status s) {
    close_fds();
    return s;
  }

  void stop() {
    if (io.joinable()) {
      running.store(false);
      bus->post(0);  // token 0 is never issued; this is just a wake-up
      io.join();
    }
    // The IO thread is gone; drain every outstanding request so the lists
    // pending entries own stay alive until the serve layer is done with
    // them, and the admission ledger balances.
    for (auto& [token, p] : pending) {
      if (p.fut.valid()) p.fut.wait();
      admission.complete(p.tenant);
    }
    pending.clear();
    bus->close();  // late on_ready posts become harmless no-ops
    close_fds();
  }

  void close_fds() {
    for (Conn& c : conns)
      if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
      }
    int wake_wr = -1;
    {
      std::lock_guard<std::mutex> lock(bus->mu);
      wake_wr = std::exchange(bus->wake_fd, -1);
    }
    for (int* fd : {&listen_fd, &wake_rd, &wake_wr})
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
  }

  // ---- IO loop -----------------------------------------------------------

  void io_loop() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> slot_of;  // fds index → conns slot
    while (running.load()) {
      fds.clear();
      slot_of.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      fds.push_back({wake_rd, POLLIN, 0});
      for (std::size_t i = 0; i < conns.size(); ++i) {
        if (conns[i].fd < 0) continue;
        short events = POLLIN;
        if (conns[i].out_at < conns[i].out.size()) events |= POLLOUT;
        fds.push_back({conns[i].fd, events, 0});
        slot_of.push_back(i);
      }
      // Finite timeout: progress even if a wake byte was lost to a full
      // pipe, and a timely running-flag check on shutdown.
      const int rc = ::poll(fds.data(), fds.size(), 50);
      if (rc < 0 && errno != EINTR) break;

      if (fds[1].revents & POLLIN) drain_wake_pipe();
      drain_completions();
      if (fds[0].revents & POLLIN) accept_connections();
      for (std::size_t k = 2; k < fds.size(); ++k) {
        const std::size_t slot = slot_of[k - 2];
        Conn& c = conns[slot];
        if (c.fd != fds[k].fd) continue;  // replaced mid-iteration
        if (fds[k].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          close_conn(slot);
          continue;
        }
        if (fds[k].revents & POLLIN) handle_readable(slot);
        if (c.fd >= 0 && (fds[k].revents & POLLOUT)) handle_writable(slot);
      }
    }
  }

  void drain_wake_pipe() {
    std::uint8_t buf[256];
    while (::read(wake_rd, buf, sizeof(buf)) > 0) {
    }
  }

  void accept_connections() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN / transient
      if (Status s = guarded_failpoint("net.conn.accept"); !s.ok()) {
        accept_faults.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      std::size_t live = 0;
      for (const Conn& c : conns) live += c.fd >= 0 ? 1 : 0;
      if (live >= opts.max_connections) {
        ::close(fd);
        disconnects.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (Status s = set_nonblocking(fd); !s.ok()) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::size_t slot = conns.size();
      for (std::size_t i = 0; i < conns.size(); ++i)
        if (conns[i].fd < 0) {
          slot = i;
          break;
        }
      if (slot == conns.size()) conns.emplace_back();
      Conn& c = conns[slot];
      c.fd = fd;
      c.gen++;
      c.in.clear();
      c.out.clear();
      c.out_at = 0;
      c.close_after_flush = false;
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void close_conn(std::size_t slot) {
    Conn& c = conns[slot];
    if (c.fd < 0) return;
    ::close(c.fd);
    c.fd = -1;
    c.gen++;  // orphan any pending completions aimed at this slot
    c.in.clear();
    c.out.clear();
    c.out_at = 0;
    disconnects.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- reading + framing -------------------------------------------------

  void handle_readable(std::size_t slot) {
    Conn& c = conns[slot];
    if (Status s = guarded_failpoint("net.conn.read"); !s.ok()) {
      read_faults.fetch_add(1, std::memory_order_relaxed);
      close_conn(slot);
      return;
    }
    std::uint8_t buf[64 * 1024];
    while (true) {
      const ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.in.insert(c.in.end(), buf, buf + n);
        bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
        continue;
      }
      if (n == 0) {  // orderly EOF from the peer
        close_conn(slot);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(slot);
      return;
    }
    parse_frames(slot);
  }

  void parse_frames(std::size_t slot) {
    Conn& c = conns[slot];
    std::size_t at = 0;
    while (c.fd >= 0 && !c.close_after_flush &&
           c.in.size() - at >= kFrameHeaderBytes) {
      FrameHeader h;
      Status s = decode_header(c.in.data() + at, kFrameHeaderBytes, &h);
      if (s.ok() && h.payload_bytes > opts.max_frame_bytes)
        s = Status::invalid_argument(
            "payload length " + std::to_string(h.payload_bytes) +
            " exceeds this server's limit");
      if (!s.ok()) {
        // Header-level corruption: the stream cannot be resynchronised.
        // Mark close-after-flush BEFORE sending so the flush inside
        // send_error closes the socket once the error frame drains.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c.close_after_flush = true;
        send_error(slot, h.tenant, h.request_id,
                   {StatusCode::kInvalidArgument, s.message()});
        break;
      }
      if (c.in.size() - at < kFrameHeaderBytes + h.payload_bytes)
        break;  // frame not fully buffered yet
      handle_frame(slot, h, c.in.data() + at + kFrameHeaderBytes,
                   h.payload_bytes);
      at += kFrameHeaderBytes + h.payload_bytes;
    }
    if (at > 0 && c.fd >= 0)
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(at));
  }

  void handle_frame(std::size_t slot, const FrameHeader& h,
                    const std::uint8_t* payload, std::size_t size) {
    frames_in.fetch_add(1, std::memory_order_relaxed);
    switch (h.type) {
      case FrameType::kRequest:
        handle_request(slot, h, payload, size);
        return;
      case FrameType::kStatsRequest: {
        if (Status s = decode_stats_request(payload, size); !s.ok()) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          send_error(slot, h.tenant, h.request_id,
                     {StatusCode::kInvalidArgument, s.message()});
          return;
        }
        send_stats(slot, h);
        return;
      }
      default:
        // kResponse / kError / kStats are server→client only; a client
        // sending one is out of protocol — answer and hang up. (Set the
        // flag before sending: the flush inside send_error is what closes
        // the connection once the error frame drains.)
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conns[slot].close_after_flush = true;
        send_error(slot, h.tenant, h.request_id,
                   {StatusCode::kInvalidArgument,
                    "frame type not valid from a client"});
        return;
    }
  }

  void handle_request(std::size_t slot, const FrameHeader& h,
                      const std::uint8_t* payload, std::size_t size) {
    RequestFrame f;
    if (Status s = decode_request(payload, size, &f); !s.ok()) {
      // Payload-level: the stream is still framed; cost one error frame.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(slot, h.tenant, h.request_id,
                 {StatusCode::kInvalidArgument, s.message()});
      return;
    }
    if (f.n > opts.max_list_nodes || f.n >= knil) {
      send_error(slot, h.tenant, h.request_id,
                 {StatusCode::kInvalidArgument,
                  "list size " + std::to_string(f.n) +
                      " exceeds the server limit"});
      return;
    }
    if (Status s = admission.admit(h.tenant); !s.ok()) {
      send_error(slot, h.tenant, h.request_id, {s.code(), s.message()});
      return;
    }
    // Admitted from here on: every exit must reach complete(), either via
    // the pending entry's completion or explicitly on early rejection.
    std::shared_ptr<const list::LinkedList> list;
    if (f.list_spec == ListSpec::kGenerated) {
      list = generated_list(f.n, f.seed);
    } else {
      Result<list::LinkedList> made = list::LinkedList::make(
          std::move(f.links));
      if (!made.ok()) {
        admission.complete(h.tenant);
        send_error(slot, h.tenant, h.request_id,
                   {made.status().code(), made.status().message()});
        return;
      }
      list = std::make_shared<const list::LinkedList>(
          std::move(made.value()));
    }

    const std::uint64_t token = next_token++;
    Pending p;
    p.slot = slot;
    p.gen = conns[slot].gen;
    p.request_id = h.request_id;
    p.tenant = h.tenant;
    p.list = list;
    auto [it, inserted] = pending.emplace(token, std::move(p));
    LLMP_CHECK(inserted);

    serve::Request req;
    req.list = list.get();
    req.algorithm = f.algorithm;
    if (f.deadline_ms != 0)
      req.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(f.deadline_ms);
    req.memory_budget_bytes = f.memory_budget_bytes;
    req.tenant = h.tenant;
    req.on_ready = [bus = bus, token] { bus->post(token); };
    // A submit-time reject runs on_ready synchronously on this thread;
    // the token just waits in the bus until drain_completions().
    it->second.fut = svc.submit(std::move(req));
  }

  std::shared_ptr<const list::LinkedList> generated_list(std::uint64_t n,
                                                         std::uint64_t seed) {
    const auto key = std::make_pair(n, seed);
    if (auto it = list_cache.find(key); it != list_cache.end())
      return it->second;
    auto list = std::make_shared<const list::LinkedList>(
        list::generators::random_list(static_cast<std::size_t>(n), seed));
    while (list_cache.size() >= opts.list_cache_entries &&
           !cache_order.empty()) {
      list_cache.erase(cache_order.front());
      cache_order.pop_front();
    }
    list_cache.emplace(key, list);
    cache_order.push_back(key);
    return list;
  }

  // ---- completions → responses -------------------------------------------

  void drain_completions() {
    for (const std::uint64_t token : bus->drain()) {
      auto it = pending.find(token);
      if (it == pending.end()) continue;  // token 0 wake-ups land here
      Pending p = std::move(it->second);
      pending.erase(it);
      admission.complete(p.tenant);
      // on_ready fires strictly after the future becomes ready, so this
      // get() never blocks the IO thread.
      Result<core::MatchResult> r = p.fut.get();
      Conn& c = conns.size() > p.slot ? conns[p.slot] : dead_conn;
      if (&c == &dead_conn || c.fd < 0 || c.gen != p.gen)
        continue;  // the connection died while the request ran
      if (r.ok()) {
        const core::MatchResult& m = r.value();
        ResponseFrame resp;
        resp.edges = m.edges;
        resp.relabel_rounds = static_cast<std::uint32_t>(m.relabel_rounds);
        resp.gather_rounds = static_cast<std::uint32_t>(m.gather_rounds);
        resp.partition_sets = m.partition_sets;
        resp.cost_depth = m.cost.depth;
        resp.cost_time_p = m.cost.time_p;
        resp.cost_work = m.cost.work;
        encode_response(resp, p.tenant, p.request_id, c.out);
        frames_out.fetch_add(1, std::memory_order_relaxed);
        flush(p.slot);
      } else {
        send_error(p.slot, p.tenant, p.request_id,
                   {r.status().code(), r.status().message()});
      }
    }
  }

  // ---- writing -----------------------------------------------------------

  void send_error(std::size_t slot, std::uint32_t tenant,
                  std::uint64_t request_id, ErrorFrame f) {
    Conn& c = conns[slot];
    if (c.fd < 0) return;
    encode_error(f, tenant, request_id, c.out);
    frames_out.fetch_add(1, std::memory_order_relaxed);
    flush(slot);
  }

  void send_stats(std::size_t slot, const FrameHeader& h) {
    const serve::ServiceStats ss = svc.stats();
    StatsFrame f;
    f.submitted = ss.submitted;
    f.completed = ss.completed;
    f.ok = ss.ok;
    f.rejected = ss.rejected;
    f.expired = ss.expired;
    f.failed = ss.failed;
    f.retries = ss.retries;
    f.restarts = ss.restarts;
    f.p50_latency_us = ss.p50_latency_us;
    f.p99_latency_us = ss.p99_latency_us;
    for (const TenantStats& t : admission.stats()) {
      StatsFrame::Tenant out;
      out.tenant = t.tenant;
      out.admitted = t.admitted;
      out.rejected_quota = t.rejected_quota;
      out.rejected_in_flight = t.rejected_in_flight;
      out.completed = t.completed;
      out.in_flight = t.in_flight;
      f.tenants.push_back(out);
    }
    Conn& c = conns[slot];
    encode_stats(f, h.tenant, h.request_id, c.out);
    frames_out.fetch_add(1, std::memory_order_relaxed);
    flush(slot);
  }

  /// Write as much of the connection's out buffer as the socket accepts;
  /// the poll loop finishes the rest via POLLOUT.
  void flush(std::size_t slot) { handle_writable(slot); }

  void handle_writable(std::size_t slot) {
    Conn& c = conns[slot];
    if (c.fd < 0) return;
    if (c.out_at < c.out.size()) {
      if (Status s = guarded_failpoint("net.conn.write"); !s.ok()) {
        write_faults.fetch_add(1, std::memory_order_relaxed);
        close_conn(slot);
        return;
      }
    }
    while (c.out_at < c.out.size()) {
      const ssize_t n =
          ::write(c.fd, c.out.data() + c.out_at, c.out.size() - c.out_at);
      if (n > 0) {
        c.out_at += static_cast<std::size_t>(n);
        bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_conn(slot);
      return;
    }
    c.out.clear();
    c.out_at = 0;
    if (c.close_after_flush) close_conn(slot);
  }

  // ---- state -------------------------------------------------------------

  serve::Service& svc;
  ServerOptions opts;
  AdmissionController admission;

  int listen_fd = -1;
  int wake_rd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> running{false};
  std::thread io;
  std::shared_ptr<CompletionBus> bus = std::make_shared<CompletionBus>();

  std::vector<Conn> conns;
  Conn dead_conn;  ///< sentinel for out-of-range pending slots
  std::map<std::uint64_t, Pending> pending;  ///< IO thread + post-join stop()
  std::uint64_t next_token = 1;  ///< 0 is the reserved wake-only token

  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::shared_ptr<const list::LinkedList>>
      list_cache;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> cache_order;

  // Counters: relaxed atomics — independent monotonic tallies read by
  // stats() from other threads, same discipline as ServiceStats.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> accept_faults{0};
  std::atomic<std::uint64_t> read_faults{0};
  std::atomic<std::uint64_t> write_faults{0};
};

Server::Server(serve::Service& service, ServerOptions options)
    : impl_(std::make_unique<Impl>(service, std::move(options))) {}

Server::~Server() { stop(); }

Status Server::start() { return impl_->start(); }

void Server::stop() { impl_->stop(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.disconnects = impl_->disconnects.load(std::memory_order_relaxed);
  out.protocol_errors =
      impl_->protocol_errors.load(std::memory_order_relaxed);
  out.frames_in = impl_->frames_in.load(std::memory_order_relaxed);
  out.frames_out = impl_->frames_out.load(std::memory_order_relaxed);
  out.bytes_in = impl_->bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = impl_->bytes_out.load(std::memory_order_relaxed);
  out.accept_faults = impl_->accept_faults.load(std::memory_order_relaxed);
  out.read_faults = impl_->read_faults.load(std::memory_order_relaxed);
  out.write_faults = impl_->write_faults.load(std::memory_order_relaxed);
  out.tenants = impl_->admission.stats();
  return out;
}

}  // namespace llmp::net
