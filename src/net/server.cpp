#include "net/server.h"

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <future>
#include <map>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "core/match_result.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "support/failpoint.h"

namespace llmp::net {

namespace {

namespace failpoint = support::failpoint;

/// Evaluate a socket-operation failpoint; throw rules are folded into the
/// returned Status so every injection takes the same disconnect path and
/// the chaos suite can reconcile counters deterministically.
Status guarded_failpoint(const char* name) {
  try {
    return LLMP_FAILPOINT_STATUS(name);
  } catch (const failpoint::InjectedFault& e) {
    return Status(e.code(), e.what());
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Status::unavailable(std::string("fcntl(O_NONBLOCK): ") +
                               std::strerror(errno));
  return {};
}

}  // namespace

struct Server::Impl {
  // ---- wiring ------------------------------------------------------------

  /// The bridge from worker threads back to the IO thread. on_ready hooks
  /// hold it by shared_ptr, so a late completion after stop() posts into a
  /// closed (wake_fd == -1) bus instead of freed memory.
  struct CompletionBus {
    std::mutex mu;
    std::vector<std::uint64_t> ready;
    int wake_fd = -1;

    void post(std::uint64_t token) {
      std::lock_guard<std::mutex> lock(mu);
      ready.push_back(token);
      if (wake_fd >= 0) {
        const std::uint8_t byte = 1;
        // A full pipe is fine: the IO loop also drains on its poll tick.
        [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
      }
    }
    std::vector<std::uint64_t> drain() {
      std::lock_guard<std::mutex> lock(mu);
      return std::exchange(ready, {});
    }
    void close() {
      std::lock_guard<std::mutex> lock(mu);
      wake_fd = -1;
    }
  };

  /// One connection slot; slots are reused, generations disambiguate a
  /// completion aimed at a connection that died meanwhile.
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    std::vector<std::uint8_t> in;   ///< unparsed received bytes
    std::vector<std::uint8_t> out;  ///< encoded frames awaiting write
    std::size_t out_at = 0;
    bool close_after_flush = false;
  };

  /// Encoded-but-unflushed response bytes — the flow-control quantity.
  static std::size_t backlog(const Conn& c) { return c.out.size() - c.out_at; }

  /// The hand-off to/from the list-generator thread. The IO thread
  /// enqueues (token, n, seed); the generator materialises the list and
  /// posts the token back through the completion bus. Request metadata
  /// never crosses this queue — it waits in `generating` (IO thread only).
  struct GenQueue {
    struct Job {
      std::uint64_t token = 0;
      std::uint64_t n = 0;
      std::uint64_t seed = 0;
    };
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> todo;
    std::vector<std::pair<std::uint64_t,
                          std::shared_ptr<const list::LinkedList>>>
        done;
    bool stopping = false;
  };

  /// An admitted kGenerated request waiting for its list to be built.
  struct Generating {
    std::size_t slot = 0;
    std::uint64_t gen = 0;
    std::uint64_t request_id = 0;
    std::uint32_t tenant = 0;
    std::string algorithm;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    std::uint64_t memory_budget_bytes = 0;
    std::uint64_t n = 0;
    std::uint64_t seed = 0;
  };

  /// A submitted request the IO thread still owes a response frame (or a
  /// silent drop, when its connection died). Owns the list reference for
  /// exactly as long as the serve layer may touch it.
  struct Pending {
    std::size_t slot = 0;
    std::uint64_t gen = 0;
    std::uint64_t request_id = 0;
    std::uint32_t tenant = 0;
    std::shared_ptr<const list::LinkedList> list;
    std::future<Result<core::MatchResult>> fut;
  };

  Impl(serve::Service& s, ServerOptions o)
      : svc(s), opts(std::move(o)), admission(opts.admission) {}

  // ---- lifecycle ---------------------------------------------------------

  Status start() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
      return Status::unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1)
      return fail_start(Status::invalid_argument("bad listen host " +
                                                 opts.host));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return fail_start(Status::unavailable(
          "bind " + opts.host + ":" + std::to_string(opts.port) + ": " +
          std::strerror(errno)));
    if (::listen(listen_fd, 128) < 0)
      return fail_start(Status::unavailable(std::string("listen: ") +
                                            std::strerror(errno)));
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
        0)
      return fail_start(Status::unavailable(std::string("getsockname: ") +
                                            std::strerror(errno)));
    bound_port = ntohs(addr.sin_port);
    if (Status s = set_nonblocking(listen_fd); !s.ok())
      return fail_start(std::move(s));

    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0)
      return fail_start(Status::unavailable(std::string("pipe: ") +
                                            std::strerror(errno)));
    wake_rd = pipe_fds[0];
    {
      std::lock_guard<std::mutex> lock(bus->mu);
      bus->wake_fd = pipe_fds[1];
    }
    if (Status s = set_nonblocking(wake_rd); !s.ok())
      return fail_start(std::move(s));
    if (Status s = set_nonblocking(pipe_fds[1]); !s.ok())
      return fail_start(std::move(s));

    running.store(true);
    io = std::thread([this] { io_loop(); });
    gen_thread = std::thread([this] { gen_loop(); });
    return {};
  }

  Status fail_start(Status s) {
    close_fds();
    return s;
  }

  void stop() {
    if (io.joinable()) {
      running.store(false);
      bus->post(0);  // token 0 is never issued; this is just a wake-up
      io.join();
    }
    if (gen_thread.joinable()) {
      {
        std::lock_guard<std::mutex> lock(genq.mu);
        genq.stopping = true;
      }
      genq.cv.notify_all();
      gen_thread.join();
    }
    // The IO thread is gone, so generated-list requests still waiting for
    // their list will never be submitted; balance their admissions.
    for (auto& [token, g] : generating) admission.complete(g.tenant);
    generating.clear();
    gen_waiters.clear();
    // Drain every outstanding request so the lists pending entries own
    // stay alive until the serve layer is done with them, and the
    // admission ledger balances.
    for (auto& [token, p] : pending) {
      if (p.fut.valid()) p.fut.wait();
      admission.complete(p.tenant);
    }
    pending.clear();
    bus->close();  // late on_ready posts become harmless no-ops
    close_fds();
  }

  void close_fds() {
    for (Conn& c : conns)
      if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
      }
    int wake_wr = -1;
    {
      std::lock_guard<std::mutex> lock(bus->mu);
      wake_wr = std::exchange(bus->wake_fd, -1);
    }
    for (int* fd : {&listen_fd, &wake_rd, &wake_wr})
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
  }

  // ---- IO loop -----------------------------------------------------------

  void io_loop() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> slot_of;  // fds index → conns slot
    while (running.load()) {
      fds.clear();
      slot_of.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      fds.push_back({wake_rd, POLLIN, 0});
      for (std::size_t i = 0; i < conns.size(); ++i) {
        if (conns[i].fd < 0) continue;
        // Flow control: a connection sitting on a full response backlog
        // is not read from (its kernel receive buffer, and eventually the
        // peer's send path, absorb the pushback). POLLERR/POLLHUP are
        // always reported, so a dead peer is still reaped.
        short events = 0;
        if (backlog(conns[i]) < opts.max_conn_backlog_bytes)
          events |= POLLIN;
        if (conns[i].out_at < conns[i].out.size()) events |= POLLOUT;
        fds.push_back({conns[i].fd, events, 0});
        slot_of.push_back(i);
      }
      // Finite timeout: progress even if a wake byte was lost to a full
      // pipe, and a timely running-flag check on shutdown.
      const int rc = ::poll(fds.data(), fds.size(), 50);
      if (rc < 0 && errno != EINTR) break;

      if (fds[1].revents & POLLIN) drain_wake_pipe();
      drain_completions();
      if (fds[0].revents & POLLIN) accept_connections();
      for (std::size_t k = 2; k < fds.size(); ++k) {
        const std::size_t slot = slot_of[k - 2];
        Conn& c = conns[slot];
        if (c.fd != fds[k].fd) continue;  // replaced mid-iteration
        if (fds[k].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          close_conn(slot);
          continue;
        }
        if (fds[k].revents & POLLIN) handle_readable(slot);
        if (c.fd >= 0 && (fds[k].revents & POLLOUT)) handle_writable(slot);
        // Parse after both: new bytes from the read, and input that was
        // stalled by the backlog window and is runnable again now that
        // the write drained it.
        if (c.fd >= 0 && !c.in.empty()) parse_frames(slot);
      }
    }
  }

  void drain_wake_pipe() {
    std::uint8_t buf[256];
    while (::read(wake_rd, buf, sizeof(buf)) > 0) {
    }
  }

  void accept_connections() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN / transient
      if (Status s = guarded_failpoint("net.conn.accept"); !s.ok()) {
        accept_faults.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      std::size_t live = 0;
      for (const Conn& c : conns) live += c.fd >= 0 ? 1 : 0;
      if (live >= opts.max_connections) {
        ::close(fd);
        disconnects.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (Status s = set_nonblocking(fd); !s.ok()) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (opts.sndbuf_bytes > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts.sndbuf_bytes,
                     sizeof(opts.sndbuf_bytes));
      std::size_t slot = conns.size();
      for (std::size_t i = 0; i < conns.size(); ++i)
        if (conns[i].fd < 0) {
          slot = i;
          break;
        }
      if (slot == conns.size()) conns.emplace_back();
      Conn& c = conns[slot];
      c.fd = fd;
      c.gen++;
      c.in.clear();
      c.out.clear();
      c.out_at = 0;
      c.close_after_flush = false;
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void close_conn(std::size_t slot) {
    Conn& c = conns[slot];
    if (c.fd < 0) return;
    ::close(c.fd);
    c.fd = -1;
    c.gen++;  // orphan any pending completions aimed at this slot
    c.in.clear();
    c.out.clear();
    c.out_at = 0;
    disconnects.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- reading + framing -------------------------------------------------

  void handle_readable(std::size_t slot) {
    Conn& c = conns[slot];
    if (Status s = guarded_failpoint("net.conn.read"); !s.ok()) {
      read_faults.fetch_add(1, std::memory_order_relaxed);
      close_conn(slot);
      return;
    }
    std::uint8_t buf[64 * 1024];
    while (true) {
      const ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.in.insert(c.in.end(), buf, buf + n);
        bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
        continue;
      }
      if (n == 0) {  // orderly EOF from the peer
        close_conn(slot);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(slot);
      return;
    }
    // Parsing happens back in io_loop, after writes have had their turn.
  }

  void parse_frames(std::size_t slot) {
    Conn& c = conns[slot];
    std::size_t at = 0;
    // The backlog check makes every frame kind — stats requests included,
    // which bypass admission — answerable only while the peer is keeping
    // up; a connection that never reads stalls here with its input
    // buffered, not answered.
    while (c.fd >= 0 && !c.close_after_flush &&
           backlog(c) < opts.max_conn_backlog_bytes &&
           c.in.size() - at >= kFrameHeaderBytes) {
      FrameHeader h;
      Status s = decode_header(c.in.data() + at, kFrameHeaderBytes, &h);
      if (s.ok() && h.payload_bytes > opts.max_frame_bytes)
        s = Status::invalid_argument(
            "payload length " + std::to_string(h.payload_bytes) +
            " exceeds this server's limit");
      if (!s.ok()) {
        // Header-level corruption: the stream cannot be resynchronised.
        // Mark close-after-flush BEFORE sending so the flush inside
        // send_error closes the socket once the error frame drains.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c.close_after_flush = true;
        send_error(slot, h.tenant, h.request_id,
                   {StatusCode::kInvalidArgument, s.message()});
        break;
      }
      if (c.in.size() - at < kFrameHeaderBytes + h.payload_bytes)
        break;  // frame not fully buffered yet
      handle_frame(slot, h, c.in.data() + at + kFrameHeaderBytes,
                   h.payload_bytes);
      at += kFrameHeaderBytes + h.payload_bytes;
    }
    if (at > 0 && c.fd >= 0)
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(at));
  }

  void handle_frame(std::size_t slot, const FrameHeader& h,
                    const std::uint8_t* payload, std::size_t size) {
    frames_in.fetch_add(1, std::memory_order_relaxed);
    switch (h.type) {
      case FrameType::kRequest:
        handle_request(slot, h, payload, size);
        return;
      case FrameType::kStatsRequest: {
        if (Status s = decode_stats_request(payload, size); !s.ok()) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          send_error(slot, h.tenant, h.request_id,
                     {StatusCode::kInvalidArgument, s.message()});
          return;
        }
        send_stats(slot, h);
        return;
      }
      default:
        // kResponse / kError / kStats are server→client only; a client
        // sending one is out of protocol — answer and hang up. (Set the
        // flag before sending: the flush inside send_error is what closes
        // the connection once the error frame drains.)
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conns[slot].close_after_flush = true;
        send_error(slot, h.tenant, h.request_id,
                   {StatusCode::kInvalidArgument,
                    "frame type not valid from a client"});
        return;
    }
  }

  void handle_request(std::size_t slot, const FrameHeader& h,
                      const std::uint8_t* payload, std::size_t size) {
    RequestFrame f;
    if (Status s = decode_request(payload, size, &f); !s.ok()) {
      // Payload-level: the stream is still framed; cost one error frame.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(slot, h.tenant, h.request_id,
                 {StatusCode::kInvalidArgument, s.message()});
      return;
    }
    if (f.n > opts.max_list_nodes || f.n >= knil) {
      send_error(slot, h.tenant, h.request_id,
                 {StatusCode::kInvalidArgument,
                  "list size " + std::to_string(f.n) +
                      " exceeds the server limit"});
      return;
    }
    if (Status s = admission.admit(h.tenant); !s.ok()) {
      send_error(slot, h.tenant, h.request_id, {s.code(), s.message()});
      return;
    }
    // Admitted from here on: every exit must reach complete(), either via
    // the pending entry's completion or explicitly on early rejection.
    const auto deadline =
        f.deadline_ms != 0
            ? std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(f.deadline_ms)
            : std::chrono::steady_clock::time_point::max();
    std::shared_ptr<const list::LinkedList> list;
    if (f.list_spec == ListSpec::kGenerated) {
      list = cached_list(f.n, f.seed);
      if (!list) {
        // Cold generated list: materialise it on the generator thread so
        // one large random_list() never stalls the IO loop for every
        // other connection. The request stays admitted (it is real
        // in-flight work) and resumes in drain_completions.
        const std::uint64_t token = next_token++;
        Generating g;
        g.slot = slot;
        g.gen = conns[slot].gen;
        g.request_id = h.request_id;
        g.tenant = h.tenant;
        g.algorithm = std::move(f.algorithm);
        g.deadline = deadline;
        g.memory_budget_bytes = f.memory_budget_bytes;
        g.n = f.n;
        g.seed = f.seed;
        auto [it, inserted] = generating.emplace(token, std::move(g));
        LLMP_CHECK(inserted);
        // Coalesce: a pipelined burst naming the same (n, seed) rides the
        // one generation already in flight instead of re-materialising.
        auto& waiters = gen_waiters[std::make_pair(f.n, f.seed)];
        waiters.push_back(token);
        if (waiters.size() == 1) {
          {
            std::lock_guard<std::mutex> lock(genq.mu);
            genq.todo.push_back({token, f.n, f.seed});
          }
          genq.cv.notify_one();
        }
        return;
      }
    } else {
      Result<list::LinkedList> made = list::LinkedList::make(
          std::move(f.links));
      if (!made.ok()) {
        admission.complete(h.tenant);
        send_error(slot, h.tenant, h.request_id,
                   {made.status().code(), made.status().message()});
        return;
      }
      list = std::make_shared<const list::LinkedList>(
          std::move(made.value()));
    }
    submit_admitted(slot, h.tenant, h.request_id, f.algorithm, deadline,
                    f.memory_budget_bytes, std::move(list));
  }

  /// Hand one admitted request (its list in hand) to the serve layer,
  /// parking a pending entry that owes the connection a response frame.
  void submit_admitted(std::size_t slot, std::uint32_t tenant,
                       std::uint64_t request_id, const std::string& algorithm,
                       std::chrono::steady_clock::time_point deadline,
                       std::uint64_t memory_budget_bytes,
                       std::shared_ptr<const list::LinkedList> list) {
    const std::uint64_t token = next_token++;
    Pending p;
    p.slot = slot;
    p.gen = conns[slot].gen;
    p.request_id = request_id;
    p.tenant = tenant;
    p.list = list;
    auto [it, inserted] = pending.emplace(token, std::move(p));
    LLMP_CHECK(inserted);

    serve::Request req;
    req.list = list.get();
    req.algorithm = algorithm;
    req.deadline = deadline;
    req.memory_budget_bytes = memory_budget_bytes;
    req.tenant = tenant;
    req.on_ready = [bus = bus, token] { bus->post(token); };
    // A submit-time reject runs on_ready synchronously on this thread;
    // the token just waits in the bus until drain_completions().
    it->second.fut = svc.submit(std::move(req));
  }

  // ---- the generated-list cache + generator thread ------------------------

  std::shared_ptr<const list::LinkedList> cached_list(std::uint64_t n,
                                                      std::uint64_t seed) {
    auto it = list_cache.find(std::make_pair(n, seed));
    return it != list_cache.end() ? it->second : nullptr;
  }

  void cache_insert(std::uint64_t n, std::uint64_t seed,
                    const std::shared_ptr<const list::LinkedList>& list) {
    const auto key = std::make_pair(n, seed);
    if (list_cache.find(key) != list_cache.end()) return;
    const std::size_t bytes = list->size() * sizeof(index_t);
    if (bytes > opts.list_cache_bytes) return;  // never worth pinning
    while (cache_bytes + bytes > opts.list_cache_bytes &&
           !cache_order.empty()) {
      auto evict = list_cache.find(cache_order.front());
      if (evict != list_cache.end()) {
        cache_bytes -= evict->second->size() * sizeof(index_t);
        list_cache.erase(evict);
      }
      cache_order.pop_front();
    }
    list_cache.emplace(key, list);
    cache_order.push_back(key);
    cache_bytes += bytes;
  }

  void gen_loop() {
    while (true) {
      GenQueue::Job job;
      {
        std::unique_lock<std::mutex> lock(genq.mu);
        genq.cv.wait(lock,
                     [&] { return genq.stopping || !genq.todo.empty(); });
        if (genq.stopping) return;
        job = genq.todo.front();
        genq.todo.pop_front();
      }
      auto list = std::make_shared<const list::LinkedList>(
          list::generators::random_list(static_cast<std::size_t>(job.n),
                                        job.seed));
      {
        std::lock_guard<std::mutex> lock(genq.mu);
        genq.done.emplace_back(job.token, std::move(list));
      }
      bus->post(job.token);
    }
  }

  // ---- completions → responses -------------------------------------------

  void drain_generated() {
    std::vector<std::pair<std::uint64_t,
                          std::shared_ptr<const list::LinkedList>>>
        done;
    {
      std::lock_guard<std::mutex> lock(genq.mu);
      done.swap(genq.done);
    }
    for (auto& [job_token, list] : done) {
      auto key_it = generating.find(job_token);
      if (key_it == generating.end()) continue;
      const auto key =
          std::make_pair(key_it->second.n, key_it->second.seed);
      cache_insert(key.first, key.second, list);
      // Every request that coalesced onto this generation resumes now.
      std::vector<std::uint64_t> waiters;
      if (auto w = gen_waiters.find(key); w != gen_waiters.end()) {
        waiters = std::move(w->second);
        gen_waiters.erase(w);
      }
      for (const std::uint64_t token : waiters) {
        auto it = generating.find(token);
        if (it == generating.end()) continue;
        Generating g = std::move(it->second);
        generating.erase(it);
        Conn& c = conns.size() > g.slot ? conns[g.slot] : dead_conn;
        if (&c == &dead_conn || c.fd < 0 || c.gen != g.gen) {
          // The connection died while the list was being built; the work
          // is cached, but the admission slot must be returned.
          admission.complete(g.tenant);
          continue;
        }
        submit_admitted(g.slot, g.tenant, g.request_id, g.algorithm,
                        g.deadline, g.memory_budget_bytes, list);
      }
    }
  }

  void drain_completions() {
    // Generated lists first: each one immediately becomes a serve-layer
    // submission, whose own completion arrives through the same bus.
    drain_generated();
    for (const std::uint64_t token : bus->drain()) {
      auto it = pending.find(token);
      if (it == pending.end()) continue;  // token 0 wake-ups land here
      Pending p = std::move(it->second);
      pending.erase(it);
      admission.complete(p.tenant);
      // on_ready fires strictly after the future becomes ready, so this
      // get() never blocks the IO thread.
      Result<core::MatchResult> r = p.fut.get();
      Conn& c = conns.size() > p.slot ? conns[p.slot] : dead_conn;
      if (&c == &dead_conn || c.fd < 0 || c.gen != p.gen)
        continue;  // the connection died while the request ran
      if (r.ok()) {
        const core::MatchResult& m = r.value();
        ResponseFrame resp;
        resp.edges = m.edges;
        resp.relabel_rounds = static_cast<std::uint32_t>(m.relabel_rounds);
        resp.gather_rounds = static_cast<std::uint32_t>(m.gather_rounds);
        resp.partition_sets = m.partition_sets;
        resp.cost_depth = m.cost.depth;
        resp.cost_time_p = m.cost.time_p;
        resp.cost_work = m.cost.work;
        encode_response(resp, p.tenant, p.request_id, c.out);
        frames_out.fetch_add(1, std::memory_order_relaxed);
        flush(p.slot);
      } else {
        send_error(p.slot, p.tenant, p.request_id,
                   {r.status().code(), r.status().message()});
      }
    }
  }

  // ---- writing -----------------------------------------------------------

  void send_error(std::size_t slot, std::uint32_t tenant,
                  std::uint64_t request_id, ErrorFrame f) {
    Conn& c = conns[slot];
    if (c.fd < 0) return;
    encode_error(f, tenant, request_id, c.out);
    frames_out.fetch_add(1, std::memory_order_relaxed);
    flush(slot);
  }

  void send_stats(std::size_t slot, const FrameHeader& h) {
    const serve::ServiceStats ss = svc.stats();
    StatsFrame f;
    f.submitted = ss.submitted;
    f.completed = ss.completed;
    f.ok = ss.ok;
    f.rejected = ss.rejected;
    f.expired = ss.expired;
    f.failed = ss.failed;
    f.retries = ss.retries;
    f.restarts = ss.restarts;
    f.audits_failed = ss.audits_failed;
    f.repairs = ss.repairs;
    f.p50_latency_us = ss.p50_latency_us;
    f.p99_latency_us = ss.p99_latency_us;
    for (const TenantStats& t : admission.stats()) {
      StatsFrame::Tenant out;
      out.tenant = t.tenant;
      out.admitted = t.admitted;
      out.rejected_quota = t.rejected_quota;
      out.rejected_in_flight = t.rejected_in_flight;
      out.completed = t.completed;
      out.in_flight = t.in_flight;
      f.tenants.push_back(out);
    }
    Conn& c = conns[slot];
    encode_stats(f, h.tenant, h.request_id, c.out);
    frames_out.fetch_add(1, std::memory_order_relaxed);
    flush(slot);
  }

  /// Write as much of the connection's out buffer as the socket accepts;
  /// the poll loop finishes the rest via POLLOUT.
  void flush(std::size_t slot) { handle_writable(slot); }

  void handle_writable(std::size_t slot) {
    Conn& c = conns[slot];
    if (c.fd < 0) return;
    if (c.out_at < c.out.size()) {
      if (Status s = guarded_failpoint("net.conn.write"); !s.ok()) {
        write_faults.fetch_add(1, std::memory_order_relaxed);
        close_conn(slot);
        return;
      }
    }
    while (c.out_at < c.out.size()) {
      // MSG_NOSIGNAL: a peer that closed or reset while we flush must
      // surface as EPIPE (→ close_conn below), not as a process-killing
      // SIGPIPE — any remote client could crash the server otherwise.
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_at,
                               c.out.size() - c.out_at, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_at += static_cast<std::size_t>(n);
        bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_conn(slot);
      return;
    }
    c.out.clear();
    c.out_at = 0;
    if (c.close_after_flush) close_conn(slot);
  }

  // ---- state -------------------------------------------------------------

  serve::Service& svc;
  ServerOptions opts;
  AdmissionController admission;

  int listen_fd = -1;
  int wake_rd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> running{false};
  std::thread io;
  std::shared_ptr<CompletionBus> bus = std::make_shared<CompletionBus>();

  std::vector<Conn> conns;
  Conn dead_conn;  ///< sentinel for out-of-range pending slots
  std::map<std::uint64_t, Pending> pending;  ///< IO thread + post-join stop()
  std::uint64_t next_token = 1;  ///< 0 is the reserved wake-only token

  std::thread gen_thread;
  GenQueue genq;
  /// Admitted requests awaiting their generated list; IO thread (and
  /// post-join stop()) only.
  std::map<std::uint64_t, Generating> generating;
  /// (n, seed) → tokens riding one in-flight generation; the first token
  /// in each vector is the one the generator will post back.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::uint64_t>>
      gen_waiters;

  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::shared_ptr<const list::LinkedList>>
      list_cache;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> cache_order;
  std::size_t cache_bytes = 0;  ///< successor-array bytes the cache pins

  // Counters: relaxed atomics — independent monotonic tallies read by
  // stats() from other threads, same discipline as ServiceStats.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> accept_faults{0};
  std::atomic<std::uint64_t> read_faults{0};
  std::atomic<std::uint64_t> write_faults{0};
};

Server::Server(serve::Service& service, ServerOptions options)
    : impl_(std::make_unique<Impl>(service, std::move(options))) {}

Server::~Server() { stop(); }

Status Server::start() { return impl_->start(); }

void Server::stop() { impl_->stop(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.disconnects = impl_->disconnects.load(std::memory_order_relaxed);
  out.protocol_errors =
      impl_->protocol_errors.load(std::memory_order_relaxed);
  out.frames_in = impl_->frames_in.load(std::memory_order_relaxed);
  out.frames_out = impl_->frames_out.load(std::memory_order_relaxed);
  out.bytes_in = impl_->bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = impl_->bytes_out.load(std::memory_order_relaxed);
  out.accept_faults = impl_->accept_faults.load(std::memory_order_relaxed);
  out.read_faults = impl_->read_faults.load(std::memory_order_relaxed);
  out.write_faults = impl_->write_faults.load(std::memory_order_relaxed);
  out.tenants = impl_->admission.stats();
  return out;
}

}  // namespace llmp::net
