// llmp::net::Server — the TCP front door of the serve layer.
//
// One IO thread owns every socket: it accepts connections, reassembles
// wire-protocol frames from per-connection read buffers (net/wire.h),
// passes each request through multi-tenant admission control
// (net/admission.h), and submits admitted work to an existing
// serve::Service. Workers never touch a socket — when a request's future
// becomes ready, the serve layer's on_ready hook posts a completion token
// to the IO thread (through a wake pipe), which encodes the response or
// error frame and writes it back on the owning connection. Responses to
// one connection can therefore interleave out of submission order; clients
// reconcile by request_id (net/client.h does).
//
// Error containment mirrors the wire spec: payload-level decode errors
// and admission rejections cost one error frame and keep the connection;
// header-level corruption (bad magic/version, oversized length) gets a
// final error frame and a disconnect, because the byte stream cannot be
// resynchronised. A connection that dies with requests in flight leaks
// nothing: the pending entries drain when their futures complete and the
// responses are simply dropped.
//
// Fault injection: the failpoints `net.conn.accept`, `net.conn.read` and
// `net.conn.write` gate the three socket operations; an injected fault
// closes the affected connection and increments the matching fault
// counter, which the chaos suite reconciles against failpoint::counts().
//
//   serve::Service svc({.workers = 2});
//   net::Server server(svc, {.port = 0});          // 0 = ephemeral
//   if (Status s = server.start(); !s.ok()) die(s);
//   connect_clients_to(server.port());
//   server.stop();                                  // drains in-flight work
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/admission.h"
#include "net/wire.h"
#include "serve/service.h"
#include "support/status.h"

namespace llmp::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() after start()).
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  /// Per-frame payload bound for THIS server (≤ the protocol's hard
  /// kMaxPayloadBytes); a header advertising more is a protocol error.
  std::uint32_t max_frame_bytes = kMaxPayloadBytes;
  /// Largest list a request may name, generated or inline.
  std::uint64_t max_list_nodes = 1ull << 26;
  /// Generated lists are cached by (n, seed) so a load of identical
  /// requests materialises each list once; FIFO-evicted beyond this.
  std::size_t list_cache_entries = 16;
  AdmissionOptions admission;
};

/// Monotonic front-door counters (tenant admission ledger included).
struct ServerStats {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t disconnects = 0;      ///< connections closed, any cause
  std::uint64_t protocol_errors = 0;  ///< malformed headers or payloads
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accept_faults = 0;  ///< net.conn.accept injections
  std::uint64_t read_faults = 0;    ///< net.conn.read injections
  std::uint64_t write_faults = 0;   ///< net.conn.write injections
  std::vector<TenantStats> tenants;
};

class Server {
 public:
  /// The Service is borrowed and must outlive the Server; admission and
  /// framing wrap it without changing its in-process behaviour.
  explicit Server(serve::Service& service, ServerOptions options = {});
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the IO thread. kUnavailable with the errno
  /// diagnostic when the address cannot be bound.
  Status start();

  /// Stop accepting, close every connection, and block until all requests
  /// this server submitted have completed (their lists stay alive until
  /// then). Idempotent; the destructor calls it.
  void stop();

  /// The bound port (resolves 0 → the kernel-assigned ephemeral port).
  /// Valid after a successful start().
  std::uint16_t port() const;

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llmp::net
