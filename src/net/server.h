// llmp::net::Server — the TCP front door of the serve layer.
//
// One IO thread owns every socket: it accepts connections, reassembles
// wire-protocol frames from per-connection read buffers (net/wire.h),
// passes each request through multi-tenant admission control
// (net/admission.h), and submits admitted work to an existing
// serve::Service. Workers never touch a socket — when a request's future
// becomes ready, the serve layer's on_ready hook posts a completion token
// to the IO thread (through a wake pipe), which encodes the response or
// error frame and writes it back on the owning connection. Responses to
// one connection can therefore interleave out of submission order; clients
// reconcile by request_id (net/client.h does). Cold kGenerated lists are
// materialised on a dedicated generator thread (the request stays
// admitted meanwhile), so one large random_list() never stalls the IO
// loop for every other connection.
//
// Per-connection memory is bounded by a flow-control window
// (max_conn_backlog_bytes): once a connection's unflushed response bytes
// exceed it, the server stops reading — and therefore stops parsing and
// answering — on that connection until the peer drains its responses.
// Writes use send(MSG_NOSIGNAL), so a peer that resets mid-response
// costs a disconnect, never a process-killing SIGPIPE.
//
// Error containment mirrors the wire spec: payload-level decode errors
// and admission rejections cost one error frame and keep the connection;
// header-level corruption (bad magic/version, oversized length) gets a
// final error frame and a disconnect, because the byte stream cannot be
// resynchronised. A connection that dies with requests in flight leaks
// nothing: the pending entries drain when their futures complete and the
// responses are simply dropped.
//
// Fault injection: the failpoints `net.conn.accept`, `net.conn.read` and
// `net.conn.write` gate the three socket operations; an injected fault
// closes the affected connection and increments the matching fault
// counter, which the chaos suite reconciles against failpoint::counts().
//
//   serve::Service svc({.workers = 2});
//   net::Server server(svc, {.port = 0});          // 0 = ephemeral
//   if (Status s = server.start(); !s.ok()) die(s);
//   connect_clients_to(server.port());
//   server.stop();                                  // drains in-flight work
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/admission.h"
#include "net/wire.h"
#include "serve/service.h"
#include "support/status.h"

namespace llmp::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() after start()).
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  /// Per-frame payload bound for THIS server (≤ the protocol's hard
  /// kMaxPayloadBytes); a header advertising more is a protocol error.
  std::uint32_t max_frame_bytes = kMaxPayloadBytes;
  /// Largest list a request may name, generated or inline.
  std::uint64_t max_list_nodes = 1ull << 26;
  /// Per-connection flow-control window: once a connection holds this
  /// many encoded-but-unflushed response bytes, the server stops reading
  /// (and so stops parsing) from it until the backlog drains. A client
  /// that pipelines requests but never reads responses therefore stalls
  /// itself instead of growing server memory without bound.
  std::size_t max_conn_backlog_bytes = 4u << 20;
  /// Generated lists are cached by (n, seed) so a load of identical
  /// requests materialises each list once; FIFO-evicted once the cached
  /// successor arrays together exceed this many bytes.
  std::size_t list_cache_bytes = 256u << 20;
  /// When nonzero, shrink each accepted socket's kernel send buffer
  /// (SO_SNDBUF) to this. Tests use it to exercise the backlog window
  /// deterministically; production leaves the kernel default.
  int sndbuf_bytes = 0;
  AdmissionOptions admission;
};

/// Monotonic front-door counters (tenant admission ledger included).
struct ServerStats {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t disconnects = 0;      ///< connections closed, any cause
  std::uint64_t protocol_errors = 0;  ///< malformed headers or payloads
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t accept_faults = 0;  ///< net.conn.accept injections
  std::uint64_t read_faults = 0;    ///< net.conn.read injections
  std::uint64_t write_faults = 0;   ///< net.conn.write injections
  std::vector<TenantStats> tenants;
};

class Server {
 public:
  /// The Service is borrowed and must outlive the Server; admission and
  /// framing wrap it without changing its in-process behaviour.
  explicit Server(serve::Service& service, ServerOptions options = {});
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the IO thread. kUnavailable with the errno
  /// diagnostic when the address cannot be bound.
  Status start();

  /// Stop accepting, close every connection, and block until all requests
  /// this server submitted have completed (their lists stay alive until
  /// then). Idempotent; the destructor calls it.
  void stop();

  /// The bound port (resolves 0 → the kernel-assigned ephemeral port).
  /// Valid after a successful start().
  std::uint16_t port() const;

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llmp::net
