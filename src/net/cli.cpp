#include "net/cli.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

namespace llmp::net {

namespace {

/// Legacy spelling → namespaced spelling. The pre-namespace flags stay
/// valid forever; new flags get only the namespaced form.
const std::map<std::string, std::string>& alias_map() {
  static const std::map<std::string, std::string> kAliases = {
      {"--requests", "--serve.requests"},
      {"--n", "--serve.n"},
      {"--lists", "--serve.lists"},
      {"--workers", "--serve.workers"},
      {"--queue", "--serve.queue"},
      {"--policy", "--serve.policy"},
      {"--alg", "--serve.alg"},
      {"--deadline-ms", "--serve.deadline-ms"},
      {"--verify", "--serve.verify"},
      {"--warmup", "--serve.warmup"},
      {"--failpoints", "--fault.failpoints"},
      {"--retries", "--fault.retries"},
      {"--wedge-ms", "--fault.wedge-ms"},
      {"--degrade", "--fault.degrade"},
      {"--listen", "--net.listen"},
  };
  return kAliases;
}

/// Flags that take no value.
bool is_boolean(const std::string& flag) {
  return flag == "--serve.verify" || flag == "--fault.degrade" ||
         flag == "--csv";
}

bool known(const std::string& flag) {
  static const std::vector<std::string> kFlags = {
      "--serve.requests",   "--serve.n",         "--serve.lists",
      "--serve.workers",    "--serve.queue",     "--serve.policy",
      "--serve.alg",        "--serve.deadline-ms", "--serve.verify",
      "--serve.warmup",     "--serve.audit",     "--fault.failpoints",
      "--fault.retries",
      "--fault.wedge-ms",   "--fault.degrade",   "--net.listen",
      "--net.connect",      "--net.tenant",      "--net.quota-rps",
      "--net.quota-burst",  "--net.max-in-flight", "--net.conns",
      "--csv",
  };
  return std::find(kFlags.begin(), kFlags.end(), flag) != kFlags.end();
}

Status parse_u64(const std::string& flag, const std::string& value,
                 std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    return Status::invalid_argument(flag + ": expected a number, got '" +
                                    value + "'");
  return {};
}

Status parse_f64(const std::string& flag, const std::string& value,
                 double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    return Status::invalid_argument(flag + ": expected a number, got '" +
                                    value + "'");
  return {};
}

Status parse_host_port(const std::string& flag, const std::string& value,
                       std::string* host, std::uint16_t* port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == value.size())
    return Status::invalid_argument(flag + ": expected HOST:PORT, got '" +
                                    value + "'");
  std::uint64_t p = 0;
  if (Status s = parse_u64(flag, value.substr(colon + 1), &p); !s.ok())
    return s;
  if (p == 0 || p > 0xFFFF)
    return Status::invalid_argument(flag + ": port out of range");
  *host = value.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return {};
}

}  // namespace

std::string serve_cli_usage() {
  return
      "usage: llmp_serve [options]\n"
      "\n"
      "Workload + service (--serve.*; the bare legacy spellings remain\n"
      "valid aliases):\n"
      "  --serve.requests R     total requests to submit (default 2000)\n"
      "                         [alias: --requests]\n"
      "  --serve.n N            nodes per list (default 10000) [alias: --n]\n"
      "  --serve.lists L        distinct lists cycled through (default 8)\n"
      "                         [alias: --lists]\n"
      "  --serve.workers W      service workers (default 4) [alias: --workers]\n"
      "  --serve.queue Q        queue capacity (default 256) [alias: --queue]\n"
      "  --serve.policy P       block|reject when the queue is full\n"
      "                         [alias: --policy]\n"
      "  --serve.alg A          registry algorithm name (default match4)\n"
      "                         [alias: --alg]\n"
      "  --serve.deadline-ms D  per-request deadline (default none)\n"
      "                         [alias: --deadline-ms]\n"
      "  --serve.verify         audit every result with core::verify\n"
      "                         [alias: --verify]\n"
      "  --serve.warmup K       warmup requests before stats reset\n"
      "                         (default 8 x workers + 8) [alias: --warmup]\n"
      "  --serve.audit M        integrity auditing: off|audit|repair\n"
      "                         (default off; audit fails corrupt results\n"
      "                         with DATA_LOSS, repair heals them in place)\n"
      "\n"
      "Fault injection / resilience (--fault.*):\n"
      "  --fault.failpoints S   arm failpoints from spec S after warmup\n"
      "                         [alias: --failpoints]\n"
      "  --fault.retries R      retry attempts per request (default 1 = none)\n"
      "                         [alias: --retries]\n"
      "  --fault.wedge-ms T     watchdog replaces workers busy longer than T\n"
      "                         [alias: --wedge-ms]\n"
      "  --fault.degrade        enable graceful degradation to sequential\n"
      "                         [alias: --degrade]\n"
      "\n"
      "Network front-end (--net.*; without these the tool runs the classic\n"
      "in-process loop):\n"
      "  --net.listen PORT      serve the wire protocol on PORT (0 =\n"
      "                         ephemeral, printed at startup) until\n"
      "                         SIGINT/SIGTERM [alias: --listen]\n"
      "  --net.connect H:P      send the request stream to a remote server\n"
      "                         instead of an in-process Service\n"
      "  --net.conns C          client connections in connect mode (default 1)\n"
      "  --net.tenant T         tenant id for generated requests (default 0)\n"
      "  --net.quota-rps R      default per-tenant token rate (listen mode;\n"
      "                         0 = unlimited)\n"
      "  --net.quota-burst B    token bucket depth (default = rate)\n"
      "  --net.max-in-flight M  per-tenant in-flight cap (0 = unlimited)\n"
      "\n"
      "Output:\n"
      "  --csv                  one machine-readable summary line\n";
}

Status parse_serve_cli(int argc, const char* const* argv,
                       ServeCliOptions* out, bool* help) {
  *help = false;
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      *help = true;
      return {};
    }
    if (token.rfind("--", 0) != 0)
      return Status::invalid_argument("unexpected argument '" + token + "'");
    if (auto it = alias_map().find(token); it != alias_map().end())
      token = it->second;
    if (!known(token))
      return Status::invalid_argument("unknown flag '" + std::string(argv[i]) +
                                      "'");
    if (is_boolean(token)) {
      kv.insert_or_assign(token, std::string("1"));
      continue;
    }
    if (i + 1 >= argc)
      return Status::invalid_argument(token + ": missing value");
    kv.insert_or_assign(token, std::string(argv[++i]));
  }

  std::uint64_t u = 0;
  double d = 0;
  auto get_u64 = [&](const char* flag, std::uint64_t* dst) -> Status {
    if (auto it = kv.find(flag); it != kv.end()) {
      if (Status s = parse_u64(flag, it->second, &u); !s.ok()) return s;
      *dst = u;
    }
    return {};
  };

  if (Status s = get_u64("--serve.requests", &out->requests); !s.ok())
    return s;
  std::uint64_t tmp = out->n;
  if (Status s = get_u64("--serve.n", &tmp); !s.ok()) return s;
  out->n = static_cast<std::size_t>(tmp);
  tmp = out->lists;
  if (Status s = get_u64("--serve.lists", &tmp); !s.ok()) return s;
  out->lists = std::max<std::size_t>(static_cast<std::size_t>(tmp), 1);
  if (auto it = kv.find("--serve.alg"); it != kv.end()) out->alg = it->second;
  if (Status s = get_u64("--serve.deadline-ms", &out->deadline_ms); !s.ok())
    return s;
  if (Status s = get_u64("--serve.warmup", &out->warmup); !s.ok()) return s;

  tmp = out->service.workers;
  if (Status s = get_u64("--serve.workers", &tmp); !s.ok()) return s;
  out->service.workers = std::max<std::size_t>(static_cast<std::size_t>(tmp),
                                               1);
  tmp = out->service.queue_capacity;
  if (Status s = get_u64("--serve.queue", &tmp); !s.ok()) return s;
  out->service.queue_capacity =
      std::max<std::size_t>(static_cast<std::size_t>(tmp), 1);
  if (auto it = kv.find("--serve.policy"); it != kv.end()) {
    if (it->second == "reject")
      out->service.overflow = serve::OverflowPolicy::kReject;
    else if (it->second == "block")
      out->service.overflow = serve::OverflowPolicy::kBlock;
    else
      return Status::invalid_argument(
          "--serve.policy: expected block|reject, got '" + it->second + "'");
  }
  out->service.verify = kv.count("--serve.verify") != 0;
  if (auto it = kv.find("--serve.audit"); it != kv.end()) {
    if (!serve::audit_policy_from_string(it->second, &out->service.audit))
      return Status::invalid_argument(
          "--serve.audit: expected off|audit|repair, got '" + it->second +
          "'");
  }

  if (auto it = kv.find("--fault.failpoints"); it != kv.end())
    out->failpoints = it->second;
  tmp = 1;
  if (Status s = get_u64("--fault.retries", &tmp); !s.ok()) return s;
  out->service.retry.max_attempts =
      static_cast<int>(std::max<std::uint64_t>(tmp, 1));
  tmp = 0;
  if (Status s = get_u64("--fault.wedge-ms", &tmp); !s.ok()) return s;
  out->service.wedge_threshold = std::chrono::milliseconds(tmp);
  if (out->service.wedge_threshold.count() > 0)
    out->service.supervisor_period = std::max(
        out->service.wedge_threshold / 4, std::chrono::milliseconds(1));
  out->service.degrade.enabled = kv.count("--fault.degrade") != 0;

  if (auto it = kv.find("--net.listen"); it != kv.end()) {
    if (Status s = parse_u64("--net.listen", it->second, &u); !s.ok())
      return s;
    if (u > 0xFFFF)
      return Status::invalid_argument("--net.listen: port out of range");
    out->listen = true;
    out->listen_port = static_cast<std::uint16_t>(u);
  }
  if (auto it = kv.find("--net.connect"); it != kv.end()) {
    if (Status s = parse_host_port("--net.connect", it->second,
                                   &out->connect_host, &out->connect_port);
        !s.ok())
      return s;
  }
  if (out->listen && !out->connect_host.empty())
    return Status::invalid_argument(
        "--net.listen and --net.connect are mutually exclusive");
  tmp = 0;
  if (Status s = get_u64("--net.tenant", &tmp); !s.ok()) return s;
  out->tenant = static_cast<std::uint32_t>(tmp);
  if (auto it = kv.find("--net.quota-rps"); it != kv.end()) {
    if (Status s = parse_f64("--net.quota-rps", it->second, &d); !s.ok())
      return s;
    out->quota_rps = d;
  }
  if (auto it = kv.find("--net.quota-burst"); it != kv.end()) {
    if (Status s = parse_f64("--net.quota-burst", it->second, &d); !s.ok())
      return s;
    out->quota_burst = d;
  }
  tmp = 0;
  if (Status s = get_u64("--net.max-in-flight", &tmp); !s.ok()) return s;
  out->max_in_flight = static_cast<std::uint32_t>(tmp);
  tmp = 1;
  if (Status s = get_u64("--net.conns", &tmp); !s.ok()) return s;
  out->conns = std::max<std::size_t>(static_cast<std::size_t>(tmp), 1);

  out->csv = kv.count("--csv") != 0;
  return {};
}

}  // namespace llmp::net
