// llmp::net::Client — the client side of the wire protocol.
//
// A thin blocking library over one TCP connection: requests are described
// with the same llmp::RequestBuilder the in-process API uses, encoded as
// wire frames (net/wire.h), and answered as Result<core::MatchResult> —
// the identical success/error vocabulary of llmp::run and
// serve::Service::submit, so calling code cannot tell the transports
// apart. One caveat the wire imposes: responses carry the result
// *summary* (edges, rounds, model cost), never the per-node in_matching
// vector, which comes back empty (docs/NET.md explains the trade).
//
//   net::Client client({.port = server_port});
//   if (Status s = client.connect(); !s.ok()) die(s);
//   auto r = client.submit(llmp::RequestBuilder()
//                              .algorithm("match4")
//                              .generated(1 << 16, 42));
//   if (r.ok()) use(r->edges);
//
// submit() is one request, one response. submit_batch() pipelines: every
// frame is written before any response is read, and responses — which the
// server may deliver in ANY order — are reconciled positionally by
// request id. Duplicate and unknown ids are counted (stats()), never
// trusted. A connection that dies mid-batch fails the still-unanswered
// requests with kUnavailable and leaves the answered ones intact.
//
// Not thread-safe: one Client per thread (the load generator in
// bench/bench_serve_net.cpp runs one per connection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/match_result.h"
#include "llmp.h"
#include "net/wire.h"
#include "support/status.h"

namespace llmp::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Default tenant for requests whose builder leaves tenant() at 0.
  std::uint32_t tenant = 0;
  /// Blocking-read timeout; an idle wait past this fails kUnavailable.
  std::uint32_t recv_timeout_ms = 30'000;
};

/// Client-side counters; latencies are response arrival minus the batch's
/// first write, from a log2 histogram (upper-bound exact to within 2×).
struct ClientStats {
  std::uint64_t requests = 0;   ///< request frames written
  std::uint64_t responses = 0;  ///< response/error frames consumed
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;      ///< error frames (admission, decode, …)
  std::uint64_t duplicates = 0;  ///< second answer for a reconciled id
  std::uint64_t unknown_ids = 0; ///< answers for ids this client never sent
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t p50_latency_us = 0;
  std::uint64_t p99_latency_us = 0;
};

class Client {
 public:
  explicit Client(ClientOptions options = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dial the server. kUnavailable with the errno diagnostic on failure.
  Status connect();
  void close();
  bool connected() const { return fd_ >= 0; }

  /// One request, blocking until its answer arrives.
  Result<core::MatchResult> submit(const RequestBuilder& req);

  /// Pipelined: write every request frame, then read until each has its
  /// answer. Results are positional. Out-of-order, duplicate and unknown
  /// responses are handled per the header comment.
  std::vector<Result<core::MatchResult>> submit_batch(
      const std::vector<RequestBuilder>& reqs);

  /// Fetch the server's stats frame (service counters + tenant ledger).
  Result<StatsFrame> server_stats();

  ClientStats stats() const;

 private:
  Status write_all(const std::vector<std::uint8_t>& bytes);
  /// Read exactly one frame; header is validated, payload sized by it.
  Status read_frame(FrameHeader* header, std::vector<std::uint8_t>* payload);
  Status encode_builder(const RequestBuilder& req, std::uint64_t request_id,
                        std::vector<std::uint8_t>& out);
  void record_latency(std::uint64_t us);

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  ClientStats stats_;
  static constexpr std::size_t kLatencyBuckets = 48;
  std::uint64_t latency_[kLatencyBuckets] = {};
  std::uint64_t latency_count_ = 0;
};

}  // namespace llmp::net
