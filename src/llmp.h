// llmp.h — the umbrella header and the library's stable public surface.
//
// Everything an application needs lives behind three names:
//
//   llmp::Context             one execution context: backend + pooled arena
//                             + the algorithm registry, ready to run
//   llmp::run(ctx, name, l)   run a registry algorithm on a list, get a
//                             Result<core::MatchResult> (never aborts on
//                             user input — see support/status.h)
//   llmp::serve::Service      the multi-request batch/serve layer
//                             (serve/service.h)
//
//   #include "llmp.h"
//   llmp::Context ctx;
//   auto list = llmp::list::generators::random_list(1 << 16, 42);
//   auto r = llmp::run(ctx, "match4", list);
//   if (r.ok()) std::cout << r->edges << "\n";
//
// Deep internal headers (core/match4.h, pram/arena.h, …) remain available
// and stable *within* the repo, but out-of-tree code should include only
// this header: the names re-exported here are the compatibility surface
// the serve layer, the CLI and the examples are written against.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "apps/register.h"
#include "core/maximal_matching.h"
#include "core/run.h"
#include "core/verify.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "serve/service.h"
#include "support/status.h"

namespace llmp {

/// Per-run overrides applied on top of the algorithm's canonical options.
/// Zero-initialised fields mean "keep the registry's canonical value".
struct Options {
  int i_parameter = 0;     ///< Match4's i / Match2 rounds / Match3 crunch
  bool table = false;      ///< Match4: Lemma 5 table-accelerated partition
  bool erew = false;       ///< run the EREW variant where one exists
  std::uint64_t seed = 0;  ///< randomized baseline only
  bool verify = true;      ///< audit the result with core::verify
};

/// The one-object setup for sequential use: owns a SeqExec backend and a
/// pram::Context with a pooled ScratchArena, and registers the application
/// algorithms so llmp::run() resolves every public name. Warm runs through
/// one Context allocate nothing. Not thread-safe — use one Context per
/// thread, or serve::Service which does exactly that.
class Context {
 public:
  explicit Context(std::size_t processors = 1024)
      : exec_(processors == 0 ? 1 : processors), ctx_(exec_) {
    apps::register_algorithms();
  }

  /// The underlying pram::Context, for calling algorithm templates or
  /// core entry points directly.
  pram::Context<pram::SeqExec>& pram_context() { return ctx_; }
  std::size_t processors() const { return ctx_.processors(); }
  pram::ScratchArena& arena() { return ctx_.arena(); }
  const pram::PhaseBreakdown& phases() const { return ctx_.phases(); }

 private:
  pram::SeqExec exec_;
  pram::Context<pram::SeqExec> ctx_;
};

/// Fluent, transport-neutral construction of serve requests — the one
/// spelling of "what a request is" shared by in-process callers
/// (serve::Service::submit), the llmp_serve CLI, and the network client
/// (net/client.h), so the wire schema and the public API cannot drift.
///
///   auto req = llmp::RequestBuilder()
///                  .algorithm("match4")
///                  .list(my_list)                    // in-process / inline
///                  .deadline_after(std::chrono::milliseconds(50))
///                  .tenant(7)
///                  .build();
///   auto fut = svc.submit(std::move(req));
///
/// The list can be named two ways:
///   * list(l)          — a borrowed in-memory list. build() uses it
///                        directly; the net client ships its successor
///                        array inline in the request frame.
///   * generated(n, s)  — "the random list with these parameters". The
///                        net client sends just (n, seed) and the server
///                        materialises (and caches) the list; build() has
///                        no storage to point at, so the in-process
///                        Request comes back listless and Service::submit
///                        rejects it kInvalidArgument — generated specs
///                        are a wire-only affordance.
class RequestBuilder {
 public:
  RequestBuilder& algorithm(std::string name) {
    algorithm_ = std::move(name);
    return *this;
  }
  RequestBuilder& list(const list::LinkedList& l) {
    list_ = &l;
    generated_ = false;
    return *this;
  }
  /// Server-side generated list::generators::random_list(n, seed).
  RequestBuilder& generated(std::size_t n, std::uint64_t seed) {
    list_ = nullptr;
    generated_ = true;
    generated_n_ = n;
    generated_seed_ = seed;
    return *this;
  }
  RequestBuilder& deadline(std::chrono::steady_clock::time_point t) {
    deadline_ = t;
    return *this;
  }
  /// Relative form; resolved against now() at build/encode time.
  RequestBuilder& deadline_after(std::chrono::milliseconds d) {
    deadline_ = d.count() > 0 ? std::chrono::steady_clock::now() + d
                              : std::chrono::steady_clock::time_point::max();
    return *this;
  }
  RequestBuilder& memory_budget_bytes(std::size_t bytes) {
    memory_budget_bytes_ = bytes;
    return *this;
  }
  RequestBuilder& tenant(std::uint32_t id) {
    tenant_ = id;
    return *this;
  }
  RequestBuilder& cancel(serve::CancelToken token) {
    cancel_ = std::move(token);
    return *this;
  }
  /// Per-request integrity auditing override (serve::AuditPolicy); unset
  /// means the Service's configured default applies.
  RequestBuilder& audit(serve::AuditPolicy policy) {
    audit_ = policy;
    return *this;
  }

  /// The in-process serve::Request. Requires list(); a generated() spec
  /// (or no list at all) builds a listless Request that Service::submit
  /// refuses kInvalidArgument — never aborts.
  serve::Request build() const {
    serve::Request req;
    req.list = list_;
    req.algorithm = algorithm_;
    req.deadline = deadline_;
    req.cancel = cancel_;
    req.memory_budget_bytes = memory_budget_bytes_;
    req.audit = audit_;
    req.tenant = tenant_;
    return req;
  }

  // Field access for transports (net/client.h encodes from these).
  const std::string& algorithm_name() const { return algorithm_; }
  const list::LinkedList* list_ptr() const { return list_; }
  bool is_generated() const { return generated_; }
  std::size_t generated_n() const { return generated_n_; }
  std::uint64_t generated_seed() const { return generated_seed_; }
  std::chrono::steady_clock::time_point deadline_point() const {
    return deadline_;
  }
  std::size_t budget_bytes() const { return memory_budget_bytes_; }
  std::optional<serve::AuditPolicy> audit_policy() const { return audit_; }
  std::uint32_t tenant_id() const { return tenant_; }

 private:
  std::string algorithm_ = "match4";
  const list::LinkedList* list_ = nullptr;
  bool generated_ = false;
  std::size_t generated_n_ = 0;
  std::uint64_t generated_seed_ = 0;
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  serve::CancelToken cancel_;
  std::size_t memory_budget_bytes_ = 0;
  std::optional<serve::AuditPolicy> audit_;
  std::uint32_t tenant_ = 0;
};

/// Run the registry algorithm `name` ("match4", "match2-erew",
/// "sequential", …) on `list`. User-input problems come back as a Status
/// (kNotFound, kInvalidArgument), verification failures as
/// kFailedVerification; this never aborts on bad input.
inline Result<core::MatchResult> run(Context& ctx, std::string_view name,
                                     const list::LinkedList& list,
                                     const Options& options = {}) {
  Result<core::MatchOptions> resolved = core::resolve_algorithm(name);
  if (!resolved.ok()) return resolved.status();
  core::MatchOptions opt = resolved.value();
  if (options.i_parameter != 0) opt.i_parameter = options.i_parameter;
  if (options.table) opt.partition_with_table = true;
  if (options.erew) opt.erew = true;
  if (options.seed != 0) opt.seed = options.seed;

  core::MatchResult out;
  if (Status s = core::run_matching_into(ctx.pram_context(), list, opt, out);
      !s.ok())
    return s;
  if (options.verify) {
    if (Status s = core::verify::matching_status(list, out.in_matching);
        !s.ok())
      return s;
    if (Status s = core::verify::maximal_status(list, out.in_matching);
        !s.ok())
      return s;
  }
  return out;
}

}  // namespace llmp
