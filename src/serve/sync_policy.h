// Sync policies — the one place in src/serve allowed to spell std::mutex.
//
// The serve primitives (BoundedQueue, RetryLedger, WorkerSlot, and the
// supervision slices of Service) are templates over a *sync policy*: a
// vocabulary type exporting `mutex`, `condition_variable`, `atomic<T>`,
// `shared<T>`, `thread` and `yield()`. Production code instantiates them
// with StdSyncPolicy (plain std:: primitives, zero overhead); the model
// checker instantiates the *identical source* with McSyncPolicy, whose
// primitives are the instrumented mc:: shims — so the code the checker
// explores is the code that ships, not a hand-maintained model of it.
//
// `shared<T>` is the policy-level face of mc::cell<T>: plain mutable state
// that the surrounding mutexes/atomics are supposed to order. Reads go
// through .r(), writes through .w(); under StdSyncPolicy both are free
// passthroughs, under McSyncPolicy each access is vector-clock
// race-checked, so a forgotten lock surfaces as a reported data race.
//
// Every constructor takes an optional name so mc traces read
// "mutex 'queue.mu'" instead of "mutex #3"; StdSyncPolicy ignores it.
//
// llmp_lint enforces the boundary: raw std:: synchronization tokens
// anywhere else under src/serve are a lint error (rule serve-raw-sync).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <utility>

#include "mc/sync.h"

namespace llmp::serve {

/// Production policy: thin name-swallowing wrappers over std::.
struct StdSyncPolicy {
  class mutex {
   public:
    mutex() = default;
    explicit mutex(const char* /*name*/) {}
    mutex(const mutex&) = delete;
    mutex& operator=(const mutex&) = delete;

    void lock() { m_.lock(); }
    void unlock() { m_.unlock(); }
    bool try_lock() { return m_.try_lock(); }
    std::mutex& native() { return m_; }

   private:
    std::mutex m_;
  };

  class condition_variable {
   public:
    condition_variable() = default;
    explicit condition_variable(const char* /*name*/) {}
    condition_variable(const condition_variable&) = delete;
    condition_variable& operator=(const condition_variable&) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    void wait(std::unique_lock<mutex>& lk) {
      // The wrapper mutex is not std::mutex, so bridge via adopt/release:
      // the caller's lock stays logically held across the wait.
      std::unique_lock<std::mutex> base(lk.mutex()->native(),
                                        std::adopt_lock);
      cv_.wait(base);
      base.release();
    }
    template <class Pred>
    void wait(std::unique_lock<mutex>& lk, Pred pred) {
      while (!pred()) wait(lk);
    }
    template <class Clock, class Duration>
    std::cv_status wait_until(
        std::unique_lock<mutex>& lk,
        const std::chrono::time_point<Clock, Duration>& tp) {
      std::unique_lock<std::mutex> base(lk.mutex()->native(),
                                        std::adopt_lock);
      const std::cv_status st = cv_.wait_until(base, tp);
      base.release();
      return st;
    }
    template <class Clock, class Duration, class Pred>
    bool wait_until(std::unique_lock<mutex>& lk,
                    const std::chrono::time_point<Clock, Duration>& tp,
                    Pred pred) {
      while (!pred())
        if (wait_until(lk, tp) == std::cv_status::timeout) return pred();
      return true;
    }
    template <class Rep, class Period>
    std::cv_status wait_for(std::unique_lock<mutex>& lk,
                            const std::chrono::duration<Rep, Period>& d) {
      std::unique_lock<std::mutex> base(lk.mutex()->native(),
                                        std::adopt_lock);
      const std::cv_status st = cv_.wait_for(base, d);
      base.release();
      return st;
    }
    template <class Rep, class Period, class Pred>
    bool wait_for(std::unique_lock<mutex>& lk,
                  const std::chrono::duration<Rep, Period>& d, Pred pred) {
      while (!pred())
        if (wait_for(lk, d) == std::cv_status::timeout) return pred();
      return true;
    }

   private:
    std::condition_variable cv_;
  };

  template <class T>
  class atomic : public std::atomic<T> {
   public:
    atomic() noexcept : std::atomic<T>(T{}) {}
    explicit atomic(T v, const char* /*name*/ = "") noexcept
        : std::atomic<T>(v) {}
  };

  /// Plain shared state: free passthrough here, race-checked under mc.
  template <class T>
  class shared {
   public:
    shared() = default;
    explicit shared(T v, const char* /*name*/ = "") : v_(std::move(v)) {}
    shared(const shared&) = delete;
    shared& operator=(const shared&) = delete;

    T& w() { return v_; }
    const T& r() const { return v_; }

   private:
    T v_;
  };

  class thread : public std::thread {
   public:
    thread() = default;
    template <class F>
    explicit thread(F f, const char* /*name*/ = "")
        : std::thread(std::move(f)) {}
    thread(thread&&) = default;
    thread& operator=(thread&&) = default;
  };

  static void yield() { std::this_thread::yield(); }

  static constexpr bool kModelChecked = false;
};

/// Model-checking policy: every primitive is an instrumented mc:: shim and
/// every access a scheduling point. Only usable inside mc::check/replay.
struct McSyncPolicy {
  using mutex = mc::mutex;
  using condition_variable = mc::condition_variable;
  template <class T>
  using atomic = mc::atomic<T>;
  template <class T>
  using shared = mc::cell<T>;
  using thread = mc::thread;

  static void yield() { mc::this_thread::yield(); }

  static constexpr bool kModelChecked = true;
};

}  // namespace llmp::serve
