#include "serve/service.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/verify.h"
#include "engine/blocked_match.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "stabilize/audit.h"
#include "stabilize/inject.h"
#include "stabilize/repair.h"
#include "support/alloc_counter.h"
#include "support/failpoint.h"

namespace llmp::serve {

namespace {

/// Ready future carrying an error — for requests refused at submit.
std::future<Result<core::MatchResult>> ready_error(Status s) {
  std::promise<Result<core::MatchResult>> p;
  std::future<Result<core::MatchResult>> f = p.get_future();
  p.set_value(Result<core::MatchResult>(std::move(s)));
  return f;
}

/// splitmix64 finalizer — the retry jitter hash. Deterministic in
/// (request id, attempt) so a replayed chaos run backs off identically.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status status_of(const support::failpoint::InjectedFault& f) {
  return Status(f.code(), std::string("injected fault: ") + f.what());
}

}  // namespace

/// Everything a worker rebuilds on a supervision restart. An exception
/// that escaped the algorithm may have left leases, pools or the result
/// scratch half-mutated, so recovery is wholesale: a fresh backend, a
/// fresh Context (empty arena — it re-warms), fresh result buffers.
struct Service::WorkerContext {
  pram::SeqExec exec;
  pram::Context<pram::SeqExec> ctx;
  core::MatchResult scratch;
  /// Arena counters already published to the Service atomics.
  std::uint64_t seen_takes = 0;
  std::uint64_t seen_hits = 0;

  explicit WorkerContext(std::size_t processors)
      : exec(processors), ctx(exec) {}
};

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity == 0 ? 1 : options_.queue_capacity) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.processors == 0) options_.processors = 1;
  if (options_.retry.max_attempts < 1) options_.retry.max_attempts = 1;
  if (options_.retry.backoff_base.count() < 1)
    options_.retry.backoff_base = std::chrono::milliseconds{1};
  if (options_.retry.backoff_max < options_.retry.backoff_base)
    options_.retry.backoff_max = options_.retry.backoff_base;
  if (options_.degrade.after_consecutive_failures < 1)
    options_.degrade.after_consecutive_failures = 1;
  if (options_.supervisor_period.count() < 1)
    options_.supervisor_period = std::chrono::milliseconds{1};
  fallback_options_.algorithm = core::Algorithm::kSequential;

  {
    std::lock_guard<Sync::mutex> lock(workers_mu_);
    active_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w)
      active_.push_back(spawn_worker_locked(w));
  }
  // The supervisor thread exists only when these options can need it; a
  // default-constructed Service spawns exactly its workers, as before.
  if (options_.retry.max_attempts > 1 || options_.wedge_threshold.count() > 0)
    supervisor_ = Sync::thread([this] { supervisor_loop(); }, "supervisor");
}

Service::~Service() { shutdown(); }

std::shared_ptr<Service::Worker> Service::spawn_worker_locked(
    std::size_t index) {
  auto w = std::make_shared<Worker>();
  w->thread =
      Sync::thread([this, w, index] { worker_main(w, index); }, "worker");
  return w;
}

std::future<Result<core::MatchResult>> Service::submit(Request req) {
  // Refusal at submit: the returned future is ready before submit returns,
  // and the transport completion hook (if any) fires on this thread — the
  // on_ready contract is "exactly once per submit, after readiness",
  // whichever path fulfilled the promise.
  auto reject = [this, &req](Status s) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::future<Result<core::MatchResult>> f = ready_error(std::move(s));
    if (req.on_ready) req.on_ready();
    return f;
  };

  // Acquire pairs with shutdown()'s acq_rel exchange: a submitter that
  // observes the flag also observes the closed queue behind it. (The
  // check is advisory — queue_.closed() is the authoritative gate.)
  if (shut_down_.load(std::memory_order_acquire) || queue_.closed())
    return reject(Status::unavailable("service is shut down"));
  if (req.list == nullptr)
    return reject(Status::invalid_argument("request has no list"));

  // Resolve + validate now so a bad request fails fast and never occupies
  // queue capacity or a worker.
  core::MatchOptions resolved;
  if (req.options.has_value()) {
    resolved = *req.options;
  } else {
    Result<core::MatchOptions> r = core::resolve_algorithm(req.algorithm);
    if (!r.ok()) return reject(r.status());
    resolved = r.value();
  }
  if (Status s = core::validate_options(resolved); !s.ok())
    return reject(std::move(s));
  if (req.memory_budget_bytes > 0 &&
      resolved.algorithm != core::Algorithm::kSequential) {
    return reject(Status::invalid_argument(
        "memory_budget_bytes requires the sequential algorithm (the block "
        "engine's native path)"));
  }

  Job job;
  job.req = std::move(req);
  job.resolved = resolved;
  job.requested = resolved.algorithm;
  job.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Result<core::MatchResult>> fut = job.promise.get_future();

  // Same refusal contract once the request lives in the Job. The hook is
  // copied out first: the blocking push() consumes the Job even when it
  // fails (and an injected push fault unwinds through the moved-from
  // state), but the refusal still owes the transport its completion call.
  // The abandoned promise's future was never handed out; the ready_error
  // future is the one the caller sees.
  const std::function<void()> on_ready = job.req.on_ready;
  auto reject_job = [this, &on_ready](Status s) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::future<Result<core::MatchResult>> f = ready_error(std::move(s));
    if (on_ready) on_ready();
    return f;
  };
  bool accepted = false;
  try {
    if (options_.overflow == OverflowPolicy::kReject) {
      accepted = queue_.try_push(job);
      if (!accepted && !queue_.closed())
        return reject_job(Status::resource_exhausted("request queue is full"));
    } else {
      accepted = queue_.push(std::move(job));
    }
  } catch (const support::failpoint::InjectedFault& f) {
    // serve.queue.push fires before the item is enqueued, so the request
    // was never accepted; fail it on the submitter, retryably.
    return reject_job(status_of(f));
  }
  if (!accepted) {  // queue closed while we waited / tried
    return reject_job(Status::unavailable("service is shut down"));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

std::vector<std::future<Result<core::MatchResult>>> Service::submit_batch(
    std::vector<Request> reqs) {
  std::vector<std::future<Result<core::MatchResult>>> futs;
  futs.reserve(reqs.size());
  for (Request& r : reqs) futs.push_back(submit(std::move(r)));
  return futs;
}

void Service::shutdown() {
  queue_.close();
  // Acq_rel: the release half publishes the close above to submitters'
  // acquire loads; the acquire half makes the second shutdown() caller
  // see the first one's progress before returning early (idempotence).
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;

  // Join every worker this Service ever spawned. The watchdog cannot
  // spawn more: its scan re-checks queue_.closed() under workers_mu_, so
  // any scan racing this close either finished before our snapshot (its
  // replacement is in active_) or sees the closed queue and stands down.
  std::vector<std::shared_ptr<Worker>> all;
  {
    std::lock_guard<Sync::mutex> lock(workers_mu_);
    all.insert(all.end(), active_.begin(), active_.end());
    all.insert(all.end(), retired_.begin(), retired_.end());
  }
  for (auto& w : all)
    if (w->thread.joinable()) w->thread.join();

  // Stop the supervisor last: while workers drained it kept dispatching
  // due retries (which fail kUnavailable at the closed queue); its exit
  // path flushes whatever is still parked in backoff.
  retry_ledger_.stop();
  if (supervisor_.joinable()) supervisor_.join();
}

void Service::record_latency(std::chrono::steady_clock::time_point enqueued) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - enqueued)
                      .count();
  const std::uint64_t v = us <= 0 ? 0 : static_cast<std::uint64_t>(us);
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(v));
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  latency_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Service::finish(Job& job, Result<core::MatchResult> result) {
  record_latency(job.enqueued);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (result.ok())
    ok_.fetch_add(1, std::memory_order_relaxed);
  else
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
    }
  job.promise.set_value(std::move(result));
  // Transport completion hook, after readiness (see Request::on_ready).
  if (job.req.on_ready) job.req.on_ready();
}

void Service::finish_or_retry(Job&& job, Status s) {
  job.attempts += 1;
  const RetryPolicy& retry = options_.retry;
  const bool retryable = retry.max_attempts > 1 && s.retryable() &&
                         job.attempts < retry.max_attempts &&
                         !queue_.closed();
  if (!retryable) {
    // A retryable failure that ran out of attempts is a quarantine: the
    // service gave the request every chance it was configured to.
    if (s.retryable() && retry.max_attempts > 1 &&
        job.attempts >= retry.max_attempts)
      quarantined_.fetch_add(1, std::memory_order_relaxed);
    finish(job, std::move(s));
    return;
  }

  retries_.fetch_add(1, std::memory_order_relaxed);
  job.last_error = std::move(s);

  // Exponential backoff with deterministic jitter: base * 2^(k-1) clamped
  // to max, plus up to 50% more from hash(id, attempt) — identical
  // spreading run to run, no shared RNG contention.
  const int shift = std::min(job.attempts - 1, 20);
  std::chrono::milliseconds backoff = retry.backoff_base * (1LL << shift);
  if (backoff > retry.backoff_max || backoff < retry.backoff_base)
    backoff = retry.backoff_max;
  const std::int64_t half = backoff.count() / 2;
  if (half > 0) {
    const std::uint64_t h =
        mix64(job.id * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(job.attempts));
    backoff += std::chrono::milliseconds(
        static_cast<std::int64_t>(h % static_cast<std::uint64_t>(half + 1)));
  }
  const auto due = std::chrono::steady_clock::now() + backoff;
  if (retry_ledger_.park(due, std::move(job))) return;
  // Ledger already stopped (teardown race): park() refused custody, so
  // fail with the error that triggered the retry rather than dropping it.
  finish(job, job.last_error);
}

void Service::maybe_degrade(Job& job) {
  const DegradePolicy& d = options_.degrade;
  if (!d.enabled) return;
  if (job.resolved.algorithm == core::Algorithm::kSequential) return;
  const std::size_t a = static_cast<std::size_t>(job.requested);

  bool degrade = false;
  if (consec_failures_[a].load(std::memory_order_relaxed) >=
      static_cast<std::uint32_t>(d.after_consecutive_failures)) {
    // Circuit open. Every probe_every-th candidate still runs the real
    // algorithm; one probe success resets the failure count (in
    // note_run_outcome) and closes the circuit.
    if (d.probe_every > 0) {
      const std::uint32_t seq =
          probe_seq_[a].fetch_add(1, std::memory_order_relaxed);
      degrade = (seq % static_cast<std::uint32_t>(d.probe_every)) !=
                static_cast<std::uint32_t>(d.probe_every) - 1;
    } else {
      degrade = true;
    }
  }
  if (!degrade && d.overload_queue_depth > 0 &&
      queue_.size() >= d.overload_queue_depth)
    degrade = true;

  if (degrade) {
    job.resolved = fallback_options_;
    job.degraded = true;
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Service::note_run_outcome(const Job& job, bool run_ok) {
  // Only non-degraded runs speak for their algorithm's health; the
  // sequential fallback succeeding says nothing about e.g. match3.
  if (!options_.degrade.enabled || job.degraded) return;
  auto& failures = consec_failures_[static_cast<std::size_t>(job.requested)];
  if (run_ok)
    failures.store(0, std::memory_order_relaxed);
  else
    failures.fetch_add(1, std::memory_order_relaxed);
}

Status Service::run_blocked(WorkerContext& wc, Job& job) {
  // The request's budget rides on the worker's Context (the same place
  // the ScratchArena lives) and shapes the engine's bounded cache.
  wc.ctx.set_block_cache_budget(job.req.memory_budget_bytes);
  const engine::BlockConfig cfg = engine::BlockConfig::from_budget(
      wc.ctx.block_cache_budget(), sizeof(engine::NodeRec));
  engine::BlockedMatcher matcher;
  if (Status s = matcher.init(*job.req.list, cfg); !s.ok()) return s;
  Status s = matcher.matching_into(wc.scratch);
  wc.ctx.clear_phases();
  wc.ctx.note_phase("engine", engine::to_pram_stats(matcher.stats()));
  return s;
}

bool Service::process_job(WorkerContext& wc, std::size_t index, Job& job) {
  if (options_.on_dequeue) options_.on_dequeue(index);

  // Acquire on the token pairs with the canceller's store: observing the
  // flag also observes whatever state motivated the cancel.
  if (job.req.cancel && job.req.cancel->load(std::memory_order_acquire)) {
    finish(job, Status::cancelled("cancel token set before execution"));
    return false;
  }
  if (std::chrono::steady_clock::now() >= job.req.deadline) {
    finish(job, Status::deadline_exceeded("deadline passed in queue"));
    return false;
  }

  // Supervision: nothing a request does may take the worker thread down.
  // An injected fault surfaces its chosen code; any other escape — a bug,
  // a poison input — fails this request kInternal. Either way the escape
  // is reported to worker_main, which rebuilds the execution context.
  Status s;
  bool escaped = false;
  try {
    s = LLMP_FAILPOINT_STATUS("serve.worker.run");
    if (s.ok()) {
      maybe_degrade(job);
      if (job.req.memory_budget_bytes > 0) {
        // Out-of-core path: the block engine is built per request (its
        // geometry depends on the request's budget and list size), so
        // its cold setup allocations are attributed to the request
        // rather than the steady-state metric. The resident cache stays
        // within the request's budget regardless of list size.
        s = run_blocked(wc, job);
      } else {
        // Only the algorithm body counts toward the steady-state
        // allocation metric; the response copy and promise below are
        // envelope traffic.
        support::AllocScope scope;
        wc.ctx.clear_phases();  // keep the metrics sink from growing
        s = core::run_matching_into(wc.ctx, *job.req.list, job.resolved,
                                    wc.scratch);
      }
      if (s.ok()) {
        // Data healing. Corruption strikes the worker-owned result (the
        // shared list is const): the stabilize.corrupt.match failpoint
        // damages the matching deterministically from the request id,
        // and the effective audit policy decides what happens next —
        // nothing (kOff: the corrupt payload is served, exactly like an
        // unnoticed bit flip today), kDataLoss, or in-place repair.
        stabilize::maybe_break_matching(job.req.list->next_array(),
                                        wc.scratch.in_matching, job.id);
        const AuditPolicy policy = job.req.audit.value_or(options_.audit);
        if (policy != AuditPolicy::kOff) {
          stabilize::CorruptionReport report = stabilize::audit_matching(
              job.req.list->next_array(), wc.scratch.in_matching);
          if (!report.clean()) {
            audits_failed_.fetch_add(1, std::memory_order_relaxed);
            if (policy == AuditPolicy::kRepair) {
              stabilize::repair_matching(wc.ctx, job.req.list->next_array(),
                                         wc.scratch.in_matching);
              report = stabilize::audit_matching(job.req.list->next_array(),
                                                 wc.scratch.in_matching);
              if (report.clean()) {
                repairs_.fetch_add(1, std::memory_order_relaxed);
                wc.scratch.edges =
                    core::verify::matching_size(wc.scratch.in_matching);
              } else {
                s = report.to_status();  // kDataLoss — repair couldn't heal
              }
            } else {
              s = report.to_status();  // kDataLoss
            }
          }
        }
      }
      if (s.ok() && options_.verify) {
        s = core::verify::matching_status(*job.req.list, wc.scratch.in_matching);
        if (s.ok())
          s = core::verify::maximal_status(*job.req.list,
                                           wc.scratch.in_matching);
      }
      note_run_outcome(job, s.ok());
    }
  } catch (const support::failpoint::InjectedFault& f) {
    s = status_of(f);
    escaped = true;
    note_run_outcome(job, false);
  } catch (const std::exception& e) {
    s = Status::internal(std::string("worker caught exception: ") + e.what());
    escaped = true;
    note_run_outcome(job, false);
  } catch (...) {
    s = Status::internal("worker caught unknown exception");
    escaped = true;
    note_run_outcome(job, false);
  }

  // Publish the arena counters so stats() never touches worker stack
  // state (the arena lives on this thread's stack, not in the Service).
  const std::uint64_t takes = wc.ctx.arena().takes();
  const std::uint64_t hits = wc.ctx.arena().hits();
  arena_takes_.fetch_add(takes - wc.seen_takes, std::memory_order_relaxed);
  arena_hits_.fetch_add(hits - wc.seen_hits, std::memory_order_relaxed);
  wc.seen_takes = takes;
  wc.seen_hits = hits;

  // Count the restart BEFORE fulfilling the future: reconciliation
  // readers (chaos_test) sample the counters as soon as every future is
  // ready, so an increment trailing finish() would be a lost update in
  // their eyes. worker_main still does the actual context rebuild.
  if (escaped) restarts_.fetch_add(1, std::memory_order_relaxed);

  if (s.ok())
    finish(job, Result<core::MatchResult>(wc.scratch));  // copy out
  else
    finish_or_retry(std::move(job), std::move(s));
  return escaped;
}

void Service::worker_main(std::shared_ptr<Worker> self, std::size_t index) {
  // One long-lived execution context per worker: the pooled arena turns
  // every warm request into a zero-allocation run, and the persistent
  // MatchResult keeps the result buffers between requests too.
  auto wc = std::make_unique<WorkerContext>(options_.processors);

  for (;;) {
    std::optional<Job> popped;
    try {
      popped = queue_.pop();
    } catch (...) {
      // serve.queue.pop fires before any item is taken, so no request is
      // lost; treat it like any other escape and restart fresh.
      restarts_.fetch_add(1, std::memory_order_relaxed);
      wc = std::make_unique<WorkerContext>(options_.processors);
      continue;
    }
    if (!popped) break;  // closed and drained

    self->slot.enter(now_us());
    const bool escaped = process_job(*wc, index, *popped);
    self->slot.leave();

    // The restart itself was already counted in process_job (before the
    // future was fulfilled); here only the context is rebuilt.
    if (escaped) wc = std::make_unique<WorkerContext>(options_.processors);
    // A watchdog-retired worker finishes the request it was wedged on,
    // then exits; its replacement already owns the slot.
    if (self->slot.retired()) break;
  }
}

void Service::supervisor_loop() {
  const bool watchdog = options_.wedge_threshold.count() > 0;
  while (!retry_ledger_.stopped()) {
    // Sleep until the earliest due retry, the next watchdog scan, or a
    // ledger event (new retry parked / stop requested).
    auto cap = std::chrono::steady_clock::time_point::max();
    if (watchdog)
      cap = std::chrono::steady_clock::now() + options_.supervisor_period;
    retry_ledger_.wait_due(cap);
    if (retry_ledger_.stopped()) break;

    // Dispatch due retries with no ledger lock held: the queue push and
    // the promise fulfillment in finish() must not block parkers.
    for (Job& job : retry_ledger_.take_due(std::chrono::steady_clock::now()))
      dispatch_retry(std::move(job));
    if (watchdog) watchdog_scan();
  }

  // Stop: flush everything still parked in backoff — shutdown() promises
  // every accepted future is ready when it returns.
  for (Job& job : retry_ledger_.drain()) {
    // Acquire on the token pairs with the canceller's store: observing
    // the flag also observes whatever state motivated the cancel.
    if (job.req.cancel && job.req.cancel->load(std::memory_order_acquire))
      finish(job, Status::cancelled("cancelled during retry backoff"));
    else if (std::chrono::steady_clock::now() >= job.req.deadline)
      finish(job,
             Status::deadline_exceeded("deadline passed during retry backoff"));
    else
      finish(job, job.last_error.ok()
                      ? Status::unavailable("service shut down during retry")
                      : job.last_error);
  }
}

void Service::dispatch_retry(Job&& job) {
  // Acquire: same token pairing as process_job's pre-execution check.
  if (job.req.cancel && job.req.cancel->load(std::memory_order_acquire)) {
    finish(job, Status::cancelled("cancelled during retry backoff"));
    return;
  }
  if (std::chrono::steady_clock::now() >= job.req.deadline) {
    finish(job,
           Status::deadline_exceeded("deadline passed during retry backoff"));
    return;
  }
  bool pushed = false;
  try {
    pushed = queue_.try_push(job);
  } catch (const support::failpoint::InjectedFault& f) {
    finish(job, status_of(f));
    return;
  }
  if (pushed) return;
  if (queue_.closed()) {
    // Shutting down: the retry can never run; surface the error that
    // caused it.
    finish(job, job.last_error.ok()
                    ? Status::unavailable("service shut down during retry")
                    : job.last_error);
    return;
  }
  // Queue momentarily full — park again briefly rather than blocking the
  // supervisor (it also owes the watchdog its scans).
  const auto due =
      std::chrono::steady_clock::now() + options_.retry.backoff_base;
  if (retry_ledger_.park(due, std::move(job))) return;
  finish(job, job.last_error.ok()
                  ? Status::unavailable("service shut down during retry")
                  : job.last_error);
}

void Service::watchdog_scan() {
  const std::int64_t threshold_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          options_.wedge_threshold)
          .count();
  const std::int64_t now = now_us();
  std::lock_guard<Sync::mutex> lock(workers_mu_);
  // During shutdown the drain IS slow work finishing — never retire then
  // (and never spawn a worker shutdown() could miss; see shutdown()).
  if (queue_.closed()) return;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    std::shared_ptr<Worker>& w = active_[i];
    if (!w->slot.wedged(now, threshold_us)) continue;
    // Wedged: C++ threads can't be killed, so replace instead. The old
    // thread finishes its request (late), sees retired, and exits; it is
    // joined at shutdown.
    w->slot.retire();
    watchdog_fires_.fetch_add(1, std::memory_order_relaxed);
    retired_.push_back(std::move(w));
    active_[i] = spawn_worker_locked(i);
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.restarts = restarts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.watchdog_fires = watchdog_fires_.load(std::memory_order_relaxed);
  s.audits_failed = audits_failed_.load(std::memory_order_relaxed);
  s.repairs = repairs_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  {
    std::lock_guard<Sync::mutex> lock(workers_mu_);
    s.workers = active_.size();
  }
  const std::uint64_t allocs = support::scoped_allocs();
  const std::uint64_t base = alloc_baseline_.load(std::memory_order_relaxed);
  s.steady_allocs = allocs >= base ? allocs - base : 0;
  s.arena_takes = arena_takes_.load(std::memory_order_relaxed);
  s.arena_hits = arena_hits_.load(std::memory_order_relaxed);

  // Percentiles from the log2 histogram: walk cumulative counts and
  // report the holding bucket's upper bound (2^bucket microseconds).
  std::array<std::uint64_t, kLatencyBuckets> h{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    h[i] = latency_[i].load(std::memory_order_relaxed);
    total += h[i];
  }
  auto percentile = [&](double q) -> std::uint64_t {
    if (total == 0) return 0;
    const std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      seen += h[i];
      if (seen >= rank)
        return i == 0 ? 1 : (std::uint64_t{1} << i);
    }
    return std::uint64_t{1} << (kLatencyBuckets - 1);
  };
  s.p50_latency_us = percentile(0.50);
  s.p99_latency_us = percentile(0.99);
  return s;
}

void Service::reset_stats() {
  submitted_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  ok_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  expired_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  restarts_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  quarantined_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  watchdog_fires_.store(0, std::memory_order_relaxed);
  audits_failed_.store(0, std::memory_order_relaxed);
  repairs_.store(0, std::memory_order_relaxed);
  arena_takes_.store(0, std::memory_order_relaxed);
  arena_hits_.store(0, std::memory_order_relaxed);
  alloc_baseline_.store(support::scoped_allocs(), std::memory_order_relaxed);
  for (auto& b : latency_) b.store(0, std::memory_order_relaxed);
  for (auto& c : consec_failures_) c.store(0, std::memory_order_relaxed);
  for (auto& p : probe_seq_) p.store(0, std::memory_order_relaxed);
}

}  // namespace llmp::serve
