#include "serve/service.h"

#include <bit>
#include <utility>

#include "core/verify.h"
#include "pram/executor.h"
#include "support/alloc_counter.h"

namespace llmp::serve {

namespace {

/// Ready future carrying an error — for requests refused at submit.
std::future<Result<core::MatchResult>> ready_error(Status s) {
  std::promise<Result<core::MatchResult>> p;
  std::future<Result<core::MatchResult>> f = p.get_future();
  p.set_value(Result<core::MatchResult>(std::move(s)));
  return f;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity == 0 ? 1 : options_.queue_capacity) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.processors == 0) options_.processors = 1;
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

Service::~Service() { shutdown(); }

std::future<Result<core::MatchResult>> Service::submit(Request req) {
  if (shut_down_.load(std::memory_order_acquire) || queue_.closed()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ready_error(Status::unavailable("service is shut down"));
  }
  if (req.list == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ready_error(Status::invalid_argument("request has no list"));
  }

  // Resolve + validate now so a bad request fails fast and never occupies
  // queue capacity or a worker.
  core::MatchOptions resolved;
  if (req.options.has_value()) {
    resolved = *req.options;
  } else {
    Result<core::MatchOptions> r = core::resolve_algorithm(req.algorithm);
    if (!r.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return ready_error(r.status());
    }
    resolved = r.value();
  }
  if (Status s = core::validate_options(resolved); !s.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ready_error(std::move(s));
  }

  Job job;
  job.req = std::move(req);
  job.resolved = resolved;
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Result<core::MatchResult>> fut = job.promise.get_future();

  bool accepted = false;
  if (options_.overflow == OverflowPolicy::kReject) {
    accepted = queue_.try_push(job);
    if (!accepted && !queue_.closed()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return ready_error(Status::resource_exhausted("request queue is full"));
    }
  } else {
    accepted = queue_.push(std::move(job));
  }
  if (!accepted) {  // queue closed while we waited / tried
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ready_error(Status::unavailable("service is shut down"));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

std::vector<std::future<Result<core::MatchResult>>> Service::submit_batch(
    std::vector<Request> reqs) {
  std::vector<std::future<Result<core::MatchResult>>> futs;
  futs.reserve(reqs.size());
  for (Request& r : reqs) futs.push_back(submit(std::move(r)));
  return futs;
}

void Service::shutdown() {
  queue_.close();
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

void Service::record_latency(std::chrono::steady_clock::time_point enqueued) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - enqueued)
                      .count();
  const std::uint64_t v = us <= 0 ? 0 : static_cast<std::uint64_t>(us);
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(v));
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  latency_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Service::finish(Job& job, Result<core::MatchResult> result) {
  record_latency(job.enqueued);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (result.ok())
    ok_.fetch_add(1, std::memory_order_relaxed);
  else
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
    }
  job.promise.set_value(std::move(result));
}

void Service::worker_loop(std::size_t worker_index) {
  // One long-lived execution context per worker: the pooled arena turns
  // every warm request into a zero-allocation run, and the persistent
  // MatchResult keeps the result buffers between requests too.
  pram::SeqExec exec(options_.processors);
  pram::Context ctx(exec);
  core::MatchResult scratch;
  std::uint64_t seen_takes = 0;
  std::uint64_t seen_hits = 0;

  while (std::optional<Job> popped = queue_.pop()) {
    Job& job = *popped;
    if (options_.on_dequeue) options_.on_dequeue(worker_index);

    if (job.req.cancel && job.req.cancel->load(std::memory_order_acquire)) {
      finish(job, Status::cancelled("cancel token set before execution"));
      continue;
    }
    if (std::chrono::steady_clock::now() >= job.req.deadline) {
      finish(job, Status::deadline_exceeded("deadline passed in queue"));
      continue;
    }

    Status s;
    {
      // Only the algorithm body counts toward the steady-state allocation
      // metric; the response copy and promise below are envelope traffic.
      support::AllocScope scope;
      ctx.clear_phases();  // keep the metrics sink from growing per request
      s = core::run_matching_into(ctx, *job.req.list, job.resolved, scratch);
    }
    if (s.ok() && options_.verify) {
      s = core::verify::matching_status(*job.req.list, scratch.in_matching);
      if (s.ok())
        s = core::verify::maximal_status(*job.req.list, scratch.in_matching);
    }

    // Publish the arena counters so stats() never touches worker stack
    // state (the arena lives on this thread's stack, not in the Service).
    const std::uint64_t takes = ctx.arena().takes();
    const std::uint64_t hits = ctx.arena().hits();
    arena_takes_.fetch_add(takes - seen_takes, std::memory_order_relaxed);
    arena_hits_.fetch_add(hits - seen_hits, std::memory_order_relaxed);
    seen_takes = takes;
    seen_hits = hits;

    if (s.ok())
      finish(job, Result<core::MatchResult>(scratch));  // copy out
    else
      finish(job, std::move(s));
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.workers = workers_.size();
  const std::uint64_t allocs = support::scoped_allocs();
  const std::uint64_t base = alloc_baseline_.load(std::memory_order_relaxed);
  s.steady_allocs = allocs >= base ? allocs - base : 0;
  s.arena_takes = arena_takes_.load(std::memory_order_relaxed);
  s.arena_hits = arena_hits_.load(std::memory_order_relaxed);

  // Percentiles from the log2 histogram: walk cumulative counts and
  // report the holding bucket's upper bound (2^bucket microseconds).
  std::array<std::uint64_t, kLatencyBuckets> h{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    h[i] = latency_[i].load(std::memory_order_relaxed);
    total += h[i];
  }
  auto percentile = [&](double q) -> std::uint64_t {
    if (total == 0) return 0;
    const std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      seen += h[i];
      if (seen >= rank)
        return i == 0 ? 1 : (std::uint64_t{1} << i);
    }
    return std::uint64_t{1} << (kLatencyBuckets - 1);
  };
  s.p50_latency_us = percentile(0.50);
  s.p99_latency_us = percentile(0.99);
  return s;
}

void Service::reset_stats() {
  submitted_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  ok_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  expired_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  arena_takes_.store(0, std::memory_order_relaxed);
  arena_hits_.store(0, std::memory_order_relaxed);
  alloc_baseline_.store(support::scoped_allocs(), std::memory_order_relaxed);
  for (auto& b : latency_) b.store(0, std::memory_order_relaxed);
}

}  // namespace llmp::serve
