// WorkerSlot — the watchdog/worker handshake, one slot per worker thread.
//
// A worker publishes "busy on one request since T" on entry and clears it
// on exit; the watchdog reads the timestamp from another thread and, when
// the worker looks wedged, flips `retired` so the worker exits after the
// request it is stuck on finally completes. Extracted from Service so the
// handshake is a self-contained, model-checkable unit (scenario
// worker-handoff in src/mc/scenarios.cpp): the property is that a retire
// is never lost — a worker that leaves its busy window always observes a
// retire that happened inside it.
//
// Memory orders: busy_since_us is written by the worker with release and
// read by the watchdog with acquire, so a watchdog that sees busy != 0
// also sees every write the worker made before entering the request
// (invariant: the wedge diagnosis reads a fully published busy window).
// `retired` is release/acquire the other way: the worker that observes
// retired == true also observes why (the watchdog's bookkeeping preceding
// the store).
#pragma once

#include <cstdint>

#include "serve/sync_policy.h"

namespace llmp::serve {

template <class Sync = StdSyncPolicy>
class WorkerSlot {
 public:
  WorkerSlot() = default;
  WorkerSlot(const WorkerSlot&) = delete;
  WorkerSlot& operator=(const WorkerSlot&) = delete;

  /// Worker: a request starts now (steady_clock µs; must be nonzero).
  void enter(std::int64_t now_us) {
    busy_since_us_.store(now_us, std::memory_order_release);
  }
  /// Worker: the request finished; 0 = idle, invisible to the watchdog.
  void leave() { busy_since_us_.store(0, std::memory_order_release); }

  /// Watchdog: when the current request started, or 0 if idle.
  std::int64_t busy_since_us() const {
    return busy_since_us_.load(std::memory_order_acquire);
  }
  /// Watchdog: the worker is mid-request and past the wedge threshold.
  bool wedged(std::int64_t now_us, std::int64_t threshold_us) const {
    const std::int64_t busy = busy_since_us();
    return busy != 0 && now_us - busy >= threshold_us;
  }

  /// Watchdog: finish the current request, then exit (a replacement owns
  /// the slot index from here on).
  void retire() { retired_.store(true, std::memory_order_release); }
  bool retired() const { return retired_.load(std::memory_order_acquire); }

 private:
  typename Sync::template atomic<std::int64_t> busy_since_us_{
      0, "slot.busy_since_us"};
  typename Sync::template atomic<bool> retired_{false, "slot.retired"};
};

}  // namespace llmp::serve
