// Bounded MPMC queue — the serve layer's backpressure point.
//
// Many submitter threads push requests, the Service's workers pop them.
// Capacity is a hard bound: push() blocks while full (the kBlock
// backpressure policy), try_push() fails instead (kReject). close() flips
// the queue into drain mode: further pushes fail immediately, pops keep
// returning queued items until the queue is empty, then return nullopt —
// which is the workers' shutdown signal, so graceful drain falls out of
// the queue semantics alone.
//
// Plain mutex + two condition variables: correctness and TSan-cleanliness
// over lock-free cleverness. Every operation is O(1) amortized; the lock
// is held for a deque push/pop only, never while a request executes.
//
// The class is a template over a sync policy (serve/sync_policy.h):
// production instantiates BoundedQueue<T> (std:: primitives), the model
// checker instantiates BoundedQueue<T, McSyncPolicy> and exhaustively
// interleaves this exact source (docs/MODELCHECK.md). The third parameter
// seeds one of three known-bad mutations used to prove the checker can
// catch real queue bugs — kNone (the shipped code) is the only value any
// non-test code may use.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "serve/sync_policy.h"
#include "support/check.h"
#include "support/failpoint.h"

namespace llmp::serve {

/// Seeded bugs for the model-checker self-test (llmp_mc --mutation, the
/// mc stage of scripts/check.sh). Each is a minimal, realistic slip the
/// checker must flag: a missing wakeup, a lost item, a missing lock.
enum class QueueMutation {
  kNone,            ///< the real implementation
  kLostNotify,      ///< push() forgets to notify not_empty_ (lost wakeup)
  kDoublePop,       ///< pop() drops a second item on the floor (lost item)
  kDroppedAcquire,  ///< close() writes the flag without the lock (race)
};

template <class T, class Sync = StdSyncPolicy,
          QueueMutation Mutation = QueueMutation::kNone>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LLMP_CHECK(capacity >= 1);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until a slot frees (or the queue closes). False iff closed.
  /// May throw from the serve.queue.push failpoint when armed (before the
  /// item is enqueued — the caller keeps ownership and fails the request).
  bool push(T item) {
    enter_push();
    std::unique_lock<typename Sync::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_.r() || items_.r().size() < capacity_;
    });
    if (closed_.r()) return false;
    items_.w().push_back(std::move(item));
    lock.unlock();
    if constexpr (Mutation != QueueMutation::kLostNotify)
      not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. False iff full or closed (item is untouched then).
  bool try_push(T& item) {
    enter_push();
    {
      std::lock_guard<typename Sync::mutex> lock(mu_);
      if (closed_.r() || items_.r().size() >= capacity_) return false;
      items_.w().push_back(std::move(item));
    }
    if constexpr (Mutation != QueueMutation::kLostNotify)
      not_empty_.notify_one();
    return true;
  }

  /// Block until an item arrives; nullopt once closed *and* drained.
  /// May throw from the serve.queue.pop failpoint when armed (before any
  /// item is taken, so no request is ever lost to an injected pop fault).
  std::optional<T> pop() {
    LLMP_FAILPOINT("serve.queue.pop");
    std::unique_lock<typename Sync::mutex> lock(mu_);
    not_empty_.wait(lock,
                    [this] { return closed_.r() || !items_.r().empty(); });
    if (items_.r().empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.w().front());
    items_.w().pop_front();
    if constexpr (Mutation == QueueMutation::kDoublePop) {
      if (!items_.r().empty()) items_.w().pop_front();
    }
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stop accepting pushes; queued items drain through pop().
  void close() {
    if constexpr (Mutation == QueueMutation::kDroppedAcquire) {
      closed_.w() = true;
    } else {
      std::lock_guard<typename Sync::mutex> lock(mu_);
      closed_.w() = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    return items_.r().size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    return closed_.r();
  }

 private:
  /// One failpoint site shared by both push paths (names are unique
  /// repo-wide; see support/failpoint.h).
  static void enter_push() { LLMP_FAILPOINT("serve.queue.push"); }

  const std::size_t capacity_;
  mutable typename Sync::mutex mu_{"queue.mu"};
  typename Sync::condition_variable not_empty_{"queue.not_empty"};
  typename Sync::condition_variable not_full_{"queue.not_full"};
  typename Sync::template shared<std::deque<T>> items_{{}, "queue.items"};
  typename Sync::template shared<bool> closed_{false, "queue.closed"};
};

}  // namespace llmp::serve
