// Bounded MPMC queue — the serve layer's backpressure point.
//
// Many submitter threads push requests, the Service's workers pop them.
// Capacity is a hard bound: push() blocks while full (the kBlock
// backpressure policy), try_push() fails instead (kReject). close() flips
// the queue into drain mode: further pushes fail immediately, pops keep
// returning queued items until the queue is empty, then return nullopt —
// which is the workers' shutdown signal, so graceful drain falls out of
// the queue semantics alone.
//
// Plain mutex + two condition variables: correctness and TSan-cleanliness
// over lock-free cleverness. Every operation is O(1) amortized; the lock
// is held for a deque push/pop only, never while a request executes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/check.h"
#include "support/failpoint.h"

namespace llmp::serve {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LLMP_CHECK(capacity >= 1);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until a slot frees (or the queue closes). False iff closed.
  /// May throw from the serve.queue.push failpoint when armed (before the
  /// item is enqueued — the caller keeps ownership and fails the request).
  bool push(T item) {
    enter_push();
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. False iff full or closed (item is untouched then).
  bool try_push(T& item) {
    enter_push();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item arrives; nullopt once closed *and* drained.
  /// May throw from the serve.queue.pop failpoint when armed (before any
  /// item is taken, so no request is ever lost to an injected pop fault).
  std::optional<T> pop() {
    LLMP_FAILPOINT("serve.queue.pop");
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stop accepting pushes; queued items drain through pop().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  /// One failpoint site shared by both push paths (names are unique
  /// repo-wide; see support/failpoint.h).
  static void enter_push() { LLMP_FAILPOINT("serve.queue.push"); }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace llmp::serve
