// llmp::serve::Service — a self-healing batch/serve layer over
// pram::Context.
//
// The repo's algorithms are single-threaded templates over an Executor;
// parallelism inside one run is the *simulated* PRAM. This layer adds the
// orthogonal axis: many independent matching requests served concurrently
// by a pool of workers, each owning one long-lived pram::Context whose
// pooled ScratchArena makes warm request execution allocation-free.
//
//   serve::Service svc({.workers = 8, .queue_capacity = 256});
//   auto fut = svc.submit({.list = &list, .algorithm = "match4"});
//   llmp::Result<core::MatchResult> r = fut.get();
//   if (r.ok()) use(r.value()); else log(r.status().to_string());
//
// Request lifecycle. submit() resolves the algorithm name against the
// AlgorithmRegistry and validates the options immediately — bad requests
// fail fast with an already-ready future (kNotFound / kInvalidArgument)
// and never occupy queue capacity. Valid requests enter a bounded MPMC
// queue; when it is full the configured OverflowPolicy either blocks the
// submitter (kBlock — backpressure) or fails the request with
// kResourceExhausted (kReject — load shedding). A worker that dequeues a
// request first honours its cancel token (kCancelled) and deadline
// (kDeadlineExceeded — expiry *in the queue* is the common case under
// overload), then runs the algorithm through its own Context into a
// per-worker persistent MatchResult, optionally audits the output with
// core::verify (kFailedVerification), and fulfills the future with a copy.
//
// Fault tolerance (docs/RESILIENCE.md has the full semantics):
//
//   * Supervision — any exception escaping a request (a bug, a poison
//     input, an armed failpoint) fails *that request's* future, never the
//     worker thread: the worker records a restart and rebuilds its
//     execution context fresh before the next request.
//   * RetryPolicy — a request failing with a retryable() Status is
//     re-enqueued up to max_attempts times with exponential backoff and
//     deterministic jitter; a request that exhausts its attempts is
//     quarantined (fails with the last error, counted in stats).
//   * Watchdog — when wedge_threshold is nonzero, a supervisor thread
//     retires any worker stuck on one request past the threshold and
//     spawns a replacement so capacity recovers; the wedged thread's
//     request still completes (late) and the thread exits afterwards.
//   * Degradation — when DegradePolicy::enabled, requests for an
//     algorithm that keeps failing (or any request while the queue is
//     overloaded past a watermark) are served by `sequential` instead of
//     failing; periodic probe requests retry the original algorithm so
//     the Service returns to it once the fault clears.
//
// All of this is off by default: a default-constructed Service behaves
// exactly like the pre-resilience one (no retry, no watchdog, no
// fallback), except that worker threads no longer die silently.
//
// Shutdown is graceful by construction: shutdown() closes the queue, which
// rejects new work (kUnavailable) while workers keep draining already
// accepted requests; requests parked in retry backoff are flushed with
// their last error. It returns after every accepted future is fulfilled
// and all workers joined. The destructor calls shutdown().
//
// Threading contract. submit()/submit_batch()/stats() are safe from any
// thread. The pointed-to LinkedList must stay alive and unmodified until
// the request's future is ready (lists are immutable after construction,
// so sharing one list across many in-flight requests is fine). Workers
// never touch each other's Context; shared mutable state is the queue,
// the worker table, the retry schedule and the ServiceStats atomics.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/match_result.h"
#include "core/registry.h"
#include "core/run.h"
#include "list/linked_list.h"
#include "serve/queue.h"
#include "serve/retry_ledger.h"
#include "serve/sync_policy.h"
#include "serve/worker_slot.h"
#include "support/status.h"

namespace llmp::serve {

/// What submit() does when the request queue is full.
enum class OverflowPolicy {
  kBlock,   ///< block the submitter until a slot frees (backpressure)
  kReject,  ///< fail the request with kResourceExhausted (load shedding)
};

/// Data-healing policy: what a worker does about result corruption
/// (bit flips, injected damage — anything the integrity auditor of
/// stabilize/audit.h can detect in the produced matching).
enum class AuditPolicy {
  kOff,     ///< trust the result (today's behavior)
  kAudit,   ///< audit; corruption fails the request with kDataLoss
  kRepair,  ///< audit; corruption triggers in-place self-stabilizing
            ///< repair (stabilize/repair.h), kDataLoss only if that
            ///< cannot restore a clean maximal matching
};

inline const char* to_string(AuditPolicy p) {
  switch (p) {
    case AuditPolicy::kOff: return "off";
    case AuditPolicy::kAudit: return "audit";
    case AuditPolicy::kRepair: return "repair";
  }
  return "?";
}

inline bool audit_policy_from_string(std::string_view text, AuditPolicy* out) {
  if (text == "off") *out = AuditPolicy::kOff;
  else if (text == "audit") *out = AuditPolicy::kAudit;
  else if (text == "repair") *out = AuditPolicy::kRepair;
  else return false;
  return true;
}

/// Bounded retries for requests failing with a retryable() Status.
struct RetryPolicy {
  /// Total attempts per request (1 = no retry, the default).
  int max_attempts = 1;
  /// Backoff before attempt k+1 is base * 2^(k-1), clamped to `max`, plus
  /// a deterministic jitter in [0, 50%] derived from (request id, k) — so
  /// a retry storm spreads out identically run to run.
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_max{64};
};

/// Graceful degradation: serve via `sequential` instead of failing.
struct DegradePolicy {
  bool enabled = false;
  /// Fall back for an algorithm after this many consecutive failures.
  int after_consecutive_failures = 3;
  /// While degraded, every Nth candidate request probes the original
  /// algorithm; one probe success restores it. 0 disables probing
  /// (degradation then persists until reset_stats()).
  int probe_every = 16;
  /// Also degrade any request dequeued while the queue holds at least
  /// this many requests (sustained overload). 0 disables the trigger.
  std::size_t overload_queue_depth = 0;
};

struct ServiceOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 256;
  /// PRAM processor budget p for each worker's executor (affects the
  /// simulated time_p accounting, not host parallelism).
  std::size_t processors = 1024;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Audit every result with core::verify (matching + maximal); failures
  /// surface as kFailedVerification on that request's future.
  bool verify = false;
  /// Service-wide data-healing default; Request::audit overrides it per
  /// request. Runs *before* `verify`, so a repaired result still has to
  /// pass the classical oracles when both are on.
  AuditPolicy audit = AuditPolicy::kOff;
  RetryPolicy retry;
  DegradePolicy degrade;
  /// Watchdog: a worker busy on one request for longer than this is
  /// retired and replaced (the request still completes on the old
  /// thread). 0 (default) disables the watchdog.
  std::chrono::milliseconds wedge_threshold{0};
  /// Watchdog scan cadence (only meaningful when the watchdog is on).
  std::chrono::milliseconds supervisor_period{2};
  /// Test/trace seam: called by a worker right after it dequeues a
  /// request, with the worker index, *before* cancel/deadline checks and
  /// execution. Tests use it to hold workers and build queue states;
  /// benches use it to simulate a downstream wait. Must be thread-safe.
  std::function<void(std::size_t)> on_dequeue;
};

/// Shared cancellation flag: submitter sets it, workers poll it at
/// dequeue (and the retry scheduler when a backoff expires). Copyable and
/// cheap; one token may cover a whole batch. (The policy atomic IS a
/// std::atomic<bool>; serve/sync_policy.h explains why serve spells it
/// this way.)
using CancelToken = std::shared_ptr<StdSyncPolicy::atomic<bool>>;
inline CancelToken make_cancel_token() {
  return std::make_shared<StdSyncPolicy::atomic<bool>>(false);
}

struct Request {
  /// Borrowed; must outlive the request's future (see header comment).
  const list::LinkedList* list = nullptr;
  /// Registry name resolved at submit time ("match4", "match2-erew", …).
  std::string algorithm = "match4";
  /// When set, used verbatim instead of resolving `algorithm`.
  std::optional<core::MatchOptions> options;
  /// Absolute deadline; max() (the default) means none. A request whose
  /// deadline passes before a worker picks it up — or while it waits in
  /// retry backoff — fails kDeadlineExceeded.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional; null means not cancellable.
  CancelToken cancel;
  /// Per-request memory budget for the matching run's working state, in
  /// bytes. 0 (default) runs the flat in-memory path. Nonzero routes the
  /// request through the out-of-core block engine (src/engine), whose
  /// resident cache stays within the budget however large the list —
  /// blocked and flat requests run side by side on the same workers.
  /// Only `sequential` supports a budget (the engine's native
  /// algorithm); other algorithms are rejected kInvalidArgument.
  std::size_t memory_budget_bytes = 0;
  /// Per-request data-healing override; unset uses ServiceOptions::audit.
  std::optional<AuditPolicy> audit;
  /// Tenant this request is accounted to. The Service itself treats every
  /// tenant alike (quotas are the net front-end's job — net/admission.h,
  /// layered *before* submit), but the id rides the request so transports,
  /// admission control and stats all speak about the same tenant without a
  /// side channel. 0 is the anonymous/default tenant.
  std::uint32_t tenant = 0;
  /// Completion hook for transports: invoked exactly once per submit(),
  /// after this request's future becomes ready — on the submitter thread
  /// for requests refused at submit (the future is ready before submit
  /// returns), otherwise on whichever worker/supervisor thread fulfilled
  /// the promise. Must be cheap and must not call back into the Service;
  /// the net server uses it to post "response ready" onto its IO thread.
  std::function<void()> on_ready;
};

/// One consistent snapshot of service counters (values are monotonically
/// increasing between reset_stats() calls; queue_depth is instantaneous).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t completed = 0;  ///< futures fulfilled
  std::uint64_t ok = 0;         ///< … with an OK result
  std::uint64_t rejected = 0;   ///< refused at submit (full/closed/invalid)
  std::uint64_t cancelled = 0;  ///< failed kCancelled
  std::uint64_t expired = 0;    ///< failed kDeadlineExceeded
  std::uint64_t failed = 0;     ///< completed with any other non-OK status
  // Resilience counters (completed == ok + cancelled + expired + failed
  // always; the five below classify *how* the service got there).
  std::uint64_t restarts = 0;       ///< worker contexts rebuilt after escape
  std::uint64_t retries = 0;        ///< retry attempts scheduled
  std::uint64_t quarantined = 0;    ///< requests failed after max_attempts
  std::uint64_t degraded = 0;       ///< requests served via `sequential`
  std::uint64_t watchdog_fires = 0; ///< wedged workers retired + replaced
  // Data-healing counters (AuditPolicy; stabilize/audit.h). Every audit
  // that found corruption is counted in audits_failed; under kRepair the
  // successfully healed subset lands in repairs too, the rest (plus all
  // kAudit detections) fail their request kDataLoss.
  std::uint64_t audits_failed = 0;  ///< result audits that found corruption
  std::uint64_t repairs = 0;        ///< corrupted results healed in place
  std::size_t queue_depth = 0;
  std::size_t workers = 0;          ///< live (non-retired) workers
  /// End-to-end latency (submit → future ready) percentiles, from a
  /// log2-bucketed histogram: each reported value is the upper bound of
  /// the bucket holding that percentile, so it is exact to within 2×.
  std::uint64_t p50_latency_us = 0;
  std::uint64_t p99_latency_us = 0;
  /// Heap allocations inside worker algorithm-execution regions since the
  /// last reset_stats() — the serve-layer steady-state allocation metric.
  /// Zero once every worker's arena is warm (in instrumented binaries;
  /// see support/alloc_counter.h).
  std::uint64_t steady_allocs = 0;
  std::uint64_t arena_takes = 0;  ///< scratch leases across all workers
  std::uint64_t arena_hits = 0;   ///< … satisfied from the pool
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();  ///< calls shutdown()
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one request. Always returns a valid future; errors (bad
  /// request, full queue under kReject, shut-down service, an injected
  /// queue fault) arrive as a non-OK Result on it, already ready.
  std::future<Result<core::MatchResult>> submit(Request req);

  /// Submit many requests; futures are positionally matched. Under
  /// kBlock this may block between elements when the queue fills.
  std::vector<std::future<Result<core::MatchResult>>> submit_batch(
      std::vector<Request> reqs);

  /// Stop accepting work, drain every accepted request (flushing retry
  /// backoffs with their last error), join workers. Idempotent; the
  /// destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  /// Zero the counters and histogram, rebase the steady-allocation
  /// baseline (call after warmup to measure the steady state), and clear
  /// the degradation failure-tracking state.
  void reset_stats();

  const ServiceOptions& options() const { return options_; }

 private:
  /// The production sync vocabulary. Service itself always runs on std::
  /// primitives; its extracted concurrency slices (BoundedQueue,
  /// RetryLedger, WorkerSlot) are the parts the model checker re-compiles
  /// against McSyncPolicy (see docs/MODELCHECK.md).
  using Sync = StdSyncPolicy;

  struct Job {
    Request req;
    core::MatchOptions resolved;
    core::Algorithm requested;  ///< pre-degradation algorithm (tracking key)
    int attempts = 0;           ///< attempts already finished (all failed)
    std::uint64_t id = 0;       ///< submit order; seeds the retry jitter
    bool degraded = false;      ///< this attempt runs the fallback
    std::chrono::steady_clock::time_point enqueued;
    Status last_error;          ///< status that caused the latest retry
    std::promise<Result<core::MatchResult>> promise;
  };

  /// One worker thread's identity; liveness + wedge tracking lives in
  /// the WorkerSlot (the model-checked watchdog handshake). Retired
  /// handles stay in retired_ until shutdown joins them.
  struct Worker {
    Sync::thread thread;
    WorkerSlot<Sync> slot;
  };

  /// Everything a worker rebuilds on a supervision restart: the backend,
  /// the pooled Context and the persistent result scratch.
  struct WorkerContext;

  void worker_main(std::shared_ptr<Worker> self, std::size_t index);
  /// Run one dequeued job; returns true when an exception escaped (the
  /// caller then rebuilds the context — a supervision restart).
  bool process_job(WorkerContext& wc, std::size_t index, Job& job);
  /// The out-of-core path for requests carrying a memory budget.
  Status run_blocked(WorkerContext& wc, Job& job);
  /// Fallback decision for this attempt; may rewrite job.resolved.
  void maybe_degrade(Job& job);
  void note_run_outcome(const Job& job, bool run_ok);
  /// Terminal failure vs. scheduling a retry.
  void finish_or_retry(Job&& job, Status s);
  /// Supervisor-side: re-enqueue a retry whose backoff expired (or fail
  /// it if it was cancelled / its deadline passed / the queue closed).
  void dispatch_retry(Job&& job);
  void finish(Job& job, Result<core::MatchResult> result);
  void record_latency(std::chrono::steady_clock::time_point enqueued);

  void supervisor_loop();
  void watchdog_scan();
  std::shared_ptr<Worker> spawn_worker_locked(std::size_t index);

  ServiceOptions options_;
  core::MatchOptions fallback_options_;  ///< canonical `sequential`
  BoundedQueue<Job> queue_;
  Sync::atomic<bool> shut_down_{false};
  Sync::atomic<std::uint64_t> next_id_{0};

  // Worker table: active_[i] is slot i's current worker; a watchdog
  // replacement moves the old handle to retired_ and installs a fresh one
  // in place. Both vectors are guarded by workers_mu_.
  mutable Sync::mutex workers_mu_;
  std::vector<std::shared_ptr<Worker>> active_;
  std::vector<std::shared_ptr<Worker>> retired_;

  // Supervisor: retry scheduling (parked in the RetryLedger) + watchdog.
  // The thread exists only when the options can need it (retries enabled
  // or watchdog on).
  Sync::thread supervisor_;
  RetryLedger<Job, Sync> retry_ledger_;

  // Degradation tracking, indexed by core::Algorithm.
  static constexpr std::size_t kAlgos = 6;
  std::array<Sync::atomic<std::uint32_t>, kAlgos> consec_failures_{};
  std::array<Sync::atomic<std::uint32_t>, kAlgos> probe_seq_{};

  // Stats. Plain atomics, every access relaxed: each counter is an
  // independent monotonic tally and stats() is a monitoring snapshot that
  // promises no cross-counter consistency — no reader orders other memory
  // against these, so there is no invariant a stronger order would
  // protect (memory-order audit, docs/MODELCHECK.md).
  Sync::atomic<std::uint64_t> submitted_{0};
  Sync::atomic<std::uint64_t> completed_{0};
  Sync::atomic<std::uint64_t> ok_{0};
  Sync::atomic<std::uint64_t> rejected_{0};
  Sync::atomic<std::uint64_t> cancelled_{0};
  Sync::atomic<std::uint64_t> expired_{0};
  Sync::atomic<std::uint64_t> failed_{0};
  Sync::atomic<std::uint64_t> restarts_{0};
  Sync::atomic<std::uint64_t> retries_{0};
  Sync::atomic<std::uint64_t> quarantined_{0};
  Sync::atomic<std::uint64_t> degraded_{0};
  Sync::atomic<std::uint64_t> watchdog_fires_{0};
  Sync::atomic<std::uint64_t> audits_failed_{0};
  Sync::atomic<std::uint64_t> repairs_{0};
  Sync::atomic<std::uint64_t> arena_takes_{0};
  Sync::atomic<std::uint64_t> arena_hits_{0};
  Sync::atomic<std::uint64_t> alloc_baseline_{0};
  /// Latency histogram: bucket i counts requests with latency in
  /// (2^(i-1), 2^i] microseconds (bucket 0: <= 1 µs).
  static constexpr std::size_t kLatencyBuckets = 48;
  std::array<Sync::atomic<std::uint64_t>, kLatencyBuckets> latency_{};
};

}  // namespace llmp::serve
