// llmp::serve::Service — a batch/serve layer over pram::Context.
//
// The repo's algorithms are single-threaded templates over an Executor;
// parallelism inside one run is the *simulated* PRAM. This layer adds the
// orthogonal axis: many independent matching requests served concurrently
// by a pool of workers, each owning one long-lived pram::Context whose
// pooled ScratchArena makes warm request execution allocation-free.
//
//   serve::Service svc({.workers = 8, .queue_capacity = 256});
//   auto fut = svc.submit({.list = &list, .algorithm = "match4"});
//   llmp::Result<core::MatchResult> r = fut.get();
//   if (r.ok()) use(r.value()); else log(r.status().to_string());
//
// Request lifecycle. submit() resolves the algorithm name against the
// AlgorithmRegistry and validates the options immediately — bad requests
// fail fast with an already-ready future (kNotFound / kInvalidArgument)
// and never occupy queue capacity. Valid requests enter a bounded MPMC
// queue; when it is full the configured OverflowPolicy either blocks the
// submitter (kBlock — backpressure) or fails the request with
// kResourceExhausted (kReject — load shedding). A worker that dequeues a
// request first honours its cancel token (kCancelled) and deadline
// (kDeadlineExceeded — expiry *in the queue* is the common case under
// overload), then runs the algorithm through its own Context into a
// per-worker persistent MatchResult, optionally audits the output with
// core::verify (kFailedVerification), and fulfills the future with a copy.
//
// Shutdown is graceful by construction: shutdown() closes the queue, which
// rejects new work (kUnavailable) while workers keep draining already
// accepted requests; it returns after every queued future is fulfilled and
// all workers joined. The destructor calls shutdown().
//
// Threading contract. submit()/submit_batch()/stats() are safe from any
// thread. The pointed-to LinkedList must stay alive and unmodified until
// the request's future is ready (lists are immutable after construction,
// so sharing one list across many in-flight requests is fine). Workers
// never touch each other's Context; the only shared mutable state is the
// queue and the ServiceStats atomics.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/match_result.h"
#include "core/registry.h"
#include "core/run.h"
#include "list/linked_list.h"
#include "serve/queue.h"
#include "support/status.h"

namespace llmp::serve {

/// What submit() does when the request queue is full.
enum class OverflowPolicy {
  kBlock,   ///< block the submitter until a slot frees (backpressure)
  kReject,  ///< fail the request with kResourceExhausted (load shedding)
};

struct ServiceOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 256;
  /// PRAM processor budget p for each worker's executor (affects the
  /// simulated time_p accounting, not host parallelism).
  std::size_t processors = 1024;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Audit every result with core::verify (matching + maximal); failures
  /// surface as kFailedVerification on that request's future.
  bool verify = false;
  /// Test/trace seam: called by a worker right after it dequeues a
  /// request, with the worker index, *before* cancel/deadline checks and
  /// execution. Tests use it to hold workers and build queue states;
  /// benches use it to simulate a downstream wait. Must be thread-safe.
  std::function<void(std::size_t)> on_dequeue;
};

/// Shared cancellation flag: submitter sets it, workers poll it at
/// dequeue. Copyable and cheap; one token may cover a whole batch.
using CancelToken = std::shared_ptr<std::atomic<bool>>;
inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

struct Request {
  /// Borrowed; must outlive the request's future (see header comment).
  const list::LinkedList* list = nullptr;
  /// Registry name resolved at submit time ("match4", "match2-erew", …).
  std::string algorithm = "match4";
  /// When set, used verbatim instead of resolving `algorithm`.
  std::optional<core::MatchOptions> options;
  /// Absolute deadline; max() (the default) means none. A request whose
  /// deadline passes before a worker picks it up fails kDeadlineExceeded.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional; null means not cancellable.
  CancelToken cancel;
};

/// One consistent snapshot of service counters (values are monotonically
/// increasing between reset_stats() calls; queue_depth is instantaneous).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t completed = 0;  ///< futures fulfilled by workers
  std::uint64_t ok = 0;         ///< … with an OK result
  std::uint64_t rejected = 0;   ///< refused at submit (full/closed/invalid)
  std::uint64_t cancelled = 0;  ///< failed kCancelled at dequeue
  std::uint64_t expired = 0;    ///< failed kDeadlineExceeded at dequeue
  std::uint64_t failed = 0;     ///< completed with any other non-OK status
  std::size_t queue_depth = 0;
  std::size_t workers = 0;
  /// End-to-end latency (submit → future ready) percentiles, from a
  /// log2-bucketed histogram: each reported value is the upper bound of
  /// the bucket holding that percentile, so it is exact to within 2×.
  std::uint64_t p50_latency_us = 0;
  std::uint64_t p99_latency_us = 0;
  /// Heap allocations inside worker algorithm-execution regions since the
  /// last reset_stats() — the serve-layer steady-state allocation metric.
  /// Zero once every worker's arena is warm (in instrumented binaries;
  /// see support/alloc_counter.h).
  std::uint64_t steady_allocs = 0;
  std::uint64_t arena_takes = 0;  ///< scratch leases across all workers
  std::uint64_t arena_hits = 0;   ///< … satisfied from the pool
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();  ///< calls shutdown()
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one request. Always returns a valid future; errors (bad
  /// request, full queue under kReject, shut-down service) arrive as a
  /// non-OK Result on it, already ready.
  std::future<Result<core::MatchResult>> submit(Request req);

  /// Submit many requests; futures are positionally matched. Under
  /// kBlock this may block between elements when the queue fills.
  std::vector<std::future<Result<core::MatchResult>>> submit_batch(
      std::vector<Request> reqs);

  /// Stop accepting work, drain every accepted request, join workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  /// Zero the counters and histogram and rebase the steady-allocation
  /// baseline (call after warmup to measure the steady state).
  void reset_stats();

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    Request req;
    core::MatchOptions resolved;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<Result<core::MatchResult>> promise;
  };

  void worker_loop(std::size_t worker_index);
  void finish(Job& job, Result<core::MatchResult> result);
  void record_latency(std::chrono::steady_clock::time_point enqueued);

  ServiceOptions options_;
  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};

  // Stats. Plain atomics, relaxed: stats() is a monitoring snapshot, not
  // a synchronization point.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> arena_takes_{0};
  std::atomic<std::uint64_t> arena_hits_{0};
  std::atomic<std::uint64_t> alloc_baseline_{0};
  /// Latency histogram: bucket i counts requests with latency in
  /// (2^(i-1), 2^i] microseconds (bucket 0: <= 1 µs).
  static constexpr std::size_t kLatencyBuckets = 48;
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_{};
};

}  // namespace llmp::serve
