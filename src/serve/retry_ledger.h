// RetryLedger — the supervisor's parking lot for requests in backoff.
//
// Extracted from Service so the park/stop race — the classic way retries
// get dropped at shutdown — is a self-contained, model-checkable unit
// (scenario retry-park-stop in src/mc/scenarios.cpp). The contract that
// the checker verifies: a job handed to park() is *always* accounted for
// exactly once — either park() returns false (the ledger already stopped;
// the caller keeps the job and must fail it itself) or the job comes back
// out of take_due()/drain(). No interleaving of park() against stop() may
// strand a promise.
//
// Threading: park() is called by workers (finish_or_retry) and by the
// supervisor re-parking a bounced retry; wait_due/take_due/drain belong
// to the supervisor loop; stop() is called once by shutdown().
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/sync_policy.h"

namespace llmp::serve {

template <class Job, class Sync = StdSyncPolicy>
class RetryLedger {
 public:
  using clock = std::chrono::steady_clock;

  RetryLedger() = default;
  RetryLedger(const RetryLedger&) = delete;
  RetryLedger& operator=(const RetryLedger&) = delete;

  /// Park `job` until `due`. False once stop() ran: the ledger refuses
  /// custody and the caller must complete the job itself — that refusal
  /// is what makes the park/stop race lossless.
  bool park(clock::time_point due, Job&& job) {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    if (stopped_.r()) return false;
    entries_.w().push_back(Entry{due, std::move(job)});
    cv_.notify_one();
    return true;
  }

  /// Supervisor: sleep until the earliest parked due time, `cap`, a new
  /// park, or stop — whichever comes first. With nothing parked and
  /// cap == time_point::max() this waits untimed (pure event wait).
  void wait_due(clock::time_point cap) {
    std::unique_lock<typename Sync::mutex> lock(mu_);
    clock::time_point next = cap;
    for (const Entry& e : entries_.r()) next = std::min(next, e.due);
    if (next == clock::time_point::max())
      cv_.wait(lock,
               [this] { return stopped_.r() || !entries_.r().empty(); });
    else
      cv_.wait_until(lock, next);
  }

  /// Supervisor: remove and return every job due at or before `now`.
  std::vector<Job> take_due(clock::time_point now) {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    std::vector<Job> due;
    auto& es = entries_.w();
    for (std::size_t i = 0; i < es.size();) {
      if (es[i].due <= now) {
        due.push_back(std::move(es[i].job));
        es[i] = std::move(es.back());
        es.pop_back();
      } else {
        ++i;
      }
    }
    return due;
  }

  /// Refuse further parks and wake the supervisor. Idempotent.
  void stop() {
    {
      std::lock_guard<typename Sync::mutex> lock(mu_);
      stopped_.w() = true;
    }
    cv_.notify_all();
  }

  bool stopped() const {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    return stopped_.r();
  }

  /// Remove and return everything still parked (due or not) so the
  /// caller can flush the promises; meaningful after stop().
  std::vector<Job> drain() {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    std::vector<Job> rest;
    for (Entry& e : entries_.w()) rest.push_back(std::move(e.job));
    entries_.w().clear();
    return rest;
  }

  std::size_t size() const {
    std::lock_guard<typename Sync::mutex> lock(mu_);
    return entries_.r().size();
  }

 private:
  struct Entry {
    clock::time_point due;
    Job job;
  };

  mutable typename Sync::mutex mu_{"retry.mu"};
  typename Sync::condition_variable cv_{"retry.cv"};
  typename Sync::template shared<std::vector<Entry>> entries_{
      {}, "retry.entries"};
  typename Sync::template shared<bool> stopped_{false, "retry.stopped"};
};

}  // namespace llmp::serve
