// BlockedList — a linked list whose node records live in cached blocks.
//
// The blocked counterpart of list::LinkedList (StoragePolicy::kBlocked):
// each node owns one NodeRec in a BlockStore, so at most
// cache_blocks × block_nodes records are in memory at any time however
// long the list is. init() streams the successor array through the cache
// once (the ingest pass — a production ingest would stream from a file
// the same way); to_flat() streams it back out, which is how tests prove
// the round trip is lossless.
//
// Beside the static successor, every NodeRec carries the pointer-doubling
// working pair (jump, dist) the blocked passes mutate in place — keeping
// them in the same record means one pin serves both the read of next and
// the write of the doubling state, halving block traffic versus separate
// stores.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/block.h"
#include "engine/block_store.h"
#include "engine/scheduler.h"
#include "list/linked_list.h"
#include "list/storage.h"
#include "support/status.h"
#include "support/types.h"

namespace llmp::engine {

/// One node's record in the blocked store (16 bytes).
struct NodeRec {
  index_t next = knil;      ///< static successor (knil = tail)
  index_t jump = knil;      ///< doubling pointer; knil = resolved
  std::uint64_t dist = 0;   ///< exact link distance from this node to jump
                            ///< (once resolved: distance to the tail)
};

class BlockedList {
 public:
  /// Build the blocked image of `src` under `cfg`: allocates the cache
  /// frames and maps, then streams every block through the cache. The
  /// one allocation point — reuse an initialized list via reload().
  Status init(const list::LinkedList& src, const BlockConfig& cfg);

  /// Re-stream `src` into an already-initialized list with identical
  /// geometry (size and cfg); performs no allocations.
  Status reload(const list::LinkedList& src);

  std::size_t size() const { return n_; }
  index_t head() const { return head_; }
  index_t tail() const { return tail_; }
  list::StoragePolicy storage_policy() const {
    return list::StoragePolicy::kBlocked;
  }

  const BlockConfig& config() const { return cfg_; }
  std::size_t blocks() const { return store_.blocks(); }

  BlockStore<NodeRec>& store() { return store_; }
  const BlockStore<NodeRec>& store() const { return store_; }
  CacheScheduler& scheduler() { return sched_; }

  /// Stream the successor array back out of the blocked store.
  Status to_flat(std::vector<index_t>& out);

 private:
  Status stream_in(const list::LinkedList& src);

  std::size_t n_ = 0;
  index_t head_ = knil;
  index_t tail_ = knil;
  BlockConfig cfg_;
  CacheScheduler sched_;
  BlockStore<NodeRec> store_;
};

}  // namespace llmp::engine
