// CacheScheduler — ranks blocks by pending pointer work.
//
// The scheduler answers the two questions the blocked passes keep asking:
//
//   * next_block(): which non-resident-work block should the cache pull
//     in next? The one with the most pending mailbox requests, so every
//     load is amortized over the largest batch available.
//   * pick_victim(): which resident frame should be recycled? The block
//     with the least pending work, breaking ties toward the least
//     recently used frame — evicting a block that mail is waiting on
//     would force an immediate swap back.
//
// The scheduler only keeps counters (pending requests per block, an LRU
// tick per block); the mailbox owns the request payloads (mailbox.h) and
// the BlockStore owns the frames (block_store.h). All state is sized once
// in init() and reset without allocation between warm runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace llmp::engine {

class CacheScheduler {
 public:
  /// Size the counters for `blocks` blocks; reuses capacity when called
  /// again with the same or a smaller count.
  void init(std::size_t blocks);

  std::size_t blocks() const { return pending_.size(); }

  /// Mailbox bookkeeping: one request posted to / drained from `block`.
  void note_post(std::size_t block) { ++pending_[block]; }
  void note_drain(std::size_t block) { pending_[block] = 0; }

  std::uint64_t pending(std::size_t block) const { return pending_[block]; }
  std::uint64_t total_pending() const { return total_pending_impl(); }

  /// Mark `block` used now (pin hit or load) for LRU tie-breaking.
  void touch(std::size_t block) { last_use_[block] = ++tick_; }

  /// The block with the most pending requests; `kNone` when no block has
  /// pending work.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t next_block() const;

  /// The best eviction victim among `resident` (block ids): least
  /// pending work, then least recently used. `resident` must be
  /// non-empty; the currently pinned block is excluded by the caller.
  std::size_t pick_victim(const std::vector<std::size_t>& resident) const;

 private:
  std::uint64_t total_pending_impl() const;

  std::vector<std::uint64_t> pending_;
  std::vector<std::uint64_t> last_use_;
  std::uint64_t tick_ = 0;
};

}  // namespace llmp::engine
