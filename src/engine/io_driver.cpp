#include "engine/io_driver.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <unistd.h>

#include "support/check.h"
#include "support/failpoint.h"

namespace llmp::engine {

namespace {

std::string default_spill_dir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr && *tmp != '\0') ? std::string(tmp)
                                          : std::string("/tmp");
}

}  // namespace

IoDriver::~IoDriver() { close(); }

void IoDriver::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  block_bytes_ = 0;
}

Status IoDriver::open(std::size_t block_bytes, const std::string& spill_dir) {
  close();
  if (block_bytes == 0)
    return Status::invalid_argument("IoDriver: block_bytes must be > 0");
  std::string dir = spill_dir.empty() ? default_spill_dir() : spill_dir;
  std::string tmpl = dir + "/llmp-spill-XXXXXX";
  // mkstemp mutates its argument; give it a writable buffer.
  std::string path = tmpl;
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return Status::unavailable("IoDriver: mkstemp under '" + dir +
                               "' failed: " + std::strerror(errno));
  }
  // Unlink immediately: the file lives until the fd closes, and a crash
  // leaves no spill debris behind.
  ::unlink(path.c_str());
  fd_ = fd;
  block_bytes_ = block_bytes;
  return Status();
}

Status IoDriver::write_block(std::size_t block_id, const void* data) {
  LLMP_CHECK_MSG(is_open(), "IoDriver::write_block on a closed driver");
  Status fp = LLMP_FAILPOINT_STATUS("engine.io.spill");
  if (!fp.ok()) return fp;
  const auto* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < block_bytes_) {
    const ssize_t w = ::pwrite(
        fd_, p + done, block_bytes_ - done,
        static_cast<off_t>(block_id * block_bytes_ + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(std::string("IoDriver: pwrite failed: ") +
                                 std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
  return Status();
}

Status IoDriver::read_block(std::size_t block_id, void* data) {
  LLMP_CHECK_MSG(is_open(), "IoDriver::read_block on a closed driver");
  Status fp = LLMP_FAILPOINT_STATUS("engine.io.load");
  if (!fp.ok()) return fp;
  auto* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < block_bytes_) {
    const ssize_t r =
        ::pread(fd_, p + done, block_bytes_ - done,
                static_cast<off_t>(block_id * block_bytes_ + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(std::string("IoDriver: pread failed: ") +
                                 std::strerror(errno));
    }
    if (r == 0) {
      return Status::internal("IoDriver: short read — block " +
                              std::to_string(block_id) + " never written");
    }
    done += static_cast<std::size_t>(r);
  }
  return Status();
}

}  // namespace llmp::engine
