#include "engine/blocked_list.h"

#include "support/check.h"

namespace llmp::engine {

Status BlockedList::init(const list::LinkedList& src, const BlockConfig& cfg) {
  cfg_ = cfg;
  n_ = src.size();
  head_ = src.head();
  tail_ = src.tail();
  sched_.init(n_ == 0 ? 0 : (n_ + cfg.block_nodes - 1) / cfg.block_nodes);
  if (Status s = store_.init(n_, cfg, &sched_); !s.ok()) return s;
  return stream_in(src);
}

Status BlockedList::reload(const list::LinkedList& src) {
  if (src.size() != n_) {
    return Status::invalid_argument(
        "BlockedList::reload: size differs from init()");
  }
  head_ = src.head();
  tail_ = src.tail();
  store_.reset_contents();
  return stream_in(src);
}

Status BlockedList::stream_in(const list::LinkedList& src) {
  const std::size_t bn = store_.block_nodes();
  for (std::size_t b = 0; b < store_.blocks(); ++b) {
    NodeRec* recs = nullptr;
    if (Status s = store_.pin(b, &recs); !s.ok()) return s;
    const std::size_t base = b * bn;
    const std::size_t count = (base + bn <= n_) ? bn : n_ - base;
    for (std::size_t i = 0; i < count; ++i) {
      const index_t v = static_cast<index_t>(base + i);
      recs[i].next = src.next(v);
      recs[i].jump = knil;
      recs[i].dist = 0;
    }
    store_.mark_dirty(b);
  }
  return Status();
}

Status BlockedList::to_flat(std::vector<index_t>& out) {
  out.assign(n_, knil);
  const std::size_t bn = store_.block_nodes();
  for (std::size_t b = 0; b < store_.blocks(); ++b) {
    NodeRec* recs = nullptr;
    if (Status s = store_.pin(b, &recs); !s.ok()) return s;
    const std::size_t base = b * bn;
    const std::size_t count = (base + bn <= n_) ? bn : n_ - base;
    LLMP_DCHECK(base + count <= out.size());
    for (std::size_t i = 0; i < count; ++i) out[base + i] = recs[i].next;
  }
  return Status();
}

}  // namespace llmp::engine
