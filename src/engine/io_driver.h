// IoDriver — the file-backed store behind BlockStore.
//
// One unlinked temp file per driver (created with mkstemp under the
// configured spill dir, unlinked immediately so a crash leaves nothing
// behind); blocks are fixed-size byte ranges addressed by block id via
// pread/pwrite, so there is no in-memory index to grow and concurrent
// drivers never collide. All entry points return Status — IO failure at
// a service boundary must not abort a server — and carry the
// `engine.io.load` / `engine.io.spill` failpoints so the chaos suite can
// inject faults exactly like it does for serve workers.
#pragma once

#include <cstddef>
#include <string>

#include "support/status.h"

namespace llmp::engine {

class IoDriver {
 public:
  IoDriver() = default;
  ~IoDriver();
  IoDriver(const IoDriver&) = delete;
  IoDriver& operator=(const IoDriver&) = delete;

  /// Create the backing file for blocks of `block_bytes` each.
  /// `spill_dir` empty = $TMPDIR or /tmp. Idempotent close+reopen.
  Status open(std::size_t block_bytes, const std::string& spill_dir);

  /// Write block `block_id` (failpoint `engine.io.spill`).
  Status write_block(std::size_t block_id, const void* data);

  /// Read block `block_id` into `data`; the block must have been written
  /// before (failpoint `engine.io.load`).
  Status read_block(std::size_t block_id, void* data);

  bool is_open() const { return fd_ >= 0; }
  std::size_t block_bytes() const { return block_bytes_; }

  void close();

 private:
  int fd_ = -1;
  std::size_t block_bytes_ = 0;
};

}  // namespace llmp::engine
