// Block-partitioned storage: configuration and observability types.
//
// The engine partitions a list's node records into fixed-size blocks and
// keeps at most `cache_blocks` of them resident at a time; the rest live
// in a file-backed store (io_driver.h) and are swapped in on demand by a
// scheduler that ranks blocks by pending pointer work (scheduler.h). The
// point is to run Match/rank passes on lists far larger than the cache
// budget — the memory the engine holds per store is
//
//   cache_blocks × block_nodes × sizeof(record)
//
// regardless of list size. EngineStats is the metrics surface every layer
// above (bench_blocked_ranking, llmp_cli --cache-blocks, serve requests
// with a memory budget) reports through.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace llmp::engine {

/// Shape of the blocked store. `cache_blocks` is the bounded in-memory
/// cache; everything else is spilled. Both knobs must be nonzero.
struct BlockConfig {
  std::size_t block_nodes = 4096;  ///< node records per block
  std::size_t cache_blocks = 8;    ///< resident frames (the cache budget)
  /// Directory for the (unlinked) spill file; empty = $TMPDIR or /tmp.
  std::string spill_dir;
  /// Cap on in-flight cross-block requests before the sweep pauses to
  /// drain mailboxes (bounds transient memory); 0 = 4 × block_nodes.
  std::size_t mailbox_watermark = 0;

  /// Cache budget in bytes for records of `record_bytes` each.
  std::size_t cache_budget_bytes(std::size_t record_bytes) const {
    return cache_blocks * block_nodes * record_bytes;
  }

  /// Config whose cache budget is at most `budget_bytes` for
  /// `record_bytes`-sized records (at least one frame of `block_nodes`).
  static BlockConfig from_budget(std::size_t budget_bytes,
                                 std::size_t record_bytes,
                                 std::size_t block_nodes = 4096) {
    BlockConfig cfg;
    cfg.block_nodes = block_nodes;
    const std::size_t frame_bytes = block_nodes * record_bytes;
    cfg.cache_blocks = frame_bytes == 0 ? 1 : budget_bytes / frame_bytes;
    if (cfg.cache_blocks == 0) cfg.cache_blocks = 1;
    return cfg;
  }
};

/// Where a block currently lives.
enum class Residency : std::uint8_t {
  kUnmaterialized,  ///< never written: loads synthesize the fill value
  kOnDisk,          ///< spilled to the backing file, not resident
  kResident,        ///< in a cache frame, clean (matches the file)
  kDirty,           ///< in a cache frame, modified since load
};

inline const char* to_string(Residency r) {
  switch (r) {
    case Residency::kUnmaterialized: return "unmaterialized";
    case Residency::kOnDisk: return "on-disk";
    case Residency::kResident: return "resident";
    case Residency::kDirty: return "dirty";
  }
  return "?";
}

/// Counters every blocked run reports through the metrics sink. All
/// monotonic within a run; reset() between runs keeps no allocations.
struct EngineStats {
  std::uint64_t hits = 0;        ///< pins served from a resident frame
  std::uint64_t misses = 0;      ///< pins that had to load or materialize
  std::uint64_t loads = 0;       ///< block reads from the backing file
  std::uint64_t spills = 0;      ///< dirty block writes to the backing file
  std::uint64_t evictions = 0;   ///< frames recycled (clean or dirty)
  std::uint64_t swaps = 0;       ///< evict-then-load frame exchanges
  std::uint64_t load_bytes = 0;  ///< bytes read from the backing file
  std::uint64_t spill_bytes = 0;  ///< bytes written to the backing file
  std::uint64_t mailbox_posts = 0;    ///< cross-block requests posted
  std::uint64_t mailbox_batches = 0;  ///< mailbox drains (batched pins)
  std::uint64_t rounds = 0;           ///< pointer-doubling rounds run

  void reset() { *this = EngineStats{}; }

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 1.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  EngineStats& operator+=(const EngineStats& o) {
    hits += o.hits;
    misses += o.misses;
    loads += o.loads;
    spills += o.spills;
    evictions += o.evictions;
    swaps += o.swaps;
    load_bytes += o.load_bytes;
    spill_bytes += o.spill_bytes;
    mailbox_posts += o.mailbox_posts;
    mailbox_batches += o.mailbox_batches;
    rounds += o.rounds;
    return *this;
  }
};

}  // namespace llmp::engine
