// BlockedMatcher — matching and ranking on a BlockedList, out of core.
//
// The flat algorithms walk `next` freely; here every pointer chase that
// would leave the pinned block becomes a mailbox request, and the work
// is restructured into block-local streams the cache can serve:
//
//   1. local pass — stream the blocks once; inside each block, resolve
//      every node's (jump, dist) to its first successor *outside* the
//      block (memoized, O(block) — the intra-block links are enumerated
//      directly, never through the cache).
//   2. doubling rounds — Wyllie's pointer jumping on the contracted
//      jump graph, made locality-friendly: a sweep posts one query per
//      unresolved node into the target block's mailbox; the scheduler
//      then repeatedly pins the block with the most mail and answers the
//      whole batch against one load, posting replies that are applied
//      the same way. dist(v) is always the exact link distance v→jump(v),
//      so asynchronous application (replies landing mid-sweep once the
//      watermark pauses the sweep to drain) preserves correctness while
//      at least doubling every chain per round.
//   3. collect — one ordered stream turns the resolved distances-to-tail
//      into the result: rank(v) = dist(v) (the apps:: convention), and
//      the greedy matching is its parity — in_matching[v] = 1 iff v's
//      distance from the head is even and v has a pointer, which is
//      exactly what core::sequential_matching computes, so the blocked
//      MatchResult is identical to the flat path's.
//
// A matcher is init() once (the only allocations) and rerun warm:
// repeated matching_into/ranking_into calls allocate nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/match_result.h"
#include "engine/blocked_list.h"
#include "engine/mailbox.h"
#include "list/linked_list.h"
#include "pram/stats.h"
#include "support/status.h"

namespace llmp::engine {

class BlockedMatcher {
 public:
  /// Build the blocked image of `src` and size all working state — the
  /// one allocation point. Re-init with a different list re-sizes.
  Status init(const list::LinkedList& src, const BlockConfig& cfg);

  /// The greedy maximal matching, identical to the flat
  /// core::sequential_matching result (in_matching, edges, cost, phases).
  Status matching_into(core::MatchResult& r);

  /// rank[v] = link distance from v to the tail, identical to
  /// apps::sequential_ranking.
  Status ranking_into(std::vector<std::uint64_t>& rank);

  BlockedList& blocked_list() { return list_; }
  const BlockedList& blocked_list() const { return list_; }

  /// All engine counters for the runs since the last reset_stats().
  const EngineStats& stats() const { return list_.store().stats(); }
  void reset_stats() { list_.store().stats().reset(); }

 private:
  /// Phases 1+2: leaves every NodeRec resolved (jump == knil,
  /// dist == distance to tail).
  Status resolve_all();
  Status local_pass();
  Status doubling_round();
  /// Drain mailboxes, most-pending block first, until the total backlog
  /// is at most `target`.
  Status drain_until(std::uint64_t target);

  BlockedList list_;
  MailboxSet queries_;
  MailboxSet replies_;
  std::vector<index_t> stack_;      ///< local-pass chain stack
  std::vector<std::uint8_t> done_;  ///< local-pass per-slot flags
  std::size_t unresolved_ = 0;
  std::uint64_t watermark_ = 0;
};

/// EngineStats mapped onto the PRAM metrics vocabulary so blocked runs
/// feed the same sink (Context::note_phase, bench tables): depth counts
/// doubling rounds, time_p block IO operations, work mailbox traffic,
/// reads/writes the bytes moved through the backing store.
inline pram::Stats to_pram_stats(const EngineStats& e) {
  pram::Stats s;
  s.depth = e.rounds;
  s.time_p = e.loads + e.spills;
  s.work = e.mailbox_posts;
  s.reads = e.load_bytes;
  s.writes = e.spill_bytes;
  return s;
}

}  // namespace llmp::engine
