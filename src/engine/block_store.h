// BlockStore<T> — fixed-size node blocks behind a bounded frame cache.
//
// A store holds `blocks()` logical blocks of `block_nodes` records each,
// but only `cache_blocks` frames of real memory; the rest round-trip
// through an IoDriver backing file. Frames are allocated once in init()
// and reused forever, so warm runs allocate nothing.
//
// Access model: pin(block) makes a block resident and returns its frame;
// the frame stays valid until the next pin()/flush() call, which may
// recycle it (the engine's passes are single-threaded streams working on
// one block at a time, so nothing else is ever needed). A
// caller that wrote through the frame marks the block dirty; only dirty
// blocks are spilled on eviction, so a read-only pass over clean blocks
// costs loads but no spill bytes.
//
// Eviction is delegated to the CacheScheduler: the victim is the resident
// block with the least pending mailbox work (LRU tie-break). The
// `engine.cache.evict` failpoint fires on every eviction, before the
// spill, so the chaos suite can fault the swap path independently of raw
// file IO.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/block.h"
#include "engine/io_driver.h"
#include "engine/scheduler.h"
#include "support/check.h"
#include "support/failpoint.h"
#include "support/status.h"

namespace llmp::engine {

template <class T>
class BlockStore {
 public:
  /// Size the store for `n` records under `cfg`, with `fill` as the
  /// content of never-written blocks. Allocates all frames and maps here
  /// — the only allocation point. Re-init with the same geometry reuses
  /// every buffer.
  Status init(std::size_t n, const BlockConfig& cfg, CacheScheduler* sched,
              const T& fill = T{}) {
    if (cfg.block_nodes == 0 || cfg.cache_blocks == 0) {
      return Status::invalid_argument(
          "BlockStore: block_nodes and cache_blocks must be > 0");
    }
    n_ = n;
    block_nodes_ = cfg.block_nodes;
    blocks_ = n == 0 ? 0 : (n + block_nodes_ - 1) / block_nodes_;
    cache_blocks_ = cfg.cache_blocks < blocks_ ? cfg.cache_blocks : blocks_;
    if (cache_blocks_ == 0) cache_blocks_ = 1;
    sched_ = sched;
    fill_ = fill;

    frames_.resize(cache_blocks_ * block_nodes_);
    frame_block_.assign(cache_blocks_, kNoBlock);
    block_frame_.assign(blocks_, kNoFrame);
    residency_.assign(blocks_, Residency::kUnmaterialized);
    on_file_.assign(blocks_, 0);
    resident_scratch_.clear();
    resident_scratch_.reserve(cache_blocks_);

    // The backing file is only needed once a block can be evicted.
    if (blocks_ > cache_blocks_ || driver_.is_open()) {
      Status s = driver_.open(block_nodes_ * sizeof(T), cfg.spill_dir);
      if (!s.ok()) return s;
    }
    return Status();
  }

  std::size_t size() const { return n_; }
  std::size_t blocks() const { return blocks_; }
  std::size_t block_nodes() const { return block_nodes_; }
  std::size_t cache_blocks() const { return cache_blocks_; }
  std::size_t block_of(std::size_t node) const { return node / block_nodes_; }
  std::size_t slot_of(std::size_t node) const { return node % block_nodes_; }
  Residency residency(std::size_t block) const { return residency_[block]; }
  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }

  /// Make `block` resident and return its frame via *out. The frame is
  /// valid until the next pin()/flush(). Write access: pin then
  /// mark_dirty().
  Status pin(std::size_t block, T** out) {
    LLMP_DCHECK(block < blocks_);
    std::size_t frame = block_frame_[block];
    if (frame != kNoFrame) {
      ++stats_.hits;
      if (sched_ != nullptr) sched_->touch(block);
      *out = frames_.data() + frame * block_nodes_;
      return Status();
    }
    ++stats_.misses;
    bool swapped = false;
    Status s = acquire_frame(&frame, &swapped);
    if (!s.ok()) return s;
    T* data = frames_.data() + frame * block_nodes_;
    if (residency_[block] == Residency::kOnDisk) {
      Status rs = driver_.read_block(block, data);
      if (!rs.ok()) {
        // The frame stays free; the block stays on disk.
        return rs;
      }
      ++stats_.loads;
      stats_.load_bytes += block_nodes_ * sizeof(T);
      if (swapped) ++stats_.swaps;
    } else {
      // Never written: materialize the fill value in place.
      for (std::size_t i = 0; i < block_nodes_; ++i) data[i] = fill_;
    }
    frame_block_[frame] = block;
    block_frame_[block] = frame;
    residency_[block] = Residency::kResident;
    if (sched_ != nullptr) sched_->touch(block);
    *out = data;
    return Status();
  }

  /// Record that the active pinned block's frame was written.
  void mark_dirty(std::size_t block) {
    LLMP_DCHECK(block_frame_[block] != kNoFrame);
    residency_[block] = Residency::kDirty;
  }

  /// Spill every dirty resident block (frames stay resident and clean).
  Status flush() {
    for (std::size_t frame = 0; frame < cache_blocks_; ++frame) {
      const std::size_t block = frame_block_[frame];
      if (block == kNoBlock || residency_[block] != Residency::kDirty)
        continue;
      Status s =
          driver_.write_block(block, frames_.data() + frame * block_nodes_);
      if (!s.ok()) return s;
      ++stats_.spills;
      stats_.spill_bytes += block_nodes_ * sizeof(T);
      on_file_[block] = 1;
      residency_[block] = Residency::kResident;
    }
    return Status();
  }

  /// Forget all contents (blocks revert to the fill value) without
  /// releasing frames or maps — the warm-restart entry point.
  void reset_contents() {
    for (std::size_t frame = 0; frame < cache_blocks_; ++frame)
      frame_block_[frame] = kNoBlock;
    for (std::size_t block = 0; block < blocks_; ++block) {
      block_frame_[block] = kNoFrame;
      residency_[block] = Residency::kUnmaterialized;
      on_file_[block] = 0;
    }
  }

 private:
  static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoFrame = static_cast<std::size_t>(-1);

  /// A free frame, or the scheduler's victim evicted (spilling if dirty).
  Status acquire_frame(std::size_t* frame, bool* swapped) {
    for (std::size_t f = 0; f < cache_blocks_; ++f) {
      if (frame_block_[f] == kNoBlock) {
        *frame = f;
        return Status();
      }
    }
    // All frames occupied: evict the scheduler's pick. Any frame is fair
    // game — pin() invalidates previously returned frames by contract,
    // which is what lets a one-frame cache still make progress.
    resident_scratch_.clear();
    for (std::size_t f = 0; f < cache_blocks_; ++f)
      resident_scratch_.push_back(frame_block_[f]);
    const std::size_t victim = sched_ != nullptr
                                   ? sched_->pick_victim(resident_scratch_)
                                   : resident_scratch_.front();
    LLMP_FAILPOINT("engine.cache.evict");
    const std::size_t vframe = block_frame_[victim];
    if (residency_[victim] == Residency::kDirty) {
      Status s = driver_.write_block(
          victim, frames_.data() + vframe * block_nodes_);
      if (!s.ok()) return s;
      ++stats_.spills;
      stats_.spill_bytes += block_nodes_ * sizeof(T);
      on_file_[victim] = 1;
    }
    // A clean block with no file copy was materialized and never written:
    // its content is still the fill value, so it reverts to
    // kUnmaterialized instead of pretending the file holds it.
    residency_[victim] = on_file_[victim] != 0 ? Residency::kOnDisk
                                               : Residency::kUnmaterialized;
    block_frame_[victim] = kNoFrame;
    frame_block_[vframe] = kNoBlock;
    ++stats_.evictions;
    *frame = vframe;
    *swapped = true;
    return Status();
  }

  std::size_t n_ = 0;
  std::size_t block_nodes_ = 1;
  std::size_t blocks_ = 0;
  std::size_t cache_blocks_ = 0;
  T fill_{};

  std::vector<T> frames_;
  std::vector<std::size_t> frame_block_;  ///< frame -> block (kNoBlock free)
  std::vector<std::size_t> block_frame_;  ///< block -> frame (kNoFrame out)
  std::vector<Residency> residency_;
  std::vector<std::uint8_t> on_file_;  ///< block has a copy in the file
  std::vector<std::size_t> resident_scratch_;

  IoDriver driver_;
  CacheScheduler* sched_ = nullptr;
  EngineStats stats_;
};

}  // namespace llmp::engine
