#include "engine/scheduler.h"

#include "support/check.h"

namespace llmp::engine {

void CacheScheduler::init(std::size_t blocks) {
  pending_.assign(blocks, 0);
  last_use_.assign(blocks, 0);
  tick_ = 0;
}

std::uint64_t CacheScheduler::total_pending_impl() const {
  std::uint64_t total = 0;
  for (const std::uint64_t p : pending_) total += p;
  return total;
}

std::size_t CacheScheduler::next_block() const {
  std::size_t best = kNone;
  std::uint64_t best_pending = 0;
  for (std::size_t b = 0; b < pending_.size(); ++b) {
    if (pending_[b] > best_pending) {
      best = b;
      best_pending = pending_[b];
    }
  }
  return best;
}

std::size_t CacheScheduler::pick_victim(
    const std::vector<std::size_t>& resident) const {
  LLMP_CHECK_MSG(!resident.empty(), "pick_victim with no resident blocks");
  std::size_t best = resident[0];
  for (std::size_t i = 1; i < resident.size(); ++i) {
    const std::size_t b = resident[i];
    if (pending_[b] < pending_[best] ||
        (pending_[b] == pending_[best] && last_use_[b] < last_use_[best])) {
      best = b;
    }
  }
  return best;
}

}  // namespace llmp::engine
