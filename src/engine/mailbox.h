// Per-block mailboxes for cross-block pointer requests.
//
// The blocked passes never chase a pointer into a non-resident block
// directly — that would turn every cross-block link into a random block
// load. Instead they post a small request record into the target block's
// mailbox and keep streaming; the scheduler later pins the block with the
// most mail and drains the whole batch against one load. A request either
// asks a block a question about one of its nodes (kQuery) or delivers a
// finished value to one of its nodes (kReply) — the pointer-doubling pass
// in blocked_match.cpp is built entirely from these two shapes.
//
// Box vectors keep their capacity across clear(), so a warm engine posts
// and drains without allocating once the first run has sized them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/block.h"
#include "engine/scheduler.h"
#include "support/check.h"
#include "support/types.h"

namespace llmp::engine {

/// One cross-block request. For a kQuery, `node` is the queried node in
/// the target block and `origin` the node awaiting the answer; for a
/// kReply, `node` is the destination node in the target block and
/// `jump`/`dist` the delivered successor/distance pair.
struct Request {
  index_t node = knil;
  index_t origin = knil;
  index_t jump = knil;
  std::uint64_t dist = 0;
};

class MailboxSet {
 public:
  /// Size the boxes for `blocks` blocks; keeps per-box capacity when
  /// re-initialized to the same or a smaller count.
  void init(std::size_t blocks) {
    if (boxes_.size() < blocks) boxes_.resize(blocks);
    blocks_ = blocks;
    for (std::size_t b = 0; b < blocks_; ++b) boxes_[b].clear();
  }

  std::size_t blocks() const { return blocks_; }

  void post(std::size_t block, const Request& req, CacheScheduler& sched,
            EngineStats& stats) {
    LLMP_DCHECK(block < blocks_);
    boxes_[block].push_back(req);
    sched.note_post(block);
    ++stats.mailbox_posts;
  }

  bool empty(std::size_t block) const { return boxes_[block].empty(); }

  /// The batch for `block`; the caller drains it in full, then calls
  /// clear(). Kept as a two-step so the drain loop can post new requests
  /// to *other* blocks while iterating this one.
  const std::vector<Request>& batch(std::size_t block) const {
    return boxes_[block];
  }

  void clear(std::size_t block, CacheScheduler& sched, EngineStats& stats) {
    if (!boxes_[block].empty()) ++stats.mailbox_batches;
    boxes_[block].clear();
    sched.note_drain(block);
  }

 private:
  std::vector<std::vector<Request>> boxes_;
  std::size_t blocks_ = 0;
};

}  // namespace llmp::engine
