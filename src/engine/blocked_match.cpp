#include "engine/blocked_match.h"

#include <algorithm>

#include "support/check.h"

namespace llmp::engine {

Status BlockedMatcher::init(const list::LinkedList& src,
                            const BlockConfig& cfg) {
  if (Status s = list_.init(src, cfg); !s.ok()) return s;
  queries_.init(list_.blocks());
  replies_.init(list_.blocks());
  stack_.clear();
  stack_.reserve(cfg.block_nodes);
  done_.assign(cfg.block_nodes, 0);
  watermark_ = cfg.mailbox_watermark != 0
                   ? cfg.mailbox_watermark
                   : static_cast<std::uint64_t>(4 * cfg.block_nodes);
  unresolved_ = 0;
  return Status();
}

Status BlockedMatcher::local_pass() {
  auto& store = list_.store();
  const std::size_t bn = store.block_nodes();
  const std::size_t n = list_.size();
  unresolved_ = 0;
  for (std::size_t b = 0; b < store.blocks(); ++b) {
    NodeRec* recs = nullptr;
    if (Status s = store.pin(b, &recs); !s.ok()) return s;
    const std::size_t base = b * bn;
    const std::size_t count = (base + bn <= n) ? bn : n - base;
    std::fill(done_.begin(), done_.begin() + count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      if (done_[i] != 0) continue;
      // Chase the intra-block chain from slot i until it resolves: hits
      // the tail, exits the block, or reaches an already-resolved slot.
      // In-degree ≤ 1 makes the chain a simple path, so with the done_
      // memo the whole block costs O(block_nodes).
      stack_.clear();
      std::size_t cur = i;
      while (done_[cur] == 0) {
        const index_t nx = recs[cur].next;
        if (nx == knil) {  // the tail: 0 links from itself
          recs[cur].jump = knil;
          recs[cur].dist = 0;
          done_[cur] = 1;
          break;
        }
        if (store.block_of(nx) != b) {  // first successor outside b
          recs[cur].jump = nx;
          recs[cur].dist = 1;
          done_[cur] = 1;
          break;
        }
        stack_.push_back(static_cast<index_t>(cur));
        cur = store.slot_of(nx);
      }
      // Unwind: each pushed slot is one link before the slot after it.
      while (!stack_.empty()) {
        const std::size_t prev = stack_.back();
        stack_.pop_back();
        recs[prev].jump = recs[cur].jump;
        recs[prev].dist = recs[cur].dist + 1;
        done_[prev] = 1;
        cur = prev;
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (recs[i].jump != knil) ++unresolved_;
    }
    store.mark_dirty(b);
  }
  return Status();
}

Status BlockedMatcher::drain_until(std::uint64_t target) {
  auto& store = list_.store();
  auto& sched = list_.scheduler();
  auto& stats = store.stats();
  while (sched.total_pending() > target) {
    const std::size_t b = sched.next_block();
    if (b == CacheScheduler::kNone) break;
    NodeRec* recs = nullptr;
    if (Status s = store.pin(b, &recs); !s.ok()) return s;
    // Answer this block's queries first: replies posted to b itself land
    // in the reply batch processed right below, so one pin serves both.
    for (const Request& q : queries_.batch(b)) {
      const std::size_t slot = store.slot_of(q.node);
      Request reply;
      reply.node = q.origin;
      reply.jump = recs[slot].jump;
      reply.dist = recs[slot].dist;
      replies_.post(store.block_of(q.origin), reply, sched, stats);
    }
    queries_.clear(b, sched, stats);
    bool wrote = false;
    for (const Request& rp : replies_.batch(b)) {
      NodeRec& rec = recs[store.slot_of(rp.node)];
      LLMP_DCHECK(rec.jump != knil);
      rec.dist += rp.dist;
      rec.jump = rp.jump;
      if (rec.jump == knil) --unresolved_;
      wrote = true;
    }
    replies_.clear(b, sched, stats);
    if (wrote) store.mark_dirty(b);
  }
  return Status();
}

Status BlockedMatcher::doubling_round() {
  auto& store = list_.store();
  auto& sched = list_.scheduler();
  auto& stats = store.stats();
  ++stats.rounds;
  const std::size_t bn = store.block_nodes();
  const std::size_t n = list_.size();
  for (std::size_t b = 0; b < store.blocks(); ++b) {
    NodeRec* recs = nullptr;
    if (Status s = store.pin(b, &recs); !s.ok()) return s;
    const std::size_t base = b * bn;
    const std::size_t count = (base + bn <= n) ? bn : n - base;
    bool wrote = false;
    for (std::size_t i = 0; i < count; ++i) {
      const index_t w = recs[i].jump;
      if (w == knil) continue;
      if (store.block_of(w) == b) {
        // Target is in the pinned block: apply the jump inline. Reading
        // a rec already advanced this round is fine — dist is always the
        // exact distance to jump, whatever round the pair is from.
        const NodeRec& target = recs[store.slot_of(w)];
        recs[i].dist += target.dist;
        recs[i].jump = target.jump;
        if (recs[i].jump == knil) --unresolved_;
        wrote = true;
      } else {
        Request q;
        q.node = w;
        q.origin = static_cast<index_t>(base + i);
        queries_.post(store.block_of(w), q, sched, stats);
      }
    }
    if (wrote) store.mark_dirty(b);
    // Bound the in-flight backlog: pause the sweep and let the scheduler
    // drain the fullest mailboxes before posting more.
    if (sched.total_pending() > watermark_) {
      if (Status s = drain_until(watermark_ / 2); !s.ok()) return s;
    }
  }
  return drain_until(0);
}

Status BlockedMatcher::resolve_all() {
  // A faulted previous run may have left mail in flight; start clean
  // (init/assign at unchanged sizes — no allocations).
  queries_.init(list_.blocks());
  replies_.init(list_.blocks());
  list_.scheduler().init(list_.blocks());
  if (Status s = local_pass(); !s.ok()) return s;
  while (unresolved_ > 0) {
    if (Status s = doubling_round(); !s.ok()) return s;
  }
  return Status();
}

Status BlockedMatcher::matching_into(core::MatchResult& r) {
  if (Status s = resolve_all(); !s.ok()) return s;
  auto& store = list_.store();
  const std::size_t bn = store.block_nodes();
  const std::size_t n = list_.size();
  r.reset();
  r.in_matching.assign(n, 0);
  const std::uint64_t total = static_cast<std::uint64_t>(n) - 1;
  for (std::size_t b = 0; b < store.blocks(); ++b) {
    NodeRec* recs = nullptr;
    if (Status s = store.pin(b, &recs); !s.ok()) return s;
    const std::size_t base = b * bn;
    const std::size_t count = (base + bn <= n) ? bn : n - base;
    for (std::size_t i = 0; i < count; ++i) {
      if (recs[i].next == knil) continue;  // the tail has no pointer
      // Greedy-from-head takes every even-distance pointer; distance
      // from the head is total minus the resolved distance to the tail.
      const std::uint64_t from_head = total - recs[i].dist;
      if ((from_head & 1) == 0) {
        r.in_matching[base + i] = 1;
        ++r.edges;
      }
    }
  }
  // Same cost surface as the flat walk (n visits): the engine-level IO
  // metrics live in stats(), keeping the MatchResult byte-identical.
  const std::uint64_t ops = n;
  r.cost = {ops, ops, ops, 0, 0};
  r.phases.push_back({"walk", r.cost});
  return Status();
}

Status BlockedMatcher::ranking_into(std::vector<std::uint64_t>& rank) {
  if (Status s = resolve_all(); !s.ok()) return s;
  auto& store = list_.store();
  const std::size_t bn = store.block_nodes();
  const std::size_t n = list_.size();
  rank.assign(n, 0);
  for (std::size_t b = 0; b < store.blocks(); ++b) {
    NodeRec* recs = nullptr;
    if (Status s = store.pin(b, &recs); !s.ok()) return s;
    const std::size_t base = b * bn;
    const std::size_t count = (base + bn <= n) ? bn : n - base;
    LLMP_DCHECK(base + count <= rank.size());
    for (std::size_t i = 0; i < count; ++i) rank[base + i] = recs[i].dist;
  }
  return Status();
}

}  // namespace llmp::engine
