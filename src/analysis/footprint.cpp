#include "analysis/footprint.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace llmp::analysis {

std::string to_string(Shape shape) {
  switch (shape) {
    case Shape::kEmpty:
      return "empty";
    case Shape::kAffine:
      return "affine";
    case Shape::kBroadcast:
      return "broadcast";
    case Shape::kStrided:
      return "strided";
    case Shape::kIrregular:
      return "irregular";
  }
  return "?";
}

namespace {

struct ProcCells {
  long long proc = 0;
  std::vector<long long> cells;  // sorted, distinct
};

/// Exclusivity of the strided family {a·v + b + s·k : 0 <= k < c} across
/// participants spanning `span` consecutive processor indices. Two
/// participants v != w collide iff a·(v−w) = s·(j−k) has a solution with
/// 0 < |v−w| < span and |j−k| < c. With g = gcd(|a|, s), the minimal
/// positive Δproc admitting a solution is s/g, at which |Δk| = |a|/g; the
/// family is exclusive iff that minimal collision lies outside the ranges.
bool exclusive_strided(long long a, long long s, std::size_t c,
                       std::size_t span) {
  if (a == 0) return span <= 1;
  if (s == 0) return true;  // c == 1 collapses to the affine case
  const long long g = std::gcd(std::llabs(a), std::llabs(s));
  const long long min_dproc = std::llabs(s) / g;
  const long long min_dk = std::llabs(a) / g;
  const bool collision = min_dproc < static_cast<long long>(span) &&
                         min_dk < static_cast<long long>(c);
  return !collision;
}

}  // namespace

Footprint classify_footprint(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& samples) {
  Footprint f;
  if (samples.empty()) {
    f.exclusive = true;
    return f;
  }

  // Group cells by processor, sort, and drop within-processor repeats
  // (a processor revisiting its own cell never conflicts with anyone).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<ProcCells> procs;
  for (const auto& [p, cell] : sorted) {
    if (procs.empty() || procs.back().proc != static_cast<long long>(p))
      procs.push_back({static_cast<long long>(p), {}});
    procs.back().cells.push_back(static_cast<long long>(cell));
  }
  f.participants = procs.size();

  if (procs.size() == 1) {
    // A single participant conflicts with no one, whatever it touches.
    f.exclusive = true;
    f.lone_proc = procs.front().proc;
    const auto& cells = procs.front().cells;
    if (cells.size() == 1) {
      f.shape = Shape::kAffine;
      f.b = cells.front();
    } else {
      const long long s = cells[1] - cells[0];
      bool ap = s > 0;
      for (std::size_t k = 1; ap && k < cells.size(); ++k)
        ap = cells[k] - cells[k - 1] == s;
      if (ap) {
        f.shape = Shape::kStrided;
        f.b = cells.front();
        f.stride = s;
        f.count = cells.size();
      } else {
        f.shape = Shape::kIrregular;
      }
    }
    return f;
  }

  const bool single_cell = std::all_of(
      procs.begin(), procs.end(),
      [](const ProcCells& pc) { return pc.cells.size() == 1; });

  if (single_cell) {
    const bool all_same = std::all_of(
        procs.begin(), procs.end(), [&](const ProcCells& pc) {
          return pc.cells.front() == procs.front().cells.front();
        });
    if (all_same) {
      f.shape = Shape::kBroadcast;
      f.b = procs.front().cells.front();
      return f;  // > 1 participant sharing a cell: not exclusive
    }
    // Fit cell = a·proc + b through the first two participants, then
    // verify every sample. A verified fit with a != 0 is injective over
    // the integers, i.e. exclusive for every problem size.
    const long long dp = procs[1].proc - procs[0].proc;
    const long long dc = procs[1].cells.front() - procs[0].cells.front();
    if (dc % dp == 0) {
      const long long a = dc / dp;
      const long long b = procs[0].cells.front() - a * procs[0].proc;
      const bool fits = std::all_of(
          procs.begin(), procs.end(), [&](const ProcCells& pc) {
            return pc.cells.front() == a * pc.proc + b;
          });
      if (fits && a != 0) {
        f.shape = Shape::kAffine;
        f.a = a;
        f.b = b;
        f.exclusive = true;
        return f;
      }
    }
    f.shape = Shape::kIrregular;
    return f;
  }

  // Multi-cell participants: same cell count, same internal stride, and
  // affine bases — the per-column / blocked pattern.
  const std::size_t c = procs.front().cells.size();
  long long s = c > 1 ? procs.front().cells[1] - procs.front().cells[0] : 0;
  bool strided = s >= 0;
  for (const ProcCells& pc : procs) {
    if (pc.cells.size() != c) {
      strided = false;
      break;
    }
    for (std::size_t k = 1; strided && k < pc.cells.size(); ++k)
      strided = pc.cells[k] - pc.cells[k - 1] == s;
    if (!strided) break;
  }
  if (strided) {
    const long long dp = procs[1].proc - procs[0].proc;
    const long long db = procs[1].cells.front() - procs[0].cells.front();
    if (db % dp == 0) {
      const long long a = db / dp;
      const long long b = procs[0].cells.front() - a * procs[0].proc;
      const bool fits = std::all_of(
          procs.begin(), procs.end(), [&](const ProcCells& pc) {
            return pc.cells.front() == a * pc.proc + b;
          });
      if (fits) {
        f.shape = Shape::kStrided;
        f.a = a;
        f.b = b;
        f.stride = s;
        f.count = c;
        const std::size_t span = static_cast<std::size_t>(
            procs.back().proc - procs.front().proc + 1);
        f.exclusive = exclusive_strided(a, s, c, span);
        return f;
      }
    }
  }
  f.shape = Shape::kIrregular;
  return f;
}

}  // namespace llmp::analysis
