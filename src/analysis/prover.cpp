#include "analysis/prover.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace llmp::analysis {

namespace {

/// Per-cell state during the Machine-equivalent replay. Mirrors
/// pram::Machine's Meta stamps: who read / wrote first this step, whether
/// more than one processor did, and the first written value's hash (the
/// cell's content, which later CRCW-Common writers must match).
struct CellState {
  bool written = false;
  bool wrote_many = false;
  std::uint32_t writer = 0;
  bool hash_valid = false;
  std::uint64_t hash = 0;
  bool read = false;
  bool read_many = false;
  std::uint32_t reader = 0;
};

std::uint64_t cell_key(const Access& a) {
  // Array ids are small and cells are vector indices; 40 bits of cell
  // space is far beyond any run the prover samples.
  return (static_cast<std::uint64_t>(a.array) << 40) | a.cell;
}

}  // namespace

StepReplay replay_step(const StepTrace& step) {
  StepReplay r;
  std::unordered_map<std::uint64_t, CellState> cells;
  for (const Access& a : step.accesses) {
    CellState& st = cells[cell_key(a)];
    if (!a.is_write) {
      if (st.written && (st.wrote_many || st.writer != a.proc))
        r.read_after_write = true;
      if (!st.read) {
        st.read = true;
        st.reader = a.proc;
      } else if (st.read_many || st.reader != a.proc) {
        st.read_many = true;
        r.concurrent_read = true;
      }
    } else {
      if (st.read && (st.read_many || st.reader != a.proc))
        r.read_write_clash = true;
      if (st.written && (st.wrote_many || st.writer != a.proc)) {
        r.concurrent_write = true;
        st.wrote_many = true;
        // Common compares the incoming value against the cell's content,
        // i.e. the first applied write. Unhashable values can't be
        // checked and count as disagreement, exactly like Machine's
        // non-equality-comparable fallback.
        if (!(st.hash_valid && a.has_value && st.hash == a.value_hash))
          r.concurrent_write_diff = true;
      } else if (!st.written) {
        st.written = true;
        st.writer = a.proc;
        st.hash_valid = a.has_value;
        st.hash = a.value_hash;
      } else {
        // Same processor overwriting its own cell: content changes.
        st.hash_valid = a.has_value;
        st.hash = a.value_hash;
      }
    }
  }
  return r;
}

StepAnalysis analyze_step(const StepTrace& step) {
  StepAnalysis out;
  out.replay = replay_step(step);

  bool single_proc = true;
  std::uint32_t first_proc = 0;
  bool any = false;
  std::map<std::uint32_t,
           std::pair<std::vector<std::pair<std::uint32_t, std::uint64_t>>,
                     std::vector<std::pair<std::uint32_t, std::uint64_t>>>>
      by_array;
  for (const Access& a : step.accesses) {
    if (!any) {
      first_proc = a.proc;
      any = true;
    } else if (a.proc != first_proc) {
      single_proc = false;
    }
    auto& slot = by_array[a.array];
    (a.is_write ? slot.second : slot.first).emplace_back(a.proc, a.cell);
  }

  out.reads_exclusive = true;
  out.writes_exclusive = true;
  out.no_read_write_mix = true;
  for (auto& [id, slot] : by_array) {
    ArrayUse use;
    use.array = id;
    use.reads = classify_footprint(slot.first);
    use.writes = classify_footprint(slot.second);
    out.reads_exclusive &= use.reads.exclusive;
    out.writes_exclusive &= use.writes.exclusive;
    // An array both read and written in one step is symbolically safe
    // only when reader and writer provably coincide per cell: identical
    // injective affine forms (the same-processor read-modify-write
    // idiom), or a single participant on both sides. Disjoint
    // data-dependent footprints stay legal concretely but aren't proved.
    if (use.reads.shape != Shape::kEmpty &&
        use.writes.shape != Shape::kEmpty && !single_proc) {
      const bool same_affine = use.reads.shape == Shape::kAffine &&
                               use.writes.shape == Shape::kAffine &&
                               use.reads.a == use.writes.a &&
                               use.reads.b == use.writes.b &&
                               use.writes.a != 0;
      const bool lone_pair = use.reads.participants <= 1 &&
                             use.writes.participants <= 1 &&
                             use.reads.lone_proc == use.writes.lone_proc;
      if (!(same_affine || lone_pair)) out.no_read_write_mix = false;
    }
    out.arrays.push_back(use);
  }

  if (single_proc) {
    // One processor (or no accesses at all) cannot conflict with itself.
    out.erew_proven = out.crew_proven = out.common_proven = true;
  } else {
    out.erew_proven = out.reads_exclusive && out.writes_exclusive &&
                      out.no_read_write_mix;
    out.crew_proven = out.writes_exclusive && out.no_read_write_mix;
    out.common_proven = out.crew_proven;
  }
  return out;
}

namespace {

void count_shape(const Footprint& f, ShapeCounts& c) {
  switch (f.shape) {
    case Shape::kEmpty:
      break;
    case Shape::kAffine:
      ++c.affine;
      break;
    case Shape::kBroadcast:
      ++c.broadcast;
      break;
    case Shape::kStrided:
      ++c.strided;
      break;
    case Shape::kIrregular:
      ++c.irregular;
      break;
  }
}

std::string flag_name(const StepReplay& r) {
  if (r.read_after_write) return "read-after-write";
  if (r.concurrent_write_diff) return "concurrent write (differing values)";
  if (r.concurrent_write) return "concurrent write";
  if (r.read_write_clash) return "read/write clash";
  if (r.concurrent_read) return "concurrent read";
  return "";
}

}  // namespace

RunAnalysis analyze_run(const Trace& trace, std::size_t n) {
  RunAnalysis run;
  run.n = n;
  run.steps = trace.steps.size();
  run.arrays = trace.arrays;
  for (std::size_t s = 0; s < trace.steps.size(); ++s) {
    const StepAnalysis a = analyze_step(trace.steps[s]);
    run.flags.read_after_write |= a.replay.read_after_write;
    run.flags.concurrent_read |= a.replay.concurrent_read;
    run.flags.concurrent_write |= a.replay.concurrent_write;
    run.flags.concurrent_write_diff |= a.replay.concurrent_write_diff;
    run.flags.read_write_clash |= a.replay.read_write_clash;
    run.erew_proven &= a.erew_proven;
    run.crew_proven &= a.crew_proven;
    run.common_proven &= a.common_proven;
    for (const ArrayUse& u : a.arrays) {
      count_shape(u.reads, run.shapes);
      count_shape(u.writes, run.shapes);
    }
    if (run.witness.empty()) {
      const std::string f = flag_name(a.replay);
      if (!f.empty())
        run.witness = "step " + std::to_string(s) + ": " + f;
    }
  }
  return run;
}

std::string to_string(Tier tier) {
  switch (tier) {
    case Tier::kProven:
      return "proven";
    case Tier::kGeneralized:
      return "checked";
    case Tier::kEmpirical:
      return "observed";
  }
  return "?";
}

namespace {

ModeVerdict verdict(const std::vector<RunAnalysis>& runs, bool legal,
                    bool proven) {
  ModeVerdict v;
  v.legal = legal;
  if (!legal) {
    v.tier = Tier::kEmpirical;
  } else if (proven) {
    v.tier = Tier::kProven;
  } else {
    v.tier = runs.size() >= 2 ? Tier::kGeneralized : Tier::kEmpirical;
  }
  return v;
}

}  // namespace

AlgoVerdicts combine_runs(const std::vector<RunAnalysis>& runs) {
  AlgoVerdicts out;
  bool erew_legal = true, crew_legal = true, common_legal = true;
  bool erew_proven = true, crew_proven = true, common_proven = true;
  for (const RunAnalysis& r : runs) {
    const StepReplay& f = r.flags;
    erew_legal &= !(f.read_after_write || f.concurrent_read ||
                    f.concurrent_write || f.read_write_clash);
    crew_legal &= !(f.read_after_write || f.concurrent_write);
    common_legal &= !(f.read_after_write || f.concurrent_write_diff);
    erew_proven &= r.erew_proven;
    crew_proven &= r.crew_proven;
    common_proven &= r.common_proven;
    if (out.witness.empty()) out.witness = r.witness;
  }
  out.erew = verdict(runs, erew_legal, erew_proven);
  out.crew = verdict(runs, crew_legal, crew_proven);
  out.common = verdict(runs, common_legal, common_proven);
  return out;
}

namespace {

std::string pad(std::string s, std::size_t w) {
  if (s.size() < w) s.append(w - s.size(), ' ');
  return s;
}

std::string cell(const ModeVerdict& v) {
  return v.legal ? to_string(v.tier) : "VIOLATED";
}

}  // namespace

std::string format_table(const std::vector<AlgoReport>& reports) {
  std::ostringstream os;
  os << pad("algorithm", 18) << pad("model", 7) << pad("sizes", 13)
     << pad("steps", 7) << pad("EREW", 10) << pad("CREW", 10)
     << pad("COMMON", 10) << "footprints (aff/bc/str/irr)\n";
  os << std::string(96, '-') << '\n';
  for (const AlgoReport& r : reports) {
    std::string sizes;
    for (const RunAnalysis& run : r.runs) {
      if (!sizes.empty()) sizes += ',';
      sizes += std::to_string(run.n);
    }
    const RunAnalysis* big =
        r.runs.empty() ? nullptr : &r.runs.back();
    os << pad(r.name, 18) << pad(r.declared, 7) << pad(sizes, 13)
       << pad(big ? std::to_string(big->steps) : "-", 7)
       << pad(cell(r.verdicts.erew), 10) << pad(cell(r.verdicts.crew), 10)
       << pad(cell(r.verdicts.common), 10);
    if (big) {
      os << big->shapes.affine << '/' << big->shapes.broadcast << '/'
         << big->shapes.strided << '/' << big->shapes.irregular;
    }
    os << '\n';
    if (!r.declared_legal) {
      os << "    !! illegal under declared model " << r.declared;
      if (!r.verdicts.witness.empty())
        os << " — " << r.verdicts.witness;
      os << '\n';
    }
  }
  os << '\n'
     << "verdicts: proven   = legal at every size, discharged "
        "algebraically (holds for all n)\n"
     << "          checked  = legal at every sampled size; some "
        "footprints data-dependent\n"
     << "          observed = legal, but sampled at a single size only\n"
     << "          VIOLATED = a conflict was replayed at some size\n";
  return os.str();
}

}  // namespace llmp::analysis
