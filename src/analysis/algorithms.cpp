#include "analysis/algorithms.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "apps/independent_set.h"
#include "apps/list_prefix.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/match1.h"
#include "core/match2.h"
#include "core/match3.h"
#include "core/match4.h"
#include "core/match_result.h"
#include "core/partition_fn.h"
#include "core/walkdown.h"
#include "support/types.h"

namespace llmp::analysis {

namespace {

template <class Fn>
AlgoSpec spec(std::string name, pram::Mode declared, Fn fn) {
  AlgoSpec s;
  s.name = std::move(name);
  s.declared = declared;
  s.run_symbolic = [fn](SymbolicExec& exec, const list::LinkedList& list) {
    fn(exec, list);
  };
  s.run_machine = [fn](pram::Machine& exec, const list::LinkedList& list) {
    fn(exec, list);
  };
  return s;
}

/// The bare WalkDown schedule on a completed partition: reduce labels to
/// the fixed point, lay the list out in a kFixedPointBound × ceil(n/x)
/// grid, then run WalkDown1 (inter-row pointers) and WalkDown2 (intra-row
/// walk). Mirrors match4's steps 2–4 without the final cut.
template <class Exec>
void walkdown_schedule(Exec& exec, const list::LinkedList& list, bool erew) {
  const std::size_t n = list.size();
  auto pred = core::parallel_predecessors(exec, list);
  std::vector<label_t> labels;
  core::init_address_labels(exec, n, labels);
  if (erew)
    core::reduce_to_constant_erew(exec, list, pred, labels,
                                  core::BitRule::kMostSignificant);
  else
    core::reduce_to_constant(exec, list, labels,
                             core::BitRule::kMostSignificant);
  std::vector<index_t> keys(n);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(keys, v, static_cast<index_t>(m.rd(labels, v)));
  });
  core::Layout2D lay = core::build_layout(
      exec, n, keys, static_cast<std::size_t>(core::kFixedPointBound));
  std::vector<std::uint8_t> color(n);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(color, v, core::kNoColor);
  });
  if (erew) {
    core::ErewWalkState st =
        core::make_erew_walk_state(exec, list, lay, pred);
    core::walkdown1_erew(exec, list, lay, pred, st, color);
    core::walkdown2_erew(exec, list, lay, pred, st, color);
  } else {
    core::walkdown1(exec, list, lay, pred, color);
    core::walkdown2(exec, list, lay, pred, color);
  }
}

}  // namespace

const std::vector<AlgoSpec>& algorithm_registry() {
  static const std::vector<AlgoSpec> kRegistry = [] {
    std::vector<AlgoSpec> r;
    r.push_back(spec("match1", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::match1(exec, list);
                     }));
    r.push_back(spec("match1-erew", pram::Mode::kEREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::Match1Options opt;
                       opt.erew = true;
                       core::match1(exec, list, opt);
                     }));
    r.push_back(spec("match2", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::match2(exec, list);
                     }));
    r.push_back(spec("match2-erew", pram::Mode::kEREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::Match2Options opt;
                       opt.erew = true;
                       core::match2(exec, list, opt);
                     }));
    r.push_back(spec("match3", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::match3(exec, list);
                     }));
    r.push_back(spec("match4", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::match4(exec, list);
                     }));
    r.push_back(spec("match4-table", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::Match4Options opt;
                       opt.partition_with_table = true;
                       core::match4(exec, list, opt);
                     }));
    r.push_back(spec("match4-erew", pram::Mode::kEREW,
                     [](auto& exec, const list::LinkedList& list) {
                       core::Match4Options opt;
                       opt.erew = true;
                       core::match4(exec, list, opt);
                     }));
    r.push_back(spec("walkdown1+2", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       walkdown_schedule(exec, list, /*erew=*/false);
                     }));
    r.push_back(spec("walkdown-erew", pram::Mode::kEREW,
                     [](auto& exec, const list::LinkedList& list) {
                       walkdown_schedule(exec, list, /*erew=*/true);
                     }));
    r.push_back(spec("three-coloring", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       apps::three_coloring(exec, list);
                     }));
    r.push_back(spec("independent-set", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       apps::independent_set(exec, list);
                     }));
    r.push_back(spec("wyllie-ranking", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       apps::wyllie_ranking(exec, list);
                     }));
    r.push_back(spec("contract-ranking", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       apps::contraction_ranking(exec, list);
                     }));
    r.push_back(spec("list-prefix", pram::Mode::kCREW,
                     [](auto& exec, const list::LinkedList& list) {
                       std::vector<std::uint64_t> ones(list.size(), 1);
                       apps::list_prefix<apps::SumMonoid>(exec, list, ones);
                     }));
    return r;
  }();
  return kRegistry;
}

}  // namespace llmp::analysis
