#include "analysis/algorithms.h"

#include "apps/register.h"

namespace llmp::analysis {

const std::vector<const core::AlgorithmEntry*>& algorithm_registry() {
  static const std::vector<const core::AlgorithmEntry*> kRows = [] {
    apps::register_algorithms();
    return core::AlgorithmRegistry::instance().prover_entries();
  }();
  return kRows;
}

}  // namespace llmp::analysis
