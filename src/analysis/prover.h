// The access-pattern prover: from recorded traces to PRAM legality
// verdicts with an explicit proof tier.
//
// Two engines run over every step of a Trace:
//
//   * replay_step — an order-sensitive re-run of pram::Machine's conflict
//     detection on the recorded accesses. It flags exactly the four
//     Violation kinds (read-after-write, concurrent read, concurrent
//     write, read/write clash) plus value-level CRCW-Common disagreement,
//     so for any concrete run the prover and the Machine agree by
//     construction (asserted in tests/analysis_test.cpp).
//
//   * analyze_step — an order-insensitive classification of each array's
//     read and write footprints (footprint.h). When every footprint that
//     a mode's legality depends on is affine (or provably disjoint
//     strided), the step's legality holds for EVERY problem size, not
//     just the sampled one.
//
// Per-mode verdicts over a set of runs at different sizes then carry a
// tier:
//
//   kProven       legal, and every step's obligation was discharged
//                 algebraically at every sampled size — the affine forms
//                 are size-independent, so this is a for-all-n statement
//                 modulo the caveats in docs/ANALYSIS.md.
//   kGeneralized  legal at every sampled size, but some step's footprint
//                 is data-dependent (irregular), so exclusivity was
//                 checked cell-by-cell rather than proved by algebra.
//   kEmpirical    legal, but only one size was sampled.
//
// Illegal verdicts carry a witness string naming the first offending step
// and conflict kind.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/footprint.h"
#include "pram/trace.h"

namespace llmp::analysis {

// Traces are recorded by the pram layer (pram::SymbolicExec, one of the
// four Context backends); the analysis layer consumes them. Aliased here
// so the prover's vocabulary stays analysis::Trace etc.
using pram::Access;
using pram::StepTrace;
using pram::Trace;

/// Machine-equivalent conflict flags for one step (concrete, per run).
struct StepReplay {
  bool read_after_write = false;   // any mode: synchronous-discipline break
  bool concurrent_read = false;    // EREW
  bool concurrent_write = false;   // EREW / CREW: distinct-processor writes
  bool concurrent_write_diff = false;  // CRCW-Common: writers disagreed
  bool read_write_clash = false;   // EREW: distinct procs read + wrote
};

StepReplay replay_step(const StepTrace& step);

/// One array's behaviour within one step.
struct ArrayUse {
  std::uint32_t array = 0;
  Footprint reads, writes;
};

struct StepAnalysis {
  StepReplay replay;
  std::vector<ArrayUse> arrays;
  // Symbolic obligations (hold for every n, by the footprint algebra):
  bool reads_exclusive = false;   // every array's reads exclusive
  bool writes_exclusive = false;  // every array's writes exclusive
  bool no_read_write_mix = false;  // no array both read and written by
                                   // distinct processors except through
                                   // identical affine forms
  // Mode-level symbolic proof for this step:
  bool erew_proven = false;    // exclusive reads + writes + no mixing
  bool crew_proven = false;    // exclusive writes + no mixing
  bool common_proven = false;  // conservative: same as crew_proven
};

StepAnalysis analyze_step(const StepTrace& step);

struct ShapeCounts {
  std::size_t affine = 0, broadcast = 0, strided = 0, irregular = 0;
};

/// Analysis of one full run (one problem size).
struct RunAnalysis {
  std::size_t n = 0;
  std::size_t steps = 0;
  std::size_t arrays = 0;
  StepReplay flags;  ///< OR over all steps
  bool erew_proven = true, crew_proven = true, common_proven = true;
  ShapeCounts shapes;
  std::string witness;  ///< first conflict, e.g. "step 12: concurrent read"
};

RunAnalysis analyze_run(const Trace& trace, std::size_t n);

enum class Tier { kProven, kGeneralized, kEmpirical };

std::string to_string(Tier tier);

struct ModeVerdict {
  bool legal = false;
  Tier tier = Tier::kEmpirical;
};

/// Verdicts for one algorithm across its sampled runs.
struct AlgoVerdicts {
  ModeVerdict erew, crew, common;
  std::string witness;  ///< first illegal witness across runs, if any
};

AlgoVerdicts combine_runs(const std::vector<RunAnalysis>& runs);

/// Row of the llmp_prove output table.
struct AlgoReport {
  std::string name;
  std::string declared;  ///< model the algorithm claims ("EREW"/"CREW")
  std::vector<RunAnalysis> runs;
  AlgoVerdicts verdicts;
  bool declared_legal = false;  ///< legal under the declared model
};

std::string format_table(const std::vector<AlgoReport>& reports);

}  // namespace llmp::analysis
