// The prover's view of the single algorithm registry.
//
// Historically analysis/ kept its own AlgoSpec table; that table and the
// Algorithm switch in core/ have been collapsed into the one
// core::AlgorithmRegistry (core/registry.h). This header is the thin glue
// the prover and its tests use: it guarantees the apps entries are
// registered (core cannot register them itself) and returns the
// prover-swept rows in report order. Each entry's type-erased runner
// executes on a pram::Context over any of the four backends — llmp_prove
// drives the SymbolicExec and Machine instantiations.
#pragma once

#include <vector>

#include "core/registry.h"

namespace llmp::analysis {

/// All prover-swept algorithms in fixed report order: Match1–Match4 (plus
/// their EREW and lookup-table variants), the bare WalkDown1/2 schedule,
/// and the apps built on matching (3-coloring, independent set, ranking,
/// prefix). Ensures apps::register_algorithms() has run.
const std::vector<const core::AlgorithmEntry*>& algorithm_registry();

}  // namespace llmp::analysis
