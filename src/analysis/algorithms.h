// Registry of the algorithms the prover covers.
//
// Each AlgoSpec wraps one algorithm template as two type-erased runners
// instantiated from the SAME generic lambda: one over analysis::
// SymbolicExec (records the trace the prover analyzes) and one over
// pram::Machine (the dynamic checker the prover's replay must agree
// with — asserted in tests/analysis_test.cpp). `declared` is the PRAM
// variant the algorithm is designed for; llmp_prove exits nonzero if any
// algorithm is illegal under its declared model.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/symbolic_exec.h"
#include "list/linked_list.h"
#include "pram/machine.h"

namespace llmp::analysis {

struct AlgoSpec {
  std::string name;
  pram::Mode declared;
  std::function<void(SymbolicExec&, const list::LinkedList&)> run_symbolic;
  std::function<void(pram::Machine&, const list::LinkedList&)> run_machine;
};

/// All registered algorithms: Match1–Match4 (plus their EREW and lookup-
/// table variants), the bare WalkDown1/2 schedule, and the apps built on
/// matching (3-coloring, independent set, ranking, prefix).
const std::vector<AlgoSpec>& algorithm_registry();

}  // namespace llmp::analysis
