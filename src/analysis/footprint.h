// Footprint classification: from concrete access samples to symbolic
// access-pattern shapes.
//
// A footprint is the set of (processor, cell) pairs one array saw for one
// access kind (read or write) within one step. Classification fits the
// samples to progressively richer shapes:
//
//   kAffine     cell(v) = a·v + b with a ≠ 0 — each participant touches
//               exactly one cell, and the map is injective for EVERY
//               problem size, so cross-processor exclusivity is a theorem,
//               not an observation.
//   kBroadcast  cell(v) = b — everyone reads/writes the same cell
//               (exclusive only if at most one participant).
//   kStrided    participant v touches the arithmetic progression
//               a·v + b + s·k for k < c (per-column loops, blocked
//               scans). Exclusivity is discharged by a gcd argument,
//               see exclusive_strided() in footprint.cpp.
//   kIrregular  anything else — typically data-dependent indirection
//               (cells read through next[] or a matching). No symbolic
//               claim; the concrete replay still validates the run.
//
// The prover combines these per-step shapes into EREW/CREW legality
// proofs: an affine write footprint is exclusive at all n, so a step whose
// every write fits kAffine can never produce a concurrent write, whatever
// the input size. See docs/ANALYSIS.md for the soundness caveats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace llmp::analysis {

enum class Shape {
  kEmpty,      ///< no accesses
  kAffine,     ///< one cell per participant, cell = a·proc + b
  kBroadcast,  ///< one shared cell for all participants
  kStrided,    ///< c cells per participant at stride s, affine bases
  kIrregular,  ///< no closed form found
};

std::string to_string(Shape shape);

struct Footprint {
  Shape shape = Shape::kEmpty;
  long long a = 0;          ///< affine/strided: coefficient of proc
  long long b = 0;          ///< affine/strided: offset (base of proc 0 fit)
  long long stride = 0;     ///< strided: distance between a proc's cells
  std::size_t count = 0;    ///< strided: cells per participant
  std::size_t participants = 0;  ///< processors with at least one access
  long long lone_proc = -1;      ///< the participant, when there is one
  /// Cross-processor disjointness holds by algebra (for every n), not just
  /// for the sampled run. Trivially true for <= 1 participant.
  bool exclusive = false;
};

/// Classifies one footprint from its (proc, cell) samples. Samples may
/// repeat (a processor re-touching a cell collapses to one occurrence)
/// and arrive in any order.
Footprint classify_footprint(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& samples);

}  // namespace llmp::analysis
