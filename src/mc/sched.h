// Deterministic cooperative scheduler — one interleaving at a time.
//
// The model checker runs a concurrent test body under a strict token
// discipline: every mc-instrumented operation (mc::mutex, mc::atomic,
// mc::condition_variable, mc::cell, mc::thread) is a *scheduling point*.
// A task reaching one announces its pending operation and parks; whichever
// task holds the token consults the Chooser (the exploration strategy) to
// decide who performs their pending operation next. Exactly one task ever
// executes user code, so a run is fully determined by the sequence of
// choices — which is what makes schedules replayable byte for byte.
//
// Tasks are real std::threads (user code keeps ordinary stacks, RAII and
// exceptions), but there is no host-level parallelism: the token handoff
// is a mutex+condvar handshake, so the host program is race-free even
// though the *modeled* program is being checked for races.
//
// The Execution detects, during perform():
//   * data races      — vector-clock (FastTrack-style epoch) checks on
//                       mc::cell / Sync::shared plain-memory accesses,
//   * deadlocks       — no task enabled, some blocked on mutexes/joins
//                       (the wait-for cycle is reported),
//   * lost wakeups    — no task enabled and every unfinished task sits in
//                       an untimed condition-variable wait (quiescence),
//   * assertion fails — MC_ASSERT inside the body,
//   * livelock        — the per-execution step budget is exhausted.
//
// Exploration policy (DFS order, sleep sets, preemption bound, replay)
// lives in explore.h; this file is only the machinery for running ONE
// schedule and reporting what happened. See docs/MODELCHECK.md.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mc/clock.h"
#include "support/check.h"

namespace llmp::mc {

/// Instrumented operation kinds. Performing one is the unit of modeled
/// time: every perform ticks the acting task's vector clock once.
enum class OpKind : std::uint8_t {
  kMutexLock,    ///< acquire (also a condvar-wait reacquire)
  kMutexUnlock,  ///< release
  kCvWait,       ///< release the mutex and sleep on the condvar
  kCvNotifyOne,  ///< wake one waiter (which one is a scheduling choice)
  kCvNotifyAll,  ///< wake every waiter
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kCellRead,   ///< plain-memory read (race-checked)
  kCellWrite,  ///< plain-memory write (race-checked)
  kSpawn,      ///< mc::thread creation
  kJoin,       ///< mc::thread join (enabled once the target finished)
  kYield,      ///< pure scheduling point, no effect
  kExit,       ///< task finished (implicit, emitted by the wrapper)
};

const char* to_string(OpKind k);

/// A pending/performed operation. `obj`/`obj2` are execution-local object
/// ids (obj2 is the mutex of a condvar wait); `order` carries the memory
/// order of atomic ops for the happens-before edges.
struct Op {
  OpKind kind = OpKind::kYield;
  std::uint32_t obj = 0;
  std::uint32_t obj2 = 0;
  int order = 0;      ///< static_cast<int>(std::memory_order)
  bool timed = false; ///< condvar wait with a deadline (wait_until/for)
};

/// Conservative dependence for partial-order reduction: two operations
/// commute unless they touch a common object and at least one mutates it.
bool dependent(const Op& a, const Op& b);

enum class ViolationKind : std::uint8_t {
  kNone,
  kDataRace,
  kDeadlock,
  kLostWakeup,
  kAssert,
  kStepLimit,
  kDivergence,  ///< a forced replay schedule did not match the body
};

const char* to_string(ViolationKind k);

struct Violation {
  ViolationKind kind = ViolationKind::kNone;
  std::string message;
  /// Chooser-serialized decision sequence that reproduces this violation
  /// (feed to mc::replay / llmp_mc --replay).
  std::string schedule;
  /// Human-readable tail of the event trace leading to the violation.
  std::string trace;
};

/// One enabled-or-blocked task as shown to the Chooser.
struct TaskView {
  std::size_t id = 0;
  Op pending;
  bool enabled = false;
};

/// Everything the Chooser sees at a scheduling point.
struct ChoiceView {
  /// Unfinished tasks that are parked at an announced operation (enabled
  /// or blocked), ascending id. Condvar sleepers are not listed — they
  /// have no pending operation until woken.
  std::vector<TaskView> tasks;
  /// Task that performed the previous operation (the token holder).
  std::size_t current = 0;
  /// True iff `current` appears enabled in `tasks` — choosing someone
  /// else then is a preemption.
  bool current_enabled = false;
};

/// Exploration strategy callbacks, driven by the Execution. Implemented
/// by the DFS explorer and by the fixed-schedule replayer (explore.h).
class Chooser {
 public:
  virtual ~Chooser() = default;
  /// Pick the task id to run next from the enabled tasks in `view`.
  /// Return kPrune to abandon this execution as redundant (sleep sets).
  virtual std::size_t choose_task(const ChoiceView& view) = 0;
  /// Pick which condvar waiter a notify_one wakes.
  virtual std::size_t choose_waiter(const std::vector<std::size_t>& waiters) = 0;
  /// Observe a performed operation (wakes sleep-set members).
  virtual void on_perform(std::size_t task, const Op& op,
                          const ChoiceView& view) {
    (void)task, (void)op, (void)view;
  }
  /// Serialized decision sequence so far (for violation reports).
  virtual std::string schedule_so_far() const = 0;

  static constexpr std::size_t kPrune = static_cast<std::size_t>(-1);
};

enum class ExecStatus : std::uint8_t {
  kDone,       ///< body ran to completion under this schedule
  kViolation,  ///< a violation was detected (see Execution::violation())
  kPruned,     ///< chooser abandoned the run as redundant (sleep sets)
};

/// Runs one interleaving of `body` under a Chooser. Construct fresh per
/// execution; the explorer loops over executions.
class Execution {
 public:
  struct Limits {
    std::size_t max_steps = 20'000;  ///< performs before kStepLimit
    std::size_t max_trace = 64;      ///< trailing events kept for reports
  };

  Execution(Chooser& chooser, Limits limits);
  ~Execution();
  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;

  /// Run `body` as task 0 to completion / violation / prune.
  ExecStatus run(const std::function<void()>& body);

  const Violation& violation() const { return violation_; }
  std::size_t steps() const { return steps_; }

  /// The execution the calling thread is currently modeled by, or null
  /// outside a model-checked body. Shims route through this.
  static Execution* current();

  // -- shim entry points (called by sync.h on the current task's thread) --
  std::uint32_t register_object(OpKind hint, const char* name);
  void op_mutex_lock(std::uint32_t mu);
  void op_mutex_unlock(std::uint32_t mu);
  /// Full condvar wait: release `mu`, sleep, reacquire after wake.
  /// Returns true when woken by a notify, false on a (modeled) timeout.
  bool op_cv_wait(std::uint32_t cv, std::uint32_t mu, bool timed);
  void op_cv_notify(std::uint32_t cv, bool all);
  /// Announce + perform an atomic access; the caller applies the value
  /// effect right after (it still holds the token, so it is serialized).
  void op_atomic(std::uint32_t obj, OpKind kind, int memory_order);
  /// Announce + perform + race-check a plain-memory access.
  void op_cell(std::uint32_t obj, bool write);
  /// Register + start a child task; returns its task id. Runs the child
  /// up to its first scheduling point before returning (so the enabled
  /// set is complete at every choice).
  std::size_t op_spawn(std::function<void()> body, const char* name);
  void op_join(std::size_t task);
  void op_yield();
  /// Report an MC_ASSERT failure at the current point. [[noreturn]] via
  /// the abort exception.
  void fail_assert(const std::string& message);

 private:
  struct Task;
  struct Object;
  struct TerminateTask {};  ///< unwinds parked tasks on abort

  std::size_t self_id() const;
  // Nothing below the op_* entry points throws: helpers record the abort
  // and return false, and each op then exits via bail_locked — which
  // throws TerminateTask only when its caller is plain user code
  // (may_throw, not already unwinding). Ops reachable from destructors
  // (mutex unlock, cv notify) must pass may_throw=false: a destructor is
  // noexcept, and scope exit runs them even with no exception in flight.
  /// Announce `op` and wait for the grant; ticks the clock on success.
  /// False: the execution aborted and the op must bail out.
  bool announce_and_wait(std::unique_lock<std::mutex>& g, const Op& op,
                         bool may_throw);
  /// Choose the next token holder (current task keeps or yields it);
  /// called with the announce already recorded. False on abort/prune.
  bool grant_next(std::unique_lock<std::mutex>& g);
  bool enabled_locked(const Task& t) const;
  ChoiceView view_locked() const;
  /// Post-effect bookkeeping shared by every perform: step accounting
  /// (kStepLimit), trace, the chooser's on_perform, return to user code.
  void finish_perform(std::unique_lock<std::mutex>& g, Task& t, const Op& op,
                      const std::string& extra);
  void wake_waiter_locked(Task& w, std::uint32_t cv, bool by_timeout);
  void record_event(std::size_t id, const Op& op, const std::string& extra);
  /// Record the first violation (later calls are ignored) and flip the
  /// abort flag; never throws.
  void record_abort_locked(ViolationKind kind, const std::string& msg);
  /// Exit path for an op once abort_ is set. Returns false (silent no-op)
  /// or throws TerminateTask to unwind the task.
  bool bail_locked(bool may_throw);
  [[noreturn]] void abort_task_locked();
  std::string deadlock_message_locked() const;
  std::string trace_tail_locked() const;
  void task_wrapper(std::size_t id);
  void finish_task(std::unique_lock<std::mutex>& g, std::size_t id);
  void retire_task_locked(std::size_t id);

  Chooser& chooser_;
  const Limits limits_;

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Object> objects_;
  std::size_t cur_ = 0;        ///< token holder
  std::size_t unfinished_ = 0;
  std::size_t steps_ = 0;
  bool abort_ = false;
  bool pruned_ = false;
  Violation violation_;
  std::deque<std::string> trace_;
};

}  // namespace llmp::mc
