// Umbrella header for the bounded concurrency model checker.
//
//   #include "mc/mc.h"
//   auto rep = llmp::mc::check([] {
//     llmp::mc::mutex mu("mu");
//     llmp::mc::cell<int> x(0, "x");
//     llmp::mc::thread t([&] { std::unique_lock<llmp::mc::mutex> l(mu);
//                              x.w() = 1; }, "writer");
//     { std::unique_lock<llmp::mc::mutex> l(mu); MC_ASSERT(x.r() >= 0); }
//     t.join();
//   });
//   // rep.ok, rep.violation.schedule, ... — see docs/MODELCHECK.md.
#pragma once

#include "mc/clock.h"
#include "mc/explore.h"
#include "mc/sched.h"
#include "mc/sync.h"
