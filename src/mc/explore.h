// Schedule exploration: stateless DFS over the choice tree with sleep-set
// partial-order reduction and a preemption bound, plus fixed-schedule
// replay for reproducing reported violations.
//
// Each execution is one root-to-leaf path through the tree of scheduling
// choices (which task runs next; which waiter a notify_one wakes). The
// explorer replays the shared prefix, takes the next unexplored sibling at
// the deepest backtrack point, and runs the fresh suffix. Sleep sets prune
// sibling orders that only commute independent operations; the preemption
// bound caps how often a run switches away from an enabled current task
// (most real bugs need very few preemptions — Musuvathi & Qadeer's CHESS
// observation). The reduction is sound: every Mazurkiewicz trace keeps a
// representative. The preemption bound and max_executions are honest
// bounds — Report::exhausted says whether the space was fully covered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "mc/sched.h"

namespace llmp::mc {

struct Options {
  /// Max switches away from an enabled running task per execution.
  std::size_t preemption_bound = 2;
  /// Hard cap on explored executions (Report::exhausted=false if hit).
  std::size_t max_executions = 200'000;
  /// Per-execution step budget (livelock guard).
  std::size_t max_steps = 20'000;
  /// Non-zero: deterministically shuffles sibling exploration order
  /// (SplitMix64) — different seeds surface different bugs first.
  std::uint64_t order_seed = 0;
};

struct Report {
  bool ok = true;          ///< no violation found
  bool exhausted = true;   ///< the bounded space was fully explored
  std::size_t executions = 0;  ///< schedules actually run
  std::size_t pruned = 0;      ///< schedules cut by the sleep-set reduction
  Violation violation;         ///< populated when !ok

  /// One-line summary, or the full violation report when !ok.
  std::string to_string() const;
};

/// Exhaustively explore `body` within the bounds. Returns on the first
/// violation (with its replayable schedule) or when the space/limits are
/// exhausted.
Report check(const std::function<void()>& body, const Options& opts = {});

/// Re-run `body` under a recorded schedule (Violation::schedule). Returns
/// the violation it reproduces — kind kNone means the schedule ran clean,
/// kDivergence means body and schedule no longer match.
Violation replay(const std::function<void()>& body,
                 const std::string& schedule);

}  // namespace llmp::mc
