// Instrumented drop-in replacements for the std:: synchronization
// vocabulary, usable only inside a model-checked body (mc::check /
// mc::replay). Each shim registers itself with the active Execution and
// turns every access into a scheduling point, so the explorer can
// interleave tasks at exactly the places real hardware could.
//
// The shims store their values inline with no host-level synchronization:
// the token discipline guarantees at most one task executes user code at a
// time, and every token handoff goes through the Execution's own mutex,
// which provides the host happens-before edges. The *modeled* program's
// races are found by the vector-clock checker, not by the host.
//
// mc::cell<T> has no std:: counterpart: it wraps plain shared data (a
// deque, a bool flag) whose accesses must be ordered by the modeled
// mutexes/atomics. Reads go through .r(), writes through .w(); each is
// race-checked. Do not hold the returned reference across another mc
// operation — re-fetch it instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "mc/sched.h"
#include "support/check.h"

namespace llmp::mc {

namespace detail {
inline Execution& exec() {
  Execution* e = Execution::current();
  LLMP_CHECK_MSG(e != nullptr,
                 "mc:: primitives may only be used inside a model-checked "
                 "body (mc::check / mc::replay)");
  return *e;
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::string msg = std::string("MC_ASSERT failed: ") + expr + " at " + file +
                    ":" + std::to_string(line);
  if (Execution* e = Execution::current()) e->fail_assert(msg);
  throw llmp::check_error(msg);  // outside a checked body: plain failure
}
}  // namespace detail

class mutex {
 public:
  explicit mutex(const char* name = "mutex")
      : id_(detail::exec().register_object(OpKind::kMutexLock, name)) {}
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() { detail::exec().op_mutex_lock(id_); }
  void unlock() { detail::exec().op_mutex_unlock(id_); }

  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

class condition_variable {
 public:
  explicit condition_variable(const char* name = "cv")
      : id_(detail::exec().register_object(OpKind::kCvWait, name)) {}
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void notify_one() { detail::exec().op_cv_notify(id_, /*all=*/false); }
  void notify_all() { detail::exec().op_cv_notify(id_, /*all=*/true); }

  void wait(std::unique_lock<mutex>& lk) {
    detail::exec().op_cv_wait(id_, lk.mutex()->id(), /*timed=*/false);
  }
  template <class Pred>
  void wait(std::unique_lock<mutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  // Timed waits: the model has no wall clock. A timeout fires only when
  // the whole system is otherwise quiescent — "the deadline eventually
  // passes" without enumerating where it falls in every interleaving.
  template <class Clock, class Duration>
  std::cv_status wait_until(std::unique_lock<mutex>& lk,
                            const std::chrono::time_point<Clock, Duration>&) {
    return detail::exec().op_cv_wait(id_, lk.mutex()->id(), /*timed=*/true)
               ? std::cv_status::no_timeout
               : std::cv_status::timeout;
  }
  template <class Clock, class Duration, class Pred>
  bool wait_until(std::unique_lock<mutex>& lk,
                  const std::chrono::time_point<Clock, Duration>& tp,
                  Pred pred) {
    while (!pred())
      if (wait_until(lk, tp) == std::cv_status::timeout) return pred();
    return true;
  }
  template <class Rep, class Period>
  std::cv_status wait_for(std::unique_lock<mutex>& lk,
                          const std::chrono::duration<Rep, Period>&) {
    return detail::exec().op_cv_wait(id_, lk.mutex()->id(), /*timed=*/true)
               ? std::cv_status::no_timeout
               : std::cv_status::timeout;
  }
  template <class Rep, class Period, class Pred>
  bool wait_for(std::unique_lock<mutex>& lk,
                const std::chrono::duration<Rep, Period>& d, Pred pred) {
    while (!pred())
      if (wait_for(lk, d) == std::cv_status::timeout) return pred();
    return true;
  }

 private:
  std::uint32_t id_;
};

template <class T>
class atomic {
 public:
  atomic() : atomic(T{}) {}
  explicit atomic(T v, const char* name = "atomic")
      : v_(v), id_(detail::exec().register_object(OpKind::kAtomicLoad, name)) {}
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    detail::exec().op_atomic(id_, OpKind::kAtomicLoad, static_cast<int>(mo));
    return v_;
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    detail::exec().op_atomic(id_, OpKind::kAtomicStore, static_cast<int>(mo));
    v_ = v;
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    detail::exec().op_atomic(id_, OpKind::kAtomicRmw, static_cast<int>(mo));
    T old = v_;
    v_ = v;
    return old;
  }
  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) {
    detail::exec().op_atomic(id_, OpKind::kAtomicRmw, static_cast<int>(mo));
    T old = v_;
    v_ = static_cast<T>(v_ + d);
    return old;
  }
  T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst) {
    detail::exec().op_atomic(id_, OpKind::kAtomicRmw, static_cast<int>(mo));
    T old = v_;
    v_ = static_cast<T>(v_ - d);
    return old;
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    detail::exec().op_atomic(id_, OpKind::kAtomicRmw, static_cast<int>(mo));
    if (v_ == expected) {
      v_ = desired;
      return true;
    }
    expected = v_;
    return false;
  }

  operator T() const { return load(); }
  T operator=(T v) {
    store(v);
    return v;
  }

 private:
  T v_;
  std::uint32_t id_;
};

/// Plain shared memory under the race detector. Anything the real code
/// guards with a mutex (queue contents, flags) becomes a cell under mc so
/// a missing-lock bug surfaces as a reported data race, not silent
/// corruption.
template <class T>
class cell {
 public:
  cell() : cell(T{}) {}
  explicit cell(T v, const char* name = "cell")
      : v_(std::move(v)),
        id_(detail::exec().register_object(OpKind::kCellWrite, name)) {}
  cell(const cell&) = delete;
  cell& operator=(const cell&) = delete;

  /// Race-checked write access.
  T& w() {
    detail::exec().op_cell(id_, /*write=*/true);
    return v_;
  }
  /// Race-checked read access.
  const T& r() const {
    detail::exec().op_cell(id_, /*write=*/false);
    return v_;
  }

 private:
  T v_;
  std::uint32_t id_;
};

class thread {
 public:
  thread() = default;
  template <class F>
  explicit thread(F f, const char* name = "worker")
      : exec_(&detail::exec()),
        task_(exec_->op_spawn(std::function<void()>(std::move(f)), name)),
        active_(true) {}
  thread(thread&& o) noexcept
      : exec_(o.exec_), task_(o.task_), active_(o.active_) {
    o.active_ = false;
  }
  thread& operator=(thread&& o) noexcept {
    LLMP_CHECK_MSG(!active_, "assigning over an unjoined mc::thread");
    exec_ = o.exec_;
    task_ = o.task_;
    active_ = o.active_;
    o.active_ = false;
    return *this;
  }
  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;
  // No join check in the destructor: abort unwinding tears handles down
  // in arbitrary order; the Execution reaps the real threads itself.
  ~thread() = default;

  bool joinable() const { return active_; }
  void join() {
    LLMP_CHECK_MSG(active_, "mc::thread joined twice (or never started)");
    exec_->op_join(task_);
    active_ = false;
  }
  std::size_t id() const { return task_; }

 private:
  Execution* exec_ = nullptr;
  std::size_t task_ = 0;
  bool active_ = false;
};

namespace this_thread {
/// Pure scheduling point; also how modeled code marks a spin iteration.
inline void yield() { detail::exec().op_yield(); }
}  // namespace this_thread

}  // namespace llmp::mc

/// Property assertion inside a model-checked body. A failure is reported
/// as a violation with the reproducing schedule attached (outside a body
/// it degrades to an LLMP_CHECK-style throw).
#define MC_ASSERT(cond)                                            \
  do {                                                             \
    if (!(cond))                                                   \
      ::llmp::mc::detail::assert_fail(#cond, __FILE__, __LINE__);  \
  } while (0)
