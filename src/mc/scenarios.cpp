#include "mc/scenarios.h"

#include <array>
#include <chrono>
#include <optional>
#include <utility>

#include "mc/sync.h"
#include "serve/retry_ledger.h"
#include "serve/sync_policy.h"
#include "serve/worker_slot.h"
#include "support/check.h"

namespace llmp::mc {

namespace {

using serve::McSyncPolicy;
using serve::QueueMutation;

template <QueueMutation M>
using Queue = serve::BoundedQueue<int, McSyncPolicy, M>;

// ---------------------------------------------------------------------------
// queue-mpmc: 2 producers, 2 consumers, capacity 2, one item each side.
// Property: every pushed value is popped exactly once (no loss, no dup).
// Mutants: kDoublePop loses an item (starved consumer -> deadlock, or the
// final count assert fires); kDroppedAcquire races close() against a
// consumer's locked read of the flag. kLostNotify happens to survive here
// because close()'s notify_all rescues any sleeper — backpressure-block
// and deadline-cancel are the scenarios that kill it.
// ---------------------------------------------------------------------------
template <QueueMutation M>
void queue_mpmc() {
  Queue<M> q(2);
  // Per-value tallies are atomics: either consumer may pop either value,
  // so a plain cell here would itself be a data race (the checker found
  // exactly that in an earlier draft of this scenario).
  atomic<int> seen0{0, "seen0"};
  atomic<int> seen1{0, "seen1"};

  auto consume = [&] {
    std::optional<int> v = q.pop();
    MC_ASSERT(v.has_value());
    if (*v == 0)
      seen0.fetch_add(1);
    else
      seen1.fetch_add(1);
  };
  thread p0([&] { MC_ASSERT(q.push(0)); }, "producer0");
  thread p1([&] { MC_ASSERT(q.push(1)); }, "producer1");
  thread c0(consume, "consumer0");
  thread c1(consume, "consumer1");
  p0.join();
  p1.join();
  q.close();  // concurrent with the consumers: exercises the close race
  c0.join();
  c1.join();
  MC_ASSERT(seen0.load() == 1 && seen1.load() == 1);
}

// ---------------------------------------------------------------------------
// queue-backpressure-block: capacity 1, one producer pushing two items.
// The second push must block until the consumer pops; FIFO order holds.
// kLostNotify leaves the consumer asleep while the producer waits full.
// ---------------------------------------------------------------------------
template <QueueMutation M>
void queue_backpressure_block() {
  Queue<M> q(1);
  cell<int> got{0, "got"};

  thread producer(
      [&] {
        MC_ASSERT(q.push(1));
        MC_ASSERT(q.push(2));  // blocks while full: real backpressure
      },
      "producer");
  thread consumer(
      [&] {
        std::optional<int> a = q.pop();
        std::optional<int> b = q.pop();
        MC_ASSERT(a && *a == 1);  // single producer: FIFO is observable
        MC_ASSERT(b && *b == 2);
        got.w() = 2;
      },
      "consumer");
  producer.join();
  consumer.join();
  MC_ASSERT(got.r() == 2);
  MC_ASSERT(q.size() == 0);
}

// ---------------------------------------------------------------------------
// queue-backpressure-reject: try_push never blocks; a rejected item is
// untouched and succeeds after a slot frees; drain-after-close semantics.
// ---------------------------------------------------------------------------
template <QueueMutation M>
void queue_backpressure_reject() {
  Queue<M> q(1);
  int a = 1;
  int b = 2;
  MC_ASSERT(q.try_push(a));
  MC_ASSERT(!q.try_push(b));  // full: rejected, not blocked
  MC_ASSERT(b == 2);          // rejected item keeps its value

  thread consumer(
      [&] {
        std::optional<int> x = q.pop();
        MC_ASSERT(x && *x == 1);
      },
      "consumer");
  consumer.join();
  MC_ASSERT(q.try_push(b));  // slot freed
  q.close();
  int c = 3;
  MC_ASSERT(!q.try_push(c));  // closed: rejected
  std::optional<int> y = q.pop();
  MC_ASSERT(y && *y == 2);  // queued items drain past close
  MC_ASSERT(!q.pop().has_value());  // closed and drained
}

// ---------------------------------------------------------------------------
// queue-close-drain: close() races a blocking push and a draining pop.
// Property: every *accepted* push is popped — shutdown loses nothing.
// kDroppedAcquire makes close()'s flag write race the locked readers.
// ---------------------------------------------------------------------------
template <QueueMutation M>
void queue_close_drain() {
  Queue<M> q(2);
  cell<int> pushed{0, "pushed"};
  cell<int> popped{0, "popped"};

  thread producer(
      [&] {
        if (q.push(1)) pushed.w() += 1;
        if (q.push(2)) pushed.w() += 1;  // may be refused by the close
      },
      "producer");
  thread closer([&] { q.close(); }, "closer");
  thread consumer(
      [&] {
        while (q.pop().has_value()) popped.w() += 1;
      },
      "consumer");
  producer.join();
  closer.join();
  consumer.join();
  MC_ASSERT(pushed.r() == popped.r());
}

// ---------------------------------------------------------------------------
// queue-deadline-cancel: a cancel flag set concurrently with the worker's
// dequeue — the exact race process_job() resolves. Either outcome is
// legal; the property is that the job completes exactly once, and a
// worker that saw the flag early never also executes the job.
// ---------------------------------------------------------------------------
template <QueueMutation M>
void queue_deadline_cancel() {
  Queue<M> q(1);
  atomic<bool> cancel{false, "cancel"};
  cell<int> outcome{0, "outcome"};  // 1 = executed, 2 = cancelled

  thread submitter(
      [&] {
        MC_ASSERT(q.push(7));
        cancel.store(true, std::memory_order_release);
      },
      "submitter");
  thread worker(
      [&] {
        std::optional<int> job = q.pop();
        MC_ASSERT(job.has_value());
        // Acquire pairs with the submitter's release — the worker's
        // view of the cancel decides the job's single outcome.
        if (cancel.load(std::memory_order_acquire))
          outcome.w() = 2;
        else
          outcome.w() = 1;
      },
      "worker");
  submitter.join();
  worker.join();
  MC_ASSERT(outcome.r() == 1 || outcome.r() == 2);
}

// ---------------------------------------------------------------------------
// retry-park-stop: the shutdown race RetryLedger exists to make lossless.
// A worker parks a retry while shutdown stops the ledger; the job must be
// accounted for exactly once (refused at park, or drained afterwards).
// ---------------------------------------------------------------------------
void retry_park_stop() {
  serve::RetryLedger<int, McSyncPolicy> ledger;
  cell<int> flushed{0, "flushed"};

  thread parker(
      [&] {
        const auto due = std::chrono::steady_clock::time_point::min();
        int job = 42;
        if (!ledger.park(due, std::move(job)))
          flushed.w() += 1;  // refused custody: caller completes it
      },
      "parker");
  thread stopper([&] { ledger.stop(); }, "stopper");
  parker.join();
  stopper.join();
  for (int job : ledger.drain()) {
    (void)job;
    flushed.w() += 1;  // accepted custody: drain completes it
  }
  MC_ASSERT(flushed.r() == 1);  // never lost, never double-completed
}

// ---------------------------------------------------------------------------
// worker-handoff: the watchdog retires a worker mid-request; the worker
// must observe the retire after finishing that request and exit, and the
// busy window the watchdog diagnosed must be fully published.
// ---------------------------------------------------------------------------
void worker_handoff() {
  serve::WorkerSlot<McSyncPolicy> slot;
  cell<int> request_state{0, "request_state"};
  cell<bool> exited{false, "exited"};

  thread worker(
      [&] {
        request_state.w() = 1;  // published by enter()'s release store
        slot.enter(100);
        // ... the request runs (wedged, from the watchdog's view) ...
        slot.leave();
        if (slot.retired()) exited.w() = true;  // handoff: finish then exit
      },
      "worker");
  thread watchdog(
      [&] {
        if (slot.wedged(/*now_us=*/1000, /*threshold_us=*/100)) {
          // Acquire on busy_since_us: a diagnosed wedge implies the
          // worker's pre-enter writes are visible here.
          MC_ASSERT(request_state.r() == 1);
          slot.retire();
        }
      },
      "watchdog");
  worker.join();
  watchdog.join();
  // If the watchdog fired while the worker was still busy, the worker
  // either saw the retire (exited) or legally raced past it — but a
  // retire that lands before leave() must never corrupt the slot.
  MC_ASSERT(!exited.r() || slot.retired());
}

template <QueueMutation M>
std::vector<Scenario> build() {
  const Options tight{.preemption_bound = 2,
                      .max_executions = 200'000,
                      .max_steps = 20'000,
                      .order_seed = 0};
  const Options wide{.preemption_bound = 3,
                     .max_executions = 400'000,
                     .max_steps = 20'000,
                     .order_seed = 0};
  using VK = ViolationKind;
  return {
      {"queue-mpmc",
       "2 producers / 2 consumers over capacity 2: every pushed value "
       "popped exactly once, close() racing the drain",
       [] { queue_mpmc<M>(); },
       tight,
       {VK::kAssert, VK::kDeadlock, VK::kLostWakeup, VK::kDataRace}},
      {"queue-backpressure-block",
       "capacity 1, blocking second push: backpressure unblocks via pop, "
       "FIFO order observable",
       [] { queue_backpressure_block<M>(); },
       wide,
       {VK::kDeadlock, VK::kLostWakeup}},
      {"queue-backpressure-reject",
       "try_push never blocks, rejected items are untouched, queued items "
       "drain past close()",
       [] { queue_backpressure_reject<M>(); },
       wide,
       {VK::kAssert, VK::kDeadlock, VK::kLostWakeup}},
      {"queue-close-drain",
       "close() racing a blocking push and a draining pop: every accepted "
       "item is popped",
       [] { queue_close_drain<M>(); },
       tight,
       {VK::kAssert, VK::kDeadlock, VK::kLostWakeup, VK::kDataRace}},
      {"queue-deadline-cancel",
       "cancel flag set concurrently with dequeue: the job completes "
       "exactly once, acquire sees the release",
       [] { queue_deadline_cancel<M>(); },
       wide,
       {VK::kDeadlock, VK::kLostWakeup}},
      {"retry-park-stop",
       "RetryLedger park() racing stop(): a retry is refused or drained, "
       "never stranded",
       [] { retry_park_stop(); },
       wide,
       {}},
      {"worker-handoff",
       "watchdog retires a busy worker: the wedge diagnosis sees the "
       "published busy window, the worker finishes then exits",
       [] { worker_handoff(); },
       wide,
       {}},
  };
}

}  // namespace

std::vector<Scenario> scenarios(QueueMutation mutation) {
  switch (mutation) {
    case QueueMutation::kNone:
      return build<QueueMutation::kNone>();
    case QueueMutation::kLostNotify:
      return build<QueueMutation::kLostNotify>();
    case QueueMutation::kDoublePop:
      return build<QueueMutation::kDoublePop>();
    case QueueMutation::kDroppedAcquire:
      return build<QueueMutation::kDroppedAcquire>();
  }
  LLMP_CHECK_MSG(false, "unknown QueueMutation");
}

Scenario find_scenario(const std::string& name, QueueMutation mutation) {
  for (Scenario& s : scenarios(mutation))
    if (s.name == name) return std::move(s);
  LLMP_CHECK_MSG(false, "unknown scenario '" << name << "'");
}

QueueMutation parse_mutation(const std::string& name) {
  if (name == "none") return QueueMutation::kNone;
  if (name == "lost-notify") return QueueMutation::kLostNotify;
  if (name == "double-pop") return QueueMutation::kDoublePop;
  if (name == "dropped-acquire") return QueueMutation::kDroppedAcquire;
  LLMP_CHECK_MSG(false, "unknown mutation '" << name
                                             << "' (none, lost-notify, "
                                                "double-pop, dropped-acquire)");
}

const char* to_string(QueueMutation m) {
  switch (m) {
    case QueueMutation::kNone:
      return "none";
    case QueueMutation::kLostNotify:
      return "lost-notify";
    case QueueMutation::kDoublePop:
      return "double-pop";
    case QueueMutation::kDroppedAcquire:
      return "dropped-acquire";
  }
  return "?";
}

}  // namespace llmp::mc
