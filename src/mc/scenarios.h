// Model-check scenarios for the serve primitives.
//
// Each scenario is a closed concurrent test body over the *production*
// serve templates (BoundedQueue, RetryLedger, WorkerSlot) instantiated
// with McSyncPolicy, plus the exploration bounds that make its state
// space exhaustible. The same bodies serve three masters:
//
//   * tools/llmp_mc       — the CLI runner (list / check / replay),
//   * tests/mc_queue_test — the CI regression (clean + mutants caught),
//   * scripts/check.sh mc — the seeded-mutation self-test stage.
//
// A scenario is parameterized by the QueueMutation compiled into the
// queue: kNone must verify clean; each seeded bug must be detected by at
// least one scenario (expected_violation lists the kinds a mutant may
// legitimately surface as — e.g. a lost notify strands a consumer, which
// the checker reports as a deadlock/lost-wakeup at quiescence).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mc/explore.h"
#include "serve/queue.h"

namespace llmp::mc {

struct Scenario {
  std::string name;
  std::string description;
  /// Body for a given seeded mutation (kNone = the real implementation).
  std::function<void()> body;
  /// Exploration bounds tuned so the space is exhaustible in CI.
  Options opts;
  /// Violation kinds this scenario may report for a seeded mutant;
  /// empty = the mutation does not reach this scenario's code path.
  std::vector<ViolationKind> expected_violation;
};

/// All scenarios compiled against `mutation`. Scenario names are stable
/// across mutations (replay schedules stay meaningful).
std::vector<Scenario> scenarios(serve::QueueMutation mutation);

/// Lookup by name; throws check_error when unknown.
Scenario find_scenario(const std::string& name,
                       serve::QueueMutation mutation);

/// Parse "none" / "lost-notify" / "double-pop" / "dropped-acquire".
serve::QueueMutation parse_mutation(const std::string& name);
const char* to_string(serve::QueueMutation m);

}  // namespace llmp::mc
