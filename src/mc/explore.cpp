#include "mc/explore.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace llmp::mc {

namespace {

std::string serialize(const std::vector<std::pair<char, std::size_t>>& path) {
  std::string s;
  for (const auto& [kind, id] : path) {
    if (!s.empty()) s += ',';
    s += kind;
    s += std::to_string(id);
  }
  return s;
}

// ---------------------------------------------------------------------------
// DFS chooser — one instance persists across executions; the trail is the
// current root-to-leaf path plus the explored-sibling bookkeeping needed
// to backtrack.
// ---------------------------------------------------------------------------

class DfsChooser final : public Chooser {
 public:
  explicit DfsChooser(const Options& opts) : opts_(opts) {}

  void begin_execution() {
    depth_ = 0;
    sleep_.clear();
    preemptions_ = 0;
  }

  std::size_t choose_task(const ChoiceView& view) override {
    // Singleton-enabled points are not choices (nothing to record or
    // backtrack to), but if the lone runnable task is asleep this whole
    // continuation is a permutation of one already explored: prune.
    {
      std::vector<std::size_t> enabled;
      for (const TaskView& tv : view.tasks)
        if (tv.enabled) enabled.push_back(tv.id);
      if (enabled.size() == 1)
        return sleep_.count(enabled[0]) != 0 ? kPrune : enabled[0];
    }
    if (depth_ < trail_.size()) {
      // Forced prefix replay: reconstruct the live sleep set (everything
      // asleep at entry plus siblings already fully explored) and the
      // preemption count, then take the recorded branch.
      Entry& e = trail_[depth_];
      LLMP_CHECK_MSG(e.kind == 't',
                     "schedule divergence: expected a task choice");
      sleep_ = e.sleep0;
      for (std::size_t d : e.done)
        if (d != e.chosen) sleep_.insert(d);
      if (e.current_enabled && e.chosen != e.current)
        preemptions_ = e.preemptions + 1;
      else
        preemptions_ = e.preemptions;
      ++depth_;
      return e.chosen;
    }

    Entry e;
    e.kind = 't';
    for (const TaskView& tv : view.tasks)
      if (tv.enabled) e.options.push_back(tv.id);
    e.sleep0 = sleep_;
    e.preemptions = preemptions_;
    e.current = view.current;
    e.current_enabled = view.current_enabled;

    const std::vector<std::size_t> cands = candidates(e, e.sleep0);
    if (cands.empty()) return kPrune;  // all siblings sleeping / bounded out

    e.chosen = cands.front();
    e.done.insert(e.chosen);
    if (e.current_enabled && e.chosen != e.current)
      preemptions_ = e.preemptions + 1;
    trail_.push_back(std::move(e));
    ++depth_;
    return trail_.back().chosen;
  }

  std::size_t choose_waiter(const std::vector<std::size_t>& waiters) override {
    if (depth_ < trail_.size()) {
      Entry& e = trail_[depth_];
      LLMP_CHECK_MSG(e.kind == 'w',
                     "schedule divergence: expected a waiter choice");
      ++depth_;
      return e.chosen;
    }
    Entry e;
    e.kind = 'w';
    e.options = waiters;
    e.chosen = ordered(e.options, depth_).front();
    e.done.insert(e.chosen);
    trail_.push_back(std::move(e));
    ++depth_;
    return trail_.back().chosen;
  }

  void on_perform(std::size_t task, const Op& op,
                  const ChoiceView& view) override {
    (void)task;
    // Wake sleepers whose pending operation does not commute with the one
    // just performed — their deferred schedules are no longer redundant.
    for (auto it = sleep_.begin(); it != sleep_.end();) {
      const TaskView* tv = nullptr;
      for (const TaskView& cand : view.tasks)
        if (cand.id == *it) tv = &cand;
      if (tv == nullptr || dependent(op, tv->pending))
        it = sleep_.erase(it);
      else
        ++it;
    }
  }

  std::string schedule_so_far() const override {
    std::vector<std::pair<char, std::size_t>> path;
    for (std::size_t i = 0; i < depth_ && i < trail_.size(); ++i)
      path.emplace_back(trail_[i].kind, trail_[i].chosen);
    return serialize(path);
  }

  /// Move to the next unexplored sibling at the deepest backtrack point.
  /// False when the whole bounded space is exhausted.
  bool advance() {
    while (!trail_.empty()) {
      Entry& e = trail_.back();
      const std::size_t next = next_sibling(e);
      if (next != kPrune) {
        e.chosen = next;
        e.done.insert(next);
        return true;
      }
      trail_.pop_back();
    }
    return false;
  }

 private:
  struct Entry {
    char kind = 't';  ///< 't' = task choice, 'w' = notify_one waiter choice
    std::vector<std::size_t> options;  ///< enabled tasks / waiters
    std::size_t chosen = 0;
    std::set<std::size_t> done;    ///< siblings already explored
    std::set<std::size_t> sleep0;  ///< sleep set on entry (task choices)
    std::size_t preemptions = 0;   ///< preemptions used before this choice
    std::size_t current = 0;
    bool current_enabled = false;
  };

  /// Exploration order: current-task-first (costs no preemption), then
  /// ascending id; optionally shuffled by order_seed.
  std::vector<std::size_t> ordered(std::vector<std::size_t> ids,
                                   std::size_t depth) const {
    std::sort(ids.begin(), ids.end());
    if (opts_.order_seed != 0) {
      rng::SplitMix64 sm(opts_.order_seed ^ (depth * 0x9e3779b97f4a7c15ULL));
      for (std::size_t i = ids.size(); i > 1; --i) {
        const std::size_t j = sm.next() % i;  // Fisher-Yates: j < i <= size
        LLMP_DCHECK(j < ids.size());
        std::swap(ids[i - 1], ids[j]);
      }
    }
    return ids;
  }

  bool admissible(const Entry& e, std::size_t c) const {
    if (e.preemptions >= opts_.preemption_bound && e.current_enabled &&
        c != e.current)
      return false;  // switching away from a runnable task costs a preemption
    return true;
  }

  std::vector<std::size_t> candidates(const Entry& e,
                                      const std::set<std::size_t>& skip)
      const {
    std::vector<std::size_t> out;
    std::vector<std::size_t> ord = ordered(e.options, e.preemptions);
    if (e.current_enabled) {  // current first: depth-first along no-preempt
      const auto it = std::find(ord.begin(), ord.end(), e.current);
      if (it != ord.end()) {
        ord.erase(it);
        ord.insert(ord.begin(), e.current);
      }
    }
    for (std::size_t c : ord)
      if (skip.count(c) == 0 && e.done.count(c) == 0 && admissible(e, c))
        out.push_back(c);
    return out;
  }

  std::size_t next_sibling(const Entry& e) const {
    if (e.kind == 'w') {
      for (std::size_t c : ordered(e.options, e.preemptions))
        if (e.done.count(c) == 0) return c;
      return kPrune;
    }
    const std::vector<std::size_t> cands = candidates(e, e.sleep0);
    return cands.empty() ? kPrune : cands.front();
  }

  const Options opts_;
  std::vector<Entry> trail_;
  std::size_t depth_ = 0;
  std::set<std::size_t> sleep_;  ///< live sleep set during execution
  std::size_t preemptions_ = 0;
};

// ---------------------------------------------------------------------------
// Replay chooser — consumes a recorded decision string verbatim.
// ---------------------------------------------------------------------------

class ReplayChooser final : public Chooser {
 public:
  explicit ReplayChooser(const std::string& schedule) {
    std::stringstream ss(schedule);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) continue;
      decisions_.emplace_back(tok[0],
                              static_cast<std::size_t>(
                                  std::stoul(tok.substr(1))));
    }
  }

  std::size_t choose_task(const ChoiceView& view) override {
    std::vector<std::size_t> enabled;
    for (const TaskView& tv : view.tasks)
      if (tv.enabled) enabled.push_back(tv.id);
    if (enabled.size() == 1) return enabled[0];  // never a recorded choice
    // Past the recorded decisions any continuation is legal (a recorded
    // violation schedule ends exactly at the violation): default to the
    // lowest enabled id.
    if (next_ >= decisions_.size()) return enabled.empty() ? 0 : enabled[0];
    return consume('t');
  }
  std::size_t choose_waiter(const std::vector<std::size_t>& waiters) override {
    if (next_ >= decisions_.size()) return waiters.front();
    return consume('w');
  }
  std::string schedule_so_far() const override {
    return serialize(std::vector<std::pair<char, std::size_t>>(
        decisions_.begin(),
        decisions_.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(next_, decisions_.size()))));
  }
  bool fully_consumed() const { return next_ >= decisions_.size(); }

 private:
  std::size_t consume(char kind) {
    if (next_ >= decisions_.size() || decisions_[next_].first != kind) {
      // Let the Execution report this as kDivergence: an id that can
      // never be enabled.
      ++next_;
      return static_cast<std::size_t>(-2);
    }
    return decisions_[next_++].second;
  }

  std::vector<std::pair<char, std::size_t>> decisions_;
  std::size_t next_ = 0;
};

}  // namespace

std::string Report::to_string() const {
  std::ostringstream os;
  if (ok) {
    os << "ok: " << executions << " execution(s), " << pruned
       << " pruned, space " << (exhausted ? "exhausted" : "NOT exhausted");
  } else {
    os << "violation (" << llmp::mc::to_string(violation.kind) << ") after "
       << executions << " execution(s): " << violation.message
       << "\n  schedule: " << violation.schedule << "\n  trace:\n"
       << violation.trace;
  }
  return os.str();
}

Report check(const std::function<void()>& body, const Options& opts) {
  DfsChooser chooser(opts);
  Report rep;
  for (;;) {
    if (rep.executions >= opts.max_executions) {
      rep.exhausted = false;
      break;
    }
    chooser.begin_execution();
    Execution exec(chooser, {opts.max_steps, 64});
    const ExecStatus st = exec.run(body);
    ++rep.executions;
    if (st == ExecStatus::kViolation) {
      rep.ok = false;
      rep.exhausted = false;
      rep.violation = exec.violation();
      break;
    }
    if (st == ExecStatus::kPruned) ++rep.pruned;
    if (!chooser.advance()) break;
  }
  return rep;
}

Violation replay(const std::function<void()>& body,
                 const std::string& schedule) {
  ReplayChooser chooser(schedule);
  Execution exec(chooser, {});
  const ExecStatus st = exec.run(body);
  if (st == ExecStatus::kViolation) return exec.violation();
  Violation v;  // kNone: the schedule ran clean
  v.schedule = schedule;
  return v;
}

}  // namespace llmp::mc
