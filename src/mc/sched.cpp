#include "mc/sched.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <exception>
#include <sstream>
#include <utility>

namespace llmp::mc {

namespace {

thread_local Execution* tl_exec = nullptr;
thread_local std::size_t tl_task = 0;

bool acquire_order(int mo) {
  const auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_acquire || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst;
}

bool release_order(int mo) {
  const auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_release || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst;
}

bool is_read_only(const Op& op) {
  return op.kind == OpKind::kAtomicLoad || op.kind == OpKind::kCellRead;
}

}  // namespace

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kMutexLock: return "mutex-lock";
    case OpKind::kMutexUnlock: return "mutex-unlock";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kCvNotifyOne: return "cv-notify-one";
    case OpKind::kCvNotifyAll: return "cv-notify-all";
    case OpKind::kAtomicLoad: return "atomic-load";
    case OpKind::kAtomicStore: return "atomic-store";
    case OpKind::kAtomicRmw: return "atomic-rmw";
    case OpKind::kCellRead: return "cell-read";
    case OpKind::kCellWrite: return "cell-write";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kJoin: return "join";
    case OpKind::kYield: return "yield";
    case OpKind::kExit: return "exit";
  }
  return "?";
}

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kNone: return "none";
    case ViolationKind::kDataRace: return "data-race";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kLostWakeup: return "lost-wakeup";
    case ViolationKind::kAssert: return "assert";
    case ViolationKind::kStepLimit: return "step-limit";
    case ViolationKind::kDivergence: return "divergence";
  }
  return "?";
}

bool dependent(const Op& a, const Op& b) {
  // Two operations commute unless they share an object; two pure reads of
  // the same object commute too. This is deliberately conservative (e.g.
  // two failed try-locks would not commute here) — soundness of the
  // sleep-set reduction only needs over-approximation of dependence.
  const bool share = (a.obj == b.obj) || (a.obj2 != 0 && a.obj2 == b.obj) ||
                     (b.obj2 != 0 && b.obj2 == a.obj) ||
                     (a.obj2 != 0 && a.obj2 == b.obj2);
  if (!share) return false;
  return !(is_read_only(a) && is_read_only(b));
}

// ---------------------------------------------------------------------------
// Internal state.
// ---------------------------------------------------------------------------

struct Execution::Task {
  enum class State : std::uint8_t {
    kRunning,   ///< executing user code (holds the token, or is a fresh
                ///< child racing to its first announce while its spawner
                ///< is parked waiting for it)
    kAtChoice,  ///< parked at an announced pending operation
    kCvSleep,   ///< asleep in a condition-variable wait
    kFinished,
  };

  State state = State::kRunning;
  Op pending;
  bool has_pending = false;
  VectorClock clock;
  std::thread thread;  ///< empty for task 0 (the caller's thread)
  std::function<void()> body;
  std::uint32_t obj = 0;  ///< this task's object id (join/exit dependence)
  std::string name;
  // Condvar bookkeeping while in kCvSleep / the reacquire that follows.
  std::uint32_t waiting_cv = 0;
  std::uint32_t waiting_mu = 0;
  bool timed_wait = false;
  bool woke_by_timeout = false;
};

struct Execution::Object {
  OpKind hint = OpKind::kYield;  ///< registering kind, for trace names
  std::string name;
  VectorClock clock;  ///< mutex release / atomic release-chain / cv notify
  int owner = -1;     ///< mutex owner, -1 = free
  int task_ref = -1;  ///< task objects: the task this object names
  std::vector<std::size_t> waiters;  ///< cv: sleeping tasks, FIFO
  // Plain-memory (cell) race-detector state: last-write epoch plus a
  // last-read epoch per task, FastTrack style.
  std::size_t w_task = kMaxTasks;
  std::uint32_t w_stamp = 0;
  VectorClock w_clock;
  std::array<std::uint32_t, kMaxTasks> r_stamp{};
};

Execution* Execution::current() { return tl_exec; }

std::size_t Execution::self_id() const { return tl_task; }

Execution::Execution(Chooser& chooser, Limits limits)
    : chooser_(chooser), limits_(limits) {}

Execution::~Execution() {
  for (auto& t : tasks_)
    if (t->thread.joinable()) t->thread.join();
}

// ---------------------------------------------------------------------------
// Token handshake.
// ---------------------------------------------------------------------------

bool Execution::enabled_locked(const Task& t) const {
  if (t.state != Task::State::kAtChoice) return false;
  switch (t.pending.kind) {
    case OpKind::kMutexLock:
      return objects_[t.pending.obj].owner < 0;
    case OpKind::kJoin: {
      const int ref = objects_[t.pending.obj].task_ref;
      return ref >= 0 &&
             tasks_[static_cast<std::size_t>(ref)]->state ==
                 Task::State::kFinished;
    }
    default:
      return true;
  }
}

ChoiceView Execution::view_locked() const {
  ChoiceView v;
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    const Task& t = *tasks_[id];
    if (t.state != Task::State::kAtChoice) continue;
    v.tasks.push_back({id, t.pending, enabled_locked(t)});
  }
  v.current = tl_task;
  for (const TaskView& tv : v.tasks)
    if (tv.id == tl_task && tv.enabled) v.current_enabled = true;
  return v;
}

bool Execution::grant_next(std::unique_lock<std::mutex>& g) {
  (void)g;
  for (;;) {
    if (abort_) return false;
    std::vector<std::size_t> enabled;
    for (std::size_t id = 0; id < tasks_.size(); ++id)
      if (enabled_locked(*tasks_[id])) enabled.push_back(id);

    if (!enabled.empty()) {
      // The chooser is consulted even when only one task is enabled: a
      // singleton is not a recordable choice, but the sleep-set strategy
      // may recognize the whole continuation as redundant and prune it.
      const std::size_t chosen = chooser_.choose_task(view_locked());
      if (chosen == Chooser::kPrune) {
        pruned_ = true;
        abort_ = true;
        cv_.notify_all();
        return false;
      }
      if (std::find(enabled.begin(), enabled.end(), chosen) ==
          enabled.end()) {
        record_abort_locked(
            ViolationKind::kDivergence,
            "chooser picked task " + std::to_string(chosen) +
                " which is not enabled at this point");
        return false;
      }
      cur_ = chosen;
      cv_.notify_all();
      return true;
    }

    if (unfinished_ == 0) {  // execution complete; nothing to schedule
      cv_.notify_all();
      return true;
    }

    // Quiescence: nothing can run on its own. Timed condvar waits may
    // now time out (the model fires timeouts only when the system would
    // otherwise be stuck — "eventually" without modeling wall time).
    bool woke = false;
    for (auto& tp : tasks_) {
      Task& t = *tp;
      if (t.state == Task::State::kCvSleep && t.timed_wait) {
        wake_waiter_locked(t, t.waiting_cv, /*by_timeout=*/true);
        woke = true;
      }
    }
    if (woke) continue;

    bool all_cv = true;
    for (const auto& tp : tasks_)
      if (tp->state != Task::State::kFinished &&
          tp->state != Task::State::kCvSleep)
        all_cv = false;
    if (all_cv) {
      std::string msg =
          "lost wakeup: every unfinished task is asleep in an untimed "
          "condition-variable wait with no notify pending (";
      bool first = true;
      for (std::size_t id = 0; id < tasks_.size(); ++id) {
        const Task& t = *tasks_[id];
        if (t.state != Task::State::kCvSleep) continue;
        if (!first) msg += ", ";
        first = false;
        msg += "task " + std::to_string(id) + " on '" +
               objects_[t.waiting_cv].name + "'";
      }
      msg += ")";
      record_abort_locked(ViolationKind::kLostWakeup, msg);
      return false;
    }
    record_abort_locked(ViolationKind::kDeadlock, deadlock_message_locked());
    return false;
  }
}

std::string Execution::deadlock_message_locked() const {
  std::ostringstream os;
  os << "deadlock: no task can run.";
  // Wait-for edges, then a cycle if one exists among mutex waits.
  std::vector<int> waits_on(tasks_.size(), -1);
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    const Task& t = *tasks_[id];
    if (t.state == Task::State::kFinished) continue;
    os << " task " << id << " (" << t.name << ") ";
    if (t.state == Task::State::kCvSleep) {
      os << "waits on cv '" << objects_[t.waiting_cv].name << "';";
    } else if (t.pending.kind == OpKind::kMutexLock) {
      const Object& m = objects_[t.pending.obj];
      os << "waits for mutex '" << m.name << "' held by task " << m.owner
         << ";";
      waits_on[id] = m.owner;
    } else if (t.pending.kind == OpKind::kJoin) {
      os << "waits to join task " << objects_[t.pending.obj].task_ref << ";";
      waits_on[id] = objects_[t.pending.obj].task_ref;
    } else {
      os << "blocked at " << to_string(t.pending.kind) << ";";
    }
  }
  // Follow wait-for edges from each node; a revisit inside one walk is a
  // cycle (the walk is bounded by kMaxTasks, no tortoise needed).
  for (std::size_t start = 0; start < tasks_.size(); ++start) {
    std::vector<std::size_t> path;
    int at = static_cast<int>(start);
    while (at >= 0) {
      const auto it =
          std::find(path.begin(), path.end(), static_cast<std::size_t>(at));
      if (it != path.end()) {
        os << " cycle:";
        for (auto jt = it; jt != path.end(); ++jt) os << " t" << *jt << " ->";
        os << " t" << at;
        return os.str();
      }
      path.push_back(static_cast<std::size_t>(at));
      at = waits_on[static_cast<std::size_t>(at)];
    }
  }
  return os.str();
}

bool Execution::announce_and_wait(std::unique_lock<std::mutex>& g,
                                  const Op& op, bool may_throw) {
  if (abort_) return bail_locked(may_throw);
  Task& self = *tasks_[tl_task];
  self.pending = op;
  self.has_pending = true;
  self.state = Task::State::kAtChoice;
  if (cur_ == tl_task) {
    // We hold the token: this is a scheduling point.
    if (!grant_next(g)) return bail_locked(may_throw);
  } else {
    cv_.notify_all();  // first announce of a fresh child: wake the spawner
  }
  cv_.wait(g, [&] {
    return abort_ || (cur_ == tl_task && self.state == Task::State::kAtChoice);
  });
  if (abort_) return bail_locked(may_throw);
  // Granted: we own the token and now perform the pending op. The tick
  // gives this operation its place in our vector clock.
  self.clock.tick(tl_task);
  return true;
}

void Execution::record_event(std::size_t id, const Op& op,
                             const std::string& extra) {
  const Task& t = *tasks_[id];
  std::ostringstream os;
  os << "#" << steps_ << " t" << id << "/" << t.name << ": "
     << to_string(op.kind);
  if (op.kind != OpKind::kYield && op.kind != OpKind::kExit &&
      op.obj < objects_.size())
    os << " '" << objects_[op.obj].name << "'";
  if (!extra.empty()) os << " " << extra;
  trace_.push_back(os.str());
  while (trace_.size() > limits_.max_trace) trace_.pop_front();
}

void Execution::record_abort_locked(ViolationKind kind,
                                    const std::string& msg) {
  if (!abort_) {
    violation_.kind = kind;
    violation_.message = msg;
    violation_.schedule = chooser_.schedule_so_far();
    violation_.trace = trace_tail_locked();
    abort_ = true;
    cv_.notify_all();
  }
}

bool Execution::bail_locked(bool may_throw) {
  // A destructor-driven op (may_throw=false), or any op reached while a
  // TerminateTask is already unwinding this stack, must not throw — it
  // degrades to a no-op and the task keeps unwinding/retiring on its own.
  if (may_throw && std::uncaught_exceptions() == 0) abort_task_locked();
  return false;
}

void Execution::abort_task_locked() { throw TerminateTask{}; }

std::string Execution::trace_tail_locked() const {
  std::string s;
  for (const std::string& line : trace_) {
    s += "  ";
    s += line;
    s += '\n';
  }
  return s;
}

void Execution::finish_perform(std::unique_lock<std::mutex>& g, Task& t,
                               const Op& op, const std::string& extra) {
  (void)g;
  ++steps_;
  record_event(tl_task, op, extra);
  if (steps_ > limits_.max_steps)
    record_abort_locked(ViolationKind::kStepLimit,
                        "per-execution step budget exhausted (" +
                            std::to_string(limits_.max_steps) +
                            " performs) — livelock or unbounded scenario");
  if (!abort_) chooser_.on_perform(tl_task, op, view_locked());
  t.state = Task::State::kRunning;
  t.has_pending = false;
}

// ---------------------------------------------------------------------------
// Shim entry points.
// ---------------------------------------------------------------------------

std::uint32_t Execution::register_object(OpKind hint, const char* name) {
  std::unique_lock<std::mutex> g(m_);
  Object o;
  o.hint = hint;
  o.name = name == nullptr ? "" : name;
  if (o.name.empty())
    o.name = std::string(to_string(hint)) + "#" +
             std::to_string(objects_.size());
  objects_.push_back(std::move(o));
  return static_cast<std::uint32_t>(objects_.size() - 1);
}

void Execution::op_mutex_lock(std::uint32_t mu) {
  std::unique_lock<std::mutex> g(m_);
  const Op op{OpKind::kMutexLock, mu, 0, 0, false};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return;
  Task& self = *tasks_[tl_task];
  Object& m = objects_[mu];
  LLMP_CHECK_MSG(m.owner < 0, "mc::mutex scheduled while held");
  m.owner = static_cast<int>(tl_task);
  self.clock.join(m.clock);  // acquire: observe the previous release
  finish_perform(g, self, op, "");
}

void Execution::op_mutex_unlock(std::uint32_t mu) {
  std::unique_lock<std::mutex> g(m_);
  const Op op{OpKind::kMutexUnlock, mu, 0, 0, false};
  // may_throw=false: std::unique_lock destructors unlock on plain scope
  // exit; throwing out of them is std::terminate.
  if (!announce_and_wait(g, op, /*may_throw=*/false)) return;
  Task& self = *tasks_[tl_task];
  Object& m = objects_[mu];
  LLMP_CHECK_MSG(m.owner == static_cast<int>(tl_task),
                 "mc::mutex unlocked by a task that does not hold it");
  m.owner = -1;
  m.clock = self.clock;  // release: publish our history to the next owner
  finish_perform(g, self, op, "");
}

bool Execution::op_cv_wait(std::uint32_t cv, std::uint32_t mu, bool timed) {
  std::unique_lock<std::mutex> g(m_);
  const Op op{OpKind::kCvWait, cv, mu, 0, timed};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return false;
  Task& self = *tasks_[tl_task];
  Object& m = objects_[mu];
  LLMP_CHECK_MSG(m.owner == static_cast<int>(tl_task),
                 "mc::condition_variable::wait without holding the mutex");
  // First half: atomically release the mutex and go to sleep.
  m.owner = -1;
  m.clock = self.clock;
  objects_[cv].waiters.push_back(tl_task);
  self.waiting_cv = cv;
  self.waiting_mu = mu;
  self.timed_wait = timed;
  self.woke_by_timeout = false;
  finish_perform(g, self, op, timed ? "(timed)" : "");
  self.state = Task::State::kCvSleep;
  self.has_pending = false;
  if (!grant_next(g)) return bail_locked(/*may_throw=*/true);
  cv_.wait(g, [&] {
    return abort_ || (cur_ == tl_task && self.state == Task::State::kAtChoice);
  });
  if (abort_) return bail_locked(/*may_throw=*/true);
  // Woken (by notify or modeled timeout) and granted the reacquire.
  self.clock.tick(tl_task);
  Object& m2 = objects_[mu];
  LLMP_CHECK_MSG(m2.owner < 0, "cv reacquire scheduled while mutex held");
  m2.owner = static_cast<int>(tl_task);
  self.clock.join(m2.clock);
  finish_perform(g, self, self.pending,
                 self.woke_by_timeout ? "(reacquire after timeout)"
                                      : "(reacquire after notify)");
  return !self.woke_by_timeout;
}

void Execution::wake_waiter_locked(Task& w, std::uint32_t cv,
                                   bool by_timeout) {
  auto& waiters = objects_[cv].waiters;
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    if (tasks_[waiters[i]].get() == &w) {
      waiters.erase(waiters.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  w.state = Task::State::kAtChoice;
  w.pending = Op{OpKind::kMutexLock, w.waiting_mu, cv, 0, false};
  w.has_pending = true;
  w.woke_by_timeout = by_timeout;
  w.timed_wait = false;
  if (!by_timeout)
    w.clock.join(tasks_[tl_task]->clock);  // notify happens-before wake
}

void Execution::op_cv_notify(std::uint32_t cv, bool all) {
  std::unique_lock<std::mutex> g(m_);
  const Op op{all ? OpKind::kCvNotifyAll : OpKind::kCvNotifyOne, cv, 0, 0,
              false};
  // may_throw=false: notify calls can legitimately sit in destructors.
  if (!announce_and_wait(g, op, /*may_throw=*/false)) return;
  Task& self = *tasks_[tl_task];
  Object& c = objects_[cv];
  if (!c.waiters.empty()) {
    if (all) {
      while (!c.waiters.empty())
        wake_waiter_locked(*tasks_[c.waiters.front()], cv, false);
    } else {
      std::size_t chosen = c.waiters.front();
      if (c.waiters.size() >= 2) {
        chosen = chooser_.choose_waiter(c.waiters);
        if (std::find(c.waiters.begin(), c.waiters.end(), chosen) ==
            c.waiters.end()) {
          record_abort_locked(
              ViolationKind::kDivergence,
              "chooser picked a non-waiting task for notify_one");
          return;
        }
      }
      wake_waiter_locked(*tasks_[chosen], cv, false);
    }
  }
  finish_perform(g, self, op, "");
}

void Execution::op_atomic(std::uint32_t obj, OpKind kind, int memory_order) {
  std::unique_lock<std::mutex> g(m_);
  const Op op{kind, obj, 0, memory_order, false};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return;
  Task& self = *tasks_[tl_task];
  Object& o = objects_[obj];
  // Happens-before edges of the C++ model, at seq-cst *interleaving*
  // granularity (loads read the latest store): an acquire-side operation
  // joins the object's release chain; a release store heads a new chain; a
  // relaxed store breaks it (subsequent acquire loads read the relaxed
  // store and synchronize with nothing); RMWs extend the chain.
  const bool reads = kind != OpKind::kAtomicStore;
  const bool writes = kind != OpKind::kAtomicLoad;
  if (reads && acquire_order(memory_order)) self.clock.join(o.clock);
  if (kind == OpKind::kAtomicStore) {
    if (release_order(memory_order))
      o.clock = self.clock;
    else
      o.clock.clear();
  } else if (writes && release_order(memory_order)) {
    o.clock.join(self.clock);  // RMW keeps the chain and adds its edges
  }
  finish_perform(g, self, op, "");
}

void Execution::op_cell(std::uint32_t obj, bool write) {
  std::unique_lock<std::mutex> g(m_);
  const Op op{write ? OpKind::kCellWrite : OpKind::kCellRead, obj, 0, 0,
              false};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return;
  Task& self = *tasks_[tl_task];
  Object& o = objects_[obj];

  auto race = [&](const char* prior, std::size_t prior_task,
                  const VectorClock& prior_clock) {
    std::ostringstream os;
    os << "data race on '" << o.name << "': " << (write ? "write" : "read")
       << " by task " << tl_task << " (clock " << self.clock.to_string()
       << ") is unordered with the " << prior << " by task " << prior_task
       << " (clock " << prior_clock.to_string() << ")";
    record_abort_locked(ViolationKind::kDataRace, os.str());
  };

  if (o.w_task < kMaxTasks && o.w_task != tl_task &&
      !self.clock.observed(o.w_task, o.w_stamp))
    race("write", o.w_task, o.w_clock);
  if (write) {
    for (std::size_t u = 0; u < kMaxTasks; ++u) {
      if (u == tl_task || o.r_stamp[u] == 0) continue;
      if (!self.clock.observed(u, o.r_stamp[u]))
        race("read", u, tasks_[u]->clock);
    }
    if (abort_) {
      bail_locked(/*may_throw=*/true);
      return;
    }
    o.w_task = tl_task;
    o.w_stamp = self.clock.at(tl_task);
    o.w_clock = self.clock;
    o.r_stamp.fill(0);
  } else {
    if (abort_) {
      bail_locked(/*may_throw=*/true);
      return;
    }
    o.r_stamp[tl_task] = self.clock.at(tl_task);
  }
  finish_perform(g, self, op, "");
}

std::size_t Execution::op_spawn(std::function<void()> body,
                                const char* name) {
  std::unique_lock<std::mutex> g(m_);
  // Register the task object first (no scheduling point: it is not yet
  // shared), then announce the spawn against it.
  Object to;
  to.hint = OpKind::kSpawn;
  to.name = name == nullptr ? "task" : name;
  objects_.push_back(std::move(to));
  const auto obj = static_cast<std::uint32_t>(objects_.size() - 1);

  const Op op{OpKind::kSpawn, obj, 0, 0, false};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return 0;
  Task& self = *tasks_[tl_task];

  const std::size_t child = tasks_.size();
  LLMP_CHECK_MSG(child < kMaxTasks,
                 "model-checked bodies are bounded to " +
                     std::to_string(kMaxTasks) + " tasks");
  auto t = std::make_unique<Task>();
  t->body = std::move(body);
  t->name = objects_[obj].name;
  t->obj = obj;
  t->clock = self.clock;  // spawn happens-before everything in the child
  t->clock.tick(child);
  t->state = Task::State::kRunning;
  objects_[obj].task_ref = static_cast<int>(child);
  tasks_.push_back(std::move(t));
  ++unfinished_;
  Task& ct = *tasks_[child];
  ct.thread = std::thread([this, child] { task_wrapper(child); });

  // Run the child up to its first scheduling point (or completion) so the
  // enabled set is total before anyone chooses again. We are parked, so
  // user code still runs one task at a time.
  cv_.wait(g, [&] {
    return abort_ || ct.has_pending || ct.state == Task::State::kFinished;
  });
  if (abort_) {
    bail_locked(/*may_throw=*/true);
    return child;  // unwinding suppressed: hand back a joinable-ish id
  }
  finish_perform(g, self, op, "-> task " + std::to_string(child));
  return child;
}

void Execution::op_join(std::size_t task) {
  std::unique_lock<std::mutex> g(m_);
  LLMP_CHECK(task < tasks_.size());
  const Op op{OpKind::kJoin, tasks_[task]->obj, 0, 0, false};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return;
  Task& self = *tasks_[tl_task];
  self.clock.join(tasks_[task]->clock);  // child end happens-before join
  finish_perform(g, self, op, "task " + std::to_string(task));
}

void Execution::op_yield() {
  std::unique_lock<std::mutex> g(m_);
  const Op op{OpKind::kYield, 0, 0, 0, false};
  if (!announce_and_wait(g, op, /*may_throw=*/true)) return;
  finish_perform(g, *tasks_[tl_task], op, "");
}

void Execution::fail_assert(const std::string& message) {
  std::unique_lock<std::mutex> g(m_);
  record_abort_locked(ViolationKind::kAssert, message);
  bail_locked(/*may_throw=*/true);
}

// ---------------------------------------------------------------------------
// Task lifecycle.
// ---------------------------------------------------------------------------

/// Idempotent unwind bookkeeping: a task may already have gone through
/// finish_task when the abort throw originated inside it (e.g. a prune
/// decided while granting after its exit).
void Execution::retire_task_locked(std::size_t id) {
  Task& t = *tasks_[id];
  if (t.state != Task::State::kFinished) {
    t.state = Task::State::kFinished;
    --unfinished_;
  }
  cv_.notify_all();
}

void Execution::finish_task(std::unique_lock<std::mutex>& g, std::size_t id) {
  if (abort_) {  // the body completed by swallowing no-op shims: teardown
    retire_task_locked(id);
    return;
  }
  Task& t = *tasks_[id];
  t.state = Task::State::kFinished;
  t.has_pending = false;
  t.clock.tick(id);
  --unfinished_;
  const Op op{OpKind::kExit, t.obj, 0, 0, false};
  ++steps_;
  record_event(id, op, "");
  chooser_.on_perform(id, op, view_locked());
  if (unfinished_ > 0 && cur_ == id) {
    if (!grant_next(g)) retire_task_locked(id);  // abort recorded; idempotent
  } else {
    cv_.notify_all();  // wake a parked spawner / joiner / run()
  }
}

void Execution::task_wrapper(std::size_t id) {
  tl_exec = this;
  tl_task = id;
  try {
    tasks_[id]->body();
    std::unique_lock<std::mutex> g(m_);
    finish_task(g, id);
  } catch (const TerminateTask&) {
    std::unique_lock<std::mutex> g(m_);
    retire_task_locked(id);
  } catch (const std::exception& e) {
    std::unique_lock<std::mutex> g(m_);
    if (!abort_) {
      violation_.kind = ViolationKind::kAssert;
      violation_.message =
          std::string("exception escaped a model-checked task: ") + e.what();
      violation_.schedule = chooser_.schedule_so_far();
      violation_.trace = trace_tail_locked();
      abort_ = true;
    }
    retire_task_locked(id);
  }
  tl_exec = nullptr;
}

ExecStatus Execution::run(const std::function<void()>& body) {
  tl_exec = this;
  tl_task = 0;
  {
    std::unique_lock<std::mutex> g(m_);
    Object to;
    to.hint = OpKind::kSpawn;
    to.name = "main";
    to.task_ref = 0;
    objects_.push_back(std::move(to));
    auto t0 = std::make_unique<Task>();
    t0->name = "main";
    t0->obj = 0;
    t0->clock.tick(0);
    tasks_.push_back(std::move(t0));
    unfinished_ = 1;
    cur_ = 0;
  }

  try {
    body();
    std::unique_lock<std::mutex> g(m_);
    finish_task(g, 0);
  } catch (const TerminateTask&) {
    std::unique_lock<std::mutex> g(m_);
    retire_task_locked(0);
  } catch (const std::exception& e) {
    std::unique_lock<std::mutex> g(m_);
    if (!abort_) {
      violation_.kind = ViolationKind::kAssert;
      violation_.message =
          std::string("exception escaped the model-checked body: ") + e.what();
      violation_.schedule = chooser_.schedule_so_far();
      violation_.trace = trace_tail_locked();
      abort_ = true;
    }
    retire_task_locked(0);
  }

  {
    // Wait for the remaining tasks to finish (normally or by unwinding
    // through the abort flag), then reap the real threads.
    std::unique_lock<std::mutex> g(m_);
    cv_.wait(g, [&] { return unfinished_ == 0; });
  }
  for (auto& t : tasks_)
    if (t->thread.joinable()) t->thread.join();
  tl_exec = nullptr;

  if (pruned_) return ExecStatus::kPruned;
  if (violation_.kind != ViolationKind::kNone) return ExecStatus::kViolation;
  return ExecStatus::kDone;
}

}  // namespace llmp::mc
