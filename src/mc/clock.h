// Vector clocks — the happens-before algebra under the model checker.
//
// Every task carries a VectorClock; synchronization objects (mutexes,
// acquire/release atomics, condition variables, thread create/join) copy
// and join clocks to encode the happens-before edges their semantics
// create. Plain-memory accesses (mc::cell / Sync::shared) are then checked
// against these clocks: two conflicting accesses with unordered clocks are
// a data race, reported with the exact schedule that produced them.
//
// Task count is bounded (kMaxTasks) because model-checked scenarios are
// small by design; a fixed array keeps joins branch-free and allocation
// free. Entry t is the number of operations task t had completed when the
// clock was snapshotted — "epochs" in FastTrack terms are (task, entry)
// pairs checked with leq_entry().
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "support/check.h"

namespace llmp::mc {

/// Hard cap on concurrently live tasks in one model-checked execution.
/// Exploration cost is exponential in tasks, so a small bound is a
/// feature, not a limitation.
inline constexpr std::size_t kMaxTasks = 8;

class VectorClock {
 public:
  constexpr VectorClock() : c_{} {}

  std::uint32_t at(std::size_t task) const {
    LLMP_DCHECK(task < kMaxTasks);
    return c_[task];
  }

  /// Advance this task's own component (one per scheduled operation).
  void tick(std::size_t task) {
    LLMP_DCHECK(task < kMaxTasks);
    ++c_[task];
  }

  /// Pointwise maximum: `this` has now observed everything `o` had.
  void join(const VectorClock& o) {
    for (std::size_t t = 0; t < kMaxTasks; ++t)
      if (o.c_[t] > c_[t]) c_[t] = o.c_[t];
  }

  /// True iff every component of `this` is <= the matching one of `o` —
  /// the snapshot `this` happens-before (or equals) the snapshot `o`.
  bool leq(const VectorClock& o) const {
    for (std::size_t t = 0; t < kMaxTasks; ++t)
      if (c_[t] > o.c_[t]) return false;
    return true;
  }

  /// Epoch check: the event (task, stamp) is ordered before a reader
  /// holding clock `this` iff the reader has observed stamp operations of
  /// `task`. This is the race-detector fast path.
  bool observed(std::size_t task, std::uint32_t stamp) const {
    LLMP_DCHECK(task < kMaxTasks);
    return c_[task] >= stamp;
  }

  bool operator==(const VectorClock& o) const { return c_ == o.c_; }

  void clear() { c_.fill(0); }

  /// "[3 0 1 …]" — trailing zero components elided; for race reports.
  std::string to_string() const {
    std::size_t last = kMaxTasks;
    while (last > 1 && c_[last - 1] == 0) --last;
    std::string s = "[";
    for (std::size_t t = 0; t < last; ++t) {
      if (t != 0) s += ' ';
      s += std::to_string(c_[t]);
    }
    s += ']';
    return s;
  }

 private:
  std::array<std::uint32_t, kMaxTasks> c_;
};

}  // namespace llmp::mc
