# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/appendix_eval_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/bits_test[1]_include.cmake")
include("/root/repo/build/tests/crcw_test[1]_include.cmake")
include("/root/repo/build/tests/discipline_test[1]_include.cmake")
include("/root/repo/build/tests/erew_test[1]_include.cmake")
include("/root/repo/build/tests/euler_tour_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/headers_test[1]_include.cmake")
include("/root/repo/build/tests/itlog_test[1]_include.cmake")
include("/root/repo/build/tests/list_prefix_test[1]_include.cmake")
include("/root/repo/build/tests/list_test[1]_include.cmake")
include("/root/repo/build/tests/lookup_table_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/partition_fn_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/prefix_test[1]_include.cmake")
include("/root/repo/build/tests/replicate_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/support_misc_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/walkdown_test[1]_include.cmake")
