add_test([=[Headers.PublicSurfaceIsSelfContained]=]  /root/repo/build/tests/headers_test [==[--gtest_filter=Headers.PublicSurfaceIsSelfContained]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Headers.PublicSurfaceIsSelfContained]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  headers_test_TESTS Headers.PublicSurfaceIsSelfContained)
