# Empty dependencies file for walkdown_test.
# This may be replaced when dependencies are built.
