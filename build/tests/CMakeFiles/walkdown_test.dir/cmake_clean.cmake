file(REMOVE_RECURSE
  "CMakeFiles/walkdown_test.dir/walkdown_test.cpp.o"
  "CMakeFiles/walkdown_test.dir/walkdown_test.cpp.o.d"
  "walkdown_test"
  "walkdown_test.pdb"
  "walkdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walkdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
