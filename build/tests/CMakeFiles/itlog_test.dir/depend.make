# Empty dependencies file for itlog_test.
# This may be replaced when dependencies are built.
