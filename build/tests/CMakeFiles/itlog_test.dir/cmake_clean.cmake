file(REMOVE_RECURSE
  "CMakeFiles/itlog_test.dir/itlog_test.cpp.o"
  "CMakeFiles/itlog_test.dir/itlog_test.cpp.o.d"
  "itlog_test"
  "itlog_test.pdb"
  "itlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
