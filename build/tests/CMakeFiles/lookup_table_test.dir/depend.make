# Empty dependencies file for lookup_table_test.
# This may be replaced when dependencies are built.
