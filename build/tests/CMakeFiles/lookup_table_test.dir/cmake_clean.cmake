file(REMOVE_RECURSE
  "CMakeFiles/lookup_table_test.dir/lookup_table_test.cpp.o"
  "CMakeFiles/lookup_table_test.dir/lookup_table_test.cpp.o.d"
  "lookup_table_test"
  "lookup_table_test.pdb"
  "lookup_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookup_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
