# Empty dependencies file for crcw_test.
# This may be replaced when dependencies are built.
