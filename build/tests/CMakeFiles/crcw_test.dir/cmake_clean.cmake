file(REMOVE_RECURSE
  "CMakeFiles/crcw_test.dir/crcw_test.cpp.o"
  "CMakeFiles/crcw_test.dir/crcw_test.cpp.o.d"
  "crcw_test"
  "crcw_test.pdb"
  "crcw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crcw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
