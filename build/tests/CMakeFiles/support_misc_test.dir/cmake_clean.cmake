file(REMOVE_RECURSE
  "CMakeFiles/support_misc_test.dir/support_misc_test.cpp.o"
  "CMakeFiles/support_misc_test.dir/support_misc_test.cpp.o.d"
  "support_misc_test"
  "support_misc_test.pdb"
  "support_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
