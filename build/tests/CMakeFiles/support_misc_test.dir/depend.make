# Empty dependencies file for support_misc_test.
# This may be replaced when dependencies are built.
