# Empty dependencies file for erew_test.
# This may be replaced when dependencies are built.
