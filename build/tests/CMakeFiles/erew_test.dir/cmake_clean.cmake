file(REMOVE_RECURSE
  "CMakeFiles/erew_test.dir/erew_test.cpp.o"
  "CMakeFiles/erew_test.dir/erew_test.cpp.o.d"
  "erew_test"
  "erew_test.pdb"
  "erew_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
