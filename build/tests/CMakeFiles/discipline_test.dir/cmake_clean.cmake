file(REMOVE_RECURSE
  "CMakeFiles/discipline_test.dir/discipline_test.cpp.o"
  "CMakeFiles/discipline_test.dir/discipline_test.cpp.o.d"
  "discipline_test"
  "discipline_test.pdb"
  "discipline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discipline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
