file(REMOVE_RECURSE
  "CMakeFiles/appendix_eval_test.dir/appendix_eval_test.cpp.o"
  "CMakeFiles/appendix_eval_test.dir/appendix_eval_test.cpp.o.d"
  "appendix_eval_test"
  "appendix_eval_test.pdb"
  "appendix_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
