
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/matching_test.cpp" "tests/CMakeFiles/matching_test.dir/matching_test.cpp.o" "gcc" "tests/CMakeFiles/matching_test.dir/matching_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/llmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/llmp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/list/CMakeFiles/llmp_list.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/llmp_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/llmp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
