file(REMOVE_RECURSE
  "CMakeFiles/list_prefix_test.dir/list_prefix_test.cpp.o"
  "CMakeFiles/list_prefix_test.dir/list_prefix_test.cpp.o.d"
  "list_prefix_test"
  "list_prefix_test.pdb"
  "list_prefix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
