# Empty dependencies file for list_prefix_test.
# This may be replaced when dependencies are built.
