file(REMOVE_RECURSE
  "CMakeFiles/euler_tour_test.dir/euler_tour_test.cpp.o"
  "CMakeFiles/euler_tour_test.dir/euler_tour_test.cpp.o.d"
  "euler_tour_test"
  "euler_tour_test.pdb"
  "euler_tour_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euler_tour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
