# Empty compiler generated dependencies file for euler_tour_test.
# This may be replaced when dependencies are built.
