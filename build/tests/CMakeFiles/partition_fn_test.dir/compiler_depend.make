# Empty compiler generated dependencies file for partition_fn_test.
# This may be replaced when dependencies are built.
