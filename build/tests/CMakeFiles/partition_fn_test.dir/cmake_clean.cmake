file(REMOVE_RECURSE
  "CMakeFiles/partition_fn_test.dir/partition_fn_test.cpp.o"
  "CMakeFiles/partition_fn_test.dir/partition_fn_test.cpp.o.d"
  "partition_fn_test"
  "partition_fn_test.pdb"
  "partition_fn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_fn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
