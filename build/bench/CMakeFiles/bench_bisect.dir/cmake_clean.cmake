file(REMOVE_RECURSE
  "CMakeFiles/bench_bisect.dir/bench_bisect.cpp.o"
  "CMakeFiles/bench_bisect.dir/bench_bisect.cpp.o.d"
  "bench_bisect"
  "bench_bisect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
