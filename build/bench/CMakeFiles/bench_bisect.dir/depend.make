# Empty dependencies file for bench_bisect.
# This may be replaced when dependencies are built.
