file(REMOVE_RECURSE
  "CMakeFiles/bench_match4_optimal.dir/bench_match4_optimal.cpp.o"
  "CMakeFiles/bench_match4_optimal.dir/bench_match4_optimal.cpp.o.d"
  "bench_match4_optimal"
  "bench_match4_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match4_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
