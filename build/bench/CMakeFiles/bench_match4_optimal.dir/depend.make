# Empty dependencies file for bench_match4_optimal.
# This may be replaced when dependencies are built.
