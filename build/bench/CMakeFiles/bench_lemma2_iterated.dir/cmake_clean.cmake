file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma2_iterated.dir/bench_lemma2_iterated.cpp.o"
  "CMakeFiles/bench_lemma2_iterated.dir/bench_lemma2_iterated.cpp.o.d"
  "bench_lemma2_iterated"
  "bench_lemma2_iterated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma2_iterated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
