# Empty compiler generated dependencies file for bench_lemma2_iterated.
# This may be replaced when dependencies are built.
