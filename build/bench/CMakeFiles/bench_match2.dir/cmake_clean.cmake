file(REMOVE_RECURSE
  "CMakeFiles/bench_match2.dir/bench_match2.cpp.o"
  "CMakeFiles/bench_match2.dir/bench_match2.cpp.o.d"
  "bench_match2"
  "bench_match2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
