# Empty dependencies file for bench_match2.
# This may be replaced when dependencies are built.
