# Empty compiler generated dependencies file for bench_walkdown.
# This may be replaced when dependencies are built.
