file(REMOVE_RECURSE
  "CMakeFiles/bench_walkdown.dir/bench_walkdown.cpp.o"
  "CMakeFiles/bench_walkdown.dir/bench_walkdown.cpp.o.d"
  "bench_walkdown"
  "bench_walkdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_walkdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
