# Empty dependencies file for bench_theorem2_curve.
# This may be replaced when dependencies are built.
