file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem2_curve.dir/bench_theorem2_curve.cpp.o"
  "CMakeFiles/bench_theorem2_curve.dir/bench_theorem2_curve.cpp.o.d"
  "bench_theorem2_curve"
  "bench_theorem2_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
