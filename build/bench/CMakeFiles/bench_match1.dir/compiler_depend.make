# Empty compiler generated dependencies file for bench_match1.
# This may be replaced when dependencies are built.
