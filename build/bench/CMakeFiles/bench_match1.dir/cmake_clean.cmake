file(REMOVE_RECURSE
  "CMakeFiles/bench_match1.dir/bench_match1.cpp.o"
  "CMakeFiles/bench_match1.dir/bench_match1.cpp.o.d"
  "bench_match1"
  "bench_match1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
