# Empty dependencies file for bench_match3.
# This may be replaced when dependencies are built.
