file(REMOVE_RECURSE
  "CMakeFiles/bench_match3.dir/bench_match3.cpp.o"
  "CMakeFiles/bench_match3.dir/bench_match3.cpp.o.d"
  "bench_match3"
  "bench_match3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
