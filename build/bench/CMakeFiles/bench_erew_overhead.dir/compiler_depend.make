# Empty compiler generated dependencies file for bench_erew_overhead.
# This may be replaced when dependencies are built.
