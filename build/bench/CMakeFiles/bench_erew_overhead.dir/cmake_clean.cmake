file(REMOVE_RECURSE
  "CMakeFiles/bench_erew_overhead.dir/bench_erew_overhead.cpp.o"
  "CMakeFiles/bench_erew_overhead.dir/bench_erew_overhead.cpp.o.d"
  "bench_erew_overhead"
  "bench_erew_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_erew_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
