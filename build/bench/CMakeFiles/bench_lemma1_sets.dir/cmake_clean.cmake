file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma1_sets.dir/bench_lemma1_sets.cpp.o"
  "CMakeFiles/bench_lemma1_sets.dir/bench_lemma1_sets.cpp.o.d"
  "bench_lemma1_sets"
  "bench_lemma1_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma1_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
