# Empty dependencies file for bench_lemma1_sets.
# This may be replaced when dependencies are built.
