# Empty compiler generated dependencies file for bench_appendix_tables.
# This may be replaced when dependencies are built.
