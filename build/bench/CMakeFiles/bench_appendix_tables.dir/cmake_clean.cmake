file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_tables.dir/bench_appendix_tables.cpp.o"
  "CMakeFiles/bench_appendix_tables.dir/bench_appendix_tables.cpp.o.d"
  "bench_appendix_tables"
  "bench_appendix_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
