file(REMOVE_RECURSE
  "CMakeFiles/example_list_ranking_demo.dir/list_ranking_demo.cpp.o"
  "CMakeFiles/example_list_ranking_demo.dir/list_ranking_demo.cpp.o.d"
  "example_list_ranking_demo"
  "example_list_ranking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_list_ranking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
