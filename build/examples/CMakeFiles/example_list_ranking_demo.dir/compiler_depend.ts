# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_list_ranking_demo.
