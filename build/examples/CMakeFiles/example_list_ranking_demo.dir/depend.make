# Empty dependencies file for example_list_ranking_demo.
# This may be replaced when dependencies are built.
