# Empty compiler generated dependencies file for example_tree_stats_demo.
# This may be replaced when dependencies are built.
