file(REMOVE_RECURSE
  "CMakeFiles/example_tree_stats_demo.dir/tree_stats_demo.cpp.o"
  "CMakeFiles/example_tree_stats_demo.dir/tree_stats_demo.cpp.o.d"
  "example_tree_stats_demo"
  "example_tree_stats_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tree_stats_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
