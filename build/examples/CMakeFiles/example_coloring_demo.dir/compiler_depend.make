# Empty compiler generated dependencies file for example_coloring_demo.
# This may be replaced when dependencies are built.
