file(REMOVE_RECURSE
  "CMakeFiles/example_coloring_demo.dir/coloring_demo.cpp.o"
  "CMakeFiles/example_coloring_demo.dir/coloring_demo.cpp.o.d"
  "example_coloring_demo"
  "example_coloring_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_coloring_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
