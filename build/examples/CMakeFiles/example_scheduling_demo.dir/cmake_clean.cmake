file(REMOVE_RECURSE
  "CMakeFiles/example_scheduling_demo.dir/scheduling_demo.cpp.o"
  "CMakeFiles/example_scheduling_demo.dir/scheduling_demo.cpp.o.d"
  "example_scheduling_demo"
  "example_scheduling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scheduling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
