# Empty dependencies file for example_scheduling_demo.
# This may be replaced when dependencies are built.
