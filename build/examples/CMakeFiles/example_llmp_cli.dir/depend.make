# Empty dependencies file for example_llmp_cli.
# This may be replaced when dependencies are built.
