file(REMOVE_RECURSE
  "CMakeFiles/example_llmp_cli.dir/llmp_cli.cpp.o"
  "CMakeFiles/example_llmp_cli.dir/llmp_cli.cpp.o.d"
  "example_llmp_cli"
  "example_llmp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_llmp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
