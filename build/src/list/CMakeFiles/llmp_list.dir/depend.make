# Empty dependencies file for llmp_list.
# This may be replaced when dependencies are built.
