file(REMOVE_RECURSE
  "libllmp_list.a"
)
