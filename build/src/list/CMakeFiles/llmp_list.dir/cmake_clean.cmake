file(REMOVE_RECURSE
  "CMakeFiles/llmp_list.dir/generators.cpp.o"
  "CMakeFiles/llmp_list.dir/generators.cpp.o.d"
  "CMakeFiles/llmp_list.dir/linked_list.cpp.o"
  "CMakeFiles/llmp_list.dir/linked_list.cpp.o.d"
  "libllmp_list.a"
  "libllmp_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmp_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
