file(REMOVE_RECURSE
  "libllmp_pram.a"
)
