file(REMOVE_RECURSE
  "CMakeFiles/llmp_pram.dir/machine.cpp.o"
  "CMakeFiles/llmp_pram.dir/machine.cpp.o.d"
  "CMakeFiles/llmp_pram.dir/thread_pool.cpp.o"
  "CMakeFiles/llmp_pram.dir/thread_pool.cpp.o.d"
  "libllmp_pram.a"
  "libllmp_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmp_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
