# Empty dependencies file for llmp_pram.
# This may be replaced when dependencies are built.
