# Empty dependencies file for llmp_apps.
# This may be replaced when dependencies are built.
