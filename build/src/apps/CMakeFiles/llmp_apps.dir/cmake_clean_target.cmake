file(REMOVE_RECURSE
  "libllmp_apps.a"
)
