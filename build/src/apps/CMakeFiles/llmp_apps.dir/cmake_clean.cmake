file(REMOVE_RECURSE
  "CMakeFiles/llmp_apps.dir/euler_tour.cpp.o"
  "CMakeFiles/llmp_apps.dir/euler_tour.cpp.o.d"
  "CMakeFiles/llmp_apps.dir/independent_set.cpp.o"
  "CMakeFiles/llmp_apps.dir/independent_set.cpp.o.d"
  "CMakeFiles/llmp_apps.dir/list_ranking.cpp.o"
  "CMakeFiles/llmp_apps.dir/list_ranking.cpp.o.d"
  "CMakeFiles/llmp_apps.dir/three_coloring.cpp.o"
  "CMakeFiles/llmp_apps.dir/three_coloring.cpp.o.d"
  "libllmp_apps.a"
  "libllmp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
