# Empty dependencies file for llmp_core.
# This may be replaced when dependencies are built.
