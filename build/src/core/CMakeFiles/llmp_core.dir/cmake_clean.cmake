file(REMOVE_RECURSE
  "CMakeFiles/llmp_core.dir/lookup_table.cpp.o"
  "CMakeFiles/llmp_core.dir/lookup_table.cpp.o.d"
  "CMakeFiles/llmp_core.dir/maximal_matching.cpp.o"
  "CMakeFiles/llmp_core.dir/maximal_matching.cpp.o.d"
  "CMakeFiles/llmp_core.dir/partition_fn.cpp.o"
  "CMakeFiles/llmp_core.dir/partition_fn.cpp.o.d"
  "CMakeFiles/llmp_core.dir/ring.cpp.o"
  "CMakeFiles/llmp_core.dir/ring.cpp.o.d"
  "CMakeFiles/llmp_core.dir/verify.cpp.o"
  "CMakeFiles/llmp_core.dir/verify.cpp.o.d"
  "libllmp_core.a"
  "libllmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
