file(REMOVE_RECURSE
  "libllmp_core.a"
)
