
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/lookup_table.cpp" "src/core/CMakeFiles/llmp_core.dir/lookup_table.cpp.o" "gcc" "src/core/CMakeFiles/llmp_core.dir/lookup_table.cpp.o.d"
  "/root/repo/src/core/maximal_matching.cpp" "src/core/CMakeFiles/llmp_core.dir/maximal_matching.cpp.o" "gcc" "src/core/CMakeFiles/llmp_core.dir/maximal_matching.cpp.o.d"
  "/root/repo/src/core/partition_fn.cpp" "src/core/CMakeFiles/llmp_core.dir/partition_fn.cpp.o" "gcc" "src/core/CMakeFiles/llmp_core.dir/partition_fn.cpp.o.d"
  "/root/repo/src/core/ring.cpp" "src/core/CMakeFiles/llmp_core.dir/ring.cpp.o" "gcc" "src/core/CMakeFiles/llmp_core.dir/ring.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/llmp_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/llmp_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/llmp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/llmp_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/list/CMakeFiles/llmp_list.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
