# Empty compiler generated dependencies file for llmp_support.
# This may be replaced when dependencies are built.
