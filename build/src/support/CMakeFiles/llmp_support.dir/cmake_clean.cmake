file(REMOVE_RECURSE
  "CMakeFiles/llmp_support.dir/bits.cpp.o"
  "CMakeFiles/llmp_support.dir/bits.cpp.o.d"
  "CMakeFiles/llmp_support.dir/format.cpp.o"
  "CMakeFiles/llmp_support.dir/format.cpp.o.d"
  "CMakeFiles/llmp_support.dir/itlog.cpp.o"
  "CMakeFiles/llmp_support.dir/itlog.cpp.o.d"
  "libllmp_support.a"
  "libllmp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
