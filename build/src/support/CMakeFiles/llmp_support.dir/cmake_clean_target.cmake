file(REMOVE_RECURSE
  "libllmp_support.a"
)
