// Property tests for the matching partition functions — Lemma 1 (f
// partitions n pointers into 2 log n matching sets), Lemma 2 (f^(k) yields
// 2·log^(k-1) n·(1+o(1)) sets), and the defining matching-partition
// property itself, for both bit rules.
#include "core/partition_fn.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "support/itlog.h"
#include "support/rng.h"

namespace llmp::core {
namespace {

class PartitionRule : public ::testing::TestWithParam<BitRule> {};

TEST_P(PartitionRule, MatchingPartitionProperty) {
  // m(a,b) != m(b,c) whenever a != b or b != c — exhaustively for small
  // values, randomized for large ones.
  const BitRule rule = GetParam();
  for (label_t a = 0; a < 40; ++a)
    for (label_t b = 0; b < 40; ++b)
      for (label_t c = 0; c < 40; ++c) {
        if (a == b || b == c) continue;
        ASSERT_NE(partition_value(a, b, rule), partition_value(b, c, rule))
            << a << "," << b << "," << c;
      }
  rng::Xoshiro256 gen(99);
  for (int t = 0; t < 20000; ++t) {
    const label_t a = gen.next(), b = gen.next(), c = gen.next();
    if (a == b || b == c) continue;
    ASSERT_NE(partition_value(a, b, rule), partition_value(b, c, rule));
  }
}

TEST_P(PartitionRule, ValueBoundLemma1) {
  // f < 2·ceil(log2 B) when inputs are < B.
  const BitRule rule = GetParam();
  rng::Xoshiro256 gen(5);
  for (label_t bound : {2ull, 6ull, 40ull, 1024ull, 1ull << 20}) {
    const label_t limit = partition_bound_after(bound);
    for (int t = 0; t < 2000; ++t) {
      const label_t a = gen.below(bound), b = gen.below(bound);
      if (a == b) continue;
      ASSERT_LT(partition_value(a, b, rule), limit) << a << "," << b;
    }
  }
}

TEST_P(PartitionRule, DirectionBitSeparatesForwardAndBackward) {
  // The parity of f tells pointer direction at the distinguishing bit:
  // f(<a,b>) and f(<b,a>) share k but differ in the low bit.
  const BitRule rule = GetParam();
  rng::Xoshiro256 gen(6);
  for (int t = 0; t < 2000; ++t) {
    const label_t a = gen.next(), b = gen.next();
    if (a == b) continue;
    const label_t fab = partition_value(a, b, rule);
    const label_t fba = partition_value(b, a, rule);
    EXPECT_EQ(fab >> 1, fba >> 1);
    EXPECT_NE(fab & 1, fba & 1);
  }
}

TEST_P(PartitionRule, RelabelKeepsCircularPartitionValid) {
  const BitRule rule = GetParam();
  for (std::size_t n : {2u, 3u, 10u, 1000u}) {
    const auto list = list::generators::random_list(n, n);
    pram::SeqExec exec(8);
    std::vector<label_t> labels;
    init_address_labels(exec, n, labels);
    for (int round = 0; round < 6; ++round) {
      std::vector<label_t> out(n);
      relabel(exec, list, labels, out, rule);
      labels.swap(out);
      verify::check_partition_labels(list, labels);
    }
  }
}

TEST_P(PartitionRule, Lemma1SetCountWithinBound) {
  const BitRule rule = GetParam();
  for (std::size_t n : {16u, 256u, 4096u, 65536u, 1u << 20}) {
    const auto list = list::generators::random_list(n, 2 * n + 1);
    pram::SeqExec exec(8);
    std::vector<label_t> labels;
    init_address_labels(exec, n, labels);
    std::vector<label_t> out(n);
    relabel(exec, list, labels, out, rule);
    const std::size_t sets = distinct_labels(out);
    EXPECT_LE(sets, 2 * static_cast<std::size_t>(itlog::ceil_log2(n)))
        << "n=" << n;
  }
}

TEST_P(PartitionRule, Lemma2IteratedSetCounts) {
  // After k rounds the labels are bounded by the k-fold image bound,
  // which is 2·log^(k) n up to rounding — Lemma 2 with f^(k+1).
  const BitRule rule = GetParam();
  const std::size_t n = 1 << 18;
  const auto list = list::generators::random_list(n, 77);
  pram::SeqExec exec(8);
  std::vector<label_t> labels;
  init_address_labels(exec, n, labels);
  label_t bound = n;
  for (int k = 1; k <= 5; ++k) {
    std::vector<label_t> out(n);
    relabel(exec, list, labels, out, rule);
    labels.swap(out);
    bound = partition_bound_after(bound);
    const std::size_t sets = distinct_labels(labels);
    EXPECT_LE(sets, bound) << "k=" << k;
    // The bound is 2·ceil(log2 ...) of the previous bound — compare
    // against the paper's closed form within its (1+o(1)) slack.
    const double formula = 2 * itlog::ilog_real(k, static_cast<double>(n));
    if (formula > 2)
      EXPECT_LE(static_cast<double>(sets), 2.5 * formula + 8) << "k=" << k;
  }
}

TEST_P(PartitionRule, ReduceToConstantHitsFixedPoint) {
  const BitRule rule = GetParam();
  for (std::size_t n : {2u, 7u, 100u, 40000u, 1u << 20}) {
    const auto list = list::generators::random_list(n, 3 * n);
    pram::SeqExec exec(8);
    std::vector<label_t> labels;
    init_address_labels(exec, n, labels);
    const int rounds = reduce_to_constant(exec, list, labels, rule);
    for (label_t l : labels) EXPECT_LT(l, kFixedPointBound);
    verify::check_partition_labels(list, labels);
    // Θ(G(n)): the bound-iteration count tracks G(n) within a constant.
    EXPECT_LE(rounds, itlog::G(n) + 3) << "n=" << n;
    if (n > 6) EXPECT_GE(rounds, itlog::G(n) - 2) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Rules, PartitionRule,
                         ::testing::Values(BitRule::kMostSignificant,
                                           BitRule::kLeastSignificant),
                         [](const auto& info) {
                           return info.param == BitRule::kMostSignificant
                                      ? "MSB"
                                      : "LSB";
                         });

TEST(PartitionFn, MsbRuleMatchesBisectionIntuition) {
  // Fig. 2: for the MSB rule, k = msb(a XOR b) identifies the largest
  // power-of-two boundary ("bisecting line") separating a from b: a and b
  // agree on all bits above k, so both lie in the same 2^(k+1)-aligned
  // block, and differ at k, so 'the' line inside that block separates
  // them.
  rng::Xoshiro256 gen(8);
  for (int t = 0; t < 5000; ++t) {
    const label_t a = gen.below(1 << 20), b = gen.below(1 << 20);
    if (a == b) continue;
    const int k = bits::msb_index(a ^ b);
    EXPECT_EQ(a >> (k + 1), b >> (k + 1));
    EXPECT_NE((a >> k) & 1, (b >> k) & 1);
  }
}

TEST(PartitionFn, ForwardPointersCrossingOneLineHaveDisjointEndpoints) {
  // The Fig. 2 observation itself: forward pointers crossing the same
  // bisecting line form a matching (disjoint heads and tails).
  const std::size_t n = 1 << 12;
  const auto list = list::generators::random_list(n, 4);
  // Group *forward* pointers by f (same f ⇒ same line, same direction).
  std::map<label_t, std::vector<index_t>> groups;
  for (index_t v = 0; v < n; ++v) {
    const index_t s = list.next(v);
    if (s == knil) continue;
    groups[partition_value(v, s, BitRule::kMostSignificant)].push_back(v);
  }
  for (const auto& [value, tails] : groups) {
    std::set<index_t> touched;
    for (index_t v : tails) {
      EXPECT_TRUE(touched.insert(v).second) << "value " << value;
      EXPECT_TRUE(touched.insert(list.next(v)).second) << "value " << value;
    }
  }
}

}  // namespace
}  // namespace llmp::core
