// Tests for the symbolic access-pattern prover (src/analysis): the
// footprint classifier's algebra, the Machine-equivalent trace replay,
// and — the headline property — that for every registered algorithm the
// prover's per-mode legality verdict agrees with what pram::Machine
// reports when it runs the very same template on the very same input.
#include "analysis/prover.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/algorithms.h"
#include "apps/list_ranking.h"
#include "list/generators.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "pram/symbolic_exec.h"

namespace llmp::analysis {
namespace {

using pram::SymbolicExec;
using Samples = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

// ---- Footprint classification. -------------------------------------------

TEST(Footprint, IdentityMapIsAffineAndExclusive) {
  Samples s;
  for (std::uint32_t v = 0; v < 20; ++v) s.emplace_back(v, v);
  const Footprint f = classify_footprint(s);
  EXPECT_EQ(f.shape, Shape::kAffine);
  EXPECT_EQ(f.a, 1);
  EXPECT_EQ(f.b, 0);
  EXPECT_TRUE(f.exclusive);
}

TEST(Footprint, ShiftedStridedMapIsAffineAndExclusive) {
  Samples s;
  for (std::uint32_t v = 0; v < 10; ++v) s.emplace_back(v, 3 * v + 7);
  const Footprint f = classify_footprint(s);
  EXPECT_EQ(f.shape, Shape::kAffine);
  EXPECT_EQ(f.a, 3);
  EXPECT_EQ(f.b, 7);
  EXPECT_TRUE(f.exclusive);
}

TEST(Footprint, SharedCellIsBroadcastNotExclusive) {
  Samples s;
  for (std::uint32_t v = 0; v < 8; ++v) s.emplace_back(v, 5);
  const Footprint f = classify_footprint(s);
  EXPECT_EQ(f.shape, Shape::kBroadcast);
  EXPECT_FALSE(f.exclusive);
}

TEST(Footprint, SingleParticipantIsAlwaysExclusive) {
  const Footprint f = classify_footprint({{4, 9}, {4, 2}, {4, 30}});
  EXPECT_TRUE(f.exclusive);
  EXPECT_EQ(f.participants, 1u);
  EXPECT_EQ(f.lone_proc, 4);
}

TEST(Footprint, BlockedChunksAreStridedAndExclusive) {
  // Processor v owns cells [4v, 4v+4): the per-column loop pattern.
  Samples s;
  for (std::uint32_t v = 0; v < 6; ++v)
    for (std::uint64_t k = 0; k < 4; ++k) s.emplace_back(v, 4 * v + k);
  const Footprint f = classify_footprint(s);
  EXPECT_EQ(f.shape, Shape::kStrided);
  EXPECT_EQ(f.a, 4);
  EXPECT_EQ(f.stride, 1);
  EXPECT_EQ(f.count, 4u);
  EXPECT_TRUE(f.exclusive);
}

TEST(Footprint, ColumnMajorHistogramIsStridedAndExclusive) {
  // Processor v owns cells {v, v+P, v+2P}: key-major histogram layout.
  constexpr std::uint32_t kProcs = 5;
  Samples s;
  for (std::uint32_t v = 0; v < kProcs; ++v)
    for (std::uint64_t k = 0; k < 3; ++k) s.emplace_back(v, v + k * kProcs);
  const Footprint f = classify_footprint(s);
  EXPECT_EQ(f.shape, Shape::kStrided);
  EXPECT_TRUE(f.exclusive);
}

TEST(Footprint, OverlappingStridesAreNotExclusive) {
  // Processor v owns cells [2v, 2v+4): adjacent processors overlap.
  Samples s;
  for (std::uint32_t v = 0; v < 6; ++v)
    for (std::uint64_t k = 0; k < 4; ++k) s.emplace_back(v, 2 * v + k);
  const Footprint f = classify_footprint(s);
  EXPECT_EQ(f.shape, Shape::kStrided);
  EXPECT_FALSE(f.exclusive);
}

TEST(Footprint, DataDependentCellsAreIrregular) {
  const Footprint f = classify_footprint({{0, 3}, {1, 17}, {2, 4}, {3, 8}});
  EXPECT_EQ(f.shape, Shape::kIrregular);
  EXPECT_FALSE(f.exclusive);
}

// ---- Machine-equivalent replay. ------------------------------------------

StepTrace make_step(std::vector<Access> accesses) {
  StepTrace st;
  st.nprocs = 8;
  st.accesses = std::move(accesses);
  return st;
}

Access rd(std::uint32_t proc, std::uint64_t cell) {
  return Access{0, proc, cell, false, false, 0};
}

Access wr(std::uint32_t proc, std::uint64_t cell, std::uint64_t hash) {
  return Access{0, proc, cell, true, true, hash};
}

TEST(Replay, CleanExclusiveStepHasNoFlags) {
  const StepReplay r =
      replay_step(make_step({rd(0, 0), wr(0, 10, 1), rd(1, 1), wr(1, 11, 1)}));
  EXPECT_FALSE(r.read_after_write);
  EXPECT_FALSE(r.concurrent_read);
  EXPECT_FALSE(r.concurrent_write);
  EXPECT_FALSE(r.read_write_clash);
}

TEST(Replay, FlagsReadAfterForeignWrite) {
  const StepReplay r = replay_step(make_step({wr(0, 5, 1), rd(1, 5)}));
  EXPECT_TRUE(r.read_after_write);
}

TEST(Replay, AllowsSameProcessorReadModifyWrite) {
  const StepReplay r =
      replay_step(make_step({rd(2, 5), wr(2, 5, 1), rd(2, 5), wr(2, 5, 2)}));
  EXPECT_FALSE(r.read_after_write);
  EXPECT_FALSE(r.concurrent_read);
  EXPECT_FALSE(r.read_write_clash);
}

TEST(Replay, FlagsConcurrentReadAndClash) {
  const StepReplay r = replay_step(make_step({rd(0, 7), rd(1, 7), wr(2, 7, 1)}));
  EXPECT_TRUE(r.concurrent_read);
  EXPECT_TRUE(r.read_write_clash);
}

TEST(Replay, CommonAgreementTracksValues) {
  const StepReplay same = replay_step(make_step({wr(0, 3, 42), wr(1, 3, 42)}));
  EXPECT_TRUE(same.concurrent_write);
  EXPECT_FALSE(same.concurrent_write_diff);
  const StepReplay diff = replay_step(make_step({wr(0, 3, 42), wr(1, 3, 43)}));
  EXPECT_TRUE(diff.concurrent_write_diff);
}

// ---- SymbolicExec records what algorithms do. ----------------------------

TEST(SymbolicExec, RecordsAccessesAndMatchesSeqExecStats) {
  SymbolicExec sym(4);
  pram::SeqExec seq(4);
  std::vector<int> a(8, 0), b(8, 0);
  auto run = [&](auto& exec) {
    exec.step(8, [&](std::size_t v, auto&& m) { m.wr(a, v, int(v)); });
    exec.step(8, 3, [&](std::size_t v, auto&& m) {
      m.wr(b, v, m.rd(a, (v + 1) % 8));
    });
  };
  run(sym);
  run(seq);
  EXPECT_EQ(sym.stats().depth, seq.stats().depth);
  EXPECT_EQ(sym.stats().time_p, seq.stats().time_p);
  EXPECT_EQ(sym.stats().work, seq.stats().work);

  const Trace t = sym.take_trace();
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.arrays, 2u);
  EXPECT_EQ(t.steps[0].accesses.size(), 8u);   // 8 writes
  EXPECT_EQ(t.steps[1].accesses.size(), 16u);  // 8 reads + 8 writes
  EXPECT_EQ(b[0], 1);  // the algorithm really ran
}

TEST(SymbolicExec, AnalyzeRunSeesTheShiftedReadAsLegalCrew) {
  SymbolicExec sym(8);
  std::vector<int> in(8, 1), out(8, 0);
  sym.step(8, [&](std::size_t v, auto&& m) {
    m.wr(out, v, m.rd(in, v) + m.rd(in, (v + 1) % 8));
  });
  const RunAnalysis run = analyze_run(sym.take_trace(), 8);
  EXPECT_FALSE(run.flags.read_after_write);
  EXPECT_FALSE(run.flags.concurrent_write);
  EXPECT_TRUE(run.flags.concurrent_read);  // wrap-around double read
  // CREW only obliges exclusive writes (`out` is affine), so the proof
  // goes through; EREW additionally needs exclusive reads, and the
  // wrapped read pattern is not affine — no symbolic EREW proof.
  EXPECT_TRUE(run.crew_proven);
  EXPECT_FALSE(run.erew_proven);
}

// ---- The headline: prover verdicts == pram::Machine verdicts. ------------

bool machine_clean(const core::AlgorithmEntry& entry, pram::Mode mode,
                   const list::LinkedList& list) {
  pram::Machine machine(mode, list.size(),
                        pram::Machine::OnViolation::kRecord);
  pram::Context ctx(machine);
  entry.runner->run(ctx, list);
  return machine.violations().empty();
}

TEST(ProverVsMachine, LegalityAgreesForEveryRegisteredAlgorithm) {
  const std::size_t kN = 64;
  const list::LinkedList list = list::generators::random_list(kN, 3);
  for (const core::AlgorithmEntry* entry : algorithm_registry()) {
    SymbolicExec sym(kN);
    pram::Context ctx(sym);
    entry->runner->run(ctx, list);
    const RunAnalysis run = analyze_run(sym.take_trace(), kN);
    const StepReplay& f = run.flags;

    const bool erew_legal = !(f.read_after_write || f.concurrent_read ||
                              f.concurrent_write || f.read_write_clash);
    const bool crew_legal = !(f.read_after_write || f.concurrent_write);
    const bool common_legal =
        !(f.read_after_write || f.concurrent_write_diff);

    EXPECT_EQ(erew_legal, machine_clean(*entry, pram::Mode::kEREW, list))
        << entry->name << " under EREW";
    EXPECT_EQ(crew_legal, machine_clean(*entry, pram::Mode::kCREW, list))
        << entry->name << " under CREW";
    EXPECT_EQ(common_legal,
              machine_clean(*entry, pram::Mode::kCRCWCommon, list))
        << entry->name << " under CRCW-Common";
  }
}

TEST(ProverVsMachine, DeclaredModelIsLegalForEveryAlgorithm) {
  const list::LinkedList list = list::generators::random_list(80, 11);
  for (const core::AlgorithmEntry* entry : algorithm_registry()) {
    EXPECT_TRUE(machine_clean(*entry, entry->declared, list)) << entry->name;
  }
}

TEST(ProverVsMachine, WyllieIsSymbolicallyCrewProven) {
  // The showcase result: every step of Wyllie's pointer jumping has
  // affine write footprints and double-buffered reads, so the prover
  // upgrades its CREW verdict to a for-all-n proof.
  std::vector<RunAnalysis> runs;
  for (std::size_t n : {32u, 57u}) {
    const list::LinkedList list = list::generators::random_list(n, 5);
    SymbolicExec sym(n);
    apps::wyllie_ranking(sym, list);
    runs.push_back(analyze_run(sym.take_trace(), n));
  }
  const AlgoVerdicts v = combine_runs(runs);
  EXPECT_TRUE(v.crew.legal);
  EXPECT_EQ(v.crew.tier, Tier::kProven);
  EXPECT_FALSE(v.erew.legal) << "jump reads are concurrent";
}

}  // namespace
}  // namespace llmp::analysis
