// Tests for the remaining support pieces: the table printer, the RNG, and
// executor cost accounting (Stats algebra).
#include <gtest/gtest.h>

#include <sstream>

#include "pram/executor.h"
#include "pram/stats.h"
#include "support/format.h"
#include "support/rng.h"

namespace llmp {
namespace {

TEST(Format, NumberFormatting) {
  EXPECT_EQ(fmt::num(std::uint64_t{0}), "0");
  EXPECT_EQ(fmt::num(std::uint64_t{999}), "999");
  EXPECT_EQ(fmt::num(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(fmt::num(std::uint64_t{1234567890}), "1,234,567,890");
  EXPECT_EQ(fmt::num(std::int64_t{-1234567}), "-1,234,567");
  EXPECT_EQ(fmt::num(3.14159, 2), "3.14");
  EXPECT_EQ(fmt::num(-0.5, 1), "-0.5");
}

TEST(Format, TableAlignsColumns) {
  fmt::Table t({"a", "long header"});
  t.add_row({"12345", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Three lines: header, rule, row — all equal width.
  const auto first_nl = out.find('\n');
  const auto second_nl = out.find('\n', first_nl + 1);
  const auto third_nl = out.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
  EXPECT_NE(out.find("long header"), std::string::npos);
}

TEST(Format, TableRejectsWrongArity) {
  fmt::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), check_error);
}

TEST(Format, JsonCaptureMirrorsPrintedTables) {
  fmt::reset_json_capture();
  fmt::enable_json_capture(true);
  fmt::Table t({"n", "steps", "wall ms"});
  t.add_row({"2^16", "4,128 (1.01x)", "12.50"});
  t.add_row({"2^17", "8,256", "25.00"});
  std::ostringstream os;
  t.print(os);
  fmt::enable_json_capture(false);

  const std::string json = fmt::render_captured_json("bench_x");
  fmt::reset_json_capture();
  // google-benchmark schema: a context block and one entry per row.
  EXPECT_NE(json.find("\"context\""), std::string::npos);
  EXPECT_NE(json.find("\"executable\": \"bench_x\""), std::string::npos);
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"n/2^16\""), std::string::npos);
  EXPECT_NE(json.find("\"run_type\": \"iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"time_unit\": \"ms\""), std::string::npos);
  // Numeric columns ride along as counters: thousands separators and
  // trailing annotations are stripped to the leading value.
  EXPECT_NE(json.find("\"steps\": 4128"), std::string::npos);
  EXPECT_NE(json.find("\"steps\": 8256"), std::string::npos);
  // The ms-ish column feeds real_time/cpu_time.
  EXPECT_NE(json.find("\"real_time\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_time\": 25"), std::string::npos);
}

TEST(Format, JsonCaptureIsInertWhenDisabled) {
  fmt::reset_json_capture();
  ASSERT_FALSE(fmt::json_capture_enabled());
  fmt::Table t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  const std::string json = fmt::render_captured_json("x");
  EXPECT_EQ(json.find("\"name\""), std::string::npos)
      << "table captured while capture was disabled:\n"
      << json;
}

TEST(Rng, DeterministicPerSeed) {
  rng::Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
  }
  bool differs = false;
  rng::Xoshiro256 a2(7);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  rng::Xoshiro256 gen(3);
  constexpr std::uint64_t kBound = 10;
  std::size_t buckets[kBound] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = gen.below(kBound);
    ASSERT_LT(v, kBound);
    ++buckets[v];
  }
  for (auto b : buckets) {
    EXPECT_GT(b, kDraws / kBound * 8 / 10);
    EXPECT_LT(b, kDraws / kBound * 12 / 10);
  }
  EXPECT_EQ(gen.below(0), 0u);
  EXPECT_EQ(gen.below(1), 0u);
}

TEST(Rng, SplitMixStreamsDiffer) {
  rng::SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Stats, ArithmeticAndPhaseLookup) {
  pram::Stats a{10, 20, 30, 40, 50};
  pram::Stats b{1, 2, 3, 4, 5};
  const pram::Stats d = a - b;
  EXPECT_EQ(d.depth, 9u);
  EXPECT_EQ(d.time_p, 18u);
  EXPECT_EQ(d.work, 27u);
  pram::Stats acc = b;
  acc += b;
  EXPECT_EQ(acc.depth, 2u);
  pram::PhaseBreakdown phases{{"x", a}, {"y", b}};
  EXPECT_EQ(pram::phase_cost(phases, "y").work, 3u);
  EXPECT_EQ(pram::phase_cost(phases, "missing").work, 0u);
}

TEST(Executor, UnitCostMultipliesTime) {
  pram::SeqExec e(10);
  std::vector<int> a(25, 0);
  e.step(25, 7, [&](std::size_t v, auto&& m) { m.wr(a, v, 1); });
  EXPECT_EQ(e.stats().depth, 1u);
  EXPECT_EQ(e.stats().time_p, 3u * 7u);  // ceil(25/10)·7
  EXPECT_EQ(e.stats().work, 25u * 7u);
}

TEST(Executor, ZeroProcsStepIsFree) {
  pram::SeqExec e(4);
  e.step(0, [&](std::size_t, auto&&) { FAIL() << "body must not run"; });
  EXPECT_EQ(e.stats().time_p, 0u);
  EXPECT_EQ(e.stats().depth, 1u);
}

TEST(Executor, ParallelExecMatchesSeqExecResults) {
  pram::ThreadPool pool(2);
  pram::SeqExec s(8);
  pram::ParallelExec p(8, pool);
  std::vector<std::uint64_t> a(5000, 0), b(5000, 0);
  s.step(5000, [&](std::size_t v, auto&& m) {
    m.wr(a, v, static_cast<std::uint64_t>(v * v));
  });
  p.step(5000, [&](std::size_t v, auto&& m) {
    m.wr(b, v, static_cast<std::uint64_t>(v * v));
  });
  EXPECT_EQ(a, b);
  EXPECT_EQ(s.stats().time_p, p.stats().time_p);
}

}  // namespace
}  // namespace llmp
