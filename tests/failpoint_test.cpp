// Unit tests of the fault-injection framework (support/failpoint.h):
// arming/disarming, rule actions, probability and fire caps, the
// deterministic per-point random stream, the spec-string/env parsers, and
// the evaluation counters chaos tests reconcile against.
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/failpoint.h"

namespace llmp::support::failpoint {
namespace {

/// Every test leaves the process with no points armed (the registry is a
/// process-wide singleton shared with any code under test).
class Failpoint : public ::testing::Test {
 protected:
  void TearDown() override { disarm_all(); }
};

/// A throwing/sleeping site. Returns true iff evaluation fell through.
bool visit_site() {
  LLMP_FAILPOINT("test.site.alpha");
  return true;
}

Status visit_status_site() { return LLMP_FAILPOINT_STATUS("test.site.beta"); }

TEST_F(Failpoint, DisabledIsInvisible) {
  EXPECT_FALSE(any_armed());
  EXPECT_TRUE(visit_site());                   // no throw
  EXPECT_TRUE(visit_status_site().ok());       // OK status
  EXPECT_EQ(counts("test.site.alpha").evaluations, 0u);
}

TEST_F(Failpoint, ThrowRuleThrowsInjectedFaultWithDefaultCode) {
  arm("test.site.alpha", Rule{});
  EXPECT_TRUE(any_armed());
  EXPECT_TRUE(armed("test.site.alpha"));
  try {
    visit_site();
    FAIL() << "armed throw rule did not fire";
  } catch (const InjectedFault& f) {
    EXPECT_EQ(f.code(), StatusCode::kUnavailable);
    EXPECT_NE(std::string(f.what()).find("test.site.alpha"),
              std::string::npos);
  }
  const Counts c = counts("test.site.alpha");
  EXPECT_EQ(c.evaluations, 1u);
  EXPECT_EQ(c.throws, 1u);
  EXPECT_EQ(c.faults(), 1u);
}

TEST_F(Failpoint, StatusRuleReturnsAtStatusSiteThrowsElsewhere) {
  Rule r;
  r.action = Action::kStatus;
  r.code = StatusCode::kResourceExhausted;
  arm("test.site.beta", r);
  Status s = visit_status_site();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);

  // The same rule at a plain site is thrown, carrying its code.
  arm("test.site.alpha", r);
  try {
    visit_site();
    FAIL() << "status rule at a plain site must throw";
  } catch (const InjectedFault& f) {
    EXPECT_EQ(f.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(counts("test.site.beta").statuses, 1u);
}

TEST_F(Failpoint, SleepRuleDelaysAndContinues) {
  Rule r;
  r.action = Action::kSleep;
  r.sleep = std::chrono::milliseconds(20);
  arm("test.site.alpha", r);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(visit_site());  // delayed, not failed
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(20));
  EXPECT_EQ(counts("test.site.alpha").sleeps, 1u);
  EXPECT_EQ(counts("test.site.alpha").faults(), 0u);
}

TEST_F(Failpoint, MaxFiresCapsTheRule) {
  Rule r;
  r.max_fires = 2;
  arm("test.site.alpha", r);
  EXPECT_THROW(visit_site(), InjectedFault);
  EXPECT_THROW(visit_site(), InjectedFault);
  EXPECT_TRUE(visit_site());  // cap reached: falls through
  EXPECT_TRUE(visit_site());
  const Counts c = counts("test.site.alpha");
  EXPECT_EQ(c.throws, 2u);
  EXPECT_EQ(c.evaluations, 4u);
}

TEST_F(Failpoint, ZeroProbabilityNeverFires) {
  Rule r;
  r.probability = 0.0;
  arm("test.site.alpha", r);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(visit_site());
  EXPECT_EQ(counts("test.site.alpha").throws, 0u);
  EXPECT_EQ(counts("test.site.alpha").evaluations, 200u);
}

TEST_F(Failpoint, ProbabilityIsRoughlyHonoredAndDeterministic) {
  Rule r;
  r.probability = 0.3;
  arm("test.site.alpha", r);
  for (int i = 0; i < 1000; ++i) {
    try {
      visit_site();
    } catch (const InjectedFault&) {
    }
  }
  const std::uint64_t first = counts("test.site.alpha").throws;
  EXPECT_GT(first, 200u);  // ~300 expected; wide tolerance
  EXPECT_LT(first, 400u);

  // Same schedule replayed: the per-point stream is seeded from the name
  // and reset by arm(), so the fire count is bit-identical.
  arm("test.site.alpha", r);
  for (int i = 0; i < 1000; ++i) {
    try {
      visit_site();
    } catch (const InjectedFault&) {
    }
  }
  EXPECT_EQ(counts("test.site.alpha").throws, first);
}

TEST_F(Failpoint, RuleListEvaluatesInOrderFirstFireWins) {
  Rule a;           // throw, but capped out immediately
  a.max_fires = 1;
  Rule b;
  b.action = Action::kStatus;
  b.code = StatusCode::kInternal;
  arm("test.site.beta", std::vector<Rule>{a, b});
  EXPECT_THROW((void)visit_status_site(), InjectedFault);  // rule a
  EXPECT_EQ(visit_status_site().code(), StatusCode::kInternal);  // rule b
  const Counts c = counts("test.site.beta");
  EXPECT_EQ(c.throws, 1u);
  EXPECT_EQ(c.statuses, 1u);
}

TEST_F(Failpoint, DisarmRestoresTheFastPath) {
  arm("test.site.alpha", Rule{});
  arm("test.site.beta", Rule{});
  EXPECT_TRUE(any_armed());
  disarm("test.site.alpha");
  EXPECT_TRUE(visit_site());  // this point is gone
  EXPECT_TRUE(any_armed());   // the other is still armed
  disarm("test.site.beta");
  EXPECT_FALSE(any_armed());
  disarm("test.site.beta");  // disarming a missing point is a no-op
  EXPECT_FALSE(any_armed());
}

TEST_F(Failpoint, ArmFromStringParsesTheGrammar) {
  const Status s = arm_from_string(
      "test.site.alpha=throw:p=0.5:n=3|sleep(25):p=0.25;"
      "test.site.beta=status(deadline_exceeded)");
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_TRUE(armed("test.site.alpha"));
  EXPECT_TRUE(armed("test.site.beta"));
  EXPECT_EQ(visit_status_site().code(), StatusCode::kDeadlineExceeded);

  // 'off' disarms a point in the same spec language.
  ASSERT_TRUE(arm_from_string("test.site.beta=off").ok());
  EXPECT_FALSE(armed("test.site.beta"));
  EXPECT_TRUE(armed("test.site.alpha"));
}

TEST_F(Failpoint, MalformedSpecsAreInvalidArgument) {
  EXPECT_EQ(arm_from_string("nameonly").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_from_string("a.b.c=explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_from_string("a.b.c=sleep").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_from_string("a.b.c=status(bogus)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_from_string("a.b.c=throw:p=1.5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_from_string("a.b.c=throw:bogus=1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(armed("a.b.c"));  // nothing half-armed
}

TEST_F(Failpoint, ArmFromEnvReadsLlmpFailpoints) {
  ASSERT_EQ(::setenv("LLMP_FAILPOINTS", "test.site.alpha=sleep(1)", 1), 0);
  EXPECT_TRUE(arm_from_env().ok());
  EXPECT_TRUE(armed("test.site.alpha"));
  ASSERT_EQ(::unsetenv("LLMP_FAILPOINTS"), 0);
  disarm_all();
  EXPECT_TRUE(arm_from_env().ok());  // unset: OK and a no-op
  EXPECT_FALSE(any_armed());
}

TEST_F(Failpoint, ReArmingResetsCountersAndCap) {
  Rule r;
  r.max_fires = 1;
  arm("test.site.alpha", r);
  EXPECT_THROW(visit_site(), InjectedFault);
  EXPECT_TRUE(visit_site());
  arm("test.site.alpha", r);  // fresh counters, fresh cap
  EXPECT_EQ(counts("test.site.alpha").evaluations, 0u);
  EXPECT_THROW(visit_site(), InjectedFault);
}

}  // namespace
}  // namespace llmp::support::failpoint
