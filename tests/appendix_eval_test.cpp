// Tests for the appendix's parallel G(n)/log G(n) evaluator.
#include "core/appendix_eval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pram/executor.h"
#include "pram/machine.h"

namespace llmp::core {
namespace {

TEST(AppendixEval, GWithinOneOfExact) {
  pram::SeqExec exec(64);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 5ULL, 16ULL, 17ULL, 100ULL,
                          65536ULL, (1ULL << 20) + 3, 1ULL << 22}) {
    const auto r = eval_G_parallel(exec, n);
    EXPECT_NEAR(r.G, itlog::G(n), 1) << "n=" << n;
  }
}

TEST(AppendixEval, LogGWithinTwoOfExact) {
  pram::SeqExec exec(64);
  for (std::uint64_t n : {2ULL, 16ULL, 65536ULL, 1ULL << 22}) {
    const auto r = eval_G_parallel(exec, n);
    EXPECT_NEAR(r.log_G, itlog::log_G(n), 2) << "n=" << n;
  }
}

TEST(AppendixEval, DepthIsLogGRounds) {
  // The appendix's claim: O(log G(n)) steps with n processors.
  pram::SeqExec exec(1 << 22);
  const auto r = eval_G_parallel(exec, 1ULL << 22);
  EXPECT_LE(r.cost.depth, 1u + 4u);  // init + <= ceil(log2 G) + slack
  EXPECT_EQ(r.cost.time_p, r.cost.depth);  // p = n: one tick per step
}

TEST(AppendixEval, CrewLegalOnTheMachine) {
  // Node 1's cell is read by itself and by its chain predecessor — CREW.
  pram::Machine m(pram::Mode::kCREW, 8);
  const auto r = eval_G_parallel(m, 4096);
  EXPECT_NEAR(r.G, itlog::G(4096), 1);
}

TEST(AppendixEval, MonotoneInN) {
  pram::SeqExec exec(64);
  int prev = 0;
  for (int e = 1; e <= 22; ++e) {
    const auto r = eval_G_parallel(exec, 1ULL << e);
    EXPECT_GE(r.G, prev);
    prev = r.G;
  }
}

}  // namespace
}  // namespace llmp::core
