// Tests for the lockstep PRAM simulator: cost accounting, and conflict
// detection under every memory mode (Snir's taxonomy, which the paper
// cites as its model reference [14]).
#include "pram/machine.h"

#include <gtest/gtest.h>

#include <vector>

#include "pram/executor.h"

namespace llmp::pram {
namespace {

TEST(Machine, CostAccountingMatchesBrentScheduling) {
  Machine m(Mode::kCREW, /*processors=*/4);
  std::vector<int> a(10, 0);
  m.step(10, [&](std::size_t v, auto&& mem) { mem.wr(a, v, int(v)); });
  EXPECT_EQ(m.stats().depth, 1u);
  EXPECT_EQ(m.stats().time_p, 3u);  // ceil(10/4)
  EXPECT_EQ(m.stats().work, 10u);
  m.step(2, 5, [&](std::size_t v, auto&& mem) { mem.wr(a, v, 0); });
  EXPECT_EQ(m.stats().depth, 2u);
  EXPECT_EQ(m.stats().time_p, 3u + 5u);  // ceil(2/4)·5
  EXPECT_EQ(m.stats().work, 10u + 10u);
}

TEST(Machine, SeqExecAccountsIdentically) {
  // The untracked executor must produce the same Stats (minus rd/wr
  // counters) as the Machine for the same step sequence.
  Machine m(Mode::kCREW, 3);
  SeqExec e(3);
  std::vector<int> a(8, 0), b(8, 0);
  auto run = [&](auto& exec) {
    exec.step(8, [&](std::size_t v, auto&& mem) {
      mem.wr(a, v, int(v));
    });
    exec.step(4, 7, [&](std::size_t v, auto&& mem) {
      mem.wr(b, v, mem.rd(a, v));
    });
  };
  run(m);
  run(e);
  EXPECT_EQ(m.stats().depth, e.stats().depth);
  EXPECT_EQ(m.stats().time_p, e.stats().time_p);
  EXPECT_EQ(m.stats().work, e.stats().work);
}

TEST(Machine, DetectsReadAfterWriteAcrossProcessors) {
  Machine m(Mode::kCRCWArbitrary, 8);  // even the weakest mode flags RAW
  std::vector<int> a(4, 0);
  EXPECT_THROW(m.step(4,
                      [&](std::size_t v, auto&& mem) {
                        if (v == 1) mem.wr(a, 0, 42);
                        if (v == 2) (void)mem.rd(a, 0);
                      }),
               model_violation);
}

TEST(Machine, AllowsSameProcessorReadModifyWrite) {
  Machine m(Mode::kEREW, 8);
  std::vector<int> a(4, 0);
  EXPECT_NO_THROW(m.step(4, 3, [&](std::size_t v, auto&& mem) {
    mem.wr(a, v, mem.rd(a, v) + 1);
    mem.wr(a, v, mem.rd(a, v) + 1);
  }));
  EXPECT_EQ(a[2], 2);
}

TEST(Machine, ErewFlagsConcurrentRead) {
  Machine m(Mode::kEREW, 8);
  std::vector<int> a(4, 7);
  EXPECT_THROW(m.step(2,
                      [&](std::size_t, auto&& mem) { (void)mem.rd(a, 3); }),
               model_violation);
}

TEST(Machine, CrewAllowsConcurrentRead) {
  Machine m(Mode::kCREW, 8);
  std::vector<int> a(4, 7);
  int sum = 0;
  EXPECT_NO_THROW(m.step(4, [&](std::size_t, auto&& mem) {
    sum += mem.rd(a, 3);
  }));
  EXPECT_EQ(sum, 28);
}

TEST(Machine, CrewFlagsConcurrentWrite) {
  Machine m(Mode::kCREW, 8);
  std::vector<int> a(4, 0);
  EXPECT_THROW(
      m.step(2, [&](std::size_t v, auto&& mem) { mem.wr(a, 1, int(v)); }),
      model_violation);
}

TEST(Machine, CrcwCommonAcceptsEqualValuesRejectsDiffering) {
  {
    Machine m(Mode::kCRCWCommon, 8);
    std::vector<int> a(2, 0);
    EXPECT_NO_THROW(
        m.step(4, [&](std::size_t, auto&& mem) { mem.wr(a, 0, 9); }));
    EXPECT_EQ(a[0], 9);
  }
  {
    Machine m(Mode::kCRCWCommon, 8);
    std::vector<int> a(2, 0);
    EXPECT_THROW(
        m.step(2, [&](std::size_t v, auto&& mem) { mem.wr(a, 0, int(v)); }),
        model_violation);
  }
}

TEST(Machine, CrcwPriorityLowestProcessorWins) {
  Machine m(Mode::kCRCWPriority, 8);
  std::vector<int> a(1, -1);
  // Writes arrive in ascending proc order here, but the rule must hold
  // regardless; proc 0's value survives.
  m.step(5, [&](std::size_t v, auto&& mem) { mem.wr(a, 0, int(v) + 100); });
  EXPECT_EQ(a[0], 100);
}

TEST(Machine, CrcwArbitraryAllowsAnything) {
  Machine m(Mode::kCRCWArbitrary, 8);
  std::vector<int> a(1, -1);
  EXPECT_NO_THROW(
      m.step(5, [&](std::size_t v, auto&& mem) { mem.wr(a, 0, int(v)); }));
}

TEST(Machine, RecordPolicyCollectsInsteadOfThrowing) {
  Machine m(Mode::kEREW, 8, Machine::OnViolation::kRecord);
  std::vector<int> a(4, 0);
  m.step(3, [&](std::size_t, auto&& mem) { (void)mem.rd(a, 0); });
  ASSERT_EQ(m.violations().size(), 2u);  // 2nd and 3rd readers
  EXPECT_EQ(m.violations()[0].kind, Violation::Kind::kConcurrentRead);
  EXPECT_EQ(m.violations()[0].cell, 0u);
}

TEST(Machine, ErewFlagsReadWriteClash) {
  Machine m(Mode::kEREW, 8);
  std::vector<int> a(4, 0);
  EXPECT_THROW(m.step(2,
                      [&](std::size_t v, auto&& mem) {
                        if (v == 0) (void)mem.rd(a, 2);
                        if (v == 1) mem.wr(a, 2, 5);
                      }),
               model_violation);
}

TEST(Machine, FreshStepsClearConflictState) {
  Machine m(Mode::kEREW, 8);
  std::vector<int> a(1, 0);
  // Same cell accessed in consecutive steps by different procs: legal.
  m.step(1, [&](std::size_t, auto&& mem) { mem.wr(a, 0, 1); });
  EXPECT_NO_THROW(
      m.step(2, [&](std::size_t v, auto&& mem) {
        if (v == 1) (void)mem.rd(a, 0);
      }));
}

}  // namespace
}  // namespace llmp::pram
