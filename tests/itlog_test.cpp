// Unit tests for support/itlog: iterated logs, G(n), and the appendix's
// table-based evaluation procedures.
#include "support/itlog.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"

namespace llmp::itlog {
namespace {

TEST(Itlog, FloorAndCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(floor_log2(~std::uint64_t{0}), 63);
}

TEST(Itlog, IlogRealMatchesRepeatedLog) {
  double x = 1e6;
  EXPECT_NEAR(ilog_real(1, x), std::log2(x), 1e-12);
  EXPECT_NEAR(ilog_real(2, x), std::log2(std::log2(x)), 1e-12);
  EXPECT_NEAR(ilog_real(3, x), std::log2(std::log2(std::log2(x))), 1e-12);
}

TEST(Itlog, IlogCeilIsMonotoneInIterationCount) {
  for (std::uint64_t n : {2ULL, 17ULL, 1000ULL, 1ULL << 20, 1ULL << 40}) {
    std::uint64_t prev = n;
    for (int i = 1; i <= 6; ++i) {
      std::uint64_t cur = ilog_ceil(i, n);
      EXPECT_LE(cur, prev) << "n=" << n << " i=" << i;
      EXPECT_GE(cur, 1u);
      prev = cur;
    }
  }
}

TEST(Itlog, IlogCeilDominatesRealIlog) {
  // ceil-based iterate >= real iterate at every level (it never
  // undershoots the Θ(log^(i) n) it sizes).
  for (std::uint64_t n : {16ULL, 100ULL, 1ULL << 16, 1ULL << 32}) {
    for (int i = 1; i <= 4; ++i) {
      const double real = ilog_real(i, static_cast<double>(n));
      if (real < 1) break;
      EXPECT_GE(static_cast<double>(ilog_ceil(i, n)) + 1e-9, real)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Itlog, GKnownValues) {
  EXPECT_EQ(G(1), 1);   // log 1 = 0 < 1 after one application
  EXPECT_EQ(G(2), 2);   // 2 → 1 → 0
  EXPECT_EQ(G(4), 3);   // 4 → 2 → 1 → 0
  EXPECT_EQ(G(16), 4);  // 16 → 4 → 2 → 1 → 0
  EXPECT_EQ(G(65536), 5);
  EXPECT_EQ(G(1ULL << 20), 5);
  EXPECT_EQ(G(~std::uint64_t{0}), 5);  // 2^64-ish → 64 → 6 → ~2.6 → ~1.4 → <1
}

TEST(Itlog, GAppendixAgreesEverywhere) {
  for (std::uint64_t n = 1; n <= 4096; ++n)
    EXPECT_EQ(G_appendix(n), G(n)) << "n=" << n;
  for (std::uint64_t n : {1ULL << 20, 1ULL << 33, ~0ULL})
    EXPECT_EQ(G_appendix(n), G(n)) << "n=" << n;
}

TEST(Itlog, LogGValues) {
  EXPECT_EQ(log_G(1), 0);
  EXPECT_EQ(log_G(16), 2);          // G=4
  EXPECT_EQ(log_G(1ULL << 20), 3);  // G=5 → ceil(log2 5) = 3
}

TEST(Itlog, AppendixFloorLog2AgreesWithNative) {
  const int width = 14;
  for (std::uint64_t n = 1; n < (1ULL << width); ++n)
    ASSERT_EQ(floor_log2_appendix(n, width), floor_log2(n)) << "n=" << n;
}

TEST(Itlog, PreconditionsThrow) {
  EXPECT_THROW(floor_log2(0), check_error);
  EXPECT_THROW(ceil_log2(0), check_error);
  EXPECT_THROW(G(0), check_error);
}

}  // namespace
}  // namespace llmp::itlog
