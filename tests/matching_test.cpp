// End-to-end correctness of every matching algorithm: validity, maximality
// and the one-of-three witness over a grid of list shapes, sizes and
// processor budgets, on both fast executors — the repository's main
// property-test sweep.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/maximal_matching.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"

namespace llmp {
namespace {

using core::Algorithm;
using list::LinkedList;

enum class Shape { kRandom, kIdentity, kReverse, kStrided, kBlocked };

LinkedList make_list(Shape shape, std::size_t n, std::uint64_t seed) {
  switch (shape) {
    case Shape::kRandom: return list::generators::random_list(n, seed);
    case Shape::kIdentity: return list::generators::identity_list(n);
    case Shape::kReverse: return list::generators::reverse_list(n);
    case Shape::kStrided: {
      std::size_t stride = 7;
      while (std::gcd(stride, n) != 1) ++stride;
      return list::generators::strided_list(n, stride);
    }
    case Shape::kBlocked:
      return list::generators::blocked_list(n, 32, seed);
  }
  return list::generators::random_list(n, seed);
}

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kRandom: return "Random";
    case Shape::kIdentity: return "Identity";
    case Shape::kReverse: return "Reverse";
    case Shape::kStrided: return "Strided";
    case Shape::kBlocked: return "Blocked";
  }
  return "?";
}

const char* alg_name(Algorithm a) {
  switch (a) {
    case Algorithm::kSequential: return "Sequential";
    case Algorithm::kMatch1: return "Match1";
    case Algorithm::kMatch2: return "Match2";
    case Algorithm::kMatch3: return "Match3";
    case Algorithm::kMatch4: return "Match4";
    case Algorithm::kRandomized: return "Randomized";
  }
  return "?";
}

using Param = std::tuple<Algorithm, Shape, std::size_t>;

class MatchingSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MatchingSweep, MaximalMatchingHolds) {
  const auto [alg, shape, n] = GetParam();
  const LinkedList list = make_list(shape, n, /*seed=*/n * 31 + 7);
  pram::SeqExec exec(/*processors=*/16);
  core::MatchOptions opt;
  opt.algorithm = alg;
  const core::MatchResult r = core::maximal_matching(exec, list, opt);
  ASSERT_EQ(r.in_matching.size(), n);
  core::verify::check_matching(list, r.in_matching);
  core::verify::check_maximal(list, r.in_matching);
  EXPECT_EQ(r.edges, core::verify::matching_size(r.in_matching));
  // Any maximal matching on a path covers at least ceil((n-1)/3) pointers
  // and at most floor((n-1+1)/2).
  if (n > 1) {
    EXPECT_GE(3 * r.edges + 2, list.pointers());
    EXPECT_LE(2 * r.edges, n);
  }
}

TEST_P(MatchingSweep, OneOfThreeForDeterministicCutAlgorithms) {
  const auto [alg, shape, n] = GetParam();
  if (alg != Algorithm::kMatch1 && alg != Algorithm::kMatch3 &&
      alg != Algorithm::kMatch4 && alg != Algorithm::kSequential)
    GTEST_SKIP() << "one-of-three is promised only by the cut-based path";
  const LinkedList list = make_list(shape, n, n * 131 + 5);
  pram::SeqExec exec(8);
  core::MatchOptions opt;
  opt.algorithm = alg;
  const auto r = core::maximal_matching(exec, list, opt);
  core::verify::check_one_of_three(list, r.in_matching);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatchingSweep,
    ::testing::Combine(
        ::testing::Values(Algorithm::kSequential, Algorithm::kMatch1,
                          Algorithm::kMatch2, Algorithm::kMatch3,
                          Algorithm::kMatch4, Algorithm::kRandomized),
        ::testing::Values(Shape::kRandom, Shape::kIdentity, Shape::kReverse,
                          Shape::kStrided, Shape::kBlocked),
        ::testing::Values<std::size_t>(1, 2, 3, 5, 17, 64, 257, 4096)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(alg_name(std::get<0>(info.param))) + "_" +
             shape_name(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(MatchingExecutors, ParallelExecAgreesWithSeqExec) {
  pram::ThreadPool pool(3);
  for (std::size_t n : {129u, 2048u}) {
    const auto list = list::generators::random_list(n, 42);
    for (auto alg : {Algorithm::kMatch1, Algorithm::kMatch2,
                     Algorithm::kMatch3, Algorithm::kMatch4}) {
      pram::SeqExec seq(32);
      pram::ParallelExec par(32, pool);
      core::MatchOptions opt;
      opt.algorithm = alg;
      const auto a = core::maximal_matching(seq, list, opt);
      const auto b = core::maximal_matching(par, list, opt);
      // Deterministic algorithms: identical matchings and identical cost
      // accounting regardless of the execution backend.
      EXPECT_EQ(a.in_matching, b.in_matching) << alg_name(alg) << " n=" << n;
      EXPECT_EQ(a.cost.depth, b.cost.depth) << alg_name(alg);
      EXPECT_EQ(a.cost.time_p, b.cost.time_p) << alg_name(alg);
      EXPECT_EQ(a.cost.work, b.cost.work) << alg_name(alg);
    }
  }
}

TEST(MatchingAlgorithms, EdgeCountsAgreeLooselyAcrossAlgorithms) {
  // All maximal matchings on the same list are within a factor 2 in size.
  const auto list = list::generators::random_list(5000, 9);
  pram::SeqExec exec(16);
  std::vector<std::size_t> sizes;
  for (auto alg : {Algorithm::kSequential, Algorithm::kMatch1,
                   Algorithm::kMatch2, Algorithm::kMatch3, Algorithm::kMatch4,
                   Algorithm::kRandomized}) {
    core::MatchOptions opt;
    opt.algorithm = alg;
    sizes.push_back(core::maximal_matching(exec, list, opt).edges);
  }
  for (std::size_t s : sizes) {
    EXPECT_LE(sizes.front(), 2 * s);
    EXPECT_LE(s, 2 * sizes.front());
  }
}

TEST(MatchingAlgorithms, SequentialIsMaximumOnPath) {
  // Greedy from the head yields ceil((n-1)/2) edges on a path.
  for (std::size_t n : {2u, 3u, 10u, 11u, 1001u}) {
    const auto list = list::generators::identity_list(n);
    const auto r = core::sequential_matching(list);
    EXPECT_EQ(r.edges, n / 2) << n;
  }
}

}  // namespace
}  // namespace llmp
