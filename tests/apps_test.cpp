// Tests for the application layer: 3-coloring, maximal independent set,
// and both list-ranking algorithms, across shapes and sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/independent_set.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"

namespace llmp {
namespace {

std::vector<list::LinkedList> shape_suite(std::size_t n, std::uint64_t seed) {
  std::vector<list::LinkedList> suite;
  suite.push_back(list::generators::random_list(n, seed));
  suite.push_back(list::generators::identity_list(n));
  suite.push_back(list::generators::reverse_list(n));
  if (n > 1) {
    std::size_t stride = 5;
    while (std::gcd(stride, n) != 1) ++stride;
    suite.push_back(list::generators::strided_list(n, stride));
  }
  return suite;
}

class AppsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AppsSweep, ThreeColoringIsProper) {
  const std::size_t n = GetParam();
  for (const auto& list : shape_suite(n, 3 * n + 1)) {
    pram::SeqExec exec(16);
    const auto r = apps::three_coloring(exec, list);
    apps::check_coloring(list, r.colors, 3);
  }
}

TEST_P(AppsSweep, IndependentSetIsMaximal) {
  const std::size_t n = GetParam();
  for (const auto& list : shape_suite(n, 5 * n + 2)) {
    pram::SeqExec exec(16);
    const auto r = apps::independent_set(exec, list);
    apps::check_independent_set(list, r.in_set);
    // An MIS of a path has between ceil(n/3) and ceil(n/2) nodes.
    EXPECT_GE(3 * r.size, n);
    EXPECT_LE(2 * r.size, n + 1);
  }
}

TEST_P(AppsSweep, WyllieRankingMatchesOracle) {
  const std::size_t n = GetParam();
  for (const auto& list : shape_suite(n, 7 * n + 3)) {
    pram::SeqExec exec(16);
    const auto r = apps::wyllie_ranking(exec, list);
    EXPECT_EQ(r.rank, apps::sequential_ranking(list));
  }
}

TEST_P(AppsSweep, ContractionRankingMatchesOracle) {
  const std::size_t n = GetParam();
  for (const auto& list : shape_suite(n, 11 * n + 4)) {
    pram::SeqExec exec(16);
    const auto r = apps::contraction_ranking(exec, list);
    EXPECT_EQ(r.rank, apps::sequential_ranking(list));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AppsSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 7, 31,
                                                        64, 333, 2048),
                         ::testing::PrintToStringParamName());

TEST(Apps, ContractionRankingWithEveryMatcher) {
  const auto list = list::generators::random_list(1500, 77);
  const auto oracle = apps::sequential_ranking(list);
  for (auto alg : {core::Algorithm::kMatch1, core::Algorithm::kMatch2,
                   core::Algorithm::kMatch3, core::Algorithm::kMatch4}) {
    pram::SeqExec exec(16);
    apps::ContractionOptions opt;
    opt.matcher = alg;
    const auto r = apps::contraction_ranking(exec, list, opt);
    EXPECT_EQ(r.rank, oracle) << core::to_string(alg);
  }
}

TEST(Apps, ContractionRoundsAreLogarithmic) {
  // One-of-three ⇒ each round removes >= 1/3 of the pointers, so rounds
  // <= log_{3/2}(n) + O(1).
  for (std::size_t n : {64u, 1024u, 16384u}) {
    const auto list = list::generators::random_list(n, 13);
    pram::SeqExec exec(64);
    const auto r = apps::contraction_ranking(exec, list);
    const double bound = std::log2(static_cast<double>(n)) /
                             std::log2(1.5) +
                         2;
    EXPECT_LE(r.rounds, static_cast<int>(bound)) << "n=" << n;
  }
}

TEST(Apps, WyllieWorkIsNLogN) {
  const std::size_t n = 4096;
  const auto list = list::generators::random_list(n, 5);
  pram::SeqExec exec(64);
  const auto r = apps::wyllie_ranking(exec, list);
  // depth = 1 + ceil(log2 n) steps; work ~ n per step.
  EXPECT_EQ(r.rounds, 12);
  EXPECT_GE(r.cost.work, static_cast<std::uint64_t>(n) * 12);
}

TEST(Apps, ColoringUsesAtMostGnRounds) {
  for (std::size_t n : {10u, 100u, 100000u}) {
    const auto list = list::generators::random_list(n, 2);
    pram::SeqExec exec(16);
    const auto r = apps::three_coloring(exec, list);
    // reduce_to_constant runs until the bound hits 6: within G(n)+3.
    EXPECT_LE(r.reduce_rounds, itlog::G(n) + 3) << n;
  }
}

}  // namespace
}  // namespace llmp
