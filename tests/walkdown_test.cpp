// Audits of the scheduling machinery of §3: the 2D layout, WalkDown1
// (Lemma 6) and WalkDown2 (Lemma 7, Corollaries 1–2), and the combined
// 3-set partition Match4 builds from them.
#include "core/walkdown.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "core/gather.h"
#include "core/match_result.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "pram/machine.h"

namespace llmp::core {
namespace {

struct WdCtx {
  list::LinkedList list;
  std::vector<index_t> keys;   // matching-set numbers, < rows
  std::vector<index_t> pred;
  label_t bound;
};

WdCtx make_ctx(std::size_t n, int rounds, std::uint64_t seed) {
  WdCtx s{list::generators::random_list(n, seed), {}, {}, 0};
  pram::SeqExec exec(8);
  std::vector<label_t> labels;
  init_address_labels(exec, n, labels);
  relabel_rounds(exec, s.list, labels, rounds,
                 BitRule::kMostSignificant);
  s.bound = n > 1 ? bound_after_rounds(n, rounds) : 1;
  s.keys.resize(n);
  for (index_t v = 0; v < n; ++v)
    s.keys[v] = static_cast<index_t>(labels[v]);
  s.pred = s.list.predecessors();
  return s;
}

TEST(Layout2D, ColumnsAreSortedAndComplete) {
  const std::size_t n = 1000;
  WdCtx s = make_ctx(n, 2, 3);
  pram::SeqExec exec(8);
  Layout2D lay = build_layout(exec, n, s.keys, s.bound);
  EXPECT_EQ(lay.rows, static_cast<std::size_t>(s.bound));
  EXPECT_EQ(lay.cols, (n + lay.rows - 1) / lay.rows);
  std::vector<bool> seen(n, false);
  for (std::size_t j = 0; j < lay.cols; ++j) {
    index_t prev_key = 0;
    for (std::size_t r = 0; r < lay.rows; ++r) {
      const index_t v = lay.cell_node[j * lay.rows + r];
      if (v == knil) continue;
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
      EXPECT_EQ(lay.node_row[v], r);
      // Node stays in its own column.
      EXPECT_EQ(v / lay.rows, j);
      // Keys non-decreasing down the column.
      EXPECT_GE(s.keys[v], prev_key);
      prev_key = s.keys[v];
    }
  }
  for (index_t v = 0; v < n; ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(WalkDown2, Lemma7CellInRowRIsHandledAtStepRPlusKey) {
  const std::size_t n = 2000;
  WdCtx s = make_ctx(n, 2, 11);
  pram::SeqExec exec(8);
  Layout2D lay = build_layout(exec, n, s.keys, s.bound);
  std::vector<std::uint8_t> color(n, kNoColor);
  walkdown1(exec, s.list, lay, s.pred, color);
  WalkDown2Trace trace = walkdown2(exec, s.list, lay, s.pred, color);
  for (index_t v = 0; v < n; ++v) {
    ASSERT_NE(trace.handled_at[v], knil) << "Corollary 1: all cells handled";
    EXPECT_EQ(trace.handled_at[v], lay.node_row[v] + s.keys[v])
        << "Lemma 7 violated at node " << v;
  }
}

TEST(WalkDown2, Corollary1FinishesByStep2XMinus2) {
  const std::size_t n = 513;  // ragged last column
  WdCtx s = make_ctx(n, 3, 5);
  pram::SeqExec exec(8);
  Layout2D lay = build_layout(exec, n, s.keys, s.bound);
  std::vector<std::uint8_t> color(n, kNoColor);
  walkdown1(exec, s.list, lay, s.pred, color);
  WalkDown2Trace trace = walkdown2(exec, s.list, lay, s.pred, color);
  EXPECT_EQ(trace.steps, 2 * lay.rows - 1);
  for (index_t v = 0; v < n; ++v)
    EXPECT_LE(trace.handled_at[v], 2 * lay.rows - 2);
}

TEST(WalkDown2, Corollary2SameRowSameStepSameSet) {
  const std::size_t n = 4096;
  WdCtx s = make_ctx(n, 2, 19);
  pram::SeqExec exec(8);
  Layout2D lay = build_layout(exec, n, s.keys, s.bound);
  std::vector<std::uint8_t> color(n, kNoColor);
  walkdown1(exec, s.list, lay, s.pred, color);
  WalkDown2Trace trace = walkdown2(exec, s.list, lay, s.pred, color);
  // Group handled cells by (step, row): all must share one key.
  std::map<std::pair<index_t, index_t>, index_t> key_of;
  for (index_t v = 0; v < n; ++v) {
    const auto at = std::make_pair(trace.handled_at[v], lay.node_row[v]);
    const auto res = key_of.emplace(at, s.keys[v]);
    EXPECT_EQ(res.first->second, s.keys[v])
        << "two sets in row " << at.second << " at step " << at.first;
  }
}

TEST(WalkDown, CombinedPassesGiveProper3SetPartition) {
  for (std::size_t n : {2u, 3u, 17u, 300u, 5000u}) {
    for (int rounds : {1, 2, 3}) {
      WdCtx s = make_ctx(n, rounds, n + rounds);
      pram::SeqExec exec(8);
      Layout2D lay = build_layout(exec, n, s.keys, s.bound);
      std::vector<std::uint8_t> color(n, kNoColor);
      walkdown1(exec, s.list, lay, s.pred, color);
      walkdown2(exec, s.list, lay, s.pred, color);
      std::vector<label_t> plabel(n, 0);
      for (index_t v = 0; v < n; ++v) {
        if (!s.list.has_pointer(v)) continue;
        ASSERT_NE(color[v], kNoColor) << "pointer e_" << v << " unlabeled";
        ASSERT_LT(color[v], 3);
        plabel[v] = color[v];
      }
      verify::check_pointer_partition(s.list, plabel);
    }
  }
}

TEST(WalkDown, AdjacentPointersNeverHandledConcurrently) {
  // The safety property behind Lemma 6 and the shared palette: no two
  // adjacent pointers are processed at the same (phase, step). Encode
  // phase 1 steps as row(tail), phase 2 as 2·rows + handled_at.
  const std::size_t n = 3000;
  WdCtx s = make_ctx(n, 2, 23);
  pram::SeqExec exec(8);
  Layout2D lay = build_layout(exec, n, s.keys, s.bound);
  std::vector<std::uint8_t> color(n, kNoColor);
  walkdown1(exec, s.list, lay, s.pred, color);
  WalkDown2Trace trace = walkdown2(exec, s.list, lay, s.pred, color);
  const auto& next = s.list.next_array();
  auto handle_time = [&](index_t v) -> std::size_t {
    const bool intra = lay.node_row[v] == lay.node_row[next[v]];
    return intra ? 2 * lay.rows + trace.handled_at[v] : lay.node_row[v];
  };
  for (index_t v = 0; v < n; ++v) {
    if (!s.list.has_pointer(v)) continue;
    const index_t w = next[v];
    if (!s.list.has_pointer(w)) continue;
    EXPECT_NE(handle_time(v), handle_time(w))
        << "adjacent pointers e_" << v << ", e_" << w;
  }
}

TEST(WalkDown, MachineConfirmsCrewLegality) {
  const std::size_t n = 700;
  WdCtx s = make_ctx(n, 2, 31);
  pram::Machine m(pram::Mode::kCREW, 8);
  Layout2D lay = build_layout(m, n, s.keys, s.bound);
  std::vector<std::uint8_t> color(n, kNoColor);
  EXPECT_NO_THROW({
    walkdown1(m, s.list, lay, s.pred, color);
    walkdown2(m, s.list, lay, s.pred, color);
  });
}

TEST(WalkDown1, InterRowOnlyListIsFullyLabeledByPhaseOne) {
  // Lemma 6's hypothesis: with x = n rows (one column), every pointer is
  // inter-row, and WalkDown1 alone 3-labels the whole list.
  const std::size_t n = 200;
  const auto list = list::generators::random_list(n, 41);
  pram::SeqExec exec(8);
  std::vector<index_t> keys(n);
  for (index_t v = 0; v < n; ++v) keys[v] = v;  // distinct keys: n rows
  Layout2D lay = build_layout(exec, n, keys, n);
  auto pred = list.predecessors();
  std::vector<std::uint8_t> color(n, kNoColor);
  walkdown1(exec, list, lay, pred, color);
  std::vector<label_t> plabel(n, 0);
  for (index_t v = 0; v < n; ++v) {
    if (!list.has_pointer(v)) continue;
    ASSERT_LT(color[v], 3) << v;
    plabel[v] = color[v];
  }
  verify::check_pointer_partition(list, plabel);
}

}  // namespace
}  // namespace llmp::core
