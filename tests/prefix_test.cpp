// Tests for parallel prefix sums and the stable counting sort — the
// substrate of Match2's global sort step.
#include "pram/prefix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pram/executor.h"
#include "support/rng.h"

namespace llmp::pram {
namespace {

std::vector<std::uint64_t> oracle_exclusive_scan(
    const std::vector<std::uint64_t>& a) {
  std::vector<std::uint64_t> out(a.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = acc;
    acc += a[i];
  }
  return out;
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, MatchesOracleAndReturnsTotal) {
  const std::size_t n = GetParam();
  rng::Xoshiro256 gen(n + 3);
  std::vector<std::uint64_t> a(n);
  for (auto& x : a) x = gen.below(1000);
  const auto expect = oracle_exclusive_scan(a);
  const std::uint64_t expect_total =
      std::accumulate(a.begin(), a.end(), std::uint64_t{0});
  SeqExec exec(4);
  std::vector<std::uint64_t> b = a;
  const std::uint64_t total = exclusive_scan(exec, b);
  EXPECT_EQ(total, expect_total);
  EXPECT_EQ(b, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values<std::size_t>(0, 1, 2, 3, 4, 7, 8,
                                                        9, 63, 64, 65, 1000,
                                                        4096, 100000),
                         ::testing::PrintToStringParamName());

TEST(Scan, DepthIsLogarithmicWorkIsLinear) {
  const std::size_t n = 1 << 16;
  SeqExec exec(16);
  std::vector<std::uint64_t> a(n, 1);
  exclusive_scan(exec, a);
  // Up-sweep + down-sweep: 2·log2(n) + 2 steps.
  EXPECT_LE(exec.stats().depth, 2 * 16 + 2u);
  EXPECT_LE(exec.stats().work, 3 * static_cast<std::uint64_t>(n));
}

class SortCase
    : public ::testing::TestWithParam<std::tuple<std::size_t, index_t,
                                                 std::size_t>> {};

TEST_P(SortCase, SortsStably) {
  const auto [n, range, blocks] = GetParam();
  rng::Xoshiro256 gen(n * 7 + range);
  std::vector<index_t> keys(n);
  for (auto& k : keys) k = static_cast<index_t>(gen.below(range));
  SeqExec exec(8);
  const SortedByKey sorted = counting_sort_by_key(exec, keys, range, blocks);
  ASSERT_EQ(sorted.order.size(), n);
  // Permutation + sorted keys + stability (ties in input order).
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_LT(sorted.order[i], n);
    ASSERT_FALSE(seen[sorted.order[i]]);
    seen[sorted.order[i]] = true;
    if (i > 0) {
      const index_t ka = keys[sorted.order[i - 1]];
      const index_t kb = keys[sorted.order[i]];
      ASSERT_LE(ka, kb);
      if (ka == kb) ASSERT_LT(sorted.order[i - 1], sorted.order[i]);
    }
  }
  // Offsets delimit each key's slice.
  ASSERT_EQ(sorted.offsets.size(), static_cast<std::size_t>(range) + 1);
  for (index_t k = 0; k < range; ++k)
    for (std::uint64_t i = sorted.offsets[k]; i < sorted.offsets[k + 1]; ++i)
      ASSERT_EQ(keys[sorted.order[i]], k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SortCase,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 5, 100, 4097),
                       ::testing::Values<index_t>(1, 2, 13, 40),
                       ::testing::Values<std::size_t>(1, 4, 17)));

TEST(Sort, BlocksMoreThanElementsIsClamped) {
  std::vector<index_t> keys{2, 0, 1};
  SeqExec exec(8);
  const auto sorted = counting_sort_by_key(exec, keys, 3, 64);
  EXPECT_EQ(sorted.order, (std::vector<index_t>{1, 2, 0}));
}

TEST(Sort, TimeScalesWithBlocksMatch2Shape) {
  // With blocks = p, time_p is O(n/p + R + log(R·p)) — halving p should
  // roughly halve the linear term.
  const std::size_t n = 1 << 15;
  rng::Xoshiro256 gen(4);
  std::vector<index_t> keys(n);
  for (auto& k : keys) k = static_cast<index_t>(gen.below(12));
  auto time_with = [&](std::size_t p) {
    SeqExec exec(p);
    counting_sort_by_key(exec, keys, 12, p);
    return exec.stats().time_p;
  };
  const auto t8 = time_with(8);
  const auto t64 = time_with(64);
  EXPECT_GT(t8, 4 * t64);  // near-linear scaling in this range
}

}  // namespace
}  // namespace llmp::pram
