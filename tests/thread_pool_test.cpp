// Tests for the SPMD thread pool and the sense-reversing barrier, plus
// ParallelExec's inline/pooled dispatch seam at its parallel threshold.
#include "pram/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pram/barrier.h"
#include "pram/executor.h"

namespace llmp::pram {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t workers : {0u, 1u, 3u}) {
    ThreadPool pool(workers);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives and is reusable after an exception.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInlineAndPropagatesExceptions) {
  // workers == 0 must degrade to a plain sequential loop on the caller
  // thread: full coverage, exceptions surfaced, pool reusable after.
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  std::uint64_t sum = 0;  // no atomics needed: everything is inline
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPool, ManySmallJobsReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(16, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 200u * 120u);
}

TEST(ParallelExec, ThresholdBoundaryMatchesSeqExecExactly) {
  // ParallelExec runs steps with nprocs below its threshold inline and
  // dispatches larger ones to the pool. Pin the seam with an explicit
  // threshold (calibration would move it per machine): one below, at, and
  // one above must all produce the same memory contents and the same
  // Stats as SeqExec.
  const std::size_t t = ParallelExec::kDefaultParallelThreshold;
  for (std::size_t n : {t - 1, t, t + 1}) {
    SeqExec seq(64);
    ThreadPool pool(3);
    ParallelExec par(64, pool, t);
    std::vector<std::uint64_t> a_seq(n, 1), b_seq(n, 0);
    std::vector<std::uint64_t> a_par(n, 1), b_par(n, 0);
    auto run = [n](auto& exec, std::vector<std::uint64_t>& a,
                   std::vector<std::uint64_t>& b) {
      exec.step(n, [&](std::size_t v, auto&& m) {
        m.wr(b, v, m.rd(a, v) + v);
      });
      exec.step(n, 5, [&](std::size_t v, auto&& m) {
        m.wr(a, v, m.rd(b, (v + 1) % n));
      });
    };
    run(seq, a_seq, b_seq);
    run(par, a_par, b_par);
    EXPECT_EQ(a_seq, a_par) << "n=" << n;
    EXPECT_EQ(b_seq, b_par) << "n=" << n;
    EXPECT_EQ(seq.stats().depth, par.stats().depth) << "n=" << n;
    EXPECT_EQ(seq.stats().time_p, par.stats().time_p) << "n=" << n;
    EXPECT_EQ(seq.stats().work, par.stats().work) << "n=" << n;
    EXPECT_EQ(seq.stats().reads, par.stats().reads) << "n=" << n;
    EXPECT_EQ(seq.stats().writes, par.stats().writes) << "n=" << n;
  }
}

TEST(ThreadPool, ParallelForSlicesCoversRangeExactlyOnce) {
  for (std::size_t workers : {0u, 1u, 3u}) {
    ThreadPool pool(workers);
    const std::size_t n = 9973;  // prime: uneven chunking
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_slices(n, [&](std::size_t lo, std::size_t hi) {
      ASSERT_LE(lo, hi);
      for (std::size_t i = lo; i < hi; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
  }
}

TEST(ParallelExec, SweepAccountsExactlyLikeStep) {
  // sweep(n, u, range_body) must charge the cost surface byte-identically
  // to step(n, u, body) — that is what keeps fused algorithms bit-equal to
  // the referee. Run one of each shape on both executors and compare.
  const std::size_t t = ParallelExec::kDefaultParallelThreshold;
  for (std::size_t n : {t - 1, t, t + 1}) {
    ThreadPool pool(3);
    ParallelExec stepper(64, pool, t);
    ParallelExec sweeper(64, pool, t);
    std::vector<std::uint64_t> a(n, 0), b(n, 0);
    stepper.step(n, [&](std::size_t v, auto&& m) { m.wr(a, v, v); });
    stepper.step(n, 7, [&](std::size_t v, auto&& m) { m.wr(a, v, 2 * v); });
    std::uint64_t* bp = b.data();
    sweeper.sweep(n, 1, [bp](std::size_t lo, std::size_t hi) {
      for (std::size_t v = lo; v < hi; ++v) bp[v] = v;
    });
    sweeper.sweep(n, 7, [bp](std::size_t lo, std::size_t hi) {
      for (std::size_t v = lo; v < hi; ++v) bp[v] = 2 * v;
    });
    EXPECT_EQ(a, b) << "n=" << n;
    EXPECT_EQ(stepper.stats().depth, sweeper.stats().depth);
    EXPECT_EQ(stepper.stats().time_p, sweeper.stats().time_p);
    EXPECT_EQ(stepper.stats().work, sweeper.stats().work);
  }
}

TEST(ParallelExec, ZeroWorkerPoolHoistsDispatchDecision) {
  // With no workers the pooled path can never win, so construction pins
  // the threshold at kNeverParallel once — per-step re-checks of
  // pool.workers() are gone (bench_dispatch measures the saving).
  ThreadPool pool(0);
  ParallelExec exec(64, pool);
  EXPECT_EQ(exec.parallel_threshold(), kNeverParallel);
  const std::size_t n = 100000;
  std::vector<std::uint64_t> a(n, 0);
  exec.step(n, [&](std::size_t v, auto&& m) { m.wr(a, v, v + 1); });
  for (std::size_t v = 0; v < n; ++v) ASSERT_EQ(a[v], v + 1);
}

TEST(ParallelExec, ExplicitThresholdOverridesCalibration) {
  ThreadPool pool(2);
  ParallelExec exec(64, pool, 123);
  EXPECT_EQ(exec.parallel_threshold(), 123u);
  EXPECT_FALSE(exec.calibration().measured);
}

TEST(ParallelExec, DefaultConstructionCalibratesOncePerPool) {
  // Default construction measures (or reads LLMP_PARALLEL_THRESHOLD) and
  // caches per worker count: two executors over equal-sized pools must
  // agree, and the result is a usable threshold (possibly kNeverParallel).
  ThreadPool pool_a(2), pool_b(2);
  ParallelExec a(64, pool_a), b(64, pool_b);
  EXPECT_EQ(a.parallel_threshold(), b.parallel_threshold());
  EXPECT_GE(a.parallel_threshold(), 1u);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr std::size_t kParties = 4;
  ThreadPool pool(kParties - 1);
  Barrier barrier(kParties);
  constexpr int kPhases = 50;
  std::vector<std::atomic<int>> counts(kPhases);
  std::atomic<bool> order_ok{true};
  pool.run_spmd([&](std::size_t) {
    bool sense = false;
    for (int ph = 0; ph < kPhases; ++ph) {
      counts[ph].fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait(sense);
      // After the barrier, every party must have bumped this phase.
      if (counts[ph].load(std::memory_order_relaxed) !=
          static_cast<int>(kParties))
        order_ok.store(false);
      barrier.arrive_and_wait(sense);
    }
  });
  EXPECT_TRUE(order_ok.load());
  for (int ph = 0; ph < kPhases; ++ph)
    EXPECT_EQ(counts[ph].load(), static_cast<int>(kParties));
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Barrier b(1);
  bool sense = false;
  for (int i = 0; i < 10; ++i) b.arrive_and_wait(sense);
  SUCCEED();
}

}  // namespace
}  // namespace llmp::pram
