// End-to-end suite for the network front door: a real Service behind a
// real Server on an ephemeral loopback port, driven by net::Client and —
// for the malformed-byte cases — by a raw socket that speaks deliberately
// broken protocol. Every test asserts from counters (server stats, client
// stats, admission ledger), so lost/duplicated responses cannot hide.
#include <arpa/inet.h>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <netinet/in.h>
#include <optional>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "gtest/gtest.h"
#include "llmp.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "support/failpoint.h"

namespace llmp::net {
namespace {

namespace failpoint = support::failpoint;

/// A raw loopback connection for speaking broken bytes at the server.
class RawConn {
 public:
  /// rcvbuf_bytes > 0 shrinks SO_RCVBUF before connecting, so backpressure
  /// tests can fill the kernel's buffering deterministically.
  explicit RawConn(std::uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf_bytes > 0)
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { close(); }
  bool connected() const { return connected_; }
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  bool send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t at = 0;
    while (at < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + at, bytes.size() - at,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      at += static_cast<std::size_t>(n);
    }
    return true;
  }
  /// Read until EOF or timeout; returns bytes received.
  std::vector<std::uint8_t> read_to_eof() {
    std::vector<std::uint8_t> out;
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.insert(out.end(), buf, buf + n);
    }
    return out;
  }
  /// Non-blocking read of whatever is available right now.
  std::vector<std::uint8_t> read_some() {
    std::vector<std::uint8_t> out;
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      out.insert(out.end(), buf, buf + n);
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

serve::ServiceOptions service_opts(std::size_t workers = 2,
                                   std::size_t queue = 64) {
  serve::ServiceOptions o;
  o.workers = workers;
  o.queue_capacity = queue;
  return o;
}

ClientOptions client_opts(std::uint16_t port,
                          std::uint64_t recv_timeout_ms = 30'000) {
  ClientOptions o;
  o.port = port;
  o.recv_timeout_ms = recv_timeout_ms;
  return o;
}

/// Service + Server + connected Client, the common fixture kit.
struct Stack {
  explicit Stack(serve::ServiceOptions sopt = service_opts(),
                 ServerOptions nopt = {})
      : svc(sopt), server(svc, nopt) {
    const Status s = server.start();
    EXPECT_TRUE(s.ok()) << s.to_string();
    client.emplace(client_opts(server.port()));
    const Status c = client->connect();
    EXPECT_TRUE(c.ok()) << c.to_string();
  }
  serve::Service svc;
  Server server;
  std::optional<Client> client;
};

/// Spin until the predicate holds (or ~5 s pass); returns its last value.
template <class Fn>
bool eventually(Fn&& fn) {
  for (int i = 0; i < 500; ++i) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return fn();
}

TEST(NetServer, GeneratedRequestRoundTrip) {
  Stack s;
  auto r = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(512, 42));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_GT(r->edges, 0u);
  EXPECT_TRUE(r->in_matching.empty());  // summaries only, by design
}

TEST(NetServer, InlineListMatchesInProcessResult) {
  const auto list = list::generators::random_list(300, 9);
  llmp::Context ctx;
  const auto local = llmp::run(ctx, "sequential", list);
  ASSERT_TRUE(local.ok());

  Stack s;
  auto r =
      s.client->submit(RequestBuilder().algorithm("sequential").list(list));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  // Same algorithm, same list, shipped over the wire: same matching size.
  EXPECT_EQ(r->edges, local->edges);
}

TEST(NetServer, PipelinedBatchReconcilesEveryRequest) {
  Stack s;
  constexpr std::size_t kBatch = 100;
  std::vector<RequestBuilder> batch;
  for (std::size_t i = 0; i < kBatch; ++i)
    batch.push_back(RequestBuilder()
                        .algorithm("sequential")
                        .generated(256, 1000 + (i % 4)));
  const auto results = s.client->submit_batch(batch);
  ASSERT_EQ(results.size(), kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    EXPECT_TRUE(results[i].ok()) << i << ": " << results[i].status().to_string();
  const ClientStats cs = s.client->stats();
  EXPECT_EQ(cs.requests, kBatch);
  EXPECT_EQ(cs.responses, kBatch);
  EXPECT_EQ(cs.ok, kBatch);
  EXPECT_EQ(cs.duplicates, 0u);   // no response delivered twice
  EXPECT_EQ(cs.unknown_ids, 0u);  // none invented
}

TEST(NetServer, ServeErrorsCrossTheWireWithTheirCode) {
  Stack s;
  // Unknown algorithm: rejected by the registry at submit.
  auto r = s.client->submit(
      RequestBuilder().algorithm("no-such-algorithm").generated(64, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  // A builder naming no list fails client-side, before any bytes move.
  auto r2 = s.client->submit(RequestBuilder().algorithm("sequential"));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // A structurally broken inline list (a cycle) is refused by the
  // server's LinkedList::make, not a crash.
  std::vector<std::uint8_t> wire;
  RequestFrame f;
  f.algorithm = "sequential";
  f.list_spec = ListSpec::kInline;
  f.n = 2;
  f.links = {1, 0};  // cycle, no tail
  ASSERT_TRUE(encode_request(f, 0, 77, wire).ok());
  RawConn raw(s.server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.send_bytes(wire));
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(eventually([&] {
    const auto chunk = raw.read_some();
    reply.insert(reply.end(), chunk.begin(), chunk.end());
    return reply.size() >= kFrameHeaderBytes;
  }));
  FrameHeader h;
  ASSERT_TRUE(decode_header(reply.data(), kFrameHeaderBytes, &h).ok());
  EXPECT_EQ(h.type, FrameType::kError);
  EXPECT_EQ(h.request_id, 77u);
}

TEST(NetServer, StatsFrameReportsServiceAndTenants) {
  Stack s;
  std::vector<RequestBuilder> batch;
  for (int i = 0; i < 10; ++i)
    batch.push_back(
        RequestBuilder().algorithm("sequential").generated(128, 5).tenant(3));
  for (const auto& r : s.client->submit_batch(batch)) ASSERT_TRUE(r.ok());

  auto stats = s.client->server_stats();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_GE(stats->submitted, 10u);
  EXPECT_GE(stats->ok, 10u);
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].tenant, 3u);
  EXPECT_EQ(stats->tenants[0].admitted, 10u);
  EXPECT_EQ(stats->tenants[0].completed, 10u);
  EXPECT_EQ(stats->tenants[0].in_flight, 0u);
}

TEST(NetServer, RateQuotaRejectsOverBudgetDeterministically) {
  ServerOptions nopt;
  nopt.admission.default_quota.tokens_per_sec = 0.001;  // ~never refills
  nopt.admission.default_quota.burst = 2;
  Stack s(service_opts(1), nopt);

  std::vector<RequestBuilder> batch;
  for (int i = 0; i < 3; ++i)
    batch.push_back(
        RequestBuilder().algorithm("sequential").generated(64, 1).tenant(5));
  const auto results = s.client->submit_batch(batch);
  EXPECT_TRUE(results[0].ok()) << results[0].status().to_string();
  EXPECT_TRUE(results[1].ok()) << results[1].status().to_string();
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kResourceExhausted);

  const ServerStats st = s.server.stats();
  ASSERT_EQ(st.tenants.size(), 1u);
  EXPECT_EQ(st.tenants[0].admitted, 2u);
  EXPECT_EQ(st.tenants[0].rejected_quota, 1u);
}

TEST(NetServer, InFlightCapRejectsWhileWorkerBusy) {
  // Hold the single worker on its first request so the second one is
  // provably still in flight when the third frame arrives.
  std::mutex mu;
  std::condition_variable cv;
  bool hold = true;
  serve::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.queue_capacity = 8;
  sopt.on_dequeue = [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !hold; });
  };
  ServerOptions nopt;
  nopt.admission.default_quota.max_in_flight = 1;
  Stack s(sopt, nopt);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::lock_guard<std::mutex> lock(mu);
    hold = false;
    cv.notify_all();
  });
  std::vector<RequestBuilder> batch;
  for (int i = 0; i < 2; ++i)
    batch.push_back(
        RequestBuilder().algorithm("sequential").generated(64, 2).tenant(8));
  const auto results = s.client->submit_batch(batch);
  releaser.join();
  EXPECT_TRUE(results[0].ok()) << results[0].status().to_string();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kResourceExhausted);
  const ServerStats st = s.server.stats();
  ASSERT_EQ(st.tenants.size(), 1u);
  EXPECT_EQ(st.tenants[0].rejected_in_flight, 1u);
}

// ---------------------------------------------------------------------------
// Malformed bytes against a LIVE server (the decode-level cases live in
// net_wire_test.cpp): the server answers with an error frame or drops the
// connection, never crashes, and keeps serving others. CI runs this
// binary under ASan.
// ---------------------------------------------------------------------------

TEST(NetServer, GarbageMagicGetsErrorFrameAndDisconnect) {
  Stack s;
  RawConn raw(s.server.port());
  ASSERT_TRUE(raw.connected());
  std::vector<std::uint8_t> junk(64, 0x5A);
  ASSERT_TRUE(raw.send_bytes(junk));
  const auto reply = raw.read_to_eof();  // server closes after the error
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  FrameHeader h;
  ASSERT_TRUE(decode_header(reply.data(), kFrameHeaderBytes, &h).ok());
  EXPECT_EQ(h.type, FrameType::kError);
  EXPECT_TRUE(eventually([&] { return s.server.stats().protocol_errors >= 1; }));
  // The server is still alive for everyone else.
  auto r = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  EXPECT_TRUE(r.ok()) << r.status().to_string();
}

TEST(NetServer, OversizedLengthIsRefusedNotAllocated) {
  Stack s;
  RawConn raw(s.server.port());
  ASSERT_TRUE(raw.connected());
  FrameHeader h;
  h.type = FrameType::kRequest;
  h.payload_bytes = 0;  // encode, then forge the length field
  std::vector<std::uint8_t> bytes;
  encode_header(h, bytes);
  const std::uint32_t huge = 0xFFFFFFFF;
  for (int i = 0; i < 4; ++i)
    bytes[20 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  ASSERT_TRUE(raw.send_bytes(bytes));
  const auto reply = raw.read_to_eof();
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  FrameHeader rh;
  ASSERT_TRUE(decode_header(reply.data(), kFrameHeaderBytes, &rh).ok());
  EXPECT_EQ(rh.type, FrameType::kError);
}

TEST(NetServer, MidFrameDisconnectLeaksNothing) {
  Stack s;
  const ServerStats before = s.server.stats();
  {
    RawConn raw(s.server.port());
    ASSERT_TRUE(raw.connected());
    // A valid header promising 1000 payload bytes, then only 10, then gone.
    FrameHeader h;
    h.type = FrameType::kRequest;
    h.payload_bytes = 1000;
    std::vector<std::uint8_t> bytes;
    encode_header(h, bytes);
    bytes.resize(bytes.size() + 10, 0xCC);
    ASSERT_TRUE(raw.send_bytes(bytes));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // disconnect mid-frame
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().disconnects >= before.disconnects + 1;
  }));
  // No half-frame state poisons the next connection.
  Client fresh(client_opts(s.server.port()));
  ASSERT_TRUE(fresh.connect().ok());
  auto r = fresh.submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  EXPECT_TRUE(r.ok()) << r.status().to_string();
}

TEST(NetServer, TruncatedHeaderThenDisconnectIsHarmless) {
  Stack s;
  {
    RawConn raw(s.server.port());
    ASSERT_TRUE(raw.connected());
    std::vector<std::uint8_t> half(kFrameHeaderBytes / 2, 0);
    // A correct magic prefix, cut mid-header.
    half[0] = 0x6C;
    half[1] = 0x6C;
    half[2] = 0x6D;
    half[3] = 0x70;
    ASSERT_TRUE(raw.send_bytes(half));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  auto r = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  EXPECT_TRUE(r.ok()) << r.status().to_string();
}

TEST(NetServer, ClientOnlyFrameTypesAreRejected) {
  Stack s;
  RawConn raw(s.server.port());
  ASSERT_TRUE(raw.connected());
  std::vector<std::uint8_t> bytes;
  encode_response(ResponseFrame{}, 0, 1, bytes);  // server→client type
  ASSERT_TRUE(raw.send_bytes(bytes));
  const auto reply = raw.read_to_eof();
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  FrameHeader h;
  ASSERT_TRUE(decode_header(reply.data(), kFrameHeaderBytes, &h).ok());
  EXPECT_EQ(h.type, FrameType::kError);
}

// A connection that pipelines frames but never reads responses must not
// grow server memory without bound — stats requests included, which
// bypass admission. The server stops answering once the per-connection
// flow-control window fills, and resumes when the peer drains it.
TEST(NetServer, ResponseBacklogIsBoundedWhenThePeerStopsReading) {
  ServerOptions nopt;
  nopt.max_conn_backlog_bytes = 4096;  // tiny flow-control window
  nopt.sndbuf_bytes = 4096;            // and tiny kernel buffering
  Stack s(service_opts(), nopt);
  RawConn raw(s.server.port(), /*rcvbuf_bytes=*/4096);
  ASSERT_TRUE(raw.connected());
  constexpr std::uint64_t kFlood = 2000;
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < kFlood; ++i)
    encode_stats_request(0, i + 1, wire);
  ASSERT_TRUE(raw.send_bytes(wire));
  // Without reading a byte back, only as many responses exist as the
  // window plus kernel buffering absorb — not ~kFlood of them.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_LT(s.server.stats().frames_out, kFlood / 2);
  // The stalled connection costs nobody else anything.
  auto r = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  // Reading reopens the window; every response eventually arrives.
  std::vector<std::uint8_t> got;
  EXPECT_TRUE(eventually([&] {
    const auto chunk = raw.read_some();
    got.insert(got.end(), chunk.begin(), chunk.end());
    std::size_t frames = 0, at = 0;
    while (got.size() - at >= kFrameHeaderBytes) {
      FrameHeader h;
      if (!decode_header(got.data() + at, kFrameHeaderBytes, &h).ok())
        return false;
      if (got.size() - at < kFrameHeaderBytes + h.payload_bytes) break;
      at += kFrameHeaderBytes + h.payload_bytes;
      frames++;
    }
    return frames == kFlood;
  }));
}

// A failed stats read leaves the byte stream desynchronised; the client
// must drop the connection (as submit_batch does) instead of letting the
// next call misparse leftover bytes as fresh frames.
TEST(NetClient, StatsReadFailureClosesTheConnection) {
  // A hand-rolled server that answers the stats request with half a
  // frame header and hangs up.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  std::thread fake([&] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) return;
    std::uint8_t buf[64];
    (void)::recv(cfd, buf, sizeof(buf), 0);  // the stats request
    std::vector<std::uint8_t> full;
    encode_stats(StatsFrame{}, 0, 1, full);
    (void)::send(cfd, full.data(), kFrameHeaderBytes / 2, MSG_NOSIGNAL);
    ::close(cfd);
  });

  Client client(client_opts(ntohs(addr.sin_port), /*recv_timeout_ms=*/500));
  ASSERT_TRUE(client.connect().ok());
  auto stats = client.server_stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  // The desynchronised stream was dropped: the client reports
  // not-connected until connect() is called again.
  auto again = client.server_stats();
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("not connected"),
            std::string::npos);
  fake.join();
  ::close(lfd);
}

// ---------------------------------------------------------------------------
// Chaos: injected socket faults reconcile exactly against the server's
// fault counters and the admission ledger (nothing admitted stays
// in-flight once the dust settles).
// ---------------------------------------------------------------------------

class NetChaos : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(NetChaos, AcceptFaultIsCountedAndConnectionRefused) {
  Stack s;
  // A full round trip first: Client::connect() returns at the TCP
  // handshake, so without this the server-side accept() of the fixture's
  // own connection could land after arm() and eat the fault.
  auto warm = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  ASSERT_TRUE(warm.ok());
  failpoint::arm("net.conn.accept",
                 {failpoint::Action::kStatus, 1.0, 1,
                  std::chrono::milliseconds(0), StatusCode::kUnavailable});
  // The TCP connect succeeds (the fault hits after accept), but the
  // server closes immediately; the first request gets no answer.
  Client victim(client_opts(s.server.port(), 2000));
  ASSERT_TRUE(victim.connect().ok());
  auto r = victim.submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  const auto counts = failpoint::counts("net.conn.accept");
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().accept_faults == counts.faults();
  }));
  EXPECT_EQ(counts.faults(), 1u);
  // A later connection (failpoint exhausted, n=1) sails through.
  Client fresh(client_opts(s.server.port()));
  ASSERT_TRUE(fresh.connect().ok());
  auto r2 = fresh.submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  EXPECT_TRUE(r2.ok()) << r2.status().to_string();
}

TEST_F(NetChaos, ReadFaultDisconnectsAndReconciles) {
  Stack s;
  // Let the Stack client's handshake traffic settle first, then arm.
  auto warm = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1).tenant(2));
  ASSERT_TRUE(warm.ok());
  const ServerStats before = s.server.stats();
  failpoint::arm("net.conn.read",
                 {failpoint::Action::kStatus, 1.0, 1,
                  std::chrono::milliseconds(0), StatusCode::kUnavailable});
  auto r = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1).tenant(2));
  ASSERT_FALSE(r.ok());  // the connection died under the request

  const auto counts = failpoint::counts("net.conn.read");
  EXPECT_EQ(counts.faults(), 1u);
  EXPECT_TRUE(eventually([&] {
    const ServerStats st = s.server.stats();
    return st.read_faults == counts.faults() &&
           st.disconnects >= before.disconnects + 1;
  }));
  // Ledger balance: everything admitted has completed; nothing leaks.
  EXPECT_TRUE(eventually([&] {
    for (const TenantStats& t : s.server.stats().tenants)
      if (t.in_flight != 0 || t.admitted != t.completed) return false;
    return true;
  }));
}

TEST_F(NetChaos, WriteFaultDropsTheResponseNotTheServer) {
  Stack s;
  auto warm = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1).tenant(6));
  ASSERT_TRUE(warm.ok());
  failpoint::arm("net.conn.write",
                 {failpoint::Action::kThrow, 1.0, 1,
                  std::chrono::milliseconds(0), StatusCode::kUnavailable});
  auto r = s.client->submit(
      RequestBuilder().algorithm("sequential").generated(64, 1).tenant(6));
  ASSERT_FALSE(r.ok());  // response write was killed

  const auto counts = failpoint::counts("net.conn.write");
  EXPECT_EQ(counts.faults(), 1u);
  EXPECT_TRUE(eventually([&] {
    return s.server.stats().write_faults == counts.faults();
  }));
  // The admission ledger still balances after the dropped response.
  EXPECT_TRUE(eventually([&] {
    for (const TenantStats& t : s.server.stats().tenants)
      if (t.in_flight != 0 || t.admitted != t.completed) return false;
    return true;
  }));
  // And the server keeps serving fresh connections.
  Client fresh(client_opts(s.server.port()));
  ASSERT_TRUE(fresh.connect().ok());
  auto r2 = fresh.submit(
      RequestBuilder().algorithm("sequential").generated(64, 1));
  EXPECT_TRUE(r2.ok()) << r2.status().to_string();
}

}  // namespace
}  // namespace llmp::net
