// AdmissionController unit suite — the token bucket and in-flight caps
// are exercised with an explicit clock, so every rejection here is exact
// arithmetic, not timing luck.
#include <chrono>

#include "gtest/gtest.h"
#include "net/admission.h"
#include "support/status.h"

namespace llmp::net {
namespace {

using Clock = AdmissionController::Clock;

TEST(NetAdmission, UnlimitedByDefault) {
  AdmissionController adm;
  const auto t0 = Clock::now();
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(adm.admit(7, t0).ok());
  const auto st = adm.stats();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].tenant, 7u);
  EXPECT_EQ(st[0].admitted, 1000u);
  EXPECT_EQ(st[0].in_flight, 1000u);
  EXPECT_EQ(st[0].rejected_quota, 0u);
}

TEST(NetAdmission, TokenBucketBurstThenStarve) {
  AdmissionOptions opt;
  opt.default_quota.tokens_per_sec = 10;
  opt.default_quota.burst = 3;
  AdmissionController adm(opt);
  const auto t0 = Clock::now();
  // A fresh tenant starts with a full bucket of 3.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(adm.admit(1, t0).ok()) << i;
  const Status s = adm.admit(1, t0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // 100 ms at 10/s refills exactly one token.
  const auto t1 = t0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(adm.admit(1, t1).ok());
  EXPECT_FALSE(adm.admit(1, t1).ok());
  const auto st = adm.stats();
  EXPECT_EQ(st[0].admitted, 4u);
  EXPECT_EQ(st[0].rejected_quota, 2u);
}

TEST(NetAdmission, BucketNeverExceedsBurst) {
  AdmissionOptions opt;
  opt.default_quota.tokens_per_sec = 5;
  opt.default_quota.burst = 2;
  AdmissionController adm(opt);
  const auto t0 = Clock::now();
  // An hour of idle refill still caps at burst = 2.
  const auto t1 = t0 + std::chrono::hours(1);
  EXPECT_TRUE(adm.admit(1, t0).ok());
  EXPECT_TRUE(adm.admit(1, t1).ok());
  EXPECT_TRUE(adm.admit(1, t1).ok());
  EXPECT_FALSE(adm.admit(1, t1).ok());
}

TEST(NetAdmission, InFlightCapAndCompletion) {
  AdmissionOptions opt;
  opt.default_quota.max_in_flight = 2;
  AdmissionController adm(opt);
  const auto t0 = Clock::now();
  EXPECT_TRUE(adm.admit(4, t0).ok());
  EXPECT_TRUE(adm.admit(4, t0).ok());
  const Status s = adm.admit(4, t0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  adm.complete(4);
  EXPECT_TRUE(adm.admit(4, t0).ok());
  const auto st = adm.stats();
  EXPECT_EQ(st[0].admitted, 3u);
  EXPECT_EQ(st[0].rejected_in_flight, 1u);
  EXPECT_EQ(st[0].completed, 1u);
  EXPECT_EQ(st[0].in_flight, 2u);
}

TEST(NetAdmission, PerTenantOverridesAreIndependent) {
  AdmissionOptions opt;
  opt.default_quota.tokens_per_sec = 1;  // strict default
  opt.default_quota.burst = 1;
  opt.quotas[42] = TenantQuota{};  // tenant 42: unlimited
  AdmissionController adm(opt);
  const auto t0 = Clock::now();
  EXPECT_TRUE(adm.admit(1, t0).ok());
  EXPECT_FALSE(adm.admit(1, t0).ok());  // default tenant starved
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(adm.admit(42, t0).ok());  // override tenant is not
  const auto st = adm.stats();
  ASSERT_EQ(st.size(), 2u);  // tenant-id order
  EXPECT_EQ(st[0].tenant, 1u);
  EXPECT_EQ(st[1].tenant, 42u);
  EXPECT_EQ(st[1].admitted, 100u);
  EXPECT_EQ(st[1].rejected_quota, 0u);
}

TEST(NetAdmission, BurstDefaultsToRate) {
  AdmissionOptions opt;
  opt.default_quota.tokens_per_sec = 4;  // burst unset ⇒ 4
  AdmissionController adm(opt);
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(adm.admit(1, t0).ok()) << i;
  EXPECT_FALSE(adm.admit(1, t0).ok());
}

}  // namespace
}  // namespace llmp::net
