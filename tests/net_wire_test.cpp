// Wire-protocol unit suite: every frame type round-trips bit-exactly,
// every StatusCode survives the error-frame encoding (the vocabulary is
// iterated from kAllStatusCodes, so a code added to the status table
// without a wire mapping fails here, not in production), and malformed
// bytes — truncations, bad magic/version, oversized lengths, trailing
// garbage — decode to an error Status, never a crash or a bogus value.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "list/generators.h"
#include "net/wire.h"
#include "support/status.h"

namespace llmp::net {
namespace {

std::vector<std::uint8_t> encode_one(const RequestFrame& f,
                                     std::uint32_t tenant = 7,
                                     std::uint64_t id = 99) {
  std::vector<std::uint8_t> out;
  const Status s = encode_request(f, tenant, id, out);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return out;
}

FrameHeader decode_header_ok(const std::vector<std::uint8_t>& bytes) {
  FrameHeader h;
  const Status s = decode_header(bytes.data(), kFrameHeaderBytes, &h);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return h;
}

TEST(NetWire, HeaderRoundTrip) {
  FrameHeader h;
  h.type = FrameType::kResponse;
  h.tenant = 0xDEADBEEF;
  h.request_id = 0x0123456789ABCDEFull;
  h.payload_bytes = 1234;
  std::vector<std::uint8_t> bytes;
  encode_header(h, bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);

  FrameHeader d;
  ASSERT_TRUE(decode_header(bytes.data(), bytes.size(), &d).ok());
  EXPECT_EQ(d.version, kWireVersion);
  EXPECT_EQ(d.type, FrameType::kResponse);
  EXPECT_EQ(d.tenant, h.tenant);
  EXPECT_EQ(d.request_id, h.request_id);
  EXPECT_EQ(d.payload_bytes, h.payload_bytes);
}

TEST(NetWire, RequestGeneratedRoundTrip) {
  RequestFrame f;
  f.algorithm = "match2-erew";
  f.deadline_ms = 250;
  f.memory_budget_bytes = 1 << 20;
  f.list_spec = ListSpec::kGenerated;
  f.n = 1 << 16;
  f.seed = 424242;
  const auto bytes = encode_one(f, /*tenant=*/3, /*id=*/17);

  const FrameHeader h = decode_header_ok(bytes);
  EXPECT_EQ(h.type, FrameType::kRequest);
  EXPECT_EQ(h.tenant, 3u);
  EXPECT_EQ(h.request_id, 17u);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + h.payload_bytes);

  RequestFrame d;
  const Status s =
      decode_request(bytes.data() + kFrameHeaderBytes, h.payload_bytes, &d);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(d.algorithm, f.algorithm);
  EXPECT_EQ(d.deadline_ms, f.deadline_ms);
  EXPECT_EQ(d.memory_budget_bytes, f.memory_budget_bytes);
  EXPECT_EQ(d.list_spec, ListSpec::kGenerated);
  EXPECT_EQ(d.n, f.n);
  EXPECT_EQ(d.seed, f.seed);
  EXPECT_TRUE(d.links.empty());
}

TEST(NetWire, RequestInlineRoundTrip) {
  const auto list = list::generators::random_list(257, 5);
  RequestFrame f;
  f.algorithm = "sequential";
  f.list_spec = ListSpec::kInline;
  f.n = list.size();
  f.links = list.next_array();
  const auto bytes = encode_one(f);

  const FrameHeader h = decode_header_ok(bytes);
  RequestFrame d;
  ASSERT_TRUE(
      decode_request(bytes.data() + kFrameHeaderBytes, h.payload_bytes, &d)
          .ok());
  EXPECT_EQ(d.list_spec, ListSpec::kInline);
  EXPECT_EQ(d.n, f.n);
  EXPECT_EQ(d.links, f.links);  // bit-exact successor array
}

TEST(NetWire, OversizedInlineListIsRefusedLocallyNotEncoded) {
  // An inline list whose successor array exceeds kMaxPayloadBytes must
  // fail at the encoder with a Status — emitting it would produce a frame
  // every server rejects, and one past 4 GiB would wrap the u32 length
  // field and silently desynchronise the stream.
  RequestFrame f;
  f.algorithm = "sequential";
  f.list_spec = ListSpec::kInline;
  f.links.assign(kMaxPayloadBytes / sizeof(index_t) + 1, 0);
  f.n = f.links.size();
  std::vector<std::uint8_t> out;
  const Status s = encode_request(f, 0, 1, out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());  // nothing was written to the stream
}

TEST(NetWire, ResponseRoundTrip) {
  ResponseFrame f;
  f.edges = 12345;
  f.relabel_rounds = 4;
  f.gather_rounds = 3;
  f.partition_sets = 17;
  f.cost_depth = 99;
  f.cost_time_p = 1ull << 40;
  f.cost_work = 1ull << 50;
  std::vector<std::uint8_t> bytes;
  encode_response(f, 1, 2, bytes);

  const FrameHeader h = decode_header_ok(bytes);
  EXPECT_EQ(h.type, FrameType::kResponse);
  ResponseFrame d;
  ASSERT_TRUE(
      decode_response(bytes.data() + kFrameHeaderBytes, h.payload_bytes, &d)
          .ok());
  EXPECT_EQ(d.edges, f.edges);
  EXPECT_EQ(d.relabel_rounds, f.relabel_rounds);
  EXPECT_EQ(d.gather_rounds, f.gather_rounds);
  EXPECT_EQ(d.partition_sets, f.partition_sets);
  EXPECT_EQ(d.cost_depth, f.cost_depth);
  EXPECT_EQ(d.cost_time_p, f.cost_time_p);
  EXPECT_EQ(d.cost_work, f.cost_work);
}

// The satellite guarantee: the single status table in support/status.h is
// the wire mapping, so EVERY code round-trips — including ones added
// later (kAllStatusCodes is generated from the same table).
TEST(NetWire, EveryStatusCodeRoundTripsThroughErrorFrames) {
  for (const StatusCode code : kAllStatusCodes) {
    StatusCode back = StatusCode::kInternal;
    ASSERT_TRUE(status_code_from_wire(wire_code(code), &back))
        << to_string(code);
    EXPECT_EQ(back, code) << to_string(code);
    if (code == StatusCode::kOk) continue;  // error frames never carry OK

    ErrorFrame f;
    f.code = code;
    f.message = std::string("injected ") + to_string(code);
    std::vector<std::uint8_t> bytes;
    encode_error(f, 9, 1ull << 33, bytes);
    const FrameHeader h = decode_header_ok(bytes);
    EXPECT_EQ(h.type, FrameType::kError);
    ErrorFrame d;
    const Status s =
        decode_error(bytes.data() + kFrameHeaderBytes, h.payload_bytes, &d);
    ASSERT_TRUE(s.ok()) << s.to_string();
    EXPECT_EQ(d.code, code);
    EXPECT_EQ(d.message, f.message);
  }
}

TEST(NetWire, UnknownWireCodeIsRejectedNotCast) {
  StatusCode out;
  EXPECT_FALSE(status_code_from_wire(0x7777, &out));

  // An error frame carrying an unknown code fails decode.
  std::vector<std::uint8_t> bytes;
  encode_error({StatusCode::kInternal, "x"}, 0, 0, bytes);
  bytes[kFrameHeaderBytes] = 0x77;  // low byte of the u16 code
  bytes[kFrameHeaderBytes + 1] = 0x77;
  ErrorFrame d;
  EXPECT_FALSE(
      decode_error(bytes.data() + kFrameHeaderBytes,
                   bytes.size() - kFrameHeaderBytes, &d)
          .ok());
}

TEST(NetWire, ErrorFrameCarryingOkIsRejected) {
  // Hand-build an error payload with wire code 0 (OK).
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u16(0);
  w.str16("not an error");
  ErrorFrame d;
  EXPECT_FALSE(decode_error(payload.data(), payload.size(), &d).ok());
}

TEST(NetWire, StatsRoundTripWithTenants) {
  StatsFrame f;
  f.submitted = 100;
  f.completed = 90;
  f.ok = 80;
  f.rejected = 5;
  f.expired = 3;
  f.failed = 2;
  f.retries = 7;
  f.restarts = 1;
  f.audits_failed = 6;
  f.repairs = 4;
  f.p50_latency_us = 128;
  f.p99_latency_us = 4096;
  f.tenants.push_back({1, 50, 2, 1, 47, 3});
  f.tenants.push_back({2, 40, 9, 0, 40, 0});
  std::vector<std::uint8_t> bytes;
  encode_stats(f, 0, 5, bytes);

  const FrameHeader h = decode_header_ok(bytes);
  EXPECT_EQ(h.type, FrameType::kStats);
  StatsFrame d;
  ASSERT_TRUE(
      decode_stats(bytes.data() + kFrameHeaderBytes, h.payload_bytes, &d)
          .ok());
  EXPECT_EQ(d.submitted, f.submitted);
  EXPECT_EQ(d.ok, f.ok);
  EXPECT_EQ(d.audits_failed, 6u);
  EXPECT_EQ(d.repairs, 4u);
  EXPECT_EQ(d.p99_latency_us, f.p99_latency_us);
  ASSERT_EQ(d.tenants.size(), 2u);
  EXPECT_EQ(d.tenants[0].tenant, 1u);
  EXPECT_EQ(d.tenants[0].admitted, 50u);
  EXPECT_EQ(d.tenants[0].rejected_quota, 2u);
  EXPECT_EQ(d.tenants[0].rejected_in_flight, 1u);
  EXPECT_EQ(d.tenants[1].tenant, 2u);
  EXPECT_EQ(d.tenants[1].rejected_quota, 9u);
}

TEST(NetWire, StatsRequestMustBeEmpty) {
  std::vector<std::uint8_t> bytes;
  encode_stats_request(0, 1, bytes);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes);
  EXPECT_TRUE(decode_stats_request(nullptr, 0).ok());
  const std::uint8_t junk[1] = {0};
  EXPECT_FALSE(decode_stats_request(junk, 1).ok());
}

// ---------------------------------------------------------------------------
// Malformed frames: the fuzz-shaped corner suite. Every case must come
// back as a non-OK Status with no crash, read overrun (ASan run in CI),
// or misdecoded value.
// ---------------------------------------------------------------------------

TEST(NetWireFuzz, TruncatedHeaderEveryPrefixLength) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  const auto bytes = encode_one(f);
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    FrameHeader h;
    EXPECT_FALSE(decode_header(bytes.data(), len, &h).ok()) << len;
  }
}

TEST(NetWireFuzz, TruncatedPayloadEveryPrefixLength) {
  const auto list = list::generators::random_list(64, 3);
  RequestFrame f;
  f.algorithm = "match4";
  f.list_spec = ListSpec::kInline;
  f.n = list.size();
  f.links = list.next_array();
  const auto bytes = encode_one(f);
  const std::size_t payload = bytes.size() - kFrameHeaderBytes;
  for (std::size_t len = 0; len < payload; ++len) {
    RequestFrame d;
    EXPECT_FALSE(
        decode_request(bytes.data() + kFrameHeaderBytes, len, &d).ok())
        << len;
  }
}

TEST(NetWireFuzz, BadMagic) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  auto bytes = encode_one(f);
  bytes[0] ^= 0xFF;
  FrameHeader h;
  const Status s = decode_header(bytes.data(), kFrameHeaderBytes, &h);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST(NetWireFuzz, BadVersion) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  auto bytes = encode_one(f);
  bytes[4] = kWireVersion + 1;
  FrameHeader h;
  const Status s = decode_header(bytes.data(), kFrameHeaderBytes, &h);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(NetWireFuzz, BadFrameTypeAndReserved) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  auto bytes = encode_one(f);
  auto mutated = bytes;
  mutated[5] = 0;  // below kRequest
  FrameHeader h;
  EXPECT_FALSE(decode_header(mutated.data(), kFrameHeaderBytes, &h).ok());
  mutated = bytes;
  mutated[5] = 200;  // above kStats
  EXPECT_FALSE(decode_header(mutated.data(), kFrameHeaderBytes, &h).ok());
  mutated = bytes;
  mutated[6] = 1;  // reserved must be zero
  EXPECT_FALSE(decode_header(mutated.data(), kFrameHeaderBytes, &h).ok());
}

TEST(NetWireFuzz, OversizedPayloadLength) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  auto bytes = encode_one(f);
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i)
    bytes[20 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  FrameHeader h;
  const Status s = decode_header(bytes.data(), kFrameHeaderBytes, &h);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("payload length"), std::string::npos);
}

TEST(NetWireFuzz, TrailingBytesAreAnError) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  const auto bytes = encode_one(f);
  std::vector<std::uint8_t> payload(bytes.begin() + kFrameHeaderBytes,
                                    bytes.end());
  payload.push_back(0xAB);
  RequestFrame d;
  const Status s = decode_request(payload.data(), payload.size(), &d);
  ASSERT_FALSE(s.ok());
}

TEST(NetWireFuzz, InlineListLengthMismatch) {
  const auto list = list::generators::random_list(16, 1);
  RequestFrame f;
  f.list_spec = ListSpec::kInline;
  f.n = list.size();
  f.links = list.next_array();
  const auto bytes = encode_one(f);
  std::vector<std::uint8_t> payload(bytes.begin() + kFrameHeaderBytes,
                                    bytes.end());
  // Claim one more node than the links that follow.
  RequestFrame probe;
  {
    // n sits after algorithm (u16 len + bytes) + u32 + u64 + u8.
    const std::size_t n_at = 2 + f.algorithm.size() + 4 + 8 + 1;
    payload[n_at] = static_cast<std::uint8_t>(f.n + 1);
  }
  EXPECT_FALSE(decode_request(payload.data(), payload.size(), &probe).ok());
  // And a payload whose link area is not a multiple of 4 bytes.
  payload = std::vector<std::uint8_t>(bytes.begin() + kFrameHeaderBytes,
                                      bytes.end());
  payload.pop_back();
  EXPECT_FALSE(decode_request(payload.data(), payload.size(), &probe).ok());
}

TEST(NetWireFuzz, StatsTenantCountMismatch) {
  StatsFrame f;
  f.tenants.push_back({1, 2, 3, 4, 5, 6});
  std::vector<std::uint8_t> bytes;
  encode_stats(f, 0, 0, bytes);
  // Bump the tenant count without appending an entry: count lives right
  // after the twelve u64 service counters (offset 96 in the payload).
  bytes[kFrameHeaderBytes + 96] = 2;
  StatsFrame d;
  EXPECT_FALSE(decode_stats(bytes.data() + kFrameHeaderBytes,
                            bytes.size() - kFrameHeaderBytes, &d)
                   .ok());
}

TEST(NetWireFuzz, UnknownListSpec) {
  RequestFrame f;
  f.list_spec = ListSpec::kGenerated;
  f.n = 8;
  const auto bytes = encode_one(f);
  std::vector<std::uint8_t> payload(bytes.begin() + kFrameHeaderBytes,
                                    bytes.end());
  const std::size_t spec_at = 2 + f.algorithm.size() + 4 + 8;
  payload[spec_at] = 9;
  RequestFrame d;
  EXPECT_FALSE(decode_request(payload.data(), payload.size(), &d).ok());
}

}  // namespace
}  // namespace llmp::net
