// Header hygiene: every public header must be self-contained (include
// what it uses) and double-inclusion-safe. This TU includes the whole
// public surface, twice, in an unhelpful order; it compiles or the build
// breaks.
#include "apps/euler_tour.h"
#include "apps/independent_set.h"
#include "apps/list_prefix.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/appendix_eval.h"
#include "core/cut.h"
#include "core/fanout.h"
#include "core/gather.h"
#include "core/lookup_table.h"
#include "core/match1.h"
#include "core/match2.h"
#include "core/match3.h"
#include "core/match4.h"
#include "core/match_result.h"
#include "core/maximal_matching.h"
#include "core/partition_fn.h"
#include "core/random_match.h"
#include "core/ring.h"
#include "core/run.h"
#include "core/sequential.h"
#include "core/verify.h"
#include "core/walkdown.h"
#include "engine/block.h"
#include "engine/block_store.h"
#include "engine/blocked_list.h"
#include "engine/blocked_match.h"
#include "engine/io_driver.h"
#include "engine/mailbox.h"
#include "engine/scheduler.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "list/storage.h"
#include "llmp.h"
#include "net/admission.h"
#include "net/cli.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "pram/barrier.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "pram/prefix.h"
#include "pram/replicate.h"
#include "pram/stats.h"
#include "pram/thread_pool.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "support/alloc_counter.h"
#include "support/bits.h"
#include "support/check.h"
#include "support/format.h"
#include "support/itlog.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/types.h"
// Second pass: include guards must hold.
#include "apps/euler_tour.h"
#include "engine/blocked_match.h"
#include "llmp.h"
#include "net/wire.h"
#include "serve/service.h"
#include "support/status.h"
#include "core/maximal_matching.h"
#include "pram/machine.h"
#include "support/bits.h"

#include <gtest/gtest.h>

namespace {

TEST(Headers, PublicSurfaceIsSelfContained) {
  // Compiling this TU is the test; touch a few symbols so nothing is
  // optimized into irrelevance.
  EXPECT_EQ(llmp::itlog::G(16), 4);
  EXPECT_EQ(llmp::core::kFixedPointBound, 6u);
  EXPECT_EQ(llmp::core::kNoColor, 0xFF);
  SUCCEED();
}

}  // namespace
