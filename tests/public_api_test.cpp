// The redesigned public surface: Status/Result vocabulary, the
// Status-returning entry points (core/run.h, LinkedList::make/validate,
// core::verify::*_status), and the llmp.h facade. The contract under
// test: user-input errors come back as a Status — never an abort — while
// internal invariants keep throwing llmp::check_error.
#include <chrono>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "llmp.h"

namespace llmp {
namespace {

// ---- Status / Result basics. -----------------------------------------------

TEST(Status, DefaultIsOkAndNamedConstructorsCarryCodes) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "OK");

  Status s = Status::not_found("no such algorithm");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such algorithm");
  EXPECT_EQ(s, Status::not_found("no such algorithm"));
  EXPECT_FALSE(s == Status::not_found("different message"));
}

TEST(Status, EveryCodeRoundTripsThroughToString) {
  for (StatusCode c :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable,
        StatusCode::kFailedVerification, StatusCode::kInternal}) {
    Status s(c, "m");
    EXPECT_FALSE(s.ok());
    EXPECT_NE(std::string(to_string(c)), "?");
  }
}

TEST(Status, RetryableClassifiesTransientVsDeterministic) {
  // Transient conditions: another attempt could land on a healthy worker,
  // a drained queue, a rebuilt context.
  EXPECT_TRUE(Status::deadline_exceeded("queued too long").retryable());
  EXPECT_TRUE(Status::resource_exhausted("queue full").retryable());
  EXPECT_TRUE(Status::unavailable("worker restarting").retryable());
  EXPECT_TRUE(Status::internal("worker caught exception").retryable());
  // Deterministic rejections of the request itself: retrying replays the
  // same failure (or was explicitly asked for by the caller — cancel).
  EXPECT_FALSE(Status().retryable());
  EXPECT_FALSE(Status::invalid_argument("bad i_parameter").retryable());
  EXPECT_FALSE(Status::not_found("match99").retryable());
  EXPECT_FALSE(Status::cancelled("token set").retryable());
  EXPECT_FALSE(Status::failed_verification("not maximal").retryable());
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> v(7);
  EXPECT_TRUE(v.ok());
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);

  Result<int> e(Status::cancelled("token fired"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  EXPECT_THROW(e.value(), check_error);  // value() on error is a bug
}

TEST(Result, BuildingFromOkStatusIsAnInvariantViolation) {
  const Status ok_status;
  EXPECT_THROW(Result<int>{ok_status}, check_error);
}

// ---- LinkedList::make / validate. ------------------------------------------

TEST(LinkedListValidate, AcceptsEveryGeneratorShape) {
  for (std::size_t n : {1, 2, 5, 64, 1000}) {
    EXPECT_TRUE(
        list::LinkedList::validate(
            list::generators::random_list(n, 3).next_array())
            .ok())
        << "n=" << n;
  }
}

TEST(LinkedListValidate, RejectsMalformedChains) {
  using list::LinkedList;
  // Successor out of range.
  EXPECT_EQ(LinkedList::validate({5, knil}).code(),
            StatusCode::kInvalidArgument);
  // Two nodes point at node 1 (two predecessors).
  EXPECT_EQ(LinkedList::validate({1, knil, 1}).code(),
            StatusCode::kInvalidArgument);
  // A 3-cycle: no tail at all.
  EXPECT_EQ(LinkedList::validate({1, 2, 0}).code(),
            StatusCode::kInvalidArgument);
  // Disjoint chains: 0 -> 1, 2 -> 3 (two heads, two tails).
  EXPECT_EQ(LinkedList::validate({1, knil, 3, knil}).code(),
            StatusCode::kInvalidArgument);
}

TEST(LinkedListMake, ReturnsListOrStatusWithoutAborting) {
  Result<list::LinkedList> good = list::LinkedList::make({1, 2, knil});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 3u);
  EXPECT_EQ(good->head(), 0u);

  Result<list::LinkedList> bad = list::LinkedList::make({1, 2, 0});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // The checked constructor still enforces the invariant the hard way.
  EXPECT_THROW(list::LinkedList({1, 2, 0}), check_error);
}

// ---- core/run.h entry points. ----------------------------------------------

TEST(RunEntryPoints, ValidateOptionsFlagsUserErrors) {
  core::MatchOptions opt;
  EXPECT_TRUE(core::validate_options(opt).ok());

  opt.i_parameter = 0;
  EXPECT_EQ(core::validate_options(opt).code(), StatusCode::kInvalidArgument);

  opt = {};
  opt.algorithm = static_cast<core::Algorithm>(99);
  EXPECT_EQ(core::validate_options(opt).code(), StatusCode::kInvalidArgument);

  opt = {};
  opt.algorithm = core::Algorithm::kMatch3;
  opt.erew = true;  // Match3 has no EREW variant
  EXPECT_EQ(core::validate_options(opt).code(), StatusCode::kInvalidArgument);
}

TEST(RunEntryPoints, ResolveAlgorithmCoversRegistryAndAliases) {
  apps::register_algorithms();
  for (const char* name : {"sequential", "seq", "match1", "match2", "match3",
                           "match4", "match4-table", "randomized", "random"}) {
    Result<core::MatchOptions> r = core::resolve_algorithm(name);
    EXPECT_TRUE(r.ok()) << name << ": " << r.status().to_string();
  }
  EXPECT_EQ(core::resolve_algorithm("match99").status().code(),
            StatusCode::kNotFound);
  // Registered but not a matching algorithm: the schedules/apps.
  EXPECT_EQ(core::resolve_algorithm("wyllie-ranking").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RunEntryPoints, RunMatchingReportsInsteadOfAborting) {
  const auto lst = list::generators::random_list(500, 11);
  pram::SeqExec exec(64);
  pram::Context ctx(exec);
  core::MatchOptions opt;
  opt.i_parameter = -1;
  Result<core::MatchResult> r = core::run_matching(ctx, lst, opt);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  opt = {};
  r = core::run_matching(ctx, lst, opt);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(core::verify::matching_status(lst, r->in_matching).ok());
}

TEST(VerifyStatus, ReportsBadMatchingsAsFailedVerification) {
  const auto lst = list::generators::identity_list(4);  // 0->1->2->3
  // Two adjacent pointers in the matching: invalid.
  std::vector<std::uint8_t> bad = {1, 1, 0, 0};
  EXPECT_EQ(core::verify::matching_status(lst, bad).code(),
            StatusCode::kFailedVerification);
  // Empty matching on a matchable list: valid but not maximal.
  std::vector<std::uint8_t> empty = {0, 0, 0, 0};
  EXPECT_TRUE(core::verify::matching_status(lst, empty).ok());
  EXPECT_EQ(core::verify::maximal_status(lst, empty).code(),
            StatusCode::kFailedVerification);
}

// ---- The llmp.h facade. ----------------------------------------------------

TEST(Facade, RunsEveryPublicAlgorithmThroughOneContext) {
  llmp::Context ctx(256);
  const auto lst = list::generators::random_list(3000, 5);
  for (const char* name :
       {"sequential", "match1", "match2", "match3", "match4", "randomized"}) {
    const auto r = llmp::run(ctx, name, lst);  // Options::verify audits
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().to_string();
    EXPECT_GT(r->edges, 0u) << name;
  }
}

TEST(Facade, OptionOverridesApplyOnTopOfCanonical) {
  llmp::Context ctx;
  const auto lst = list::generators::random_list(4000, 5);
  const auto base = llmp::run(ctx, "match4", lst);
  ASSERT_TRUE(base.ok());
  const auto i2 = llmp::run(ctx, "match4", lst, {.i_parameter = 2});
  ASSERT_TRUE(i2.ok());
  EXPECT_EQ(i2->relabel_rounds, 2);
  const auto erew = llmp::run(ctx, "match4", lst, {.erew = true});
  ASSERT_TRUE(erew.ok());
}

TEST(Facade, ErrorsComeBackAsStatus) {
  llmp::Context ctx;
  const auto lst = list::generators::random_list(100, 5);
  EXPECT_EQ(llmp::run(ctx, "bogus", lst).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(llmp::run(ctx, "match3", lst, {.erew = true}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- RequestBuilder: the one request spelling shared by transports. --------

TEST(RequestBuilder, BuildsTheInProcessRequest) {
  const auto lst = list::generators::random_list(64, 3);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  const serve::Request req = llmp::RequestBuilder()
                                 .algorithm("match2")
                                 .list(lst)
                                 .deadline(deadline)
                                 .memory_budget_bytes(1 << 20)
                                 .tenant(9)
                                 .build();
  EXPECT_EQ(req.list, &lst);
  EXPECT_EQ(req.algorithm, "match2");
  EXPECT_EQ(req.deadline, deadline);
  EXPECT_EQ(req.memory_budget_bytes, 1u << 20);
  EXPECT_EQ(req.tenant, 9u);
}

TEST(RequestBuilder, TransportGettersMirrorTheSpec) {
  const auto lst = list::generators::random_list(32, 1);
  llmp::RequestBuilder b;
  b.algorithm("sequential").list(lst);
  EXPECT_FALSE(b.is_generated());
  EXPECT_EQ(b.list_ptr(), &lst);
  // generated() replaces the inline list — the two specs are exclusive.
  b.generated(1024, 77);
  EXPECT_TRUE(b.is_generated());
  EXPECT_EQ(b.list_ptr(), nullptr);
  EXPECT_EQ(b.generated_n(), 1024u);
  EXPECT_EQ(b.generated_seed(), 77u);
  // …and list() switches back.
  b.list(lst);
  EXPECT_FALSE(b.is_generated());
  EXPECT_EQ(b.list_ptr(), &lst);
}

TEST(RequestBuilder, SubmittedRequestRunsEndToEnd) {
  const auto lst = list::generators::random_list(400, 6);
  serve::Service svc({.workers = 1, .queue_capacity = 8});
  auto fut = svc.submit(
      llmp::RequestBuilder().algorithm("sequential").list(lst).build());
  const auto r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_GT(r->edges, 0u);
}

TEST(RequestBuilder, GeneratedSpecIsWireOnlyAndRejectedInProcess) {
  serve::Service svc({.workers = 1, .queue_capacity = 8});
  // generated() has no storage for an in-process Request to point at, so
  // submit refuses it (the net client is the transport that honours it).
  auto fut = svc.submit(
      llmp::RequestBuilder().algorithm("sequential").generated(64, 1).build());
  const auto r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestBuilder, ExpiredDeadlineAfterMapsToNoDeadline) {
  // deadline_after with a non-positive interval means "no deadline", not
  // "already expired" — the relative form can't express the past.
  llmp::RequestBuilder b;
  b.deadline_after(std::chrono::milliseconds(0));
  EXPECT_EQ(b.deadline_point(), std::chrono::steady_clock::time_point::max());
  b.deadline_after(std::chrono::milliseconds(-5));
  EXPECT_EQ(b.deadline_point(), std::chrono::steady_clock::time_point::max());
}

}  // namespace
}  // namespace llmp
