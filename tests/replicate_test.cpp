// Tests for EREW table replication (appendix preprocessing).
#include "pram/replicate.h"

#include <gtest/gtest.h>

#include "pram/executor.h"
#include "pram/machine.h"

namespace llmp::pram {
namespace {

class ReplicateCases
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ReplicateCases, AllCopiesEqualMaster) {
  const auto [size, copies] = GetParam();
  std::vector<std::uint32_t> table(size);
  for (std::size_t i = 0; i < size; ++i)
    table[i] = static_cast<std::uint32_t>(i * 2654435761u);
  SeqExec exec(16);
  const auto flat = replicate(exec, table, copies);
  ASSERT_EQ(flat.size(), size * copies);
  for (std::size_t c = 0; c < copies; ++c) {
    ReplicaView<std::uint32_t> view(flat, size, c);
    for (std::size_t i = 0; i < size; ++i)
      ASSERT_EQ(view[i], table[i]) << "copy " << c << " cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplicateCases,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 64, 1000),
                       ::testing::Values<std::size_t>(1, 2, 3, 8, 33)));

TEST(Replicate, ErewLegalOnTheMachine) {
  std::vector<int> table{1, 2, 3, 4, 5};
  Machine m(Mode::kEREW, 8);
  const auto flat = replicate(m, table, 16);
  EXPECT_EQ(flat.size(), 80u);
  EXPECT_EQ(flat[5 * 15 + 4], 5);
}

TEST(Replicate, DepthIsLogCopies) {
  std::vector<int> table(64, 9);
  SeqExec exec(1 << 20);
  replicate(exec, table, 1024);
  // 1 seed step + ceil(log2 1024) doubling rounds.
  EXPECT_EQ(exec.stats().depth, 1u + 10u);
}

TEST(Replicate, WorkIsCopiesTimesSize) {
  std::vector<int> table(128, 1);
  SeqExec exec(64);
  replicate(exec, table, 32);
  EXPECT_EQ(exec.stats().work, 128u * 32u);
}

}  // namespace
}  // namespace llmp::pram
