// Negative-path tests for the correctness oracles: an oracle that cannot
// reject corrupted inputs proves nothing, so every rejection branch is
// exercised here.
#include "core/verify.h"

#include <gtest/gtest.h>

#include "core/maximal_matching.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "support/check.h"

namespace llmp::core::verify {
namespace {

list::LinkedList fixture_list() {
  return list::generators::random_list(64, 17);
}

std::vector<std::uint8_t> good_matching(const list::LinkedList& lst) {
  pram::SeqExec exec(8);
  return match1(exec, lst).in_matching;
}

TEST(VerifyNegative, AdjacentChosenPointersRejected) {
  const auto lst = fixture_list();
  auto m = good_matching(lst);
  // Force two adjacent chosen pointers.
  for (index_t v = lst.head();; v = lst.next(v)) {
    ASSERT_TRUE(lst.has_pointer(v));
    if (m[v]) {
      const index_t s = lst.next(v);
      if (lst.has_pointer(s)) {
        m[s] = 1;
        break;
      }
    }
  }
  EXPECT_THROW(check_matching(lst, m), check_error);
}

TEST(VerifyNegative, MarkedTailRejected) {
  const auto lst = fixture_list();
  auto m = good_matching(lst);
  m[lst.tail()] = 1;  // the tail has no pointer to mark
  EXPECT_THROW(check_matching(lst, m), check_error);
}

TEST(VerifyNegative, NonMaximalRejected) {
  const auto lst = fixture_list();
  auto m = good_matching(lst);
  // Drop one chosen pointer; its two endpoints become free unless covered
  // by the neighbours — find one where removal leaves an addable pointer.
  const auto pred = lst.predecessors();
  bool corrupted = false;
  for (index_t v = 0; v < lst.size() && !corrupted; ++v) {
    if (!m[v]) continue;
    m[v] = 0;
    try {
      check_maximal(lst, m);
      m[v] = 1;  // still maximal (edge case), restore and keep looking
    } catch (const check_error&) {
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "could not build a non-maximal witness";
  EXPECT_THROW(check_maximal(lst, m), check_error);
}

TEST(VerifyNegative, ThreeUnmatchedInARowRejected) {
  const auto lst = list::generators::identity_list(10);
  std::vector<std::uint8_t> m(10, 0);
  m[0] = 1;
  m[6] = 1;  // pointers 1..5 unmatched: gap > 2
  EXPECT_THROW(check_one_of_three(lst, m), check_error);
}

TEST(VerifyNegative, EqualAdjacentLabelsRejected) {
  const auto lst = list::generators::identity_list(8);
  std::vector<label_t> labels{0, 1, 1, 2, 0, 1, 0, 1};  // 1,1 adjacent
  EXPECT_THROW(check_pointer_partition(lst, labels), check_error);
  EXPECT_THROW(check_partition_labels(lst, labels), check_error);
}

TEST(VerifyNegative, CircularWrapLabelChecked) {
  const auto lst = list::generators::identity_list(4);
  // Path-adjacent all distinct, but tail and head share a label: the
  // circular check must reject, the pointer check must accept.
  std::vector<label_t> labels{0, 1, 2, 0};
  EXPECT_NO_THROW(check_pointer_partition(lst, labels));
  EXPECT_THROW(check_partition_labels(lst, labels), check_error);
}

TEST(VerifyNegative, SizeMismatchesRejected) {
  const auto lst = fixture_list();
  std::vector<std::uint8_t> wrong_size(lst.size() - 1, 0);
  EXPECT_THROW(check_matching(lst, wrong_size), check_error);
  EXPECT_THROW(check_maximal(lst, wrong_size), check_error);
  std::vector<label_t> wrong_labels(lst.size() + 1, 0);
  EXPECT_THROW(check_partition_labels(lst, wrong_labels), check_error);
}

TEST(VerifyPositive, AllOraclesAcceptEveryAlgorithmsOutput) {
  const auto lst = list::generators::random_list(500, 3);
  for (auto alg : {Algorithm::kMatch1, Algorithm::kMatch2,
                   Algorithm::kMatch3, Algorithm::kMatch4}) {
    pram::SeqExec exec(8);
    MatchOptions opt;
    opt.algorithm = alg;
    const auto r = maximal_matching(exec, lst, opt);
    EXPECT_NO_THROW(check_matching(lst, r.in_matching));
    EXPECT_NO_THROW(check_maximal(lst, r.in_matching));
  }
}

}  // namespace
}  // namespace llmp::core::verify
