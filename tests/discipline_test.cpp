// Memory-discipline audits: every algorithm template runs unchanged on the
// tracked pram::Machine, which throws on (a) any break of the synchronous
// read-before-write discipline — the property that makes the fast
// executors equivalent to lockstep PRAM execution — and (b) any access
// pattern illegal under the declared PRAM mode. These tests pin down the
// *model* each algorithm needs:
//
//   relabel / gather / Wyllie / prefix-scan / counting sort . CREW
//   Match1–4 end-to-end, coloring, MIS, both rankings ....... CREW
//   predecessor computation, Blelloch scan .................. EREW
//
// (The paper's EREW variants need preprocessing-stage table copies —
// appendix; the concurrent reads here are of the fan-out kind.)
#include <gtest/gtest.h>

#include "apps/independent_set.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/maximal_matching.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/machine.h"
#include "pram/prefix.h"

namespace llmp {
namespace {

using pram::Machine;
using pram::Mode;

list::LinkedList small_list(std::size_t n) {
  return list::generators::random_list(n, /*seed=*/n + 17);
}

class CrewDiscipline : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrewDiscipline, Match1) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = core::match1(m, list);
  core::verify::check_maximal(list, r.in_matching);
}

TEST_P(CrewDiscipline, Match2) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = core::match2(m, list);
  core::verify::check_maximal(list, r.in_matching);
}

TEST_P(CrewDiscipline, Match3) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = core::match3(m, list);
  core::verify::check_maximal(list, r.in_matching);
}

TEST_P(CrewDiscipline, Match4) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = core::match4(m, list);
  core::verify::check_maximal(list, r.in_matching);
}

TEST_P(CrewDiscipline, Match4WithTablePartition) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  core::Match4Options opt;
  opt.i_parameter = 4;
  opt.partition_with_table = true;
  const auto r = core::match4(m, list, opt);
  core::verify::check_maximal(list, r.in_matching);
}

TEST_P(CrewDiscipline, RandomizedMatching) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = core::random_matching(m, list);
  core::verify::check_maximal(list, r.in_matching);
}

TEST_P(CrewDiscipline, ThreeColoring) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = apps::three_coloring(m, list);
  apps::check_coloring(list, r.colors, 3);
}

TEST_P(CrewDiscipline, IndependentSet) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = apps::independent_set(m, list);
  apps::check_independent_set(list, r.in_set);
}

TEST_P(CrewDiscipline, WyllieRanking) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = apps::wyllie_ranking(m, list);
  EXPECT_EQ(r.rank, apps::sequential_ranking(list));
}

TEST_P(CrewDiscipline, ContractionRanking) {
  Machine m(Mode::kCREW, 8);
  const auto list = small_list(GetParam());
  const auto r = apps::contraction_ranking(m, list);
  EXPECT_EQ(r.rank, apps::sequential_ranking(list));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrewDiscipline,
                         ::testing::Values<std::size_t>(1, 2, 3, 9, 64, 301,
                                                        1024),
                         ::testing::PrintToStringParamName());

TEST(ErewDiscipline, PredecessorsAndScanAreErewLegal) {
  Machine m(Mode::kEREW, 8);
  const auto list = small_list(128);
  (void)core::parallel_predecessors(m, list);
  std::vector<std::uint64_t> a(100);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i % 7;
  std::uint64_t total = pram::exclusive_scan(m, a);
  EXPECT_EQ(total, [&] {
    std::uint64_t s = 0;
    for (std::size_t i = 0; i < 100; ++i) s += i % 7;
    return s;
  }());
}

TEST(ErewDiscipline, CountingSortIsErewLegal) {
  Machine m(Mode::kEREW, 8);
  std::vector<index_t> keys{3, 1, 4, 1, 5, 2, 6, 5, 3, 5, 0, 7};
  auto sorted = pram::counting_sort_by_key(m, keys, 8, 4);
  for (std::size_t i = 1; i < sorted.order.size(); ++i)
    EXPECT_LE(keys[sorted.order[i - 1]], keys[sorted.order[i]]);
}

TEST(ErewDiscipline, RelabelNeedsConcurrentReads) {
  // Documented model boundary: a relabel step reads each label cell from
  // two processors (its own and its predecessor's), so EREW flags it.
  Machine m(Mode::kEREW, 8, Machine::OnViolation::kRecord);
  const auto list = small_list(64);
  std::vector<label_t> labels;
  core::init_address_labels(m, 64, labels);
  std::vector<label_t> out(64);
  core::relabel(m, list, labels, out, core::BitRule::kMostSignificant);
  bool has_concurrent_read = false;
  for (const auto& v : m.violations())
    has_concurrent_read |=
        (v.kind == pram::Violation::Kind::kConcurrentRead);
  EXPECT_TRUE(has_concurrent_read);
}

}  // namespace
}  // namespace llmp
