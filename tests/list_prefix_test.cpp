// Tests for generic parallel list prefix, including a non-commutative
// monoid that catches any ordering mistake in the contraction/expansion.
#include "apps/list_prefix.h"

#include <gtest/gtest.h>

#include <numeric>

#include "apps/list_ranking.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "support/rng.h"

namespace llmp::apps {
namespace {

class PrefixSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSizes, SumMatchesOracle) {
  const std::size_t n = GetParam();
  const auto lst = list::generators::random_list(n, 5 * n + 1);
  rng::Xoshiro256 gen(n);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = gen.below(1000);
  pram::SeqExec exec(64);
  const auto r = list_prefix<SumMonoid>(exec, lst, values);
  EXPECT_EQ(r.prefix, sequential_prefix<SumMonoid>(lst, values));
}

TEST_P(PrefixSizes, MaxMatchesOracle) {
  const std::size_t n = GetParam();
  const auto lst = list::generators::reverse_list(n);
  rng::Xoshiro256 gen(n + 1);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = gen.next();
  pram::SeqExec exec(64);
  const auto r = list_prefix<MaxMonoid>(exec, lst, values);
  EXPECT_EQ(r.prefix, sequential_prefix<MaxMonoid>(lst, values));
}

TEST_P(PrefixSizes, NonCommutativeAffineMatchesOracle) {
  // Affine composition is order-sensitive: any segment-order bug in the
  // contraction or expansion flips a coefficient.
  const std::size_t n = GetParam();
  const auto lst = list::generators::random_list(n, 9 * n + 2);
  rng::Xoshiro256 gen(n + 2);
  std::vector<AffineMonoid::Affine> values(n);
  for (auto& v : values) v = {gen.next() | 1, gen.next()};
  pram::SeqExec exec(64);
  const auto r = list_prefix<AffineMonoid>(exec, lst, values);
  const auto oracle = sequential_prefix<AffineMonoid>(lst, values);
  ASSERT_EQ(r.prefix.size(), oracle.size());
  for (std::size_t v = 0; v < n; ++v)
    ASSERT_TRUE(r.prefix[v] == oracle[v]) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 33,
                                                        100, 1000, 8192),
                         ::testing::PrintToStringParamName());

TEST(ListPrefix, RankingIsPrefixOfUnitWeights) {
  const std::size_t n = 2000;
  const auto lst = list::generators::random_list(n, 4);
  std::vector<std::uint64_t> ones(n, 1);
  pram::SeqExec exec(64);
  const auto r = list_prefix<SumMonoid>(exec, lst, ones);
  // inclusive prefix of 1s = position + 1; rank (distance to tail) =
  // n - prefix.
  const auto ranks = sequential_ranking(lst);
  for (index_t v = 0; v < n; ++v)
    EXPECT_EQ(n - r.prefix[v], ranks[v]);
}

TEST(ListPrefix, EveryMatcherWorks) {
  const std::size_t n = 700;
  const auto lst = list::generators::random_list(n, 6);
  rng::Xoshiro256 gen(12);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = gen.below(50);
  const auto oracle = sequential_prefix<SumMonoid>(lst, values);
  for (auto alg : {core::Algorithm::kMatch1, core::Algorithm::kMatch2,
                   core::Algorithm::kMatch3, core::Algorithm::kMatch4}) {
    pram::SeqExec exec(32);
    PrefixOptions opt;
    opt.matcher = alg;
    EXPECT_EQ((list_prefix<SumMonoid>(exec, lst, values, opt).prefix),
              oracle)
        << core::to_string(alg);
  }
}

TEST(ListPrefix, CrewLegalOnTheMachine) {
  const std::size_t n = 300;
  const auto lst = list::generators::random_list(n, 8);
  std::vector<std::uint64_t> values(n, 2);
  pram::Machine m(pram::Mode::kCREW, 8);
  const auto r = list_prefix<SumMonoid>(m, lst, values);
  EXPECT_EQ(r.prefix, sequential_prefix<SumMonoid>(lst, values));
}

TEST(ListPrefix, WorkIsLinearInN) {
  // O(log n) rounds over geometrically shrinking lists: total work c·n.
  std::uint64_t per_n_small = 0, per_n_large = 0;
  for (std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 16}) {
    const auto lst = list::generators::random_list(n, 3);
    std::vector<std::uint64_t> values(n, 1);
    pram::SeqExec exec(64);
    const auto r = list_prefix<SumMonoid>(exec, lst, values);
    (n == (std::size_t{1} << 12) ? per_n_small : per_n_large) =
        r.cost.work / n;
  }
  // Flat per-element work within 40% across a 16x size change.
  EXPECT_LT(per_n_large, per_n_small + 2 * per_n_small / 5);
}

}  // namespace
}  // namespace llmp::apps
