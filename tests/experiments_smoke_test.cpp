// Miniature versions of the headline experiment claims (EXPERIMENTS.md),
// encoded as assertions so a regression in any reproduced result fails
// ctest directly — no bench run needed.
#include <gtest/gtest.h>

#include "core/match1.h"
#include "core/match2.h"
#include "core/match4.h"
#include "core/partition_fn.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "pram/prefix.h"

namespace llmp {
namespace {

// E2 (Lemma 1): one relabel round uses at most 2*ceil(log2 n) sets.
TEST(ExperimentSmoke, E2_Lemma1Bound) {
  const std::size_t n = 1 << 16;
  const auto lst = list::generators::random_list(n, 1);
  pram::SeqExec exec(64);
  std::vector<label_t> labels, out(n);
  core::init_address_labels(exec, n, labels);
  core::relabel(exec, lst, labels, out, core::BitRule::kMostSignificant);
  EXPECT_LE(core::distinct_labels(out),
            2 * static_cast<std::size_t>(itlog::ceil_log2(n)));
}

// E5: Match2's sort share of time_p grows with p (the paper's
// "global sorting scheme is inefficient").
TEST(ExperimentSmoke, E5_SortShareGrowsWithP) {
  const std::size_t n = 1 << 16;
  const auto lst = list::generators::random_list(n, 2);
  auto sort_share = [&](std::size_t p) {
    pram::SeqExec exec(p);
    const auto r = core::match2(exec, lst);
    return static_cast<double>(pram::phase_cost(r.phases, "sort").time_p) /
           static_cast<double>(r.cost.time_p);
  };
  EXPECT_LT(sort_share(64), sort_share(1 << 14));
}

// E9 (Theorem 1): Match4's efficiency p*T/T1 is near-flat inside the
// optimality window and strictly worse beyond ~4x the knee.
TEST(ExperimentSmoke, E9_OptimalityWindow) {
  const std::size_t n = 1 << 18;
  const int i = 3;
  const auto lst = list::generators::random_list(n, 3);
  const label_t x = core::bound_after_rounds(n, i);
  const std::size_t knee = n / static_cast<std::size_t>(x);
  auto efficiency = [&](std::size_t p) {
    pram::SeqExec exec(p);
    core::Match4Options opt;
    opt.i_parameter = i;
    const auto r = core::match4(exec, lst, opt);
    return static_cast<double>(p) * static_cast<double>(r.cost.time_p) /
           static_cast<double>(n);
  };
  const double inside_lo = efficiency(256);
  const double inside_hi = efficiency(knee / 2);
  const double outside = efficiency(8 * knee);
  EXPECT_LT(std::abs(inside_hi - inside_lo), 0.15 * inside_lo)
      << "efficiency must be flat inside the window";
  EXPECT_GT(outside, 1.2 * inside_hi)
      << "efficiency must degrade beyond p* = n/log^(i) n";
}

// E13: the WalkDown scheduler beats the global-sort scheduler at extreme
// p (the additive-term regime) on the identical partition.
TEST(ExperimentSmoke, E13_WalkDownWinsHighP) {
  const std::size_t n = 1 << 18;
  const auto lst = list::generators::random_list(n, 4);
  const std::size_t p = n;  // extreme parallelism
  pram::SeqExec ea(p), eb(p);
  core::Match4Options m4;
  m4.i_parameter = 3;
  const auto walkdown = core::match4(ea, lst, m4);
  const auto global_sort = core::match2(eb, lst);
  EXPECT_LT(walkdown.cost.time_p, global_sort.cost.time_p);
}

// E3 (Lemma 2 fixed point): labels reach the 6-letter alphabet within
// G(n)+2 rounds.
TEST(ExperimentSmoke, E3_FixedPointWithinGRounds) {
  const std::size_t n = 1 << 20;
  const auto lst = list::generators::random_list(n, 5);
  pram::SeqExec exec(64);
  std::vector<label_t> labels;
  core::init_address_labels(exec, n, labels);
  const int rounds = core::reduce_to_constant(
      exec, lst, labels, core::BitRule::kMostSignificant);
  EXPECT_LE(rounds, itlog::G(n) + 2);
  EXPECT_LE(core::distinct_labels(labels), 6u);
}

// E4: Match1's efficiency is pinned at ~G(n) for every p (never optimal).
TEST(ExperimentSmoke, E4_Match1NeverOptimal) {
  const std::size_t n = 1 << 18;
  const auto lst = list::generators::random_list(n, 6);
  for (std::size_t p : {std::size_t{16}, std::size_t{1} << 12}) {
    pram::SeqExec exec(p);
    const auto r = core::match1(exec, lst);
    const double eff = static_cast<double>(p) *
                       static_cast<double>(r.cost.time_p) /
                       static_cast<double>(n);
    EXPECT_GT(eff, static_cast<double>(itlog::G(n))) << p;
  }
}

}  // namespace
}  // namespace llmp
