// Chaos harness: hammers serve::Service from many client threads while a
// failpoint schedule injects worker crashes, scratch-allocation failures,
// queue faults and stragglers — then checks the self-healing invariants:
//
//   * every accepted future completes (no deadlock, no silent loss),
//   * the injected-fault counters reconcile exactly with the service's
//     retry/failure statistics,
//   * capacity recovers once the faults stop (throughput comparable to
//     the pre-chaos baseline, zero failures afterward),
//   * with every failpoint disarmed the zero-steady-state-allocation
//     guarantee still holds (the hooks are free when disabled).
//
// The binary instruments global operator new (like serve_test.cpp) so
// ServiceStats::steady_allocs counts for real.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sequential.h"
#include "engine/blocked_match.h"
#include "llmp.h"
#include "support/alloc_counter.h"
#include "support/failpoint.h"

void* operator new(std::size_t size) {
  llmp::support::note_alloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// Nothrow forms too: libstdc++ internals (std::get_temporary_buffer) pair
// new(nothrow) with plain delete, which must land on the same allocator.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  llmp::support::note_alloc();
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace llmp {
namespace {

namespace fp = support::failpoint;

using core::MatchResult;
using serve::Request;
using serve::Service;
using serve::ServiceOptions;
using serve::ServiceStats;

class Chaos : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

constexpr std::size_t kListSize = 512;

/// Fire `count` requests from `threads` submitter threads, wait for every
/// future, and return how many came back OK (the rest carried an error
/// status — a future that never becomes ready would hang the test, which
/// is itself the deadlock detector). Algorithms cycle over the whole
/// registry to exercise every code path under fault.
std::uint64_t hammer(Service& svc, const std::vector<list::LinkedList>& lists,
                     int count, int threads) {
  static const char* kAlgs[] = {"match1", "match2", "match3", "match4",
                                "sequential"};
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  const int per = count / threads;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<Result<MatchResult>>> futs;
      futs.reserve(static_cast<std::size_t>(per));
      for (int k = 0; k < per; ++k) {
        const int j = t * per + k;
        futs.push_back(
            svc.submit({.list = &lists[static_cast<std::size_t>(j) %
                                       lists.size()],
                        .algorithm = kAlgs[j % 5]}));
      }
      for (auto& f : futs)
        if (f.get().ok()) ok.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& c : clients) c.join();
  return ok.load();
}

TEST_F(Chaos, FaultStormCompletesReconcilesAndRecovers) {
  std::vector<list::LinkedList> lists;
  for (std::uint64_t s = 0; s < 3; ++s)
    lists.push_back(list::generators::random_list(kListSize, s));

  ServiceOptions opt;
  opt.workers = 4;
  opt.queue_capacity = 128;
  opt.retry = {.max_attempts = 3,
               .backoff_base = std::chrono::milliseconds(1),
               .backoff_max = std::chrono::milliseconds(8)};
  Service svc(opt);

  // Baseline: no faults.
  constexpr int kBaseline = 1000;
  const auto base_t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(hammer(svc, lists, kBaseline, 4),
            static_cast<std::uint64_t>(kBaseline));
  const auto base_elapsed = std::chrono::steady_clock::now() - base_t0;
  svc.reset_stats();

  // Storm: ~3% of worker attempts fail (half escaping as exceptions) and
  // ~0.2% of scratch leases throw mid-algorithm. 10k requests make the
  // expected injected-fault count ≥ 300.
  ASSERT_TRUE(fp::arm_from_string(
                  "serve.worker.run=status(unavailable):p=0.015|throw:p=0.015;"
                  "pram.arena.take=throw:p=0.002")
                  .ok());
  constexpr int kStorm = 10000;
  const std::uint64_t storm_ok = hammer(svc, lists, kStorm, 4);

  // Every future completed (hammer returned); now reconcile. No request
  // is in flight and none is parked in retry backoff (a future is ready
  // only after its final attempt), so the counters are stable.
  const ServiceStats st = svc.stats();
  const fp::Counts run = fp::counts("serve.worker.run");
  const fp::Counts take = fp::counts("pram.arena.take");
  fp::disarm_all();

  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kStorm));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kStorm));
  EXPECT_EQ(st.completed, st.ok + st.cancelled + st.expired + st.failed);
  EXPECT_EQ(st.cancelled, 0u);
  EXPECT_EQ(st.expired, 0u);
  EXPECT_EQ(st.ok, storm_ok);

  // Exact bookkeeping: every injected fault failed exactly one attempt,
  // and every failed attempt was either retried or failed its future.
  const std::uint64_t injected = run.faults() + take.throws;
  EXPECT_GT(injected, static_cast<std::uint64_t>(kStorm) / 100)
      << "chaos schedule injected under 1% faults — not a real storm";
  EXPECT_EQ(injected, st.retries + st.failed);
  // Every escape (throw rules only) rebuilt a worker context.
  EXPECT_EQ(st.restarts, run.throws + take.throws);
  EXPECT_GT(st.ok, 0u);
  EXPECT_GE(st.retries, 1u);

  // Recovery: faults are gone; the same load must run clean and at a
  // throughput comparable to the baseline (a lost worker or a poisoned
  // context would show up here as a slowdown or failures).
  svc.reset_stats();
  const auto rec_t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(hammer(svc, lists, kBaseline, 4),
            static_cast<std::uint64_t>(kBaseline));
  const auto rec_elapsed = std::chrono::steady_clock::now() - rec_t0;
  const ServiceStats rec = svc.stats();
  EXPECT_EQ(rec.failed, 0u);
  EXPECT_EQ(rec.retries, 0u);
  EXPECT_LT(rec_elapsed, base_elapsed * 5 + std::chrono::milliseconds(200))
      << "post-fault throughput did not recover";
}

TEST_F(Chaos, QueuePushFaultsFailOnlyTheSubmitter) {
  std::vector<list::LinkedList> lists;
  lists.push_back(list::generators::random_list(kListSize, 7));
  Service svc({.workers = 2, .queue_capacity = 64});

  ASSERT_TRUE(fp::arm_from_string("serve.queue.push=throw:p=0.2").ok());
  constexpr int kCount = 400;
  std::vector<std::future<Result<MatchResult>>> futs;
  for (int k = 0; k < kCount; ++k)
    futs.push_back(svc.submit({.list = &lists[0]}));
  std::uint64_t ok = 0, unavailable = 0;
  for (auto& f : futs) {
    const Result<MatchResult> r = f.get();
    if (r.ok())
      ++ok;
    else if (r.status().code() == StatusCode::kUnavailable)
      ++unavailable;  // the injected code — and retryable() for callers
  }
  const ServiceStats st = svc.stats();
  const fp::Counts push = fp::counts("serve.queue.push");
  fp::disarm_all();

  EXPECT_EQ(ok + unavailable, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(unavailable, push.throws);  // a push fault loses no request
  EXPECT_EQ(st.rejected, push.throws);
  EXPECT_EQ(st.submitted, ok);
  EXPECT_EQ(st.ok, ok);
}

TEST_F(Chaos, WatchdogRecoversCapacityFromStragglers) {
  std::vector<list::LinkedList> lists;
  lists.push_back(list::generators::random_list(kListSize, 11));

  ServiceOptions opt;
  opt.workers = 2;
  opt.queue_capacity = 64;
  opt.wedge_threshold = std::chrono::milliseconds(30);
  opt.supervisor_period = std::chrono::milliseconds(5);
  Service svc(opt);

  // The first two worker attempts stall for 300ms — far past the wedge
  // threshold; the watchdog must replace those workers so the remaining
  // requests don't queue behind the stragglers.
  ASSERT_TRUE(fp::arm_from_string("serve.worker.run=sleep(300):n=2").ok());
  std::vector<std::future<Result<MatchResult>>> futs;
  for (int k = 0; k < 40; ++k) futs.push_back(svc.submit({.list = &lists[0]}));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());  // stragglers finish late

  const ServiceStats st = svc.stats();
  const fp::Counts run = fp::counts("serve.worker.run");
  ASSERT_EQ(run.sleeps, 2u);
  EXPECT_GE(st.watchdog_fires, 1u) << "no wedged worker was replaced";
  EXPECT_EQ(st.workers, 2u);  // capacity restored, slot count stable
  EXPECT_EQ(st.completed, 40u);
  EXPECT_EQ(st.failed, 0u);  // sleeps delay, never fail
}

// Engine chaos, direct: storm the block engine's three failpoints and
// reconcile exactly. Status rules (IO load/spill) abort a run with the
// injected code — each failed run consumed exactly one status, since the
// first fault aborts. The eviction failpoint throws; each thrown run
// consumed exactly one throw. Surviving runs must still be bit-exact,
// and after disarming, the same warm matcher must run clean.
TEST_F(Chaos, BlockEngineFaultsReconcileExactly) {
  const std::size_t kNodes = 2048;
  const auto lst = list::generators::random_list(kNodes, 3);
  core::MatchResult flat;
  core::sequential_matching_into(lst, flat);

  engine::BlockConfig cfg;
  cfg.block_nodes = 128;  // 16 blocks…
  cfg.cache_blocks = 2;   // …through 2 frames: every run loads and spills
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(lst, cfg).ok());

  ASSERT_TRUE(fp::arm_from_string(
                  "engine.io.load=status(unavailable):p=0.002;"
                  "engine.io.spill=status(unavailable):p=0.002;"
                  "engine.cache.evict=throw:p=0.001")
                  .ok());
  constexpr int kRuns = 200;
  std::uint64_t ok_runs = 0, status_runs = 0, thrown_runs = 0;
  core::MatchResult r;
  for (int k = 0; k < kRuns; ++k) {
    try {
      const Status s = matcher.matching_into(r);
      if (s.ok()) {
        ++ok_runs;
        EXPECT_EQ(r.in_matching, flat.in_matching);
        EXPECT_EQ(r.edges, flat.edges);
      } else {
        ++status_runs;
        EXPECT_EQ(s.code(), StatusCode::kUnavailable);
        EXPECT_TRUE(s.retryable());
      }
    } catch (const fp::InjectedFault&) {
      ++thrown_runs;
    }
  }
  const fp::Counts load = fp::counts("engine.io.load");
  const fp::Counts spill = fp::counts("engine.io.spill");
  const fp::Counts evict = fp::counts("engine.cache.evict");
  fp::disarm_all();

  EXPECT_EQ(ok_runs + status_runs + thrown_runs,
            static_cast<std::uint64_t>(kRuns));
  EXPECT_EQ(status_runs, load.statuses + spill.statuses);
  EXPECT_EQ(thrown_runs, evict.throws);
  EXPECT_GT(status_runs + thrown_runs, 0u)
      << "chaos schedule injected nothing — not a real storm";
  EXPECT_GT(ok_runs, 0u) << "every run faulted — rates too hot to verify";

  // Recovery on the same warm matcher: no residue from aborted runs.
  ASSERT_TRUE(matcher.matching_into(r).ok());
  EXPECT_EQ(r.in_matching, flat.in_matching);
}

// Engine chaos through the serve layer: blocked requests ride the same
// retry machinery as flat ones. Injected IO faults surface kUnavailable
// (retryable), so each fault fails exactly one attempt and the service's
// retry/failure counters reconcile exactly against the failpoint's.
TEST_F(Chaos, ServeRetriesBlockedRequestsThroughIoFaults) {
  const std::size_t kNodes = 16384;  // 4 blocks at the engine's default
  const auto lst = list::generators::random_list(kNodes, 5);

  ServiceOptions opt;
  opt.workers = 2;
  opt.queue_capacity = 64;
  opt.retry = {.max_attempts = 3,
               .backoff_base = std::chrono::milliseconds(1),
               .backoff_max = std::chrono::milliseconds(4)};
  Service svc(opt);

  ASSERT_TRUE(
      fp::arm_from_string("engine.io.load=status(unavailable):p=0.01;"
                          "engine.io.spill=status(unavailable):p=0.01")
          .ok());
  constexpr int kCount = 120;
  const std::size_t kBudget = 64 * 1024;  // 1 frame: constant swapping
  std::vector<std::future<Result<MatchResult>>> futs;
  futs.reserve(kCount);
  for (int k = 0; k < kCount; ++k)
    futs.push_back(svc.submit({.list = &lst,
                               .algorithm = "sequential",
                               .memory_budget_bytes = kBudget}));
  std::uint64_t ok = 0;
  for (auto& f : futs) ok += f.get().ok();

  const ServiceStats st = svc.stats();
  const fp::Counts load = fp::counts("engine.io.load");
  const fp::Counts spill = fp::counts("engine.io.spill");
  fp::disarm_all();

  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(st.ok, ok);
  const std::uint64_t injected = load.statuses + spill.statuses;
  EXPECT_GT(injected, 0u) << "no IO fault fired — storm misconfigured";
  EXPECT_EQ(injected, st.retries + st.failed);
  EXPECT_EQ(st.restarts, 0u);  // status faults never escape the worker
  EXPECT_GT(st.ok, 0u);
}

// Corruption storm: ~2% of results are damaged in the worker by the
// stabilize.corrupt.match failpoint, and the audit policy decides their
// fate — requests running under kRepair are healed in place and come
// back OK, requests overriding to kAudit fail with kDataLoss. The books
// must balance exactly: every fired injection is an audit failure, and
// every audit failure is either a repair or a kDataLoss future.
TEST_F(Chaos, CorruptionStormReconcilesRepairsAndDataLoss) {
  std::vector<list::LinkedList> lists;
  for (std::uint64_t s = 0; s < 3; ++s)
    lists.push_back(list::generators::random_list(kListSize, s));

  ServiceOptions opt;
  opt.workers = 4;
  opt.queue_capacity = 128;
  opt.audit = serve::AuditPolicy::kRepair;  // the service default…
  Service svc(opt);

  ASSERT_TRUE(
      fp::arm_from_string("stabilize.corrupt.match=status(data_loss):p=0.02")
          .ok());
  static const char* kAlgs[] = {"match1", "match2", "match3", "match4",
                                "sequential"};
  constexpr int kStorm = 10000;
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> ok{0}, data_loss{0}, other{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<Result<MatchResult>>> futs;
      futs.reserve(kStorm / kThreads);
      for (int k = 0; k < kStorm / kThreads; ++k) {
        const int j = t * (kStorm / kThreads) + k;
        Request req;
        req.list = &lists[static_cast<std::size_t>(j) % lists.size()];
        req.algorithm = kAlgs[j % 5];
        // …every third request opts out of healing: detect-only.
        if (j % 3 == 0) req.audit = serve::AuditPolicy::kAudit;
        futs.push_back(svc.submit(std::move(req)));
      }
      for (auto& f : futs) {
        const Result<MatchResult> r = f.get();
        if (r.ok())
          ok.fetch_add(1, std::memory_order_relaxed);
        else if (r.status().code() == StatusCode::kDataLoss)
          data_loss.fetch_add(1, std::memory_order_relaxed);
        else
          other.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : clients) c.join();

  const ServiceStats st = svc.stats();
  const fp::Counts corrupt = fp::counts("stabilize.corrupt.match");
  fp::disarm_all();

  // Every future completed, nothing surfaced an unexpected code.
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kStorm));
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + data_loss.load(),
            static_cast<std::uint64_t>(kStorm));

  // Exact reconciliation. Every fire damaged a real result (the
  // injector checks applicability before evaluating the failpoint), so:
  //   injected == audits_failed == repairs + kDataLoss futures.
  const std::uint64_t injected = corrupt.statuses;
  EXPECT_GT(injected, static_cast<std::uint64_t>(kStorm) / 100)
      << "corruption storm injected under 1% — not a real storm";
  EXPECT_EQ(st.audits_failed, injected);
  EXPECT_EQ(st.repairs + data_loss.load(), injected);
  EXPECT_GT(st.repairs, 0u);
  EXPECT_GT(data_loss.load(), 0u);

  // kDataLoss is deliberately non-retryable: corrupted payloads fail
  // their future immediately (no retry amplification to skew the books).
  EXPECT_EQ(st.retries, 0u);
  EXPECT_EQ(st.failed, data_loss.load());
  EXPECT_EQ(st.ok, ok.load());
}

TEST_F(Chaos, DisarmedFailpointsPreserveZeroSteadyStateAllocations) {
  // The resilience hooks ship in the hot paths (queue, arena take, plan
  // and table builds); disabled they must not change the serve layer's
  // zero-allocation steady state.
  ASSERT_FALSE(fp::any_armed());
  std::vector<list::LinkedList> lists;
  for (std::uint64_t s = 0; s < 3; ++s)
    lists.push_back(list::generators::random_list(2000, s));

  Service svc({.workers = 2});
  ASSERT_EQ(hammer(svc, lists, 48, 2), 48u);  // warm every worker
  svc.reset_stats();
  ASSERT_EQ(hammer(svc, lists, 40, 2), 40u);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.steady_allocs, 0u)
      << "disabled failpoints must not allocate in the algorithm body";
  EXPECT_EQ(st.arena_takes, st.arena_hits);
}

}  // namespace
}  // namespace llmp
