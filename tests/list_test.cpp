// Tests for the array-backed linked list (Fig. 1) and the workload
// generators.
#include "list/linked_list.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "list/generators.h"
#include "support/check.h"

namespace llmp::list {
namespace {

void expect_valid_chain(const LinkedList& list) {
  std::set<index_t> seen;
  std::size_t steps = 0;
  for (index_t v = list.head(); v != knil; v = list.next(v)) {
    EXPECT_TRUE(seen.insert(v).second);
    ASSERT_LE(++steps, list.size());
  }
  EXPECT_EQ(seen.size(), list.size());
  EXPECT_EQ(list.next(list.tail()), knil);
}

TEST(LinkedList, IdentityBasics) {
  const auto l = LinkedList::identity(5);
  EXPECT_EQ(l.size(), 5u);
  EXPECT_EQ(l.pointers(), 4u);
  EXPECT_EQ(l.head(), 0u);
  EXPECT_EQ(l.tail(), 4u);
  EXPECT_EQ(l.next(2), 3u);
  EXPECT_EQ(l.circular_next(4), 0u);
  expect_valid_chain(l);
}

TEST(LinkedList, SingletonList) {
  const auto l = LinkedList::identity(1);
  EXPECT_EQ(l.head(), l.tail());
  EXPECT_EQ(l.pointers(), 0u);
  EXPECT_FALSE(l.has_pointer(0));
  EXPECT_EQ(l.circular_next(0), 0u);
}

TEST(LinkedList, PredecessorsInvertNext) {
  const auto l = generators::random_list(100, 8);
  const auto pred = l.predecessors();
  EXPECT_EQ(pred[l.head()], knil);
  for (index_t v = 0; v < 100; ++v)
    if (l.next(v) != knil) EXPECT_EQ(pred[l.next(v)], v);
}

TEST(LinkedList, RejectsMalformedInputs) {
  using V = std::vector<index_t>;
  EXPECT_THROW(LinkedList(V{}), check_error);                 // empty
  EXPECT_THROW(LinkedList(V{0}), check_error);                // self-cycle
  EXPECT_THROW(LinkedList(V{1, 0}), check_error);             // 2-cycle
  EXPECT_THROW(LinkedList(V{knil, knil}), check_error);       // two tails
  EXPECT_THROW(LinkedList(V{5, knil}), check_error);          // out of range
  EXPECT_THROW(LinkedList(V{2, 2, knil}), check_error);       // two preds
  // Chain + disjoint cycle: 0→1 tail, 2→3→2 cycle.
  EXPECT_THROW(LinkedList(V{1, knil, 3, 2}), check_error);
}

class GeneratorSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSizes, AllGeneratorsProduceValidChains) {
  const std::size_t n = GetParam();
  expect_valid_chain(generators::random_list(n, 1));
  expect_valid_chain(generators::identity_list(n));
  expect_valid_chain(generators::reverse_list(n));
  expect_valid_chain(generators::blocked_list(n, 8, 2));
  if (n > 1) {
    std::size_t stride = 3;
    while (std::gcd(stride, n) != 1) ++stride;
    expect_valid_chain(generators::strided_list(n, stride));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 10, 100,
                                                        1023),
                         ::testing::PrintToStringParamName());

TEST(Generators, RandomListIsDeterministicPerSeed) {
  const auto a = generators::random_list(500, 7);
  const auto b = generators::random_list(500, 7);
  const auto c = generators::random_list(500, 8);
  EXPECT_EQ(a.next_array(), b.next_array());
  EXPECT_NE(a.next_array(), c.next_array());
}

TEST(Generators, IdentityAndReverseAreExtremes) {
  const auto fwd = generators::identity_list(10);
  const auto rev = generators::reverse_list(10);
  for (index_t v = 0; v + 1 < 10; ++v) EXPECT_EQ(fwd.next(v), v + 1);
  EXPECT_EQ(rev.head(), 9u);
  EXPECT_EQ(rev.tail(), 0u);
  for (index_t v = 9; v > 0; --v) EXPECT_EQ(rev.next(v), v - 1);
}

TEST(Generators, StridedRequiresCoprimality) {
  EXPECT_THROW(generators::strided_list(10, 5), check_error);
  expect_valid_chain(generators::strided_list(10, 3));
}

TEST(Generators, BlockedListKeepsBlockLocality) {
  const std::size_t n = 64, block = 8;
  const auto l = generators::blocked_list(n, block, 3);
  // Walking the list visits blocks in order: node ids within one block of
  // `block` consecutive positions, then the next block.
  index_t v = l.head();
  for (std::size_t b = 0; b < n / block; ++b)
    for (std::size_t i = 0; i < block; ++i) {
      ASSERT_EQ(v / block, b);
      v = l.next(v);
    }
  EXPECT_EQ(v, knil);
}

}  // namespace
}  // namespace llmp::list
